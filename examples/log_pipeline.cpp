// A multi-producer event-logging pipeline: many application threads emit
// fixed-size log records through the MS non-blocking queue to a single
// writer thread, with explicit backpressure accounting when the bounded
// node pool fills -- the paper's motivating "queues in parallel programs
// and operating systems" scenario.
//
// Records are indices into a preallocated slab (the idiomatic way to move
// >8-byte payloads through the lock-free queue).
//
// Build & run:   ./build/examples/log_pipeline
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "queues/ms_queue.hpp"
#include "queues/spsc_ring.hpp"

namespace {

struct LogRecord {
  std::uint32_t producer;
  std::uint32_t severity;
  std::uint64_t sequence;
  std::uint64_t payload;
};

constexpr std::uint32_t kSlabSize = 4096;

/// Slab of records + a free-index queue: producers acquire a slot, fill it,
/// publish the index; the writer consumes and recycles the slot.  The slot
/// recycler is itself an MS queue -- the library eating its own dog food.
class LogBus {
 public:
  LogBus() : free_slots_(kSlabSize), published_(kSlabSize) {
    for (std::uint32_t i = 0; i < kSlabSize; ++i) {
      [[maybe_unused]] const bool ok = free_slots_.try_enqueue(i);
    }
  }

  bool try_emit(const LogRecord& record) {
    std::uint32_t slot = 0;
    if (!free_slots_.try_dequeue(slot)) return false;  // backpressure
    slab_[slot] = record;
    while (!published_.try_enqueue(slot)) {
      // Cannot happen (published_ has slab capacity), but stay defensive.
      std::this_thread::yield();
    }
    return true;
  }

  bool try_drain(LogRecord& out) {
    std::uint32_t slot = 0;
    if (!published_.try_dequeue(slot)) return false;
    out = slab_[slot];
    while (!free_slots_.try_enqueue(slot)) {
      std::this_thread::yield();
    }
    return true;
  }

 private:
  std::array<LogRecord, kSlabSize> slab_{};
  msq::queues::MsQueue<std::uint32_t> free_slots_;
  msq::queues::MsQueue<std::uint32_t> published_;
};

}  // namespace

int main() {
  LogBus bus;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 200'000;

  std::atomic<std::uint32_t> running{kProducers};
  std::atomic<std::uint64_t> dropped{0};

  std::uint64_t written = 0;
  std::uint64_t severity_histogram[4] = {0, 0, 0, 0};
  std::vector<std::uint64_t> last_seq(kProducers, 0);
  bool order_ok = true;

  std::vector<std::jthread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t seq = 1; seq <= kPerProducer; ++seq) {
        const LogRecord record{p, static_cast<std::uint32_t>(seq % 4), seq,
                               seq * 0x9e3779b9u};
        if (!bus.try_emit(record)) {
          // Backpressure: give the writer the core once, then drop if the
          // bus is still full.  (A real logger might block, sample, or
          // spill to a local buffer; dropping keeps the path non-blocking.)
          std::this_thread::yield();
          if (!bus.try_emit(record)) {
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      running.fetch_sub(1);
    });
  }

  // The single writer: drains until all producers finished AND the bus is
  // empty.  Per-producer sequence numbers prove FIFO per producer.
  threads.emplace_back([&] {
    LogRecord record{};
    for (;;) {
      if (bus.try_drain(record)) {
        ++written;
        ++severity_histogram[record.severity];
        if (record.sequence <= last_seq[record.producer]) order_ok = false;
        last_seq[record.producer] = record.sequence;
      } else if (running.load() == 0) {
        if (!bus.try_drain(record)) break;
        ++written;
        ++severity_histogram[record.severity];
        if (record.sequence <= last_seq[record.producer]) order_ok = false;
        last_seq[record.producer] = record.sequence;
      }
    }
  });
  threads.clear();

  const std::uint64_t emitted = kProducers * kPerProducer - dropped.load();
  std::cout << "emitted  " << emitted << " records (" << dropped.load()
            << " dropped under backpressure)\n"
            << "written  " << written << " records\n"
            << "severity histogram:";
  for (const std::uint64_t h : severity_histogram) std::cout << ' ' << h;
  std::cout << '\n'
            << (written == emitted && order_ok
                    ? "OK: lossless delivery, per-producer FIFO preserved\n"
                    : "MISMATCH -- bug!\n");
  return written == emitted && order_ok ? 0 : 1;
}
