// Tour of the observability subsystem (src/obs/): run the MS non-blocking
// queue and the two-lock queue head to head under real contention, then let
// the counters and latency histograms tell the paper's section-4 story in
// numbers -- the MS queue pays for contention with failed CASes (cheap,
// retried immediately), the two-lock queue pays with lock spinning (a whole
// critical section of waiting), and both are tamed by bounded exponential
// backoff.
//
// Build & run:  cmake --build build --target obs_tour && build/examples/obs_tour
#include <cstdint>
#include <iostream>

#include "harness/driver.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/ms_queue.hpp"
#include "queues/two_lock_queue.hpp"

namespace {

constexpr std::uint32_t kThreads = 4;
constexpr std::uint64_t kPairs = 50'000;

template <typename Q>
void duel_round(const char* name, Q& queue) {
  msq::harness::WorkloadConfig config;
  config.threads = kThreads;
  config.total_pairs = kPairs;
  config.record_latency = true;  // per-op ns histograms, merged per thread

  // Bracket the run with snapshots so only ITS events are attributed.
  const msq::obs::Snapshot before = msq::obs::snapshot();
  const msq::harness::WorkloadResult result =
      msq::harness::run_workload(queue, config);
  const msq::obs::Snapshot delta = msq::obs::snapshot() - before;

  const std::uint64_t ops = result.enqueues + result.dequeues +
                            result.empty_dequeues + result.enqueue_failures;
  std::cout << "\n=== " << name << ": " << kPairs << " pairs on " << kThreads
            << " threads, " << result.elapsed_seconds << " s ===\n";
  msq::obs::print_counters(std::cout, delta, ops, name);
  msq::obs::print_histogram(std::cout, result.enqueue_latency_ns,
                            "enqueue latency", "ns");
  msq::obs::print_histogram(std::cout, result.dequeue_latency_ns,
                            "dequeue latency", "ns");
}

}  // namespace

int main() {
  if (!MSQ_OBS) {
    std::cout << "built with MSQ_PROBES=OFF -- every counter below will be "
                 "zero (the probes compile to nothing).\n";
  }
  msq::obs::arm();

  {
    msq::queues::MsQueue<std::uint64_t> ms(kThreads * 4 + 64);
    duel_round("MS non-blocking queue", ms);
  }
  {
    msq::queues::TwoLockQueue<std::uint64_t> two_lock(kThreads * 4 + 64);
    duel_round("two-lock queue", two_lock);
  }

  std::cout <<
      "\nHow to read the duel: cas_fail/op is the MS queue's contention bill"
      "\n(lost linearization races, each a cheap retry); lock_spin/op and"
      "\nlock_acquire/op are the two-lock queue's (waiting for the holder)."
      "\nbackoff_wait counts the spins both spend backing off.  On a"
      "\nmultiprogrammed host the histograms' p99 shows the real difference:"
      "\na preempted lock holder stretches the two-lock tail, while the"
      "\nnon-blocking queue keeps its tail flat.  See EXPERIMENTS.md,"
      "\n\"Interpreting the counters\".\n";
  return 0;
}
