// Drive the simulated multiprocessor interactively from the command line:
// replay the paper's liveness arguments (section 3.3) by stalling a process
// at a chosen pseudo-code line and watching who still makes progress.
//
//   ./build/examples/sim_explorer                 # default: MS, stall E13
//   ./build/examples/sim_explorer ms E9
//   ./build/examples/sim_explorer two-lock T_HELD
//   ./build/examples/sim_explorer single-lock LOCK_HELD
//   ./build/examples/sim_explorer mc MC_LINK
//
// Labels: MS E5 E9 E12 E13 D2 D9 D12; two-lock T_HELD H_HELD;
//         single-lock LOCK_HELD; mc MC_LINK MC_SWING;
//         plj PLJ_LINK PLJ_SWING; valois V_LINK V_SWING.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"

namespace {

using msq::sim::Algo;
using msq::sim::Engine;
using msq::sim::kEmpty;
using msq::sim::Proc;
using msq::sim::SimQueue;
using msq::sim::Task;

struct Counts {
  std::uint64_t enq = 0;
  std::uint64_t deq = 0;
  std::uint64_t empty = 0;
};

Task<void> pairs_forever(Proc& p, SimQueue& queue, std::uint32_t id,
                         Counts& counts) {
  for (std::uint64_t i = 0;; ++i) {
    const bool ok = co_await queue.enqueue(p, (std::uint64_t{id} << 40) | i);
    if (ok) ++counts.enq;
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got != kEmpty) {
      ++counts.deq;
    } else {
      ++counts.empty;
    }
  }
}

Algo parse_algo(const std::string& name) {
  if (name == "single-lock") return Algo::kSingleLock;
  if (name == "mc") return Algo::kMc;
  if (name == "valois") return Algo::kValois;
  if (name == "two-lock") return Algo::kTwoLock;
  if (name == "plj") return Algo::kPlj;
  return Algo::kMs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string algo_arg = argc > 1 ? argv[1] : "ms";
  const std::string label = argc > 2 ? argv[2] : "E13";
  const Algo algo = parse_algo(algo_arg);

  msq::sim::EngineConfig config;
  config.seed = 2026;
  Engine engine(config);
  auto queue = msq::sim::make_sim_queue(algo, engine, 64);

  constexpr std::uint32_t kProcs = 4;
  static Counts counts[kProcs];
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    engine.spawn(0, [&, i](Proc& p) {
      return pairs_forever(p, *queue, i, counts[i]);
    });
  }
  // Process 0 is the victim: stall it the moment it reaches `label`.
  engine.freeze_at_label(0, label.c_str());

  constexpr std::uint64_t kSteps = 50'000;
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    if (!engine.step_random()) break;
  }

  std::cout << "algorithm " << msq::sim::algo_name(algo) << ", victim stalled at '"
            << label << "' (reached: "
            << (std::string(engine.label(0)) == label ? "yes" : "NO") << ")\n"
            << "after " << kSteps << " random steps:\n";
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    std::cout << "  process " << i << (i == 0 ? " (victim)" : "         ")
              << "  enqueues=" << counts[i].enq << "  dequeues=" << counts[i].deq
              << "  saw-empty=" << counts[i].empty << '\n';
  }
  std::cout << "\nInterpretation: for the non-blocking algorithms (ms, plj,\n"
               "valois) the other processes keep completing operations no\n"
               "matter where the victim stalls; for single-lock everything\n"
               "stops; for two-lock only the victim's end stops; for mc the\n"
               "other end stalls once it reaches the victim's claimed slot.\n";
  return 0;
}
