// Using the correctness harness as a LIBRARY: plug a queue implementation
// into the history recorder + linearizability checkers and find out whether
// it is actually a linearizable FIFO.
//
// To make the point, this example checks two queues:
//   1. msq::queues::MsQueue            -- passes everything;
//   2. BrokenQueue (defined below)     -- an intentionally racy "queue"
//      whose unsynchronised fast path loses and duplicates values under
//      concurrency; the checkers call it out.
//
// Build & run:   ./build/examples/check_my_queue
#include <atomic>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "check/lin_check.hpp"
#include "port/clock.hpp"
#include "queues/ms_queue.hpp"

namespace {

/// A classic "works in the demo, loses data in production" queue: atomics
/// used incorrectly -- check-then-act with separate load and store instead
/// of CAS, so two producers commit the same slot and two consumers deliver
/// the same item.  (Atomics keep the example free of formal data races; the
/// LOGIC is what's broken.)
class BrokenQueue {
 public:
  explicit BrokenQueue(std::uint32_t capacity) : ring_(capacity + 1) {}

  bool try_enqueue(std::uint64_t v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) % ring_.size();
    if (next == head_.load(std::memory_order_relaxed)) return false;  // full
    ring_[tail].store(v, std::memory_order_relaxed);
    maybe_yield();  // magnify the check-then-act window so the race fires
                    // reliably even on a single-core host
    tail_.store(next, std::memory_order_release);  // lost-update race
    return true;
  }
  bool try_dequeue(std::uint64_t& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;  // empty
    out = ring_[head].load(std::memory_order_relaxed);
    maybe_yield();
    head_.store((head + 1) % ring_.size(),
                std::memory_order_relaxed);  // double-delivery race
    return true;
  }

 private:
  static void maybe_yield() {
    thread_local std::uint32_t counter = 0;
    if (++counter % 64 == 0) std::this_thread::yield();
  }

  std::vector<std::atomic<std::uint64_t>> ring_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

/// Record a concurrent run of `queue` into per-thread logs.
template <typename Q>
std::vector<msq::check::ThreadLog> record_run(Q& queue, std::uint32_t threads,
                                              std::uint64_t pairs) {
  std::vector<msq::check::ThreadLog> logs;
  for (std::uint32_t t = 0; t < threads; ++t) logs.emplace_back(t);
  std::vector<std::jthread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& log = logs[t];
      for (std::uint64_t i = 0; i < pairs; ++i) {
        const std::uint64_t value = msq::check::encode_value(t, i);
        std::int64_t inv = msq::port::now_ns();
        if (queue.try_enqueue(value)) {
          log.record(msq::check::OpKind::kEnqueue, value, inv,
                     msq::port::now_ns());
        }
        std::uint64_t out = 0;
        inv = msq::port::now_ns();
        if (queue.try_dequeue(out)) {
          log.record(msq::check::OpKind::kDequeue, out, inv,
                     msq::port::now_ns());
        }
      }
    });
  }
  workers.clear();
  return logs;
}

template <typename Q>
void check_queue(const char* name, Q& queue) {
  std::cout << "checking " << name << " ...\n";
  const auto logs = record_run(queue, /*threads=*/4, /*pairs=*/20'000);
  const auto history = msq::check::merge_logs(logs);

  const auto conservation = msq::check::check_conservation(history);
  std::cout << "  conservation:       "
            << (conservation.ok ? "OK" : "VIOLATED -- " + conservation.diagnosis)
            << '\n';
  const auto order = msq::check::check_fifo_order(history);
  std::cout << "  real-time FIFO:     "
            << (order.ok ? "OK" : "VIOLATED -- " + order.diagnosis) << '\n';
  const auto consumer = msq::check::check_per_consumer_order(logs);
  std::cout << "  per-consumer order: "
            << (consumer.ok ? "OK" : "VIOLATED -- " + consumer.diagnosis)
            << "\n\n";
}

}  // namespace

int main() {
  {
    msq::queues::MsQueue<std::uint64_t> good(1024);
    check_queue("MsQueue (the paper's non-blocking queue)", good);
  }
  {
    BrokenQueue bad(1024);
    check_queue("BrokenQueue (racy check-then-act)", bad);
  }
  std::cout << "The harness accepts any type with try_enqueue/try_dequeue;\n"
               "wire your own queue through record_run() + the checkers in\n"
               "src/check/ to get the same verdicts.\n";
  return 0;
}
