// A fixed-size thread pool whose dispatch queue is the two-lock queue --
// the paper's recommendation for busy queues on machines without a
// universal atomic primitive.  Demonstrates the guideline of hiding raw
// threads behind a future-returning executor (CP.61).
//
// The pool runs a toy workload: parallel computation of per-chunk prefix
// checksums over a synthetic buffer, with results returned via futures.
//
// Build & run:   ./build/examples/work_pool
#include <cstdint>
#include <functional>
#include <future>
#include <iostream>
#include <numeric>
#include <thread>
#include <vector>

#include "queues/two_lock_queue.hpp"

namespace {

/// Minimal executor: N workers pull type-erased tasks from a TwoLockQueue.
/// The queue holds raw pointers (the lock-free value restrictions don't
/// apply to the lock-based queue, but pointers keep enqueue cheap).
class WorkPool {
 public:
  explicit WorkPool(unsigned workers, std::uint32_t queue_capacity = 4096)
      : queue_(queue_capacity) {
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this](const std::stop_token& stop) {
        Task* task = nullptr;
        while (!stop.stop_requested()) {
          if (queue_.try_dequeue(task)) {
            task->run();
            delete task;
          } else {
            std::this_thread::yield();
          }
        }
        // Drain on shutdown so no future is left dangling.
        while (queue_.try_dequeue(task)) {
          task->run();
          delete task;
        }
      });
    }
  }

  ~WorkPool() {
    for (auto& t : threads_) t.request_stop();
  }

  /// Submit a callable; returns a future for its result (CP.60).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto* task = new TypedTask<R>(std::forward<F>(fn));
    std::future<R> future = task->promise.get_future();
    while (!queue_.try_enqueue(task)) {
      std::this_thread::yield();  // queue full: backpressure
    }
    return future;
  }

 private:
  struct Task {
    virtual ~Task() = default;
    virtual void run() = 0;
  };
  template <typename R>
  struct TypedTask : Task {
    std::function<R()> fn;
    std::promise<R> promise;
    template <typename F>
    explicit TypedTask(F&& f) : fn(std::forward<F>(f)) {}
    void run() override { promise.set_value(fn()); }
  };

  msq::queues::TwoLockQueue<Task*> queue_;
  std::vector<std::jthread> threads_;
};

}  // namespace

int main() {
  constexpr std::size_t kChunks = 64;
  constexpr std::size_t kChunkSize = 100'000;

  // Synthetic input: chunk c holds values (c, c+1, ...).
  WorkPool pool(4);
  std::vector<std::future<std::uint64_t>> results;
  results.reserve(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    results.push_back(pool.submit([c]() -> std::uint64_t {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < kChunkSize; ++i) {
        acc += (c + i) * 2654435761u % 1000003u;  // toy checksum
      }
      return acc;
    }));
  }

  std::uint64_t total = 0;
  for (auto& f : results) total += f.get();

  // Sequential reference.
  std::uint64_t expected = 0;
  for (std::size_t c = 0; c < kChunks; ++c) {
    for (std::size_t i = 0; i < kChunkSize; ++i) {
      expected += (c + i) * 2654435761u % 1000003u;
    }
  }

  std::cout << "parallel checksum: " << total << "\nsequential check:  "
            << expected << '\n'
            << (total == expected ? "OK\n" : "MISMATCH -- bug!\n");
  return total == expected ? 0 : 1;
}
