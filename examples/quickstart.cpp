// Quickstart: the MS non-blocking queue shared by a handful of producer and
// consumer threads.
//
// Build & run:   ./build/examples/quickstart
#include <atomic>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "queues/ms_queue.hpp"

int main() {
  // A lock-free MPMC FIFO holding up to 1024 in-flight items.  Values must
  // be trivially copyable and <= 8 bytes (store pointers/indices for more).
  msq::queues::MsQueue<std::uint64_t> queue(1024);

  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint32_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 100'000;

  std::atomic<std::uint32_t> producers_running{kProducers};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> checksum{0};

  std::vector<std::jthread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item = (std::uint64_t{p} << 32) | i;
        // try_enqueue fails only when the 1024-node pool is exhausted --
        // i.e. consumers are behind.  Spin-retry is fine for a demo;
        // real applications may prefer to shed load here.
        while (!queue.try_enqueue(item)) {
          std::this_thread::yield();
        }
      }
      producers_running.fetch_sub(1);
    });
  }
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t item = 0;
      for (;;) {
        if (queue.try_dequeue(item)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_add(item & 0xFFFFFFFF, std::memory_order_relaxed);
        } else if (producers_running.load() == 0) {
          if (!queue.try_dequeue(item)) break;  // definitively drained
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_add(item & 0xFFFFFFFF, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.clear();  // join everyone

  const std::uint64_t expected_checksum =
      kProducers * (kPerProducer * (kPerProducer - 1) / 2);
  std::cout << "consumed " << consumed.load() << " items (expected "
            << kProducers * kPerProducer << ")\n"
            << "checksum " << checksum.load() << " (expected "
            << expected_checksum << ")\n"
            << (consumed.load() == kProducers * kPerProducer &&
                        checksum.load() == expected_checksum
                    ? "OK: nothing lost, duplicated, or fabricated\n"
                    : "MISMATCH -- bug!\n");
  return 0;
}
