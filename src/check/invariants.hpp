// Cheap whole-run invariants used by the stress and property tests, plus
// the value-encoding convention that makes them checkable.
//
// Convention: a test value encodes (producer thread, per-producer sequence
// number) so that every enqueued value is globally unique and carries its
// program order.  For any linearizable FIFO queue:
//   * conservation -- the multiset of dequeued values is a sub-multiset of
//     the enqueued ones, with no duplicates;
//   * per-producer order -- values from one producer are dequeued in
//     increasing sequence order (FIFO applied to the subsequence);
//   * per-consumer order -- one consumer never sees producer P's items out
//     of order.
// These are necessary conditions checkable in O(n) after any run of any
// size; the linearizability checkers (lin_check.hpp) are the heavyweight
// complement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/lin_check.hpp"

namespace msq::check {

/// value = producer << 40 | seq (supports ~2^40 ops/producer, 2^24 threads).
[[nodiscard]] constexpr std::uint64_t encode_value(std::uint32_t producer,
                                                   std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(producer) << 40) | seq;
}
[[nodiscard]] constexpr std::uint32_t value_producer(std::uint64_t value) noexcept {
  return static_cast<std::uint32_t>(value >> 40);
}
[[nodiscard]] constexpr std::uint64_t value_seq(std::uint64_t value) noexcept {
  return value & ((1ull << 40) - 1);
}

/// Conservation + per-producer order over a merged history.
[[nodiscard]] CheckResult check_conservation(const std::vector<Event>& history);

/// Per-consumer order: within each consuming thread's own event sequence,
/// producer P's values appear in increasing seq order.
[[nodiscard]] CheckResult check_per_consumer_order(
    const std::vector<ThreadLog>& logs);

}  // namespace msq::check
