#include "check/invariants.hpp"

#include <unordered_map>
#include <unordered_set>

namespace msq::check {

CheckResult check_conservation(const std::vector<Event>& history) {
  std::unordered_set<std::uint64_t> enqueued;
  std::unordered_set<std::uint64_t> dequeued;
  enqueued.reserve(history.size());
  dequeued.reserve(history.size());
  for (const Event& e : history) {
    if (e.kind == OpKind::kEnqueue) {
      if (!enqueued.insert(e.value).second) {
        return CheckResult{false, "duplicate enqueue of value " +
                                      std::to_string(e.value)};
      }
    } else if (e.kind == OpKind::kDequeue) {
      if (!dequeued.insert(e.value).second) {
        return CheckResult{false,
                           "value dequeued twice: " + format_event(e)};
      }
    }
  }
  for (std::uint64_t v : dequeued) {
    if (!enqueued.contains(v)) {
      return CheckResult{false,
                         "value fabricated (dequeued, never enqueued): " +
                             std::to_string(v)};
    }
  }
  return CheckResult{};
}

CheckResult check_per_consumer_order(const std::vector<ThreadLog>& logs) {
  for (const ThreadLog& log : logs) {
    // Last sequence number seen from each producer by this consumer.
    std::unordered_map<std::uint32_t, std::uint64_t> last_seq;
    for (const Event& e : log.events()) {
      if (e.kind != OpKind::kDequeue) continue;
      const std::uint32_t producer = value_producer(e.value);
      const std::uint64_t seq = value_seq(e.value);
      auto [it, inserted] = last_seq.try_emplace(producer, seq);
      if (!inserted) {
        if (seq <= it->second) {
          return CheckResult{
              false, "consumer " + std::to_string(e.thread) +
                         " observed producer " + std::to_string(producer) +
                         " out of order: seq " + std::to_string(seq) +
                         " after " + std::to_string(it->second)};
        }
        it->second = seq;
      }
    }
  }
  return CheckResult{};
}

}  // namespace msq::check
