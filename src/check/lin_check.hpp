// Linearizability checking against the sequential FIFO-queue specification
// (paper §3.2: "an implementation ... is linearizable if it can always give
// an external observer ... the illusion that each of these operations takes
// effect instantaneously at some point between its invocation and its
// response" [Herlihy & Wing]).
//
// Two checkers with different contracts:
//
//  * check_linearizable_exact -- Wing-Gong style DFS over linearization
//    orders with memoisation.  Sound AND complete, exponential worst case:
//    use on small histories (sim schedules, targeted tests; <= ~40 ops).
//
//  * check_fifo_order -- scalable (O(n log n)) necessary-condition checker
//    for large stress histories with DISTINCT values: value conservation
//    (each dequeue matches exactly one enqueue, no duplicates, no
//    fabrication), no dequeue-before-enqueue, and FIFO real-time order (if
//    enq(a) strictly precedes enq(b), deq(a) must not strictly follow
//    deq(b), counting "never dequeued" as dequeued at +infinity).  Sound for
//    rejection: any reported violation is a real linearizability bug; it
//    does not attempt the (rarely violated alone) empty-dequeue condition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace msq::check {

struct CheckResult {
  bool ok = true;
  std::string diagnosis;  // first violation found, human-readable

  explicit operator bool() const noexcept { return ok; }
};

/// Exact decision procedure; `history` must have <= 64 operations.
[[nodiscard]] CheckResult check_linearizable_exact(
    const std::vector<Event>& history);

/// Scalable necessary-condition checker; values must be distinct across
/// enqueues (the test harness guarantees this by encoding thread + seq).
[[nodiscard]] CheckResult check_fifo_order(const std::vector<Event>& history);

}  // namespace msq::check
