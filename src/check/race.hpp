// Vector-clock happens-before race detection for the simulator.
//
// The paper's pseudo-code assumes sequential consistency, and the sim
// engine provides exactly that: one step = one access, applied atomically.
// But *which* accesses carry synchronization is a property of the
// implementation being modelled, not of the simulator -- a C++ port of the
// same pseudo-code is only correct if the happens-before edges its atomics
// declare actually cover every conflicting access pair.  HbTracker makes
// that auditable inside the sim: every access is stamped with the issuing
// process's vector clock, and a configurable SyncModel decides which
// operations act as release/acquire fences.
//
// Detection is FastTrack-flavoured but with full vector clocks (process
// counts here are tiny): per-addr state holds the last-write epoch and the
// reads-since-last-write, a write checks against both, a read checks
// against the last write, and reads are cleared when a write is ordered
// after them.  Each report names the labelled pseudo-code line (Proc::at /
// annotate) of BOTH conflicting accesses, so a race reads like the paper's
// own race catalogue: "E9 write vs D2 read".
//
// This header is engine-agnostic on purpose (plain integers in, reports
// out): the engine feeds it from execute(), tests can feed it synthetic
// traces, and the DPOR explorer keeps its own independent trace analysis.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"

namespace msq::check {

/// The memory-order vocabulary shared by the race tracker, the sim engine
/// and the mutation table.  One extra rung below C++'s lattice: kPlain is a
/// NON-ATOMIC access (ordinary data), the thing C++ data races are about.
/// Everything from kRelaxed up models a std::atomic access with that order.
enum class MemOrder : std::uint8_t {
  kPlain,    // non-atomic: racy conflicts on these are reportable
  kRelaxed,  // atomic, no ordering
  kAcquire,
  kRelease,
  kAcqRel,
  kSeqCst,
};

[[nodiscard]] constexpr const char* mem_order_name(MemOrder o) noexcept {
  switch (o) {
    case MemOrder::kPlain:   return "plain";
    case MemOrder::kRelaxed: return "relaxed";
    case MemOrder::kAcquire: return "acquire";
    case MemOrder::kRelease: return "release";
    case MemOrder::kAcqRel:  return "acq_rel";
    case MemOrder::kSeqCst:  return "seq_cst";
  }
  return "?";
}

/// Does `o` carry acquire semantics on the load side of an access?
[[nodiscard]] constexpr bool order_acquires(MemOrder o) noexcept {
  return o == MemOrder::kAcquire || o == MemOrder::kAcqRel ||
         o == MemOrder::kSeqCst;
}
/// Does `o` carry release semantics on the store side of an access?
[[nodiscard]] constexpr bool order_releases(MemOrder o) noexcept {
  return o == MemOrder::kRelease || o == MemOrder::kAcqRel ||
         o == MemOrder::kSeqCst;
}

/// Which simulated operations carry synchronization (happens-before edges).
enum class SyncModel : std::uint8_t {
  kNone,    // no edges at all: the "naive port" that flags every conflict
  kRmw,     // CAS/FAA/Swap act release-acquire; plain loads/stores are relaxed
  kFull,    // every access acquires and releases its address: zero races by
            // construction (models an all-seq_cst implementation)
  kOrders,  // each access's DECLARED MemOrder decides its edges: releases
            // publish, acquires join, and only conflicts involving a kPlain
            // access are reportable (atomics never race in C++; losing a
            // needed edge shows up as an unprotected plain access instead)
};

[[nodiscard]] constexpr const char* sync_model_name(SyncModel m) noexcept {
  switch (m) {
    case SyncModel::kNone:   return "none";
    case SyncModel::kRmw:    return "rmw";
    case SyncModel::kFull:   return "full";
    case SyncModel::kOrders: return "orders";
  }
  return "?";
}

/// One conflicting, happens-before-unordered access pair.  `first` is the
/// earlier access (by engine step), `second` the one that detected it.
struct RaceReport {
  std::uint32_t addr = 0;
  std::uint32_t first_proc = 0;
  const char* first_label = "";
  bool first_is_write = false;
  std::uint64_t first_step = 0;
  std::uint32_t second_proc = 0;
  const char* second_label = "";
  bool second_is_write = false;
  std::uint64_t second_step = 0;

  [[nodiscard]] std::string format() const {
    std::string s = "data race on addr ";
    s += std::to_string(addr);
    s += ": P" + std::to_string(first_proc);
    s += first_is_write ? " write" : " read";
    s += " at [";
    s += (first_label != nullptr && first_label[0] != '\0') ? first_label
                                                           : "<unlabelled>";
    s += "] (step " + std::to_string(first_step) + ") vs P";
    s += std::to_string(second_proc);
    s += second_is_write ? " write" : " read";
    s += " at [";
    s += (second_label != nullptr && second_label[0] != '\0') ? second_label
                                                              : "<unlabelled>";
    s += "] (step " + std::to_string(second_step) + ")";
    return s;
  }
};

/// Collected race reports, deduplicated by (addr, label pair, kinds) so a
/// racy retry loop produces one report per distinct pseudo-code line pair
/// rather than one per iteration.
class RaceLog {
 public:
  explicit RaceLog(std::size_t capacity = 64) : capacity_(capacity) {}

  void report(const RaceReport& r) {
    ++observed_;
    MSQ_COUNT(kRaceReport);
    for (const RaceReport& seen : reports_) {
      if (seen.addr == r.addr && same_site(seen, r)) return;
    }
    if (reports_.size() < capacity_) reports_.push_back(r);
  }

  [[nodiscard]] const std::vector<RaceReport>& reports() const noexcept {
    return reports_;
  }
  /// Total race observations, including deduplicated repeats.
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }
  [[nodiscard]] bool empty() const noexcept { return reports_.empty(); }
  void clear() noexcept {
    reports_.clear();
    observed_ = 0;
  }

 private:
  static bool same_site(const RaceReport& a, const RaceReport& b) noexcept {
    const auto eq = [](const char* x, const char* y) {
      return std::string_view(x == nullptr ? "" : x) ==
             std::string_view(y == nullptr ? "" : y);
    };
    return eq(a.first_label, b.first_label) &&
           eq(a.second_label, b.second_label) &&
           a.first_is_write == b.first_is_write &&
           a.second_is_write == b.second_is_write;
  }

  std::size_t capacity_;
  std::vector<RaceReport> reports_;
  std::uint64_t observed_ = 0;
};

/// The happens-before tracker.  The engine (or a test) calls on_access()
/// for every shared-memory access, in execution order; races land in the
/// RaceLog passed by reference.
class HbTracker {
 public:
  explicit HbTracker(SyncModel model, RaceLog& log)
      : model_(model), log_(&log) {}

  /// One access: process `proc` at labelled line `label` touches `addr` on
  /// engine step `step`.  `is_write` is whether the access mutated the word
  /// (a failed CAS is a read); `is_rmw` is whether the operation was
  /// CAS/FAA/Swap (synchronizing under SyncModel::kRmw even when it fails,
  /// matching C++ where a failed compare_exchange still loads with its
  /// failure order).  `order` is the access's declared MemOrder; it is only
  /// consulted under SyncModel::kOrders, where the load side of an access
  /// (plain load, or any RMW -- a failed CAS still loads) joins the
  /// address's sync clock iff the order acquires, and the store side
  /// publishes iff it mutated the word and the order releases.  seq_cst is
  /// approximated as acq_rel here; the store-buffer execution mode
  /// (EngineConfig::weak_memory) is what distinguishes the two.
  void on_access(std::uint32_t proc, const char* label, std::uint32_t addr,
                 bool is_write, bool is_rmw, std::uint64_t step,
                 MemOrder order = MemOrder::kSeqCst) {
    grow(proc);
    AddrState& a = addrs_[addr];
    Clock& c = clocks_[proc];

    bool acq = false;
    bool rel = false;
    switch (model_) {
      case SyncModel::kNone: break;
      case SyncModel::kRmw:  acq = rel = is_rmw; break;
      case SyncModel::kFull: acq = rel = true; break;
      case SyncModel::kOrders:
        acq = (is_rmw || !is_write) && order_acquires(order);
        rel = is_write && order_releases(order);
        break;
    }
    if (acq) join(c, a.sync);  // acquire: see everything released here

    // Under kOrders only conflicts involving a non-atomic access are races;
    // under the legacy models every unordered conflict is reportable.
    const auto reportable = [&](MemOrder other) {
      return model_ != SyncModel::kOrders || order == MemOrder::kPlain ||
             other == MemOrder::kPlain;
    };

    // Detect before recording: is this access ordered after the last
    // write, and (for writes) after every read since that write?
    if (a.has_write && a.w_proc != proc && a.w_clock > at(c, a.w_proc) &&
        reportable(a.w_order)) {
      log_->report({addr, a.w_proc, a.w_label, true, a.w_step, proc, label,
                    is_write, step});
    }
    if (is_write) {
      for (const ReadEntry& r : a.reads) {
        if (r.proc != proc && r.clock > at(c, r.proc) &&
            reportable(r.order)) {
          log_->report({addr, r.proc, r.label, false, r.step, proc, label,
                        true, step});
        }
      }
    }

    const std::uint64_t now = c[proc];
    if (is_write) {
      a.has_write = true;
      a.w_proc = proc;
      a.w_clock = now;
      a.w_label = label;
      a.w_step = step;
      a.w_order = order;
      a.reads.clear();
    } else {
      ReadEntry* mine = nullptr;
      for (ReadEntry& r : a.reads) {
        if (r.proc == proc) mine = &r;
      }
      if (mine == nullptr) {
        a.reads.push_back({});
        mine = &a.reads.back();
        mine->proc = proc;
      }
      mine->clock = now;
      mine->label = label;
      mine->step = step;
      mine->order = order;
    }

    if (rel) join(a.sync, c);  // release: publish everything done so far
    ++c[proc];                 // tick: successive accesses get fresh epochs
  }

  [[nodiscard]] SyncModel model() const noexcept { return model_; }

 private:
  using Clock = std::vector<std::uint64_t>;

  struct ReadEntry {
    std::uint32_t proc = 0;
    std::uint64_t clock = 0;
    const char* label = "";
    std::uint64_t step = 0;
    MemOrder order = MemOrder::kSeqCst;
  };

  struct AddrState {
    Clock sync;  // L_x: the join of every releasing access to this addr
    bool has_write = false;
    std::uint32_t w_proc = 0;
    std::uint64_t w_clock = 0;
    const char* w_label = "";
    std::uint64_t w_step = 0;
    MemOrder w_order = MemOrder::kSeqCst;
    std::vector<ReadEntry> reads;  // reads since the last write
  };

  static std::uint64_t at(const Clock& c, std::uint32_t i) noexcept {
    return i < c.size() ? c[i] : 0;
  }
  static void join(Clock& into, const Clock& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) {
      into[i] = std::max(into[i], from[i]);
    }
  }
  void grow(std::uint32_t proc) {
    if (proc < clocks_.size()) return;
    clocks_.resize(proc + 1);
    for (std::uint32_t i = 0; i <= proc; ++i) {
      if (clocks_[i].size() <= i) clocks_[i].resize(i + 1, 0);
      // A process's own component starts at 1 so its very first access has
      // a nonzero epoch: unsynchronized peers (component 0) are unordered.
      if (clocks_[i][i] == 0) clocks_[i][i] = 1;
    }
  }

  SyncModel model_;
  RaceLog* log_;
  std::vector<Clock> clocks_;             // C_p per process
  std::unordered_map<std::uint32_t, AddrState> addrs_;
};

}  // namespace msq::check
