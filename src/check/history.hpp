// Operation-history recording for linearizability checking (paper §3.2).
//
// Worker threads log one Event per completed queue operation with invoke
// and response timestamps.  Per-thread logs are lock-free to record (each
// thread owns its vector) and merged after the run; the checker consumes
// the merged, time-sorted history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msq::check {

enum class OpKind : std::uint8_t {
  kEnqueue,       // try_enqueue returned true
  kDequeue,       // try_dequeue returned true
  kDequeueEmpty,  // try_dequeue returned false (observed empty)
};

struct Event {
  OpKind kind;
  std::uint64_t value;     // enqueued/dequeued value; unused for kDequeueEmpty
  std::int64_t invoke_ns;  // timestamp before the call
  std::int64_t response_ns;  // timestamp after the call
  std::uint32_t thread;
};

/// Log owned by one thread; no synchronisation needed while recording.
class ThreadLog {
 public:
  explicit ThreadLog(std::uint32_t thread_id) : thread_(thread_id) {}

  void record(OpKind kind, std::uint64_t value, std::int64_t invoke_ns,
              std::int64_t response_ns) {
    events_.push_back(Event{kind, value, invoke_ns, response_ns, thread_});
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  void reserve(std::size_t n) { events_.reserve(n); }

 private:
  std::uint32_t thread_;
  std::vector<Event> events_;
};

/// Merge per-thread logs into one history sorted by invoke time.
[[nodiscard]] std::vector<Event> merge_logs(const std::vector<ThreadLog>& logs);

/// Human-readable rendering for failure diagnostics.
[[nodiscard]] std::string format_event(const Event& e);

}  // namespace msq::check
