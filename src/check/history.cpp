#include "check/history.hpp"

#include <algorithm>
#include <sstream>

namespace msq::check {

std::vector<Event> merge_logs(const std::vector<ThreadLog>& logs) {
  std::vector<Event> merged;
  std::size_t total = 0;
  for (const auto& log : logs) total += log.events().size();
  merged.reserve(total);
  for (const auto& log : logs) {
    merged.insert(merged.end(), log.events().begin(), log.events().end());
  }
  std::sort(merged.begin(), merged.end(), [](const Event& a, const Event& b) {
    return a.invoke_ns < b.invoke_ns;
  });
  return merged;
}

std::string format_event(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case OpKind::kEnqueue:
      os << "enq(" << e.value << ")";
      break;
    case OpKind::kDequeue:
      os << "deq()=" << e.value;
      break;
    case OpKind::kDequeueEmpty:
      os << "deq()=EMPTY";
      break;
  }
  os << " t" << e.thread << " [" << e.invoke_ns << "," << e.response_ns << "]";
  return os.str();
}

}  // namespace msq::check
