#include "check/lin_check.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace msq::check {
namespace {

// ---------------------------------------------------------------------------
// Exact checker (Wing-Gong DFS with memoisation)
// ---------------------------------------------------------------------------

struct ExactSearch {
  const std::vector<Event>& ops;
  std::unordered_set<std::uint64_t> visited;
  std::deque<std::uint64_t> queue;  // spec state: FIFO of values

  explicit ExactSearch(const std::vector<Event>& h) : ops(h) {}

  // Hash of (done-mask, queue contents): two linearization prefixes with the
  // same remaining ops and same abstract state are interchangeable.
  [[nodiscard]] std::uint64_t state_key(std::uint64_t done) const {
    std::uint64_t h = done * 0x9e3779b97f4a7c15ull;
    for (std::uint64_t v : queue) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }

  bool dfs(std::uint64_t done) {
    if (done == (ops.size() == 64 ? ~0ull : (1ull << ops.size()) - 1)) {
      return true;
    }
    if (!visited.insert(state_key(done)).second) return false;

    // An undone op may be linearized next only if its invocation precedes
    // every other undone op's response (otherwise that op happened first).
    std::int64_t min_response = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!(done >> i & 1)) min_response = std::min(min_response, ops[i].response_ns);
    }

    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (done >> i & 1) continue;
      const Event& e = ops[i];
      if (e.invoke_ns > min_response) continue;  // something must precede it
      switch (e.kind) {
        case OpKind::kEnqueue:
          queue.push_back(e.value);
          if (dfs(done | 1ull << i)) return true;
          queue.pop_back();
          break;
        case OpKind::kDequeue:
          if (!queue.empty() && queue.front() == e.value) {
            const std::uint64_t v = queue.front();
            queue.pop_front();
            if (dfs(done | 1ull << i)) return true;
            queue.push_front(v);
          }
          break;
        case OpKind::kDequeueEmpty:
          if (queue.empty()) {
            if (dfs(done | 1ull << i)) return true;
          }
          break;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Scalable checker
// ---------------------------------------------------------------------------

struct ValueTimeline {
  const Event* enq = nullptr;
  const Event* deq = nullptr;
};

CheckResult fail(std::string message) {
  return CheckResult{false, std::move(message)};
}

}  // namespace

CheckResult check_linearizable_exact(const std::vector<Event>& history) {
  if (history.size() > 64) {
    return fail("exact checker supports at most 64 operations; use "
                "check_fifo_order for large histories");
  }
  ExactSearch search(history);
  if (search.dfs(0)) return CheckResult{};
  std::ostringstream os;
  os << "no valid linearization exists for history:";
  for (const Event& e : history) os << "\n  " << format_event(e);
  return fail(os.str());
}

CheckResult check_fifo_order(const std::vector<Event>& history) {
  // --- Value conservation -------------------------------------------------
  std::unordered_map<std::uint64_t, ValueTimeline> values;
  values.reserve(history.size());
  for (const Event& e : history) {
    if (e.kind == OpKind::kEnqueue) {
      ValueTimeline& t = values[e.value];
      if (t.enq != nullptr) {
        return fail("value " + std::to_string(e.value) +
                    " enqueued twice; the checker requires distinct values");
      }
      t.enq = &e;
    } else if (e.kind == OpKind::kDequeue) {
      ValueTimeline& t = values[e.value];
      if (t.deq != nullptr) {
        return fail("value " + std::to_string(e.value) +
                    " dequeued twice: " + format_event(*t.deq) + " and " +
                    format_event(e));
      }
      t.deq = &e;
    }
  }
  for (const auto& [value, t] : values) {
    if (t.enq == nullptr) {
      return fail("value " + std::to_string(value) +
                  " dequeued but never enqueued: " + format_event(*t.deq));
    }
    if (t.deq != nullptr && t.deq->response_ns < t.enq->invoke_ns) {
      return fail("dequeue completed before its enqueue was invoked: " +
                  format_event(*t.enq) + " vs " + format_event(*t.deq));
    }
  }

  // --- FIFO real-time order ------------------------------------------------
  // Violation: enq(a) strictly precedes enq(b), yet deq(b) strictly precedes
  // deq(a) (never-dequeued a counts as deq at +infinity: if a is still in
  // the queue, no later-enqueued b may have been removed strictly after
  // everything a could linearize behind... i.e. removing b while a stays is
  // only legal when the enqueues overlap).
  //
  // Sweep b in increasing enq invoke; maintain over all a with
  // enq(a).response < enq(b).invoke (strictly-before set) the maximum of
  // deq(a).invoke.  b violates iff deq(b).response < that maximum.
  struct Item {
    std::int64_t enq_inv, enq_res, deq_inv, deq_res;
    std::uint64_t value;
  };
  std::vector<Item> items;
  items.reserve(values.size());
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  for (const auto& [value, t] : values) {
    items.push_back(Item{t.enq->invoke_ns, t.enq->response_ns,
                         t.deq != nullptr ? t.deq->invoke_ns : kInf,
                         t.deq != nullptr ? t.deq->response_ns : kInf, value});
  }
  std::vector<const Item*> by_enq_inv(items.size());
  std::vector<const Item*> by_enq_res(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    by_enq_inv[i] = by_enq_res[i] = &items[i];
  }
  std::sort(by_enq_inv.begin(), by_enq_inv.end(),
            [](const Item* x, const Item* y) { return x->enq_inv < y->enq_inv; });
  std::sort(by_enq_res.begin(), by_enq_res.end(),
            [](const Item* x, const Item* y) { return x->enq_res < y->enq_res; });

  std::size_t added = 0;
  std::int64_t max_deq_inv = std::numeric_limits<std::int64_t>::min();
  const Item* max_holder = nullptr;
  for (const Item* b : by_enq_inv) {
    while (added < by_enq_res.size() && by_enq_res[added]->enq_res < b->enq_inv) {
      if (by_enq_res[added]->deq_inv > max_deq_inv) {
        max_deq_inv = by_enq_res[added]->deq_inv;
        max_holder = by_enq_res[added];
      }
      ++added;
    }
    if (max_holder != nullptr && b->deq_res < max_deq_inv) {
      std::ostringstream os;
      os << "FIFO order violated: enq(" << max_holder->value
         << ") strictly precedes enq(" << b->value << ") but deq(" << b->value
         << ") [resp " << b->deq_res << "] strictly precedes deq("
         << max_holder->value << ") [inv ";
      if (max_holder->deq_inv == kInf) {
        os << "never dequeued";
      } else {
        os << max_holder->deq_inv;
      }
      os << "]";
      return fail(os.str());
    }
  }
  return CheckResult{};
}

}  // namespace msq::check
