// Figure 1 (the MS non-blocking queue) as a simulated step machine.  One
// co_await == one shared-memory access == one schedulable step; `co_await
// p.at("E9")` marks the labelled lines so tests can stall a process exactly
// there (freeze_at_label) and replay the paper's liveness argument.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/mo_table.hpp"
#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimMsQueue final : public SimQueue {
 public:
  // `mo` overrides the annotated memory orders (mutation sweeps); the
  // defaults mirror queues/ms_queue.hpp exactly -- see sim/mo_table.hpp
  // for the per-site rationale.
  SimMsQueue(Engine& engine, std::uint32_t capacity, double backoff_max = 1024,
             const MoTable* mo = nullptr)
      : engine_(engine),
        pool_(engine, capacity + 1, /*words_per_node=*/2, mo),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        backoff_max_(backoff_max) {
    mo_.e2 = mo_resolve(mo, "ms.E2.value_write");
    mo_.e3 = mo_resolve(mo, "ms.E3.next_init");
    mo_.e5 = mo_resolve(mo, "ms.E5.tail_load");
    mo_.e6 = mo_resolve(mo, "ms.E6.next_load");
    mo_.e7 = mo_resolve(mo, "ms.E7.tail_reload");
    mo_.e9 = mo_resolve(mo, "ms.E9.link_cas");
    mo_.e12 = mo_resolve(mo, "ms.E12.tail_help");
    mo_.e13 = mo_resolve(mo, "ms.E13.tail_swing");
    mo_.d2 = mo_resolve(mo, "ms.D2.head_load");
    mo_.d3 = mo_resolve(mo, "ms.D3.tail_load");
    mo_.d4 = mo_resolve(mo, "ms.D4.next_load");
    mo_.d5 = mo_resolve(mo, "ms.D5.head_reload");
    mo_.d9 = mo_resolve(mo, "ms.D9.tail_help");
    mo_.d11 = mo_resolve(mo, "ms.D11.value_read");
    mo_.d12 = mo_resolve(mo, "ms.D12.head_swing");
    // initialize(Q) -- performed before any process runs, so raw writes.
    SimMemory& mem = engine.memory();
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy)))
            .bits();  // pop the dummy off the free list
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(head_) = tagged::TaggedIndex(dummy, 0).bits();
    mem.word(tail_) = tagged::TaggedIndex(dummy, 0).bits();
  }

  [[nodiscard]] const char* name() const noexcept override { return "MS"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await pool_.allocate(p);  // E1
    if (node == tagged::kNullIndex) co_return false;
    co_await p.at("E2");
    co_await p.write(pool_.value_addr(node), value, mo_.e2);  // E2
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits(),
                     mo_.e3);  // E3

    SimBackoff backoff(backoff_max_);
    for (;;) {  // E4
      co_await p.at("E5");
      const auto tail =
          tagged::TaggedIndex::from_bits(co_await p.read(tail_, mo_.e5));
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(tail.index()), mo_.e6));  // E6
      // E7: are tail and next consistent?  (NOTE: every co_await is
      // hoisted into a named local throughout the simulator -- GCC 12
      // miscompiles co_await inside condition expressions.)
      const std::uint64_t tail_again = co_await p.read(tail_, mo_.e7);
      if (tail.bits() == tail_again) {
        if (next.is_null()) {  // E8
          co_await p.at("E9");
          const std::uint64_t linked = co_await p.cas(
              pool_.next_addr(tail.index()), next.bits(),
              next.successor(node).bits(), mo_.e9);
          if (linked == next.bits()) {
            co_await p.at("E13");
            co_await p.cas(tail_, tail.bits(), tail.successor(node).bits(),
                           mo_.e13);
            co_return true;  // E10
          }
          co_await p.work(backoff.next());
        } else {
          co_await p.at("E12");
          co_await p.cas(tail_, tail.bits(),
                         tail.successor(next.index()).bits(), mo_.e12);
        }
      }
    }
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    SimBackoff backoff(backoff_max_);
    for (;;) {  // D1
      co_await p.at("D2");
      const auto head =
          tagged::TaggedIndex::from_bits(co_await p.read(head_, mo_.d2));
      const auto tail =
          tagged::TaggedIndex::from_bits(co_await p.read(tail_, mo_.d3));  // D3
      co_await p.at("D4");
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(head.index()), mo_.d4));  // D4
      const std::uint64_t head_again = co_await p.read(head_, mo_.d5);  // D5
      if (head.bits() == head_again) {
        if (head.index() == tail.index()) {         // D6
          if (next.is_null()) co_return kEmpty;     // D7-D8
          co_await p.at("D9");
          co_await p.cas(tail_, tail.bits(),
                         tail.successor(next.index()).bits(), mo_.d9);
        } else {
          co_await p.at("D11");
          const std::uint64_t value = co_await p.read(
              pool_.value_addr(next.index()), mo_.d11);  // D11
          co_await p.at("D12");
          const std::uint64_t swung =
              co_await p.cas(head_, head.bits(),
                             head.successor(next.index()).bits(), mo_.d12);
          if (swung == head.bits()) {
            co_await p.at("D14");
            co_await pool_.free(p, head.index());  // D14
            co_return value;                       // D13, D15
          }
          co_await p.work(backoff.next());
        }
      }
    }
  }

  /// Paper section 3.1 safety properties, checked structurally:
  ///  1. the linked list is always connected (head reaches NULL within
  ///     capacity+1 hops -- no cycle, no dangling link);
  ///  4. Head points at the first node (trivially, by representation);
  ///  5. Tail points at a node IN the list.
  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = tagged::TaggedIndex::from_bits(mem.peek(head_));
    const auto tail = tagged::TaggedIndex::from_bits(mem.peek(tail_));
    bool tail_in_list = false;
    std::uint32_t hops = 0;
    for (auto it = head; !it.is_null();
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it.index())))) {
      if (it.index() == tail.index()) tail_in_list = true;
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("MS invariant: list not connected (cycle)");
      }
    }
    if (!tail_in_list) {
      throw std::runtime_error("MS invariant: Tail not in the linked list");
    }
  }

  [[nodiscard]] Addr head_addr() const noexcept { return head_; }
  [[nodiscard]] Addr tail_addr() const noexcept { return tail_; }
  [[nodiscard]] const SimNodePool& node_pool() const noexcept { return pool_; }

 private:
  struct Orders {
    check::MemOrder e2, e3, e5, e6, e7, e9, e12, e13;
    check::MemOrder d2, d3, d4, d5, d9, d11, d12;
  };

  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  double backoff_max_;
  Orders mo_{};
};

}  // namespace msq::sim
