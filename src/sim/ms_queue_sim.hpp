// Figure 1 (the MS non-blocking queue) as a simulated step machine.  One
// co_await == one shared-memory access == one schedulable step; `co_await
// p.at("E9")` marks the labelled lines so tests can stall a process exactly
// there (freeze_at_label) and replay the paper's liveness argument.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimMsQueue final : public SimQueue {
 public:
  SimMsQueue(Engine& engine, std::uint32_t capacity, double backoff_max = 1024)
      : engine_(engine),
        pool_(engine, capacity + 1, /*words_per_node=*/2),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        backoff_max_(backoff_max) {
    // initialize(Q) -- performed before any process runs, so raw writes.
    SimMemory& mem = engine.memory();
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy)))
            .bits();  // pop the dummy off the free list
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(head_) = tagged::TaggedIndex(dummy, 0).bits();
    mem.word(tail_) = tagged::TaggedIndex(dummy, 0).bits();
  }

  [[nodiscard]] const char* name() const noexcept override { return "MS"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await pool_.allocate(p);  // E1
    if (node == tagged::kNullIndex) co_return false;
    co_await p.write(pool_.value_addr(node), value);  // E2
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits());  // E3

    SimBackoff backoff(backoff_max_);
    for (;;) {  // E4
      co_await p.at("E5");
      const auto tail = tagged::TaggedIndex::from_bits(co_await p.read(tail_));
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(tail.index())));  // E6
      // E7: are tail and next consistent?  (NOTE: every co_await is
      // hoisted into a named local throughout the simulator -- GCC 12
      // miscompiles co_await inside condition expressions.)
      const std::uint64_t tail_again = co_await p.read(tail_);
      if (tail.bits() == tail_again) {
        if (next.is_null()) {  // E8
          co_await p.at("E9");
          const std::uint64_t linked = co_await p.cas(
              pool_.next_addr(tail.index()), next.bits(),
              next.successor(node).bits());
          if (linked == next.bits()) {
            co_await p.at("E13");
            co_await p.cas(tail_, tail.bits(), tail.successor(node).bits());
            co_return true;  // E10
          }
          co_await p.work(backoff.next());
        } else {
          co_await p.at("E12");
          co_await p.cas(tail_, tail.bits(), tail.successor(next.index()).bits());
        }
      }
    }
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    SimBackoff backoff(backoff_max_);
    for (;;) {  // D1
      co_await p.at("D2");
      const auto head = tagged::TaggedIndex::from_bits(co_await p.read(head_));
      const auto tail = tagged::TaggedIndex::from_bits(co_await p.read(tail_));  // D3
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(head.index())));  // D4
      const std::uint64_t head_again = co_await p.read(head_);  // D5
      if (head.bits() == head_again) {
        if (head.index() == tail.index()) {         // D6
          if (next.is_null()) co_return kEmpty;     // D7-D8
          co_await p.at("D9");
          co_await p.cas(tail_, tail.bits(), tail.successor(next.index()).bits());
        } else {
          const std::uint64_t value =
              co_await p.read(pool_.value_addr(next.index()));  // D11
          co_await p.at("D12");
          const std::uint64_t swung = co_await p.cas(
              head_, head.bits(), head.successor(next.index()).bits());
          if (swung == head.bits()) {
            co_await pool_.free(p, head.index());  // D14
            co_return value;                       // D13, D15
          }
          co_await p.work(backoff.next());
        }
      }
    }
  }

  /// Paper section 3.1 safety properties, checked structurally:
  ///  1. the linked list is always connected (head reaches NULL within
  ///     capacity+1 hops -- no cycle, no dangling link);
  ///  4. Head points at the first node (trivially, by representation);
  ///  5. Tail points at a node IN the list.
  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = tagged::TaggedIndex::from_bits(mem.peek(head_));
    const auto tail = tagged::TaggedIndex::from_bits(mem.peek(tail_));
    bool tail_in_list = false;
    std::uint32_t hops = 0;
    for (auto it = head; !it.is_null();
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it.index())))) {
      if (it.index() == tail.index()) tail_in_list = true;
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("MS invariant: list not connected (cycle)");
      }
    }
    if (!tail_in_list) {
      throw std::runtime_error("MS invariant: Tail not in the linked list");
    }
  }

  [[nodiscard]] Addr head_addr() const noexcept { return head_; }
  [[nodiscard]] Addr tail_addr() const noexcept { return tail_; }
  [[nodiscard]] const SimNodePool& node_pool() const noexcept { return pool_; }

 private:
  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  double backoff_max_;
};

}  // namespace msq::sim
