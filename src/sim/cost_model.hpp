// Coherence cost model for the simulated multiprocessor.
//
// What Figure 3 measures on the SGI Challenge is not MIPS instruction
// timing but the interaction of (a) serialisation on the queue's shared
// cache lines and (b) overlap of per-process "other work".  The model
// captures exactly that: every simulated word is a cache line tracked with
// a sharers bitmask per *processor* (processes co-scheduled on a processor
// share its cache):
//
//   read:  hit (line already cached here)  -> cheap local cost
//          miss                            -> coherence-transfer cost
//   write/RMW: exclusive (sole sharer)     -> cheap owned cost
//          otherwise                       -> invalidation + transfer cost,
//                                             all other copies dropped
//
// Units are abstract "cost units"; with the defaults below one unit is
// roughly 10ns of 1995-era SGI time (hit 1 ~ cache hit, miss 50 ~ 500ns
// remote fill), so the paper's 6us other-work is ~600 units and the 10ms
// scheduling quantum is ~10^6 units.  The *shape* of the reproduced curves
// is insensitive to the exact numbers (tested by the cost-model sweep
// test); the ordering of algorithms comes from their access patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/memory.hpp"

namespace msq::sim {

struct CostParams {
  double read_hit = 1;
  double read_miss = 50;
  double write_owned = 2;
  double write_miss = 55;
  double rmw_owned = 4;    // atomic RMW on an exclusively held line
  double rmw_miss = 60;    // atomic RMW that must steal the line
  // Queueing surcharge per OTHER processor whose cached copy a write/RMW
  // must invalidate.  This is the paper's own observation made concrete:
  // "high rates of contention increase the average cost of a cache miss" --
  // stealing a line that p processors are spinning on serialises at the
  // directory/bus and costs ~p times the quiet-line transfer.  Algorithms
  // that focus updates on one global line (a test_and_set lock, a swapped
  // Tail pointer) pay this in full; the MS queue's linearising CAS lands on
  // a fresh node's line each operation and pays much less.
  double contention_per_sharer = 10;
  double work_unit = 1;    // multiplier for work() costs
  double context_switch = 2000;  // ~20us reschedule path
};

class CostModel {
 public:
  static constexpr std::uint32_t kMaxProcessors = 64;

  explicit CostModel(CostParams params = {}) : params_(params) {}

  [[nodiscard]] const CostParams& params() const noexcept { return params_; }

  /// Charge a read of `addr` by `processor`; updates line state.
  double on_read(std::uint32_t processor, Addr addr);

  /// Charge a write or atomic RMW; `rmw` selects the RMW tariff.  Failed
  /// CAS still pays the RMW cost (the line must still be acquired).
  double on_write(std::uint32_t processor, Addr addr, bool rmw);

  /// Work between queue operations (no coherence effect).
  [[nodiscard]] double on_work(double units) const noexcept {
    return units * params_.work_unit;
  }

 private:
  [[nodiscard]] std::uint64_t& sharers(Addr addr) {
    if (addr >= lines_.size()) lines_.resize(addr + 1, 0);
    return lines_[addr];
  }

  CostParams params_;
  std::vector<std::uint64_t> lines_;  // sharers bitmask per word
};

}  // namespace msq::sim
