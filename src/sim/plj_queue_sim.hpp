// Prakash-Lee-Johnson snapshot queue as a simulated step machine (same
// reconstruction notes as queues/plj_queue.hpp): every operation first
// takes a validated snapshot of Head, Tail AND Tail->next -- two shared
// variables re-checked, vs. the MS queue's one -- then CASes, helping
// lagging tails.  The extra snapshot traffic is the measurable difference
// from SimMsQueue, exactly as in the paper's Figure 3.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimPljQueue final : public SimQueue {
 public:
  SimPljQueue(Engine& engine, std::uint32_t capacity, double backoff_max = 1024)
      : engine_(engine),
        pool_(engine, capacity + 1, 2),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        backoff_max_(backoff_max) {
    SimMemory& mem = engine.memory();
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy))).bits();
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(head_) = tagged::TaggedIndex(dummy, 0).bits();
    mem.word(tail_) = tagged::TaggedIndex(dummy, 0).bits();
  }

  [[nodiscard]] const char* name() const noexcept override { return "PLJ"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await pool_.allocate(p);
    if (node == tagged::kNullIndex) co_return false;
    co_await p.write(pool_.value_addr(node), value);
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits());

    SimBackoff backoff(backoff_max_);
    for (;;) {
      tagged::TaggedIndex head, tail, tail_next;
      co_await snapshot(p, head, tail, tail_next);
      if (!tail_next.is_null()) {
        // Complete the slower enqueuer's Tail swing (helping).
        co_await p.cas(tail_, tail.bits(),
                       tail.successor(tail_next.index()).bits());
        continue;
      }
      co_await p.at("PLJ_LINK");
      const std::uint64_t linked = co_await p.cas(
          pool_.next_addr(tail.index()), tail_next.bits(),
          tail_next.successor(node).bits());
      if (linked == tail_next.bits()) {
        co_await p.cas(tail_, tail.bits(), tail.successor(node).bits());
        co_return true;
      }
      co_await p.work(backoff.next());
    }
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    SimBackoff backoff(backoff_max_);
    for (;;) {
      tagged::TaggedIndex head, tail, tail_next;
      co_await snapshot(p, head, tail, tail_next);
      const auto first = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(head.index())));
      const std::uint64_t head_again = co_await p.read(head_);
      if (head.bits() != head_again) continue;  // stale
      if (head.index() == tail.index()) {
        if (first.is_null()) co_return kEmpty;
        co_await p.cas(tail_, tail.bits(), tail.successor(first.index()).bits());
        continue;
      }
      if (first.is_null()) continue;
      const std::uint64_t value = co_await p.read(pool_.value_addr(first.index()));
      co_await p.at("PLJ_SWING");
      const std::uint64_t swung = co_await p.cas(
          head_, head.bits(), head.successor(first.index()).bits());
      if (swung == head.bits()) {
        co_await pool_.free(p, head.index());
        co_return value;
      }
      co_await p.work(backoff.next());
    }
  }

  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = tagged::TaggedIndex::from_bits(mem.peek(head_));
    const auto tail = tagged::TaggedIndex::from_bits(mem.peek(tail_));
    bool tail_in_list = false;
    std::uint32_t hops = 0;
    for (auto it = head; !it.is_null();
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it.index())))) {
      if (it.index() == tail.index()) tail_in_list = true;
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("PLJ invariant: list not connected");
      }
    }
    if (!tail_in_list) {
      throw std::runtime_error("PLJ invariant: Tail not in list");
    }
  }

 private:
  /// The PLJ snapshot: read Head, Tail, Tail->next and re-validate BOTH
  /// shared pointers until consistent.
  Task<void> snapshot(Proc& p, tagged::TaggedIndex& head,
                      tagged::TaggedIndex& tail,
                      tagged::TaggedIndex& tail_next) {
    for (;;) {
      head = tagged::TaggedIndex::from_bits(co_await p.read(head_));
      tail = tagged::TaggedIndex::from_bits(co_await p.read(tail_));
      tail_next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(tail.index())));
      const std::uint64_t head_again = co_await p.read(head_);
      const std::uint64_t tail_again = co_await p.read(tail_);
      if (head.bits() == head_again && tail.bits() == tail_again) {
        co_return;
      }
    }
  }

  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  double backoff_max_;
};

}  // namespace msq::sim
