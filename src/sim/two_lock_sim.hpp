// Figure 2 (the two-lock queue) as a simulated step machine.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "sim/sim_lock.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimTwoLockQueue final : public SimQueue {
 public:
  SimTwoLockQueue(Engine& engine, std::uint32_t capacity,
                  double backoff_max = 1024)
      : engine_(engine),
        pool_(engine, capacity + 1, 2),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        head_lock_(engine, backoff_max),
        tail_lock_(engine, backoff_max) {
    SimMemory& mem = engine.memory();
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy))).bits();
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(head_) = dummy;
    mem.word(tail_) = dummy;
  }

  [[nodiscard]] const char* name() const noexcept override { return "two-lock"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await pool_.allocate(p);
    if (node == tagged::kNullIndex) co_return false;
    co_await p.write(pool_.value_addr(node), value);
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits());

    co_await tail_lock_.lock(p);  // lock(&Q->T_lock)
    co_await p.at("T_HELD");
    const std::uint64_t tail = co_await p.read(tail_);
    co_await p.write(pool_.next_addr(static_cast<std::uint32_t>(tail)),
                     tagged::TaggedIndex(node, 0).bits());  // Q->Tail->next = node
    co_await p.write(tail_, node);                          // Q->Tail = node
    co_await tail_lock_.unlock(p);                          // unlock
    co_return true;
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    co_await head_lock_.lock(p);  // lock(&Q->H_lock)
    co_await p.at("H_HELD");
    const auto dummy =
        static_cast<std::uint32_t>(co_await p.read(head_));  // node = Q->Head
    const auto new_head = tagged::TaggedIndex::from_bits(
        co_await p.read(pool_.next_addr(dummy)));  // new_head = node->next
    if (new_head.is_null()) {                      // queue empty?
      co_await head_lock_.unlock(p);
      co_return kEmpty;
    }
    const std::uint64_t value =
        co_await p.read(pool_.value_addr(new_head.index()));  // *pvalue = ...
    co_await p.write(head_, new_head.index());  // Q->Head = new_head
    co_await head_lock_.unlock(p);
    co_await pool_.free(p, dummy);  // free(node)
    co_return value;
  }

  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = static_cast<std::uint32_t>(mem.peek(head_));
    const auto tail = static_cast<std::uint32_t>(mem.peek(tail_));
    bool tail_in_list = false;
    std::uint32_t hops = 0;
    for (std::uint32_t it = head; it != tagged::kNullIndex;
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it))).index()) {
      if (it == tail) tail_in_list = true;
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("two-lock invariant: list not connected");
      }
    }
    // Transient exception: inside the enqueue critical section, between
    // linking and swinging Tail, Tail is one behind -- but because those two
    // writes happen under T_lock and the walk runs between steps, Tail may
    // legitimately be the second-to-last node; it must still be in the list.
    if (!tail_in_list) {
      throw std::runtime_error("two-lock invariant: Tail not in list");
    }
  }

 private:
  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  SimTatasLock head_lock_;
  SimTatasLock tail_lock_;
};

}  // namespace msq::sim
