// The memory-order site table: the single source of truth for which
// MemOrder every annotated sim-model access uses, what its real C++
// counterpart is, and -- the part that makes the orders PROVABLE -- which
// capability of the order is load-bearing.
//
// Each site names one access in a sim model (sim/ms_queue_sim.hpp,
// sim/valois_queue_sim.hpp, sim/sim_freelist.hpp, sim/sim_lock.hpp, or the
// litmus worlds in tools/mo_mutation_sweep.cpp).  The mutation sweep
// weakens each site one notch at a time and asserts the explorer's verdict
// matches the site's needs_* flags:
//
//   needs_acquire  losing acquire semantics must be caught
//   needs_release  losing release semantics must be caught
//   needs_atomic   demoting the access to a plain (non-atomic) one must be
//                  caught
//   needs_sc       weakening seq_cst must be caught (store-buffer mode)
//
// A flag left false is a MEASURED fact with a rationale in `note`: either
// the capability genuinely protects nothing in this algorithm, or another
// annotation masks it (belt-and-braces) -- the sweep proves the mutation
// stays silent, so the note is machine-checked, not vibes.  See
// docs/ALGORITHMS.md "Memory orders" and tools/mo_mutation_sweep.cpp.
//
// tools/atomics_lint.py parses this table (the MSQ_MO_SITE rows) to
// validate `proof: mo-sweep:<site>` references in the real sources, so
// site names are part of the repo's lint contract: rename with care.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "check/race.hpp"

namespace msq::sim {

enum class MoKind : std::uint8_t { kLoad, kStore, kRmw };

struct MoSite {
  const char* name;
  MoKind kind;
  check::MemOrder annotated;
  bool needs_acquire = false;
  bool needs_release = false;
  bool needs_atomic = false;
  bool needs_sc = false;
  const char* note = "";
};

// clang-format off
#define MSQ_MO_SITE(...) ::msq::sim::MoSite{__VA_ARGS__}
inline constexpr MoSite kMoSites[] = {
    // --- MS queue (sim/ms_queue_sim.hpp; real: queues/ms_queue.hpp) -----
    MSQ_MO_SITE("ms.E2.value_write", MoKind::kStore, check::MemOrder::kRelaxed,
                false, false, true, false,
                "mem/value_cell.hpp put(): atomicity defends the D11 "
                "read-before-validate of a concurrently recycled node; "
                "ordering rides E9/D4"),
    MSQ_MO_SITE("ms.E3.next_init", MoKind::kStore, check::MemOrder::kRelease,
                false, false, true, false,
                "counted null keeps the tag monotone across recycles; "
                "release is masked by E9's (the only nulls readers chase "
                "are pre-publication)"),
    MSQ_MO_SITE("ms.E5.tail_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "tail is a performance hint guarded by counted tags; every "
                "value publication flows through E9 -- matches GenMC's "
                "relaxed-tail ms-queue"),
    MSQ_MO_SITE("ms.E6.next_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "E7 revalidation + tags make a stale read harmless; "
                "atomicity still required (concurrent E9/E3 writers)"),
    MSQ_MO_SITE("ms.E7.tail_reload", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "consistency re-check only; compared, never dereferenced"),
    MSQ_MO_SITE("ms.E9.link_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the publication edge -- yet individually masked: the free "
                "list's acq_rel CASes republish every enqueue (allocate "
                "releases the payload into free_top, D14's pop re-acquires "
                "it before D13 returns), so the sweep proves no single "
                "weakening here is observable.  Pool-decoupled deployments "
                "(magazine caches) would restore its load-bearing role"),
    MSQ_MO_SITE("ms.E13.tail_swing", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "masked by E9: the swing republishes what the link CAS "
                "already released.  The sweep proves the relaxation safe; "
                "the real port keeps acq_rel for non-TSO targets"),
    MSQ_MO_SITE("ms.E12.tail_help", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "helping CAS; same masking as E13"),
    MSQ_MO_SITE("ms.D2.head_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "D5 revalidation + D12's acq_rel carry the ordering; "
                "atomicity required (concurrent D12 writers)"),
    MSQ_MO_SITE("ms.D3.tail_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "compared at D6, never dereferenced"),
    MSQ_MO_SITE("ms.D4.next_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "the consume edge, masked like ms.E9 (D14's free-list pop "
                "re-acquires the payload before the value is returned); "
                "atomicity IS load-bearing: a plain D4 races with the "
                "concurrent E9 link CAS"),
    MSQ_MO_SITE("ms.D5.head_reload", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "consistency re-check only"),
    MSQ_MO_SITE("ms.D9.tail_help", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "helping CAS; see ms.E13.tail_swing"),
    MSQ_MO_SITE("ms.D11.value_read", MoKind::kLoad, check::MemOrder::kRelaxed,
                false, false, true, false,
                "mem/value_cell.hpp get(): may read a node recycled after "
                "D4 (discarded when D12 fails) -- the exact race plain "
                "data cannot survive"),
    MSQ_MO_SITE("ms.D12.head_swing", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the dummy hand-off to the free list is published by D14's "
                "push CAS, and head readers revalidate at D5, so the sweep "
                "proves no single weakening here observable"),

    // --- Treiber free list (sim/sim_freelist.hpp; real: mem/freelist.hpp)
    MSQ_MO_SITE("fl.pop_top", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "acquire is belt-and-braces: pop_cas's acquire side covers "
                "the ownership hand-off when this load is relaxed"),
    MSQ_MO_SITE("fl.pop_next", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "read of a node another thread may concurrently pop-and-"
                "push (the Treiber ABA window): atomicity load-bearing, "
                "ordering masked by push_link's release"),
    MSQ_MO_SITE("fl.pop_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the ownership hand-off needs an acquire on the pop path, "
                "but pop_top's acquire and pop_cas's are mutually "
                "redundant -- the sweep proves either alone suffices"),
    MSQ_MO_SITE("fl.push_link", MoKind::kStore, check::MemOrder::kRelease,
                false, false, true, false,
                "monotone-tag link write; stale traversals read it "
                "concurrently (atomicity), ordering masked by push_cas"),
    MSQ_MO_SITE("fl.push_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "release publishes the freed node's final state, but "
                "push_link's release already does too (the popper reads "
                "the node's next word with acquire): mutually masked pair"),

    // --- TATAS lock (sim/sim_lock.hpp; real: sync/tatas_lock.hpp) -------
    MSQ_MO_SITE("lock.spin_load", MoKind::kLoad, check::MemOrder::kRelaxed,
                false, false, true, false,
                "test-and-test-and-set spin: value is advisory, the CAS "
                "decides; plain demotion races with the unlock store"),
    MSQ_MO_SITE("lock.acquire_cas", MoKind::kRmw, check::MemOrder::kAcquire,
                true, false, false, false,
                "the lock acquire: joins the previous holder's unlock "
                "release; without it the critical section's plain data is "
                "unordered"),
    MSQ_MO_SITE("lock.unlock_store", MoKind::kStore, check::MemOrder::kRelease,
                false, true, true, false,
                "the lock release: publishes the critical section.  Its "
                "loss is invisible to SC value checks (mutual exclusion "
                "still holds) -- caught only by the order-aware explorer"),

    // --- Valois queue (sim/valois_queue_sim.hpp; real: "
    //     queues/valois_queue.hpp + mem/refcount_pool.hpp) ---------------
    MSQ_MO_SITE("valois.init_value", MoKind::kStore, check::MemOrder::kRelaxed,
                false, false, false, false,
                "pre-publication write: ordering rides link_cas, and the "
                "refcount pins prevent the recycled-node stale reads that "
                "make atomicity load-bearing in the tag-based models"),
    MSQ_MO_SITE("valois.init_next", MoKind::kStore, check::MemOrder::kRelease,
                false, false, false, false,
                "counted null init; masked like ms.E3, and pin-protected "
                "like valois.init_value"),
    MSQ_MO_SITE("valois.ptr_read", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "SafeRead's load of a shared pointer cell.  Its acquire is "
                "masked by the protocol's own acq_rel refcount FAAs (every "
                "reader bumps a count the writer also bumped after its "
                "payload write); atomicity is load-bearing: a plain read "
                "races with the concurrent link CAS"),
    MSQ_MO_SITE("valois.ptr_reread", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "SafeRead revalidation; compared, not dereferenced"),
    MSQ_MO_SITE("valois.refct_faa", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "CopyRef/SafeRead count bump; individually redundant with "
                "the pointer-cell acquires and the Release CAS (the sweep "
                "proves each single weakening silent), jointly the mesh "
                "that masks the queue-level edges"),
    MSQ_MO_SITE("valois.refct_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "DecrementAndTestAndSet: the reclaim hand-off it guards is "
                "republished by the pool's push/pop CASes, so no single "
                "weakening is observable"),
    MSQ_MO_SITE("valois.link_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the publication CAS (enqueue link / head+tail swings); "
                "its release is masked by the acq_rel refcount mesh -- see "
                "valois.ptr_read"),
    MSQ_MO_SITE("valois.value_read", MoKind::kLoad, check::MemOrder::kRelaxed,
                false, false, false, false,
                "read under refcount pin: unlike ms.D11 the pin prevents "
                "recycling, so even the plain demotion stays ordered "
                "through the refcount mesh"),
    MSQ_MO_SITE("valois.reclaim_next", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, false, false,
                "sole-owner read of a dead node's link during the "
                "reclamation cascade; ordered through refct_cas + the "
                "pool mesh"),

    // --- SCQ index ring (sim/scq_ring_sim.hpp; real: queues/scq_queue.hpp)
    MSQ_MO_SITE("scq.enq_faa_tail", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "ticket allocation; publication rides the entry CAS, and "
                "the tail word is only consumed by the empty-verdict path "
                "whose own load re-acquires it"),
    MSQ_MO_SITE("scq.enq_entry_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "pre-CAS read of an entry with concurrent CAS/fetch_or "
                "writers: atomicity load-bearing, ordering masked by "
                "enq_cas (failure re-reads through the CAS itself)"),
    MSQ_MO_SITE("scq.enq_head_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "the unsafe-entry deposit guard (head <= ticket): value "
                "advisory, never dereferenced, but a sibling consumer's "
                "head FAA races a plain read (world s reaches the guard; "
                "the 1p1c world never does)"),
    MSQ_MO_SITE("scq.enq_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, true, false, false,
                "THE publication edge: releases the producer's plain "
                "payload write to the consumer whose entry load/fetch_or "
                "acquires it -- nothing masks it, unlike ms.E9 (there is "
                "no pool mesh here; bounded rings reuse entries in place)"),
    MSQ_MO_SITE("scq.threshold_check", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "the threshold reads (dequeue fast path + enqueue "
                "reset-skip); liveness-only value, but demoting to plain "
                "races with concurrent threshold fetch_subs"),
    MSQ_MO_SITE("scq.threshold_store", MoKind::kStore, check::MemOrder::kRelease,
                false, false, true, false,
                "threshold re-arm; liveness-only value (a stale read just "
                "costs an extra empty verdict), plain demotion races with "
                "the dequeuers' fetch_subs"),
    MSQ_MO_SITE("scq.threshold_faa", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the livelock-freedom budget decrement: pure liveness, no "
                "payload flows through it -- the bound is proven over "
                "schedules in tests/sim_scq_test.cpp, not by ordering"),
    MSQ_MO_SITE("scq.deq_faa_head", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "ticket allocation; see scq.enq_faa_tail"),
    MSQ_MO_SITE("scq.deq_entry_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "entry probe with concurrent CAS writers: atomicity "
                "load-bearing; its acquire is mutually masked with the "
                "consume fetch_or's (the payload index is taken from the "
                "fetch_or RESULT, so either acquire alone suffices)"),
    MSQ_MO_SITE("scq.deq_consume_or", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "the consume (index |= bottom): its acquire is mutually "
                "masked with deq_entry_load's -- fl.pop_top/pop_cas all "
                "over again; release protects nothing (the entry it blanks "
                "is republished by the next enq_cas)"),
    MSQ_MO_SITE("scq.deq_mark_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "cycle-advance / unsafe-mark CAS: control-flow only, no "
                "payload is published or consumed through it"),
    MSQ_MO_SITE("scq.deq_tail_load", MoKind::kLoad, check::MemOrder::kAcquire,
                false, false, true, false,
                "the empty-verdict read (tail <= head+1): value advisory "
                "-- a stale read only delays the verdict -- but plain "
                "demotion races with every enqueuer's FAA"),
    MSQ_MO_SITE("scq.catchup_cas", MoKind::kRmw, check::MemOrder::kAcqRel,
                false, false, false, false,
                "tail catch-up: liveness-only (keeps deposits ahead of the "
                "scanned region); losers re-read both counters"),

    // --- litmus worlds (tools/mo_mutation_sweep.cpp, "
    //     tests/sim_weak_memory_test.cpp) --------------------------------
    MSQ_MO_SITE("sb.store_flag", MoKind::kStore, check::MemOrder::kSeqCst,
                false, false, true, true,
                "store-buffer litmus (Dekker's handshake): anything below "
                "seq_cst lets TSO defer the store past the peer's load -- "
                "the mutation only weak-memory execution can catch"),
    MSQ_MO_SITE("sb.load_peer", MoKind::kLoad, check::MemOrder::kSeqCst,
                false, false, true, false,
                "TSO loads are acquire-strong, so weakening the load side "
                "is invisible here (x86); kept seq_cst to match the "
                "C++ idiom -- see docs for the honest scope note"),
    MSQ_MO_SITE("mp.flag_store", MoKind::kStore, check::MemOrder::kRelease,
                false, true, true, false,
                "message-passing flag: release publishes the plain data "
                "write.  TSO's FIFO buffer masks it in execution, so this "
                "is caught by the hb layer alone"),
    MSQ_MO_SITE("mp.flag_load", MoKind::kLoad, check::MemOrder::kAcquire,
                true, false, true, false,
                "message-passing consume side"),
};
#undef MSQ_MO_SITE
// clang-format on

[[nodiscard]] inline const MoSite* mo_find(const char* name) noexcept {
  for (const MoSite& s : kMoSites) {
    if (std::strcmp(s.name, name) == 0) return &s;
  }
  return nullptr;
}

/// Order overrides for mutation runs.  Models resolve each site ONCE at
/// construction (resolve() is a linear scan), so a table must be mutated
/// before the model is built -- which is how the sweep works: fresh world
/// per schedule, table fixed for the world's lifetime.
class MoTable {
 public:
  /// The annotated order, unless overridden.  Unknown sites assert: a typo
  /// here would silently un-annotate a model.
  [[nodiscard]] check::MemOrder resolve(const char* site) const noexcept {
    const MoSite* s = mo_find(site);
    assert(s != nullptr && "unknown memory-order site");
    if (s == nullptr) return check::MemOrder::kSeqCst;
    for (const auto& [name, order] : overrides_) {
      if (std::strcmp(name, site) == 0) return order;
    }
    return s->annotated;
  }

  /// Override one site (the sweep's single-mutation entry point).
  void set(const char* site, check::MemOrder order) {
    assert(mo_find(site) != nullptr && "unknown memory-order site");
    overrides_.emplace_back(site, order);
  }

  [[nodiscard]] bool empty() const noexcept { return overrides_.empty(); }

 private:
  std::vector<std::pair<const char*, check::MemOrder>> overrides_;
};

/// Resolve helper for model constructors: annotated order when no table is
/// supplied (the common case outside the sweep).
[[nodiscard]] inline check::MemOrder mo_resolve(const MoTable* table,
                                                const char* site) noexcept {
  if (table != nullptr) return table->resolve(site);
  const MoSite* s = mo_find(site);
  assert(s != nullptr && "unknown memory-order site");
  return s != nullptr ? s->annotated : check::MemOrder::kSeqCst;
}

/// Every strictly weaker order a site can be mutated to, respecting the
/// access kind (an RMW cannot be plain; a load cannot "lose release").
[[nodiscard]] inline std::vector<check::MemOrder> mo_weakenings(
    const MoSite& s) {
  using check::MemOrder;
  std::vector<MemOrder> out;
  switch (s.annotated) {
    case MemOrder::kSeqCst:
      if (s.kind == MoKind::kRmw) {
        out = {MemOrder::kAcqRel, MemOrder::kAcquire, MemOrder::kRelease,
               MemOrder::kRelaxed};
      } else if (s.kind == MoKind::kStore) {
        out = {MemOrder::kRelease, MemOrder::kRelaxed, MemOrder::kPlain};
      } else {
        out = {MemOrder::kAcquire, MemOrder::kRelaxed, MemOrder::kPlain};
      }
      break;
    case MemOrder::kAcqRel:
      out = {MemOrder::kAcquire, MemOrder::kRelease, MemOrder::kRelaxed};
      break;
    case MemOrder::kAcquire:
      out = (s.kind == MoKind::kRmw)
                ? std::vector<MemOrder>{MemOrder::kRelaxed}
                : std::vector<MemOrder>{MemOrder::kRelaxed, MemOrder::kPlain};
      break;
    case MemOrder::kRelease:
      out = (s.kind == MoKind::kRmw)
                ? std::vector<MemOrder>{MemOrder::kRelaxed}
                : std::vector<MemOrder>{MemOrder::kRelaxed, MemOrder::kPlain};
      break;
    case MemOrder::kRelaxed:
      if (s.kind != MoKind::kRmw) out = {MemOrder::kPlain};
      break;
    case MemOrder::kPlain:
      break;
  }
  return out;
}

/// Must weakening site `s` to `m` be caught, per the site's needs flags?
[[nodiscard]] inline bool mo_must_catch(const MoSite& s,
                                        check::MemOrder m) noexcept {
  using check::MemOrder;
  const bool lost_sc = s.annotated == MemOrder::kSeqCst && m != MemOrder::kSeqCst;
  const bool lost_acq =
      check::order_acquires(s.annotated) && !check::order_acquires(m);
  const bool lost_rel =
      check::order_releases(s.annotated) && !check::order_releases(m);
  const bool lost_atomic =
      s.annotated != MemOrder::kPlain && m == MemOrder::kPlain;
  return (lost_sc && s.needs_sc) || (lost_acq && s.needs_acquire) ||
         (lost_rel && s.needs_release) || (lost_atomic && s.needs_atomic);
}

}  // namespace msq::sim
