#include "sim/workload.hpp"

#include <atomic>

#include "check/invariants.hpp"
#include "sim/mc_queue_sim.hpp"
#include "sim/ms_queue_sim.hpp"
#include "sim/plj_queue_sim.hpp"
#include "sim/single_lock_sim.hpp"
#include "sim/two_lock_sim.hpp"
#include "sim/valois_queue_sim.hpp"

namespace msq::sim {

const char* algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kSingleLock:
      return "single-lock";
    case Algo::kMc:
      return "MC";
    case Algo::kValois:
      return "Valois";
    case Algo::kTwoLock:
      return "two-lock";
    case Algo::kPlj:
      return "PLJ";
    case Algo::kMs:
      return "MS";
  }
  return "?";
}

std::unique_ptr<SimQueue> make_sim_queue(Algo algo, Engine& engine,
                                         std::uint32_t capacity,
                                         double backoff_max, const MoTable* mo) {
  switch (algo) {
    case Algo::kSingleLock:
      return std::make_unique<SimSingleLockQueue>(engine, capacity, backoff_max);
    case Algo::kMc:
      return std::make_unique<SimMcQueue>(engine, capacity, backoff_max);
    case Algo::kValois:
      return std::make_unique<SimValoisQueue>(engine, capacity, backoff_max, mo);
    case Algo::kTwoLock:
      return std::make_unique<SimTwoLockQueue>(engine, capacity, backoff_max);
    case Algo::kPlj:
      return std::make_unique<SimPljQueue>(engine, capacity, backoff_max);
    case Algo::kMs:
      return std::make_unique<SimMsQueue>(engine, capacity, backoff_max, mo);
  }
  return nullptr;
}

namespace {

struct Counters {
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
};

/// One virtual process's share of the paper's loop: "enqueue an item, do
/// other work, dequeue an item, do other work, repeat".
Task<void> paper_loop(Proc& p, SimQueue& queue, std::uint64_t pairs,
                      double other_work, std::uint32_t producer_id,
                      Counters& counters) {
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t value = check::encode_value(producer_id, i);
    for (;;) {
      const bool ok = co_await queue.enqueue(p, value);
      if (ok) break;
      ++counters.enqueue_failures;  // pool exhausted: yield a little
      co_await p.work(64);
    }
    co_await p.work(other_work);
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got == kEmpty) ++counters.empty_dequeues;
    co_await p.work(other_work);
  }
}

}  // namespace

SimRunResult run_sim_workload(const SimRunConfig& config) {
  EngineConfig ec;
  ec.processors = config.processors;
  ec.quantum = config.quantum;
  ec.seed = config.seed;
  ec.jitter = config.jitter;
  ec.cost = config.cost;
  Engine engine(ec);

  const std::uint32_t processes =
      config.processors * config.procs_per_processor;
  const std::uint32_t capacity =
      config.capacity != 0 ? config.capacity : processes * 4 + 64;
  auto queue =
      make_sim_queue(config.algo, engine, capacity, config.backoff_max);

  Counters counters;
  for (std::uint32_t i = 0; i < processes; ++i) {
    // "each process executes this loop floor(N/p) or ceil(N/p) times"
    const std::uint64_t pairs = config.total_pairs / processes +
                                (i < config.total_pairs % processes ? 1 : 0);
    engine.spawn(i % config.processors, [&, i, pairs](Proc& p) {
      return paper_loop(p, *queue, pairs, config.other_work, i, counters);
    });
  }

  SimRunResult result;
  result.elapsed = engine.run_cost_model();
  result.steps = engine.total_steps();
  result.empty_dequeues = counters.empty_dequeues;
  result.enqueue_failures = counters.enqueue_failures;

  // Paper: "we subtracted the time required for one processor to complete
  // the 'other work' from the total time".  One processor executes
  // total_pairs/processors pairs, each with two other-work episodes.
  const double pairs_per_processor = static_cast<double>(config.total_pairs) /
                                     static_cast<double>(config.processors);
  result.net = result.elapsed -
               pairs_per_processor * 2 * config.other_work *
                   config.cost.work_unit;
  return result;
}

}  // namespace msq::sim
