// Simulated shared memory: a flat array of 64-bit words addressed by dense
// 32-bit addresses.
//
// All mutation flows through the engine (one step = one access), so plain
// (non-atomic) storage is correct: the simulation is sequentially
// consistent by construction, which matches the model the paper's
// pseudo-code assumes.  Tests and invariant checkers may peek() freely
// between steps.
#pragma once

#include <cstdint>
#include <vector>

namespace msq::sim {

using Addr = std::uint32_t;

class SimMemory {
 public:
  /// Allocate `words` consecutive words (never freed; the simulator's
  /// structures recycle nodes through their own simulated free lists, like
  /// the real algorithms).
  [[nodiscard]] Addr alloc(std::uint32_t words);

  [[nodiscard]] std::uint64_t& word(Addr a) { return words_.at(a); }
  [[nodiscard]] std::uint64_t peek(Addr a) const { return words_.at(a); }

  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace msq::sim
