// Sim-side reproduction of the paper's benchmark loop (section 4) and the
// figure configurations, shared by the figure benches and the sim tests.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.hpp"
#include "sim/mo_table.hpp"
#include "sim/queue_iface.hpp"

namespace msq::sim {

/// The six algorithms of the paper's evaluation, in the legend order of
/// Figure 3.
enum class Algo {
  kSingleLock,
  kMc,
  kValois,
  kTwoLock,
  kPlj,
  kMs,
};

inline constexpr Algo kAllAlgos[] = {Algo::kSingleLock, Algo::kMc,
                                     Algo::kValois,     Algo::kTwoLock,
                                     Algo::kPlj,        Algo::kMs};

[[nodiscard]] const char* algo_name(Algo algo) noexcept;

/// Instantiate a simulated queue inside `engine`'s memory.  `backoff_max`
/// bounds the exponential backoff window (0 disables backoff; ablation A2).
/// `mo` overrides the annotated memory orders for the models that declare
/// them (MS, Valois, and the lock/pool substrate) -- mutation sweeps only.
[[nodiscard]] std::unique_ptr<SimQueue> make_sim_queue(
    Algo algo, Engine& engine, std::uint32_t capacity,
    double backoff_max = 1024, const MoTable* mo = nullptr);

struct SimRunConfig {
  Algo algo = Algo::kMs;
  std::uint32_t processors = 1;
  std::uint32_t procs_per_processor = 1;  // 1 = dedicated; 2/3 = Figs 4/5
  std::uint64_t total_pairs = 100'000;
  double other_work = 600;  // cost units; ~6us at ~10ns/unit (paper)
  double quantum = 1e6;     // ~10ms at ~10ns/unit (paper's OS quantum)
  std::uint64_t seed = 1;
  double jitter = 2;        // desynchronises lock-step artefacts
  std::uint32_t capacity = 0;  // 0 = auto (processes * 4 + 64)
  double backoff_max = 1024;   // 0 disables backoff (ablation A2)
  CostParams cost{};
};

struct SimRunResult {
  double elapsed = 0;  // simulated time units
  double net = 0;      // elapsed minus one processor's other work (paper)
  std::uint64_t steps = 0;
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
};

/// Build an engine, spawn processors*procs_per_processor processes running
/// the enqueue/work/dequeue/work loop, run the discrete-event cost model.
[[nodiscard]] SimRunResult run_sim_workload(const SimRunConfig& config);

}  // namespace msq::sim
