// Minimal lazy coroutine task with symmetric transfer, used to express the
// simulated algorithms in near-pseudo-code form.
//
// Why coroutines: the simulator needs each virtual process to advance in
// steps of exactly one shared-memory access, under an externally chosen
// schedule.  Hand-written step machines for six queue algorithms would be
// unreadable and unauditable; with coroutines each algorithm reads like the
// paper's Figure 1/2 pseudo-code, and every `co_await proc.read(...)` /
// `cas(...)` is a scheduling point (sim/engine.hpp owns the schedule).
//
// Task<T> is lazy: it starts when awaited (symmetric transfer into the
// child) and resumes its awaiter on completion, so nesting (workload ->
// queue operation -> lock acquisition) costs no scheduler round-trips.
//
// TOOLCHAIN CONSTRAINT: GCC 12 miscompiles `co_await` appearing inside a
// condition expression (`if (co_await x == y)`, `while (!co_await f())`):
// the suspension is silently skipped and the coroutine state machine is
// corrupted (observed as wrong results, double resumes, SIGILL).  Every
// co_await in this codebase is therefore hoisted into its own statement
// (`const auto v = co_await x; if (v == y) ...`) -- keep it that way.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace msq::sim {

template <typename T>
class [[nodiscard]] Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation = nullptr;
  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() const noexcept { std::terminate(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  // Awaiting starts the child and transfers control into it.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  T await_resume() noexcept { return std::move(handle_.promise().value); }

  /// Root-task interface for the engine: start without an awaiter.
  void start() noexcept { handle_.resume(); }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  void await_resume() const noexcept {}

  void start() noexcept { handle_.resume(); }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace msq::sim
