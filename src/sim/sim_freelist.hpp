// Simulated node pool + Treiber free list, the allocation substrate shared
// by the simulated list-based queues (mirrors mem/node_pool.hpp +
// mem/freelist.hpp).
//
// Node layout (in simulated words): [0]=value, [1]=next (TaggedIndex bits),
// [2..]=algorithm extras (e.g. the Valois reference count).
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/mo_table.hpp"
#include "sim/task.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimNodePool {
 public:
  static constexpr std::uint32_t kValueWord = 0;
  static constexpr std::uint32_t kNextWord = 1;

  // `mo` overrides the annotated memory orders (mutation sweeps); the
  // defaults mirror mem/freelist.hpp -- rationale in sim/mo_table.hpp.
  SimNodePool(Engine& engine, std::uint32_t capacity,
              std::uint32_t words_per_node, const MoTable* mo = nullptr)
      : capacity_(capacity),
        words_per_node_(words_per_node),
        base_(engine.memory().alloc(capacity * words_per_node)),
        free_top_(engine.memory().alloc(1)),
        mo_pop_top_(mo_resolve(mo, "fl.pop_top")),
        mo_pop_next_(mo_resolve(mo, "fl.pop_next")),
        mo_pop_cas_(mo_resolve(mo, "fl.pop_cas")),
        mo_push_link_(mo_resolve(mo, "fl.push_link")),
        mo_push_cas_(mo_resolve(mo, "fl.push_cas")) {
    // Thread every node onto the free list (construction is single-site;
    // raw memory writes, no simulated cost -- matches the paper's
    // pre-initialised free list).
    SimMemory& mem = engine.memory();
    tagged::TaggedIndex top{};
    for (std::uint32_t i = 0; i < capacity; ++i) {
      mem.word(next_addr(i)) = tagged::TaggedIndex(top.index(), 0).bits();
      top = top.successor(i);
    }
    mem.word(free_top_) = top.bits();
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] Addr value_addr(std::uint32_t node) const noexcept {
    return base_ + node * words_per_node_ + kValueWord;
  }
  [[nodiscard]] Addr next_addr(std::uint32_t node) const noexcept {
    return base_ + node * words_per_node_ + kNextWord;
  }
  [[nodiscard]] Addr extra_addr(std::uint32_t node, std::uint32_t slot) const noexcept {
    return base_ + node * words_per_node_ + 2 + slot;
  }
  [[nodiscard]] Addr free_top_addr() const noexcept { return free_top_; }

  /// Treiber pop (lock-free).  Returns tagged::kNullIndex when exhausted.
  Task<std::uint32_t> allocate(Proc& p) {
    for (;;) {
      const auto top = tagged::TaggedIndex::from_bits(
          co_await p.read(free_top_, mo_pop_top_));
      if (top.is_null()) co_return tagged::kNullIndex;
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(next_addr(top.index()), mo_pop_next_));
      const std::uint64_t old =
          co_await p.cas(free_top_, top.bits(),
                         top.successor(next.index()).bits(), mo_pop_cas_);
      if (old == top.bits()) co_return top.index();
    }
  }

  /// Treiber push.
  Task<void> free(Proc& p, std::uint32_t node) {
    for (;;) {
      const auto top = tagged::TaggedIndex::from_bits(
          co_await p.read(free_top_, mo_pop_top_));
      co_await p.write(next_addr(node),
                       tagged::TaggedIndex(top.index(), 0).bits(),
                       mo_push_link_);
      const std::uint64_t old = co_await p.cas(
          free_top_, top.bits(), top.successor(node).bits(), mo_push_cas_);
      if (old == top.bits()) co_return;
    }
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t words_per_node_;
  Addr base_;
  Addr free_top_;
  check::MemOrder mo_pop_top_;
  check::MemOrder mo_pop_next_;
  check::MemOrder mo_pop_cas_;
  check::MemOrder mo_push_link_;
  check::MemOrder mo_push_cas_;
};

}  // namespace msq::sim
