// Systematic (rather than randomised) schedule exploration for the
// simulator, two ways:
//
//  * explore_schedules -- bounded-preemption enumeration in the style of
//    CHESS (Musuvathi & Qadeer).  Exhaustively enumerating all
//    interleavings of even a few queue operations is infeasible (the
//    branching factor is the number of runnable processes at every step).
//    The classic observation is that most concurrency bugs -- including
//    every race the paper reports finding in earlier queues -- manifest
//    with very few preemptions.  So we enumerate exactly the schedules
//    that are round-robin except for at most `max_preemptions` forced
//    context switches, at every possible placement.  Placements whose
//    forced switch targets the process the baseline would run anyway are
//    skipped (they replay an identical schedule); skips are tallied via
//    obs::Counter::kExploreSkip.
//
//  * explore_dpor -- sleep-set dynamic partial-order reduction (Flanagan &
//    Godefroid, POPL'05).  Instead of enumerating placements blindly, each
//    executed schedule is analysed with vector clocks: only steps whose
//    accesses actually CONFLICT (same address, at least one write, no
//    happens-before order) seed new branch points, and sleep sets prune
//    re-explorations of commuting prefixes.  For terminating programs this
//    covers every Mazurkiewicz trace -- every reachable terminal state --
//    in a fraction of the schedules (tests assert the reduction ratio).
//
// Because coroutine state cannot be snapshotted, exploration is by REPLAY:
// each schedule is re-run from a fresh engine built by the caller's
// factory, which must produce a deterministic world (no jitter, no
// step_random) for DPOR's prefix replay to be sound.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace msq::sim {

struct ExploreConfig {
  std::uint32_t max_preemptions = 2;
  std::uint64_t max_steps_per_run = 200'000;  // runaway-schedule guard
  std::uint64_t max_schedules = 200'000;      // enumeration budget
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_skipped = 0;  // degenerate placements not re-run
  bool budget_exhausted = false;        // hit max_schedules before finishing
};

/// One forced context switch: before global step `at_step`, switch to
/// process `to_process` (if runnable; otherwise the preemption is a no-op
/// and the schedule degenerates into an already-covered one).
struct Preemption {
  std::uint64_t at_step;
  std::uint32_t to_process;
};

/// Run one scheduled execution: round-robin over runnable processes,
/// applying `preemptions` (sorted by at_step).  `on_step` is called after
/// every step (for invariant checking); `on_choice` (optional) before each
/// step with the step index and the process about to run.  Returns the
/// number of steps taken.
std::uint64_t run_schedule(
    Engine& engine, const std::vector<Preemption>& preemptions,
    std::uint64_t max_steps, const std::function<void()>& on_step,
    const std::function<void(std::uint64_t, std::uint32_t)>& on_choice = {});

/// Enumerate bounded-preemption schedules.  For each schedule, `factory` is
/// invoked to (re)build a fresh world -- engine plus spawned processes --
/// and must return a reference to an engine the CALLER keeps alive until
/// the next factory call; the schedule is then replayed on it.  `on_step`
/// runs after every step and `on_done` after each completed execution
/// (both may assert/throw to fail a test).
///
/// Enumeration strategy: first run the preemption-free round-robin
/// schedule recording its length L and its per-step choices; then for
/// 1..max_preemptions, place forced switches at every combination of step
/// positions (up to L) and every target process, skipping placements whose
/// first switch is a no-op against the recorded baseline (the schedule
/// would be identical to one already run).
ExploreResult explore_schedules(const ExploreConfig& config,
                                std::uint32_t process_count,
                                const std::function<Engine&()>& factory,
                                const std::function<void(Engine&)>& on_step,
                                const std::function<void(Engine&)>& on_done);

struct DporConfig {
  std::uint64_t max_steps_per_run = 20'000;  // runaway-schedule guard
  std::uint64_t max_schedules = 200'000;     // exploration budget
};

struct DporResult {
  std::uint64_t schedules_run = 0;   // complete executions handed to on_done
  std::uint64_t sleep_blocked = 0;   // branches pruned by sleep sets
  bool budget_exhausted = false;
};

/// Sleep-set dynamic partial-order reduction over the same factory/callback
/// contract as explore_schedules.  Requirements beyond it: the world must
/// be deterministic (replay rebuilds engine state from recorded choices)
/// and must terminate on every schedule (spin-heavy blocking algorithms
/// are cut off at max_steps_per_run, truncating coverage).  Processes must
/// not be crashed, frozen or stalled by the callbacks.
///
/// If the factory's engine has EngineConfig::weak_memory set, the search
/// space additionally contains one FLUSH AGENT per process that publishes
/// buffered stores (CDSChecker-style visibility nondeterminism as
/// scheduling nondeterminism); executions only complete once every buffer
/// has drained, so on_done always sees consistent memory.  All-seq_cst
/// worlds degenerate to the SC search exactly.
DporResult explore_dpor(const DporConfig& config, std::uint32_t process_count,
                        const std::function<Engine&()>& factory,
                        const std::function<void(Engine&)>& on_step,
                        const std::function<void(Engine&)>& on_done);

}  // namespace msq::sim
