// Systematic (rather than randomised) schedule exploration for the
// simulator: bounded-preemption enumeration in the style of CHESS
// (Musuvathi & Qadeer).
//
// Exhaustively enumerating all interleavings of even a few queue operations
// is infeasible (the branching factor is the number of runnable processes
// at every step).  The classic observation is that most concurrency bugs --
// including every race the paper reports finding in earlier queues --
// manifest with very few preemptions.  So we enumerate exactly the
// schedules that are round-robin except for at most `max_preemptions`
// forced context switches, at every possible placement.
//
// Because coroutine state cannot be snapshotted, exploration is by REPLAY:
// each schedule is encoded as a list of (step index, process) preemption
// points and re-run from a fresh engine built by the caller's factory.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace msq::sim {

struct ExploreConfig {
  std::uint32_t max_preemptions = 2;
  std::uint64_t max_steps_per_run = 200'000;  // runaway-schedule guard
  std::uint64_t max_schedules = 200'000;      // enumeration budget
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  bool budget_exhausted = false;  // hit max_schedules before finishing
};

/// One forced context switch: before global step `at_step`, switch to
/// process `to_process` (if runnable; otherwise the preemption is a no-op
/// and the schedule degenerates into an already-covered one).
struct Preemption {
  std::uint64_t at_step;
  std::uint32_t to_process;
};

/// Run one scheduled execution: round-robin over runnable processes,
/// applying `preemptions` (sorted by at_step).  `on_step` is called after
/// every step (for invariant checking); return the number of steps taken.
std::uint64_t run_schedule(Engine& engine,
                           const std::vector<Preemption>& preemptions,
                           std::uint64_t max_steps,
                           const std::function<void()>& on_step);

/// Enumerate bounded-preemption schedules.  For each schedule, `factory` is
/// invoked to (re)build a fresh world -- engine plus spawned processes --
/// and must return a reference to an engine the CALLER keeps alive until
/// the next factory call; the schedule is then replayed on it.  `on_step`
/// runs after every step and `on_done` after each completed execution
/// (both may assert/throw to fail a test).
///
/// Enumeration strategy: first run the preemption-free round-robin
/// schedule recording its length L; then for 1..max_preemptions, place
/// forced switches at every combination of step positions (up to L) and
/// every target process.  Schedules whose preemption is a no-op are still
/// run (cheap) -- soundness over cleverness.
ExploreResult explore_schedules(const ExploreConfig& config,
                                std::uint32_t process_count,
                                const std::function<Engine&()>& factory,
                                const std::function<void(Engine&)>& on_step,
                                const std::function<void(Engine&)>& on_done);

}  // namespace msq::sim
