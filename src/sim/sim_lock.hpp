// Simulated test-and-test_and_set lock with bounded exponential backoff --
// the lock of the paper's evaluation, as a coroutine over one sim word.
#pragma once

#include "obs/counters.hpp"
#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/task.hpp"

namespace msq::sim {

class SimTatasLock {
 public:
  SimTatasLock(Engine& engine, double backoff_max = 1024)
      : word_(engine.memory().alloc(1)), backoff_max_(backoff_max) {}

  Task<void> lock(Proc& p) {
    SimBackoff backoff(backoff_max_);
    for (;;) {
      // Local spin on the cached copy until the lock looks free.
      for (;;) {
        const std::uint64_t seen = co_await p.read(word_);
        if (seen == 0) break;
        MSQ_COUNT(kLockSpin);
        co_await p.work(backoff.next());
      }
      const std::uint64_t old = co_await p.cas(word_, 0, 1);
      if (old == 0) {
        MSQ_COUNT(kLockAcquire);
        co_return;
      }
      MSQ_COUNT(kLockSpin);
      co_await p.work(backoff.next());  // lost the race to another RMW
    }
  }

  Task<void> unlock(Proc& p) { co_await p.write(word_, 0); }

  [[nodiscard]] Addr addr() const noexcept { return word_; }

 private:
  Addr word_;
  double backoff_max_;
};

}  // namespace msq::sim
