// Simulated test-and-test_and_set lock with bounded exponential backoff --
// the lock of the paper's evaluation, as a coroutine over one sim word.
#pragma once

#include "obs/counters.hpp"
#include "sim/engine.hpp"
#include "sim/mo_table.hpp"
#include "sim/queue_iface.hpp"
#include "sim/task.hpp"

namespace msq::sim {

class SimTatasLock {
 public:
  // `mo` overrides the annotated memory orders (mutation sweeps); the
  // defaults mirror sync/tatas_lock.hpp -- rationale in sim/mo_table.hpp.
  SimTatasLock(Engine& engine, double backoff_max = 1024,
               const MoTable* mo = nullptr)
      : word_(engine.memory().alloc(1)),
        backoff_max_(backoff_max),
        mo_spin_(mo_resolve(mo, "lock.spin_load")),
        mo_cas_(mo_resolve(mo, "lock.acquire_cas")),
        mo_unlock_(mo_resolve(mo, "lock.unlock_store")) {}

  Task<void> lock(Proc& p) {
    SimBackoff backoff(backoff_max_);
    for (;;) {
      // Local spin on the cached copy until the lock looks free.
      for (;;) {
        const std::uint64_t seen = co_await p.read(word_, mo_spin_);
        if (seen == 0) break;
        MSQ_COUNT(kLockSpin);
        co_await p.work(backoff.next());
      }
      const std::uint64_t old = co_await p.cas(word_, 0, 1, mo_cas_);
      if (old == 0) {
        MSQ_COUNT(kLockAcquire);
        co_return;
      }
      MSQ_COUNT(kLockSpin);
      co_await p.work(backoff.next());  // lost the race to another RMW
    }
  }

  Task<void> unlock(Proc& p) { co_await p.write(word_, 0, mo_unlock_); }

  [[nodiscard]] Addr addr() const noexcept { return word_; }

 private:
  Addr word_;
  double backoff_max_;
  check::MemOrder mo_spin_;
  check::MemOrder mo_cas_;
  check::MemOrder mo_unlock_;
};

}  // namespace msq::sim
