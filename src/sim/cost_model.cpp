#include "sim/cost_model.hpp"
#include <bit>

namespace msq::sim {

double CostModel::on_read(std::uint32_t processor, Addr addr) {
  std::uint64_t& mask = sharers(addr);
  const std::uint64_t bit = 1ull << (processor % kMaxProcessors);
  if (mask & bit) return params_.read_hit;
  mask |= bit;
  return params_.read_miss;
}

double CostModel::on_write(std::uint32_t processor, Addr addr, bool rmw) {
  std::uint64_t& mask = sharers(addr);
  const std::uint64_t bit = 1ull << (processor % kMaxProcessors);
  const bool exclusive = mask == bit;
  const int others = std::popcount(mask & ~bit);
  mask = bit;  // invalidate all other copies
  const double queueing = params_.contention_per_sharer * others;
  if (rmw) return (exclusive ? params_.rmw_owned : params_.rmw_miss) + queueing;
  return (exclusive ? params_.write_owned : params_.write_miss) + queueing;
}

}  // namespace msq::sim
