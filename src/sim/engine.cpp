#include "sim/engine.hpp"

#include <algorithm>
#include <string_view>

#include "obs/counters.hpp"

namespace msq::sim {

void Proc::OpAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  // The access happens NOW, as the final action of this step; the engine
  // stores where to pick the process up next time it is scheduled.
  result = engine->execute(proc, op);
  engine->process(proc).resume_point = h;
}

void Proc::LabelAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  Engine::Process& p = engine->process(proc);
  p.label = label;
  p.last_step_cost = 0;
  p.resume_point = h;
  ++engine->steps_;
}

void Proc::annotate(const char* label) noexcept {
  engine_->process(id_).label = label;
}

Engine::Engine(EngineConfig config)
    : config_(config), cost_model_(config.cost), rng_(config.seed) {
  processors_.resize(config_.processors);
  if (config_.race_detect) hb_.emplace(config_.sync_model, race_log_);
}

Engine::~Engine() {
  // Root Task destructors tear down any still-suspended coroutines.
}

std::uint64_t Engine::execute(std::uint32_t id, const PendingOp& op) {
  Process& p = process(id);
  double cost = 0;
  std::uint64_t result = 0;
  bool wrote = false;  // did the op mutate the word (failed CAS does not)
  const std::uint32_t processor = p.processor;
  switch (op.kind) {
    case OpKind::kRead:
      cost = cost_model_.on_read(processor, op.addr);
      result = memory_.word(op.addr);
      break;
    case OpKind::kWrite:
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/false);
      memory_.word(op.addr) = op.operand_a;
      wrote = true;
      break;
    case OpKind::kCas: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;  // old value; success iff old == expected
      // Every simulated CAS funnels through here, so this one site gives
      // deterministic attempt/failure counts for the whole sim sweep.
      MSQ_COUNT(kCasAttempt);
      if (w == op.operand_a) {
        w = op.operand_b;
        wrote = true;
      } else {
        MSQ_COUNT(kCasFail);
      }
      break;
    }
    case OpKind::kFaa: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;
      w += op.operand_a;
      wrote = true;
      break;
    }
    case OpKind::kSwap: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;
      w = op.operand_a;
      wrote = true;
      break;
    }
    case OpKind::kWork:
      cost = cost_model_.on_work(op.work_cost);
      break;
  }
  if (op.kind != OpKind::kWork) {
    last_access_ = {true, op.kind, op.addr, wrote};
    if (hb_) {
      const bool rmw = op.kind == OpKind::kCas || op.kind == OpKind::kFaa ||
                       op.kind == OpKind::kSwap;
      hb_->on_access(id, p.label, op.addr, wrote, rmw, steps_);
    }
  }
  if (config_.jitter > 0) {
    cost += config_.jitter * static_cast<double>(rng_() >> 40) /
            static_cast<double>(1ull << 24);
  }
  p.last_step_cost = cost;
  ++steps_;
  return result;
}

void Engine::resume_one(std::uint32_t id) {
  Process& p = process(id);
  p.last_step_cost = 0;
  last_access_ = {};  // set again by execute() iff this step touches memory
  if (!p.started) {
    p.started = true;
    p.root->start();
  } else {
    p.resume_point.resume();
  }
  if (p.root->done()) p.finished = true;
}

bool Engine::step(std::uint32_t id) {
  Process& p = process(id);
  if (p.finished || p.crashed) return false;
  if (p.freeze_label != nullptr && p.label != nullptr &&
      std::string_view(p.label) == p.freeze_label) {
    p.frozen = true;
  }
  if (p.stall_remaining > 0) {
    // The step is consumed idling: a stalled process declines its slot.
    last_access_ = {};
    tick_stalls();
    return true;
  }
  tick_stalls();
  resume_one(id);
  return true;
}

void Engine::tick_stalls() noexcept {
  for (auto& p : processes_) {
    if (!p->finished && !p->crashed && p->stall_remaining > 0) {
      --p->stall_remaining;
    }
  }
}

void Engine::freeze_at_label(std::uint32_t id, const char* label) {
  process(id).freeze_label = label;
}

bool Engine::all_done() const {
  return std::all_of(processes_.begin(), processes_.end(),
                     [](const auto& p) { return p->finished; });
}

bool Engine::runnable_exists() const {
  // A stalled process counts: it becomes runnable again by itself.
  return std::any_of(processes_.begin(), processes_.end(), [](const auto& p) {
    return !p->finished && !p->frozen && !p->crashed;
  });
}

bool Engine::step_random() {
  // Collect runnable processes, honouring freeze labels first.
  std::vector<std::uint32_t> runnable;
  bool stalled_exists = false;
  runnable.reserve(processes_.size());
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    if (p.finished || p.crashed) continue;
    if (p.freeze_label != nullptr && p.label != nullptr &&
        std::string_view(p.label) == p.freeze_label) {
      p.frozen = true;
    }
    if (p.frozen) continue;
    if (p.stall_remaining > 0) {
      stalled_exists = true;
      continue;
    }
    runnable.push_back(i);
  }
  if (runnable.empty()) {
    // Only stalled processes left: time passes as an idle tick so their
    // delays elapse (otherwise a stall could never end).
    if (!stalled_exists) return false;
    tick_stalls();
    return true;
  }
  const std::uint32_t pick =
      runnable[static_cast<std::size_t>(rng_.below(runnable.size()))];
  tick_stalls();
  resume_one(pick);
  return true;
}

bool Engine::run_random(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (!step_random()) return all_done();
  }
  return false;
}

double Engine::run_cost_model() {
  // Attach processes to their processors' run queues.
  for (auto& processor : processors_) {
    processor.procs.clear();
    processor.current = 0;
    processor.clock = 0;
    processor.quantum_used = 0;
  }
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    processors_.at(processes_[i]->processor).procs.push_back(i);
  }

  auto runnable_on = [&](const Processor& pr) {
    return std::any_of(pr.procs.begin(), pr.procs.end(), [&](std::uint32_t id) {
      return process(id).runnable();
    });
  };

  for (;;) {
    // Discrete event step: advance the least-advanced busy processor.
    Processor* chosen = nullptr;
    for (auto& pr : processors_) {
      if (!runnable_on(pr)) continue;
      if (chosen == nullptr || pr.clock < chosen->clock) chosen = &pr;
    }
    if (chosen == nullptr) {
      // Nothing immediately runnable; stalled processes (bounded delays)
      // wake after an idle tick, crashed/frozen/finished ones never do.
      const bool stalled_exists = std::any_of(
          processes_.begin(), processes_.end(), [](const auto& p) {
            return !p->finished && !p->frozen && !p->crashed &&
                   p->stall_remaining > 0;
          });
      if (!stalled_exists) break;  // everything finished (or halted)
      tick_stalls();
      continue;
    }

    // Round-robin within the processor: advance the cursor past processes
    // that finished or are frozen (a frozen process models one that is
    // stalled in the kernel; it yields its slot immediately).
    Processor& pr = *chosen;
    std::size_t scanned = 0;
    while (scanned < pr.procs.size()) {
      const Process& p = process(pr.procs[pr.current]);
      if (p.runnable()) break;
      pr.current = (pr.current + 1) % pr.procs.size();
      pr.quantum_used = 0;
      ++scanned;
    }
    const std::uint32_t id = pr.procs[pr.current];

    tick_stalls();
    resume_one(id);
    const double cost = process(id).last_step_cost;
    pr.clock += cost;
    pr.quantum_used += cost;

    if (process(id).finished ||
        (pr.quantum_used >= config_.quantum && pr.procs.size() > 1)) {
      // Preempt: rotate to the next co-scheduled process.
      pr.current = (pr.current + 1) % pr.procs.size();
      pr.quantum_used = 0;
      pr.clock += cost_model_.params().context_switch;
    }
  }

  double elapsed = 0;
  for (const auto& pr : processors_) elapsed = std::max(elapsed, pr.clock);
  return elapsed;
}

}  // namespace msq::sim
