#include "sim/engine.hpp"

#include <algorithm>
#include <string_view>

#include "obs/counters.hpp"

namespace msq::sim {

void Proc::OpAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  // The access happens NOW, as the final action of this step, unless weak
  // memory parks it behind a buffer drain; the engine stores where to pick
  // the process up next time it is scheduled.  The awaiter lives in the
  // coroutine frame, so &result stays valid across any drain steps.
  engine->process(proc).resume_point = h;
  engine->submit(proc, op, &result);
}

void Proc::LabelAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  Engine::Process& p = engine->process(proc);
  p.label = label;
  p.last_step_cost = 0;
  p.resume_point = h;
  ++engine->steps_;
}

void Proc::annotate(const char* label) noexcept {
  engine_->process(id_).label = label;
}

Engine::Engine(EngineConfig config)
    : config_(config), cost_model_(config.cost), rng_(config.seed) {
  processors_.resize(config_.processors);
  if (config_.race_detect) hb_.emplace(config_.sync_model, race_log_);
}

Engine::~Engine() {
  // Root Task destructors tear down any still-suspended coroutines.
}

void Engine::submit(std::uint32_t id, const PendingOp& op,
                    std::uint64_t* result) {
  Process& p = process(id);
  if (needs_drain(op) && !p.store_buffer.empty()) {
    // Fence semantics: the op refuses to execute until the buffer drains.
    // This step is consumed reaching the fence (no shared access); each
    // drain is its own visible step, then the op executes as one more.
    p.has_pending = true;
    p.pending_op = op;
    p.pending_result = result;
    ++steps_;
    return;
  }
  *result = execute(id, op);
}

std::uint64_t Engine::execute(std::uint32_t id, const PendingOp& op) {
  Process& p = process(id);
  double cost = 0;
  std::uint64_t result = 0;
  bool wrote = false;  // did the op mutate the word (failed CAS does not)
  const std::uint32_t processor = p.processor;

  if (config_.weak_memory) {
    if (op.kind == OpKind::kWrite && op.order != MemOrder::kSeqCst) {
      // TSO: the store enters the FIFO buffer, visible only to this
      // process until a flush step publishes it.  No hb feed here; the
      // tracker sees the write when it becomes globally visible.
      p.store_buffer.push_back({op.addr, op.operand_a, op.order, p.label});
      last_access_ = {true, op.kind, op.addr, /*is_write=*/true, op.order,
                      /*buffered=*/true, false, false};
      p.last_step_cost = 0;
      ++steps_;
      return 0;
    }
    if (op.kind == OpKind::kRead) {
      // Store-to-load forwarding: the NEWEST buffered store to this addr
      // wins over memory.  A forwarded read touches no shared state.
      for (auto it = p.store_buffer.rbegin(); it != p.store_buffer.rend();
           ++it) {
        if (it->addr == op.addr) {
          last_access_ = {true, op.kind, op.addr, /*is_write=*/false,
                          op.order, false, /*forwarded=*/true, false};
          p.last_step_cost = 0;
          ++steps_;
          return it->value;
        }
      }
    }
    // RMWs and seq_cst stores reach here with an EMPTY buffer (submit()
    // parks them otherwise) and act on memory directly -- write-through.
    assert(!needs_drain(op) || p.store_buffer.empty());
  }

  switch (op.kind) {
    case OpKind::kRead:
      cost = cost_model_.on_read(processor, op.addr);
      result = memory_.word(op.addr);
      break;
    case OpKind::kWrite:
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/false);
      memory_.word(op.addr) = op.operand_a;
      wrote = true;
      break;
    case OpKind::kCas: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;  // old value; success iff old == expected
      // Every simulated CAS funnels through here, so this one site gives
      // deterministic attempt/failure counts for the whole sim sweep.
      MSQ_COUNT(kCasAttempt);
      if (w == op.operand_a) {
        w = op.operand_b;
        wrote = true;
      } else {
        MSQ_COUNT(kCasFail);
      }
      break;
    }
    case OpKind::kFaa: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;
      w += op.operand_a;
      wrote = true;
      break;
    }
    case OpKind::kSwap: {
      cost = cost_model_.on_write(processor, op.addr, /*rmw=*/true);
      std::uint64_t& w = memory_.word(op.addr);
      result = w;
      w = op.operand_a;
      wrote = true;
      break;
    }
    case OpKind::kWork:
      cost = cost_model_.on_work(op.work_cost);
      break;
  }
  if (op.kind != OpKind::kWork) {
    last_access_ = {true, op.kind, op.addr, wrote, op.order};
    if (hb_) {
      const bool rmw = op.kind == OpKind::kCas || op.kind == OpKind::kFaa ||
                       op.kind == OpKind::kSwap;
      hb_->on_access(id, p.label, op.addr, wrote, rmw, steps_, op.order);
    }
  }
  if (config_.jitter > 0) {
    cost += config_.jitter * static_cast<double>(rng_() >> 40) /
            static_cast<double>(1ull << 24);
  }
  p.last_step_cost = cost;
  ++steps_;
  return result;
}

void Engine::flush_oldest(std::uint32_t id) {
  Process& p = process(id);
  assert(!p.store_buffer.empty());
  const BufferedStore e = p.store_buffer.front();
  p.store_buffer.erase(p.store_buffer.begin());
  memory_.word(e.addr) = e.value;
  p.last_step_cost = cost_model_.on_write(p.processor, e.addr, /*rmw=*/false);
  last_access_ = {true,  OpKind::kWrite, e.addr, /*is_write=*/true, e.order,
                  false, false,          /*flush=*/true};
  if (hb_) {
    // The write joins the hb trace when it becomes globally visible,
    // labelled with the pseudo-code line of the store that buffered it.
    hb_->on_access(id, e.label, e.addr, /*is_write=*/true, /*is_rmw=*/false,
                   steps_, e.order);
  }
  ++steps_;
}

void Engine::flush_one(std::uint32_t id) {
  process(id).last_step_cost = 0;
  last_access_ = {};
  flush_oldest(id);
}

void Engine::resume_one(std::uint32_t id) {
  Process& p = process(id);
  p.last_step_cost = 0;
  last_access_ = {};  // set again by execute() iff this step touches memory
  if (p.has_pending) {
    // A fence op is parked.  Drain one buffered store per step; once the
    // buffer is empty the op itself executes as this step, and the
    // coroutine resumes (reading the op's result) on a later step.
    if (!p.store_buffer.empty()) {
      flush_oldest(id);
      return;
    }
    p.has_pending = false;
    *p.pending_result = execute(id, p.pending_op);
    p.pending_result = nullptr;
    return;
  }
  if (!p.started) {
    p.started = true;
    p.root->start();
  } else {
    p.resume_point.resume();
  }
  if (p.root->done()) p.finished = true;
}

bool Engine::step(std::uint32_t id) {
  Process& p = process(id);
  if (p.crashed) return false;
  if (p.finished) {
    // Weak memory: a finished process may still owe the world its buffered
    // stores; its remaining steps are flushes.
    if (p.store_buffer.empty()) return false;
    p.last_step_cost = 0;
    last_access_ = {};
    tick_stalls();
    flush_oldest(id);
    return true;
  }
  if (p.freeze_label != nullptr && p.label != nullptr &&
      std::string_view(p.label) == p.freeze_label) {
    p.frozen = true;
  }
  if (p.stall_remaining > 0) {
    // The step is consumed idling: a stalled process declines its slot.
    last_access_ = {};
    tick_stalls();
    return true;
  }
  tick_stalls();
  resume_one(id);
  return true;
}

void Engine::tick_stalls() noexcept {
  for (auto& p : processes_) {
    if (!p->finished && !p->crashed && p->stall_remaining > 0) {
      --p->stall_remaining;
    }
  }
}

void Engine::freeze_at_label(std::uint32_t id, const char* label) {
  process(id).freeze_label = label;
}

bool Engine::all_done() const {
  return std::all_of(processes_.begin(), processes_.end(), [](const auto& p) {
    return p->finished && p->store_buffer.empty();
  });
}

bool Engine::runnable_exists() const {
  // A stalled process counts: it becomes runnable again by itself.  A
  // finished process with a nonempty store buffer also counts: its
  // remaining flush steps still make progress.
  return std::any_of(processes_.begin(), processes_.end(), [](const auto& p) {
    if (p->crashed || p->frozen) return false;
    return !p->finished || !p->store_buffer.empty();
  });
}

bool Engine::step_random() {
  // Collect runnable processes, honouring freeze labels first.
  std::vector<std::uint32_t> runnable;
  bool stalled_exists = false;
  runnable.reserve(processes_.size());
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    if (p.crashed) continue;
    if (p.finished && p.store_buffer.empty()) continue;
    if (p.freeze_label != nullptr && p.label != nullptr &&
        std::string_view(p.label) == p.freeze_label) {
      p.frozen = true;
    }
    if (p.frozen) continue;
    if (p.stall_remaining > 0) {
      stalled_exists = true;
      continue;
    }
    runnable.push_back(i);
  }
  if (runnable.empty()) {
    // Only stalled processes left: time passes as an idle tick so their
    // delays elapse (otherwise a stall could never end).
    if (!stalled_exists) return false;
    tick_stalls();
    return true;
  }
  const std::uint32_t pick =
      runnable[static_cast<std::size_t>(rng_.below(runnable.size()))];
  tick_stalls();
  if (process(pick).finished) {
    // Finished but still buffered (weak memory): the step is a flush.
    process(pick).last_step_cost = 0;
    last_access_ = {};
    flush_oldest(pick);
  } else {
    resume_one(pick);
  }
  return true;
}

bool Engine::run_random(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (!step_random()) return all_done();
  }
  return false;
}

double Engine::run_cost_model() {
  // Attach processes to their processors' run queues.
  for (auto& processor : processors_) {
    processor.procs.clear();
    processor.current = 0;
    processor.clock = 0;
    processor.quantum_used = 0;
  }
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    processors_.at(processes_[i]->processor).procs.push_back(i);
  }

  auto runnable_on = [&](const Processor& pr) {
    return std::any_of(pr.procs.begin(), pr.procs.end(), [&](std::uint32_t id) {
      return process(id).runnable();
    });
  };

  for (;;) {
    // Discrete event step: advance the least-advanced busy processor.
    Processor* chosen = nullptr;
    for (auto& pr : processors_) {
      if (!runnable_on(pr)) continue;
      if (chosen == nullptr || pr.clock < chosen->clock) chosen = &pr;
    }
    if (chosen == nullptr) {
      // Nothing immediately runnable; stalled processes (bounded delays)
      // wake after an idle tick, crashed/frozen/finished ones never do.
      const bool stalled_exists = std::any_of(
          processes_.begin(), processes_.end(), [](const auto& p) {
            return !p->finished && !p->frozen && !p->crashed &&
                   p->stall_remaining > 0;
          });
      if (!stalled_exists) break;  // everything finished (or halted)
      tick_stalls();
      continue;
    }

    // Round-robin within the processor: advance the cursor past processes
    // that finished or are frozen (a frozen process models one that is
    // stalled in the kernel; it yields its slot immediately).
    Processor& pr = *chosen;
    std::size_t scanned = 0;
    while (scanned < pr.procs.size()) {
      const Process& p = process(pr.procs[pr.current]);
      if (p.runnable()) break;
      pr.current = (pr.current + 1) % pr.procs.size();
      pr.quantum_used = 0;
      ++scanned;
    }
    const std::uint32_t id = pr.procs[pr.current];

    tick_stalls();
    resume_one(id);
    const double cost = process(id).last_step_cost;
    pr.clock += cost;
    pr.quantum_used += cost;

    if (process(id).finished ||
        (pr.quantum_used >= config_.quantum && pr.procs.size() > 1)) {
      // Preempt: rotate to the next co-scheduled process.
      pr.current = (pr.current + 1) % pr.procs.size();
      pr.quantum_used = 0;
      pr.clock += cost_model_.params().context_switch;
    }
  }

  double elapsed = 0;
  for (const auto& pr : processors_) elapsed = std::max(elapsed, pr.clock);
  return elapsed;
}

}  // namespace msq::sim
