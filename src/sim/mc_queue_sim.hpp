// Mellor-Crummey's lock-free-but-blocking queue as a simulated step
// machine (same FAS-list reconstruction as queues/mellor_crummey_queue.hpp:
// fetch_and_store the Tail claim, then link -- "MC_LINK" marks the blocking
// window between the two, so the liveness tests can stall a process exactly
// where the paper says the algorithm degenerates).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimMcQueue final : public SimQueue {
 public:
  SimMcQueue(Engine& engine, std::uint32_t capacity, double backoff_max = 1024)
      : engine_(engine),
        pool_(engine, capacity + 1, 2),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        backoff_max_(backoff_max) {
    SimMemory& mem = engine.memory();
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy))).bits();
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(head_) = tagged::TaggedIndex(dummy, 0).bits();
    mem.word(tail_) = tagged::TaggedIndex(dummy, 0).bits();
  }

  [[nodiscard]] const char* name() const noexcept override { return "MC"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await pool_.allocate(p);
    if (node == tagged::kNullIndex) co_return false;
    co_await p.write(pool_.value_addr(node), value);
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits());
    // fetch_and_store: claim the tail position unconditionally.
    const auto prev = tagged::TaggedIndex::from_bits(
        co_await p.swap(tail_, tagged::TaggedIndex(node, 0).bits()));
    co_await p.at("MC_LINK");  // the blocking window
    co_await p.write(pool_.next_addr(prev.index()),
                     tagged::TaggedIndex(node, 0).bits());
    co_return true;
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    SimBackoff backoff(backoff_max_);
    for (;;) {
      const auto head = tagged::TaggedIndex::from_bits(co_await p.read(head_));
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(head.index())));
      if (next.is_null()) {
        const auto tail = tagged::TaggedIndex::from_bits(co_await p.read(tail_));
        const std::uint64_t head_again = co_await p.read(head_);
        if (tail.index() == head.index() && head.bits() == head_again) {
          co_return kEmpty;
        }
        // An enqueuer holds the claim on head->next: WAIT for its link.
        co_await p.work(backoff.next());
        continue;
      }
      const std::uint64_t value = co_await p.read(pool_.value_addr(next.index()));
      co_await p.at("MC_SWING");
      const std::uint64_t swung = co_await p.cas(
          head_, head.bits(), head.successor(next.index()).bits());
      if (swung == head.bits()) {
        co_await pool_.free(p, head.index());
        co_return value;
      }
      co_await p.work(backoff.next());
    }
  }

  void check_invariants() const override {
    // The list may legitimately be split mid-link (that IS the algorithm's
    // blocking window), so connectivity-to-tail cannot be asserted; absence
    // of cycles from Head can.
    const SimMemory& mem = engine_.memory();
    const auto head = tagged::TaggedIndex::from_bits(mem.peek(head_));
    std::uint32_t hops = 0;
    for (auto it = head; !it.is_null();
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it.index())))) {
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("MC invariant: cycle reachable from Head");
      }
    }
  }

 private:
  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  double backoff_max_;
};

}  // namespace msq::sim
