#include "sim/explore.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/counters.hpp"

namespace msq::sim {
namespace {

/// Lowest runnable process at or after `from`, wrapping; or process_count
/// if none.
std::uint32_t next_runnable(const Engine& engine, std::uint32_t from) {
  const std::uint32_t n = engine.process_count();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t candidate = (from + i) % n;
    if (!engine.done(candidate)) return candidate;
  }
  return n;
}

/// The same wrap-around choice, but over a recorded done-bitmask from the
/// baseline run (for deciding whether a preemption placement is a no-op
/// without re-running it).
std::uint32_t next_runnable_in_mask(std::uint64_t done_mask, std::uint32_t n,
                                    std::uint32_t from) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t candidate = (from + i) % n;
    if ((done_mask & (1ull << candidate)) == 0) return candidate;
  }
  return n;
}

}  // namespace

std::uint64_t run_schedule(
    Engine& engine, const std::vector<Preemption>& preemptions,
    std::uint64_t max_steps, const std::function<void()>& on_step,
    const std::function<void(std::uint64_t, std::uint32_t)>& on_choice) {
  std::uint32_t current = 0;
  std::uint64_t steps = 0;
  std::size_t next_preemption = 0;
  for (;;) {
    if (next_preemption < preemptions.size() &&
        steps == preemptions[next_preemption].at_step) {
      const std::uint32_t target = preemptions[next_preemption].to_process;
      ++next_preemption;
      if (target < engine.process_count() && !engine.done(target)) {
        current = target;
      }
    }
    current = next_runnable(engine, current);
    if (current == engine.process_count()) break;  // everything finished
    if (on_choice) on_choice(steps, current);
    engine.step(current);
    ++steps;
    if (on_step) on_step();
    if (steps >= max_steps) break;  // blocked schedule (or runaway): stop
  }
  return steps;
}

ExploreResult explore_schedules(const ExploreConfig& config,
                                std::uint32_t process_count,
                                const std::function<Engine&()>& factory,
                                const std::function<void(Engine&)>& on_step,
                                const std::function<void(Engine&)>& on_done) {
  assert(process_count <= 64 && "done-bitmask assumes <= 64 processes");
  ExploreResult result;

  auto run_one = [&](const std::vector<Preemption>& preemptions) {
    Engine& engine = factory();
    MSQ_COUNT(kExploreRun);
    run_schedule(engine, preemptions, config.max_steps_per_run,
                 [&] { if (on_step) on_step(engine); });
    if (on_done) on_done(engine);
    ++result.schedules_run;
    return result.schedules_run < config.max_schedules;
  };

  // Baseline: the preemption-free schedule fixes the step horizon L and
  // records, per step, which process ran and which were already done.  A
  // forced switch whose target would be chosen anyway (or is done, making
  // the preemption a no-op) replays this exact schedule -- skip it.
  std::uint64_t horizon = 0;
  std::vector<std::uint32_t> base_choice;
  std::vector<std::uint64_t> base_done_mask;
  {
    Engine& engine = factory();
    MSQ_COUNT(kExploreRun);
    horizon = run_schedule(
        engine, {}, config.max_steps_per_run,
        [&] { if (on_step) on_step(engine); },
        [&](std::uint64_t, std::uint32_t chosen) {
          std::uint64_t mask = 0;
          for (std::uint32_t q = 0; q < process_count; ++q) {
            if (engine.done(q)) mask |= 1ull << q;
          }
          base_choice.push_back(chosen);
          base_done_mask.push_back(mask);
        });
    if (on_done) on_done(engine);
    ++result.schedules_run;
  }

  // Is a forced switch to `target` before baseline step `s` a no-op?
  auto degenerate = [&](std::uint64_t s, std::uint32_t target) {
    if (s >= base_choice.size()) return true;  // past the horizon: no step
    return next_runnable_in_mask(base_done_mask[s], process_count, target) ==
           base_choice[s];
  };
  auto skip = [&] {
    MSQ_COUNT(kExploreSkip);
    ++result.schedules_skipped;
  };

  // k = 1: one forced switch at every (position, target).
  if (config.max_preemptions >= 1) {
    for (std::uint64_t s = 1; s < horizon; ++s) {
      for (std::uint32_t t = 0; t < process_count; ++t) {
        if (degenerate(s, t)) {
          skip();
          continue;
        }
        if (!run_one({{s, t}})) {
          result.budget_exhausted = true;
          return result;
        }
      }
    }
  }

  // k = 2: ordered pairs of switch points.  Only the FIRST switch can be
  // judged against the baseline (after a real first switch the execution
  // deviates from it); a degenerate first switch reduces the pair to a
  // k = 1 schedule already run above.
  if (config.max_preemptions >= 2) {
    for (std::uint64_t s1 = 1; s1 < horizon; ++s1) {
      for (std::uint64_t s2 = s1 + 1; s2 <= horizon; ++s2) {
        for (std::uint32_t t1 = 0; t1 < process_count; ++t1) {
          for (std::uint32_t t2 = 0; t2 < process_count; ++t2) {
            if (t1 == t2) continue;  // same-target pair adds nothing new
            if (degenerate(s1, t1)) {
              skip();
              continue;
            }
            if (!run_one({{s1, t1}, {s2, t2}})) {
              result.budget_exhausted = true;
              return result;
            }
          }
        }
      }
    }
  }

  // Deeper preemption bounds would go here; 2 suffices for every race in
  // the paper's catalogue (and the tests assert that).
  return result;
}

// --- dynamic partial-order reduction ----------------------------------------
//
// Flanagan-Godefroid DPOR with sleep sets, by replay.  The search state is
// the current path: one node per executed step, holding the scheduling
// alternatives discovered so far.  Each iteration replays the path's
// choices on a fresh engine, extends it to completion with a default
// strategy, analyses the trace with vector clocks to plant backtrack
// points at conflicting steps, then backtracks DFS-style to the deepest
// node with an untried alternative.
//
// Weak memory (EngineConfig::weak_memory) doubles the agent space: agent
// a < n runs process a's next program step, agent n + q publishes process
// q's oldest buffered store as a flush step (CDSChecker-style: the
// visibility nondeterminism is enumerated as scheduling nondeterminism).
// Dependence treatment: a BUFFERED store is a local step whose clock is
// snapshotted into a per-process FIFO of pending-store clocks; the flush
// that later publishes it joins that snapshot (the flush is ordered after
// the store's context, NOT after everything its process did since) and is
// the step that conflicts with peer accesses to the address.  Forwarded
// reads (served from the process's own buffer) touch no shared state and
// stay local.  With every access seq_cst no store ever buffers, no flush
// agent ever enables, and the search degenerates to the SC one exactly.

namespace {

struct DporAccess {
  bool valid = false;
  Addr addr = 0;
  bool is_write = false;
};

bool dpor_conflict(const DporAccess& a, const DporAccess& b) noexcept {
  return a.valid && b.valid && a.addr == b.addr && (a.is_write || b.is_write);
}

using DporClock = std::vector<std::uint64_t>;

void clock_join(DporClock& into, const DporClock& from) {
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

struct DporNode {
  std::vector<std::uint32_t> enabled;  // processes runnable at this node
  std::set<std::uint32_t> backtrack;   // alternatives to explore from here
  std::set<std::uint32_t> done;        // alternatives already explored
  // Sleep set on entry plus the accesses of already-explored choices:
  // a sleeping process's recorded next access stays valid because the
  // engine is deterministic and the process does not run while asleep.
  std::vector<std::pair<std::uint32_t, DporAccess>> sleep;
  std::vector<std::pair<std::uint32_t, DporAccess>> explored;
  std::uint32_t chosen = 0;
  DporAccess access{};
};

/// Per-address trace summary for the race rule: the last write and the
/// reads since it, each with the executing process, its step index in the
/// path and its happens-before clock.
struct DporAddrTrace {
  bool has_write = false;
  std::uint32_t w_proc = 0;
  std::size_t w_index = 0;
  DporClock w_clock;
  std::unordered_map<std::uint32_t, std::pair<std::size_t, DporClock>> reads;
};

}  // namespace

DporResult explore_dpor(const DporConfig& config, std::uint32_t process_count,
                        const std::function<Engine&()>& factory,
                        const std::function<void(Engine&)>& on_step,
                        const std::function<void(Engine&)>& on_done) {
  DporResult result;
  std::vector<DporNode> path;
  bool first_run = true;

  while (first_run || !path.empty()) {
    first_run = false;
    if (result.schedules_run + result.sleep_blocked >= config.max_schedules) {
      result.budget_exhausted = true;
      return result;
    }

    Engine& engine = factory();
    MSQ_COUNT(kExploreRun);

    // Agent space: processes, plus one flush agent per process when the
    // engine buffers stores (see the weak-memory notes above).
    const bool weak = engine.config().weak_memory;
    const std::uint32_t agent_count =
        weak ? 2 * process_count : process_count;

    // Per-run trace analysis state, rebuilt during replay.
    std::vector<DporClock> vc(agent_count, DporClock(agent_count, 0));
    std::unordered_map<Addr, DporAddrTrace> mem;
    // Clocks of stores sitting in each process's buffer, FIFO like it.
    std::vector<std::vector<DporClock>> pending_clocks(process_count);
    // Active sleep set carried down the path (entry sleep of the next node
    // to create).
    std::vector<std::pair<std::uint32_t, DporAccess>> active_sleep;
    bool sleep_blocked = false;

    for (std::size_t depth = 0;; ++depth) {
      // Enabled agents.  A process agent is enabled while it can make
      // program progress (a fence waiting on its buffer is not); a flush
      // agent is enabled while its process has buffered stores.  Spinning
      // processes are always runnable, so "may be co-enabled" holds.
      std::vector<std::uint32_t> enabled;
      for (std::uint32_t q = 0; q < process_count; ++q) {
        if (engine.can_advance(q)) enabled.push_back(q);
      }
      if (weak) {
        for (std::uint32_t q = 0; q < process_count; ++q) {
          if (engine.flush_pending(q) > 0) enabled.push_back(process_count + q);
        }
      }

      if (depth < path.size()) {
        active_sleep = path[depth].sleep;  // replay: stored entry sleep
      } else {
        if (enabled.empty()) break;  // execution complete (buffers drained)
        if (depth >= config.max_steps_per_run) break;  // runaway guard
        // New node: default strategy picks the first enabled agent not
        // asleep.  If every enabled agent sleeps, this branch commutes
        // with one already explored -- prune it.
        DporNode node;
        node.enabled = enabled;
        node.sleep = active_sleep;
        std::uint32_t choice = agent_count;
        for (const std::uint32_t q : enabled) {
          const bool asleep =
              std::any_of(node.sleep.begin(), node.sleep.end(),
                          [&](const auto& e) { return e.first == q; });
          if (!asleep) {
            choice = q;
            break;
          }
        }
        if (choice == agent_count) {
          sleep_blocked = true;
          break;
        }
        node.chosen = choice;
        node.backtrack.insert(choice);
        path.push_back(std::move(node));
      }

      DporNode& node = path[depth];
      const std::uint32_t p = node.chosen;

      if (p < process_count) {
        engine.step(p);
      } else {
        engine.flush_one(p - process_count);
      }
      const Engine::LastAccess& la = engine.last_access();

      if (la.valid && la.buffered) {
        // Buffered store: a local step, but snapshot its clock so the
        // flush that publishes it is ordered after the store's context.
        vc[p][p] += 1;
        pending_clocks[p].push_back(vc[p]);
        node.access = {};
        if (on_step) on_step(engine);
        continue;
      }
      if (la.valid && la.forwarded) {
        vc[p][p] += 1;  // served from the process's own buffer: local
        node.access = {};
        if (on_step) on_step(engine);
        continue;
      }
      if (la.valid && la.flush) {
        // Flush agent: ordered after the buffering store's snapshot.
        const std::uint32_t q = p - process_count;
        clock_join(vc[p], pending_clocks[q].front());
        pending_clocks[q].erase(pending_clocks[q].begin());
      }

      const DporAccess a{la.valid, la.addr, la.is_write};
      node.access = a;

      if (a.valid) {
        // Race rule: find earlier conflicting accesses not ordered before
        // p (by the happens-before of the trace so far) and plant
        // backtrack points where they were scheduled.
        DporAddrTrace& t = mem[a.addr];
        auto plant = [&](std::size_t at_index) {
          DporNode& site = path[at_index];
          const bool p_enabled = std::find(site.enabled.begin(),
                                           site.enabled.end(),
                                           p) != site.enabled.end();
          if (p_enabled) {
            site.backtrack.insert(p);
          } else {
            for (const std::uint32_t q : site.enabled) {
              site.backtrack.insert(q);
            }
          }
        };
        if (t.has_write && t.w_proc != p &&
            t.w_clock[t.w_proc] > vc[p][t.w_proc]) {
          plant(t.w_index);
        }
        if (a.is_write) {
          for (const auto& [q, entry] : t.reads) {
            if (q != p && entry.second[q] > vc[p][q]) plant(entry.first);
          }
        }

        // Update the happens-before clocks: this access is ordered after
        // every earlier dependent access (reads after the last write;
        // writes after the last write and the reads since it).
        DporClock& c = vc[p];
        if (t.has_write) clock_join(c, t.w_clock);
        if (a.is_write) {
          for (const auto& [q, entry] : t.reads) clock_join(c, entry.second);
        }
        c[p] += 1;
        if (a.is_write) {
          t.has_write = true;
          t.w_proc = p;
          t.w_index = depth;
          t.w_clock = c;
          t.reads.clear();
        } else {
          t.reads[p] = {depth, c};
        }
      } else {
        vc[p][p] += 1;  // label/work/final step: independent of everything
      }

      // Sleep propagation: processes whose recorded next access commutes
      // with this step stay asleep below it.
      std::vector<std::pair<std::uint32_t, DporAccess>> next_sleep;
      auto keep = [&](const std::pair<std::uint32_t, DporAccess>& e) {
        if (e.first == p) return;
        if (dpor_conflict(e.second, a)) return;
        next_sleep.push_back(e);
      };
      for (const auto& e : node.sleep) keep(e);
      for (const auto& e : node.explored) keep(e);
      active_sleep = std::move(next_sleep);

      if (on_step) on_step(engine);
    }

    if (sleep_blocked) {
      ++result.sleep_blocked;
    } else {
      if (on_done) on_done(engine);
      ++result.schedules_run;
    }

    // DFS backtrack: retire the deepest explored edge, then find the
    // deepest node with an untried, non-sleeping alternative.
    while (!path.empty()) {
      DporNode& v = path.back();
      if (v.done.insert(v.chosen).second) {
        v.explored.emplace_back(v.chosen, v.access);
      }
      std::uint32_t next = agent_count;
      for (const std::uint32_t q : v.backtrack) {
        if (v.done.contains(q)) continue;
        const bool asleep =
            std::any_of(v.sleep.begin(), v.sleep.end(),
                        [&](const auto& e) { return e.first == q; });
        if (asleep) continue;
        next = q;
        break;
      }
      if (next != agent_count) {
        v.chosen = next;
        break;
      }
      path.pop_back();
    }
  }
  return result;
}

}  // namespace msq::sim
