#include "sim/explore.hpp"

#include <memory>

namespace msq::sim {
namespace {

/// Lowest runnable process at or after `from`, wrapping; or process_count
/// if none.
std::uint32_t next_runnable(const Engine& engine, std::uint32_t from) {
  const std::uint32_t n = engine.process_count();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t candidate = (from + i) % n;
    if (!engine.done(candidate)) return candidate;
  }
  return n;
}

}  // namespace

std::uint64_t run_schedule(Engine& engine,
                           const std::vector<Preemption>& preemptions,
                           std::uint64_t max_steps,
                           const std::function<void()>& on_step) {
  std::uint32_t current = 0;
  std::uint64_t steps = 0;
  std::size_t next_preemption = 0;
  for (;;) {
    if (next_preemption < preemptions.size() &&
        steps == preemptions[next_preemption].at_step) {
      const std::uint32_t target = preemptions[next_preemption].to_process;
      ++next_preemption;
      if (target < engine.process_count() && !engine.done(target)) {
        current = target;
      }
    }
    current = next_runnable(engine, current);
    if (current == engine.process_count()) break;  // everything finished
    engine.step(current);
    ++steps;
    if (on_step) on_step();
    if (steps >= max_steps) break;  // blocked schedule (or runaway): stop
  }
  return steps;
}

ExploreResult explore_schedules(const ExploreConfig& config,
                                std::uint32_t process_count,
                                const std::function<Engine&()>& factory,
                                const std::function<void(Engine&)>& on_step,
                                const std::function<void(Engine&)>& on_done) {
  ExploreResult result;

  auto run_one = [&](const std::vector<Preemption>& preemptions) {
    Engine& engine = factory();
    run_schedule(engine, preemptions, config.max_steps_per_run,
                 [&] { if (on_step) on_step(engine); });
    if (on_done) on_done(engine);
    ++result.schedules_run;
    return result.schedules_run < config.max_schedules;
  };

  // Baseline: the preemption-free schedule fixes the step horizon L.
  std::uint64_t horizon = 0;
  {
    Engine& engine = factory();
    horizon = run_schedule(engine, {}, config.max_steps_per_run,
                           [&] { if (on_step) on_step(engine); });
    if (on_done) on_done(engine);
    ++result.schedules_run;
  }

  // k = 1: one forced switch at every (position, target).
  if (config.max_preemptions >= 1) {
    for (std::uint64_t s = 1; s < horizon; ++s) {
      for (std::uint32_t t = 0; t < process_count; ++t) {
        if (!run_one({{s, t}})) {
          result.budget_exhausted = true;
          return result;
        }
      }
    }
  }

  // k = 2: ordered pairs of switch points.
  if (config.max_preemptions >= 2) {
    for (std::uint64_t s1 = 1; s1 < horizon; ++s1) {
      for (std::uint64_t s2 = s1 + 1; s2 <= horizon; ++s2) {
        for (std::uint32_t t1 = 0; t1 < process_count; ++t1) {
          for (std::uint32_t t2 = 0; t2 < process_count; ++t2) {
            if (t1 == t2) continue;  // same-target pair adds nothing new
            if (!run_one({{s1, t1}, {s2, t2}})) {
              result.budget_exhausted = true;
              return result;
            }
          }
        }
      }
    }
  }

  // Deeper preemption bounds would go here; 2 suffices for every race in
  // the paper's catalogue (and the tests assert that).
  return result;
}

}  // namespace msq::sim
