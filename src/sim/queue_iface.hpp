// Interface of the simulated queue algorithms plus small shared helpers.
#pragma once

#include <cstdint>

#include "obs/counters.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace msq::sim {

/// dequeue() result meaning "queue was empty".
inline constexpr std::uint64_t kEmpty = ~0ull;

/// Abstract simulated queue; each operation is a coroutine advancing one
/// shared-memory access per engine step.
class SimQueue {
 public:
  virtual ~SimQueue() = default;
  /// False iff the simulated node pool is exhausted.
  virtual Task<bool> enqueue(Proc& p, std::uint64_t value) = 0;
  /// kEmpty iff the queue was observed empty.
  virtual Task<std::uint64_t> dequeue(Proc& p) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Walk the structure between steps and abort-with-message on a broken
  /// safety invariant (paper section 3.1).  Default: no structural check.
  virtual void check_invariants() const {}
};

/// Deterministic bounded exponential backoff expressed as work() cost, used
/// by every simulated retry loop (paper section 4's backoff).  Also the
/// knob for the backoff ablation (set max = 0 to disable).
class SimBackoff {
 public:
  explicit SimBackoff(double max = 1024) noexcept : max_(max) {}
  [[nodiscard]] double next() noexcept {
    const double w = window_;
    if (window_ < max_) window_ *= 2;
    if (max_ <= 0) return 1;  // backoff disabled: minimal retry cost, no wait
    MSQ_COUNT_N(kBackoffWait, static_cast<std::uint64_t>(w));
    return w;
  }

 private:
  double window_ = 4;
  double max_;
};

}  // namespace msq::sim
