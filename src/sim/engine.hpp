// The simulated multiprocessor: virtual processes (coroutines) advancing
// one shared-memory access per step under an engine-owned schedule.
//
// This is the substitute for the paper's 12-node SGI Challenge (DESIGN.md
// section 4).  Two modes share all algorithm code:
//
//  * Schedule-exploration mode (step_random / step): the engine picks which
//    process performs the next access -- seeded-random, round-robin or
//    fully directed.  Tests check safety invariants between steps, record
//    histories for the linearizability checker, and freeze() processes at
//    annotated pseudo-code lines to exercise the paper's liveness arguments
//    (section 3.3) and the published race conditions.
//
//  * Cost mode (run_cost_model): a discrete-event simulation.  Each virtual
//    processor has a clock; the engine always advances the
//    least-advanced processor, charging each access its coherence cost
//    (sim/cost_model.hpp).  Multiple processes per processor are
//    multiplexed with a preemption quantum, reproducing the paper's
//    multiprogrammed configurations (Figures 4 and 5).
//
// One step == one shared-memory access (read/write/CAS/FAA) or one work()
// episode.  The access is applied atomically at the step boundary, giving
// sequential consistency, the model the paper's pseudo-code assumes.
//
// Weak-memory mode (EngineConfig::weak_memory): every access additionally
// declares a check::MemOrder, and stores weaker than seq_cst go into a
// per-process FIFO store buffer instead of memory -- visible to the issuing
// process (store-to-load forwarding) but to nobody else until a separate
// FLUSH step publishes the oldest entry.  Flush steps are schedulable
// nondeterminism: the explorer (sim/explore.hpp) enumerates them the same
// way it enumerates process steps.  RMWs and seq_cst stores are fences:
// they refuse to execute until the issuing process's buffer has drained
// (each drained entry is its own visible step).  This is the TSO model --
// exactly x86's store-buffer relaxation.  With every access left at the
// default seq_cst the mode degenerates to the SC semantics above, which
// tests/sim_weak_memory_test.cpp asserts.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "check/race.hpp"
#include "port/prng.hpp"
#include "sim/cost_model.hpp"
#include "sim/memory.hpp"
#include "sim/task.hpp"

namespace msq::sim {

class Engine;

using check::MemOrder;

enum class OpKind : std::uint8_t { kRead, kWrite, kCas, kFaa, kSwap, kWork };

struct PendingOp {
  OpKind kind;
  Addr addr = 0;
  std::uint64_t operand_a = 0;  // write value / CAS expected / FAA delta
  std::uint64_t operand_b = 0;  // CAS desired
  double work_cost = 0;         // kWork only
  MemOrder order = MemOrder::kSeqCst;
};

/// Per-process facade passed into algorithm coroutines; its methods return
/// awaitables that suspend the coroutine for exactly one engine step.
class Proc {
 public:
  struct OpAwaiter {
    Engine* engine;
    std::uint32_t proc;
    PendingOp op;
    std::uint64_t result = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    std::uint64_t await_resume() const noexcept { return result; }
  };

  // Every access may declare the memory order its real C++ counterpart
  // uses (default seq_cst: the paper's SC model).  Orders are semantic only
  // under race_detect with SyncModel::kOrders (synchronizes-with edges) and
  // under EngineConfig::weak_memory (store buffering); otherwise ignored.
  [[nodiscard]] OpAwaiter read(Addr a,
                               MemOrder o = MemOrder::kSeqCst) noexcept {
    return {engine_, id_, {OpKind::kRead, a, 0, 0, 0, o}};
  }
  [[nodiscard]] OpAwaiter write(Addr a, std::uint64_t v,
                                MemOrder o = MemOrder::kSeqCst) noexcept {
    return {engine_, id_, {OpKind::kWrite, a, v, 0, 0, o}};
  }
  /// Returns the OLD value; the CAS succeeded iff old == expected.
  [[nodiscard]] OpAwaiter cas(Addr a, std::uint64_t expected,
                              std::uint64_t desired,
                              MemOrder o = MemOrder::kSeqCst) noexcept {
    return {engine_, id_, {OpKind::kCas, a, expected, desired, 0, o}};
  }
  /// fetch_and_add; returns the OLD value.
  [[nodiscard]] OpAwaiter faa(Addr a, std::uint64_t delta,
                              MemOrder o = MemOrder::kSeqCst) noexcept {
    return {engine_, id_, {OpKind::kFaa, a, delta, 0, 0, o}};
  }
  /// fetch_and_store (unconditional swap); returns the OLD value.
  [[nodiscard]] OpAwaiter swap(Addr a, std::uint64_t v,
                               MemOrder o = MemOrder::kSeqCst) noexcept {
    return {engine_, id_, {OpKind::kSwap, a, v, 0, 0, o}};
  }
  /// Local work of `cost` units (the paper's ~6us spin, backoff episodes).
  [[nodiscard]] OpAwaiter work(double cost) noexcept {
    return {engine_, id_, {OpKind::kWork, 0, 0, 0, cost}};
  }

  struct LabelAwaiter {
    Engine* engine;
    std::uint32_t proc;
    const char* label;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    void await_resume() const noexcept {}
  };

  /// Suspend at a labelled pseudo-code line (zero cost): after this step the
  /// process's label is `label` and its NEXT step executes the labelled
  /// operation.  freeze_at_label() therefore stalls a process after it has
  /// committed to an operation but before the operation takes effect --
  /// precisely the windows the paper's liveness argument (section 3.3) and
  /// the historical race conditions are about.
  [[nodiscard]] LabelAwaiter at(const char* label) noexcept {
    return {engine_, id_, label};
  }

  /// Tag the process without suspending (status only, not a stall point).
  void annotate(const char* label) noexcept;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] Engine& engine() noexcept { return *engine_; }

 private:
  friend class Engine;
  Proc(Engine* engine, std::uint32_t id) noexcept : engine_(engine), id_(id) {}

  Engine* engine_;
  std::uint32_t id_;
};

struct EngineConfig {
  std::uint32_t processors = 1;
  double quantum = std::numeric_limits<double>::infinity();  // preemption off
  CostParams cost{};
  std::uint64_t seed = 1;
  double jitter = 0;  // uniform extra cost in [0, jitter) per step
  // Happens-before race detection (check/race.hpp): every access is stamped
  // with a vector clock; sync_model declares which operations carry
  // release/acquire edges.  Off by default: stamping costs a map lookup per
  // access, and most tests want raw speed.
  bool race_detect = false;
  check::SyncModel sync_model = check::SyncModel::kRmw;
  // TSO store-buffer execution (see the header comment).  Exploration-mode
  // only: combining it with run_cost_model() is unsupported.  With it on,
  // done(id) additionally requires the process's buffer to have drained,
  // and step(id) on a finished-but-buffered process performs one flush.
  bool weak_memory = false;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const SimMemory& memory() const noexcept { return memory_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Create a virtual process pinned to `processor` and hand it a root
  /// coroutine built from its Proc facade.  The factory is invoked
  /// immediately; the coroutine body runs lazily, one step at a time.
  template <typename Factory>  // Factory: Task<void>(Proc&)
  std::uint32_t spawn(std::uint32_t processor, Factory&& factory) {
    const std::uint32_t id = static_cast<std::uint32_t>(processes_.size());
    auto proc = std::unique_ptr<Proc>(new Proc(this, id));
    processes_.push_back(std::make_unique<Process>());
    processes_.back()->facade = std::move(proc);
    processes_.back()->processor = processor;
    processes_.back()->root.emplace(factory(*processes_.back()->facade));
    assert(processor < config_.processors);
    return id;
  }

  // --- schedule-exploration interface -----------------------------------
  /// Advance process `id` by one step.  Returns false if it is done.
  bool step(std::uint32_t id);
  /// Advance a uniformly random runnable process; false when none remain.
  bool step_random();
  /// Run a random schedule to completion (bounded by `max_steps`).
  /// Returns true if every process finished.
  bool run_random(std::uint64_t max_steps = 100'000'000);

  void freeze(std::uint32_t id) { process(id).frozen = true; }
  void unfreeze(std::uint32_t id) { process(id).frozen = false; }
  /// Freeze `id` as soon as its annotation equals `label` (checked before
  /// each of its steps).  Pass nullptr to cancel.
  void freeze_at_label(std::uint32_t id, const char* label);

  // --- fault-injection interface (src/fault) -----------------------------
  /// Crash-stop failure: process `id` halts forever at its current step,
  /// mid-operation, and can never be revived (unlike freeze/unfreeze).  Its
  /// done() stays false; any shared state it half-updated stays exactly as
  /// the crash left it.  This is the paper's "process is halted or delayed"
  /// hypothesis made permanent (section 1's case for non-blocking progress).
  void crash(std::uint32_t id) { process(id).crashed = true; }
  [[nodiscard]] bool is_crashed(std::uint32_t id) const {
    return process(id).crashed;
  }
  /// Transient stall: process `id` declines the next `steps` engine steps
  /// (scheduling opportunities), then becomes runnable again by itself --
  /// a bounded delay, as opposed to crash()'s unbounded one.  Counters tick
  /// on every engine step, including idle ticks taken when every live
  /// process is stalled.
  void stall(std::uint32_t id, std::uint64_t steps) {
    process(id).stall_remaining = steps;
  }
  [[nodiscard]] bool is_stalled(std::uint32_t id) const {
    return process(id).stall_remaining > 0;
  }

  [[nodiscard]] bool done(std::uint32_t id) const {
    const Process& p = process(id);
    return p.finished && p.store_buffer.empty();
  }
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool runnable_exists() const;
  [[nodiscard]] const char* label(std::uint32_t id) const {
    return process(id).label;
  }
  [[nodiscard]] std::uint32_t process_count() const noexcept {
    return static_cast<std::uint32_t>(processes_.size());
  }

  // --- cost-model interface ----------------------------------------------
  /// Discrete-event run to completion.  Returns simulated elapsed time
  /// (max processor clock).  Requires every process to terminate.
  double run_cost_model();

  [[nodiscard]] std::uint64_t total_steps() const noexcept { return steps_; }
  [[nodiscard]] double clock_of_processor(std::uint32_t processor) const {
    return processors_.at(processor).clock;
  }

  // --- race-detection interface (check/race.hpp) --------------------------
  /// Reports collected so far (empty unless config.race_detect).
  [[nodiscard]] const check::RaceLog& races() const noexcept {
    return race_log_;
  }
  [[nodiscard]] check::RaceLog& races() noexcept { return race_log_; }

  /// The shared-memory access performed by the most recent step, if any
  /// (label suspensions, work episodes, idle stall ticks and final
  /// co_returns perform none).  The DPOR explorer uses this to build its
  /// dependence relation without reaching into the engine's internals.
  /// Weak-memory mode adds three refinements: a `buffered` store entered
  /// the issuing process's store buffer (not yet globally visible -- a
  /// LOCAL step for dependence purposes), a `forwarded` read was served
  /// from the process's own buffer (also local), and a `flush` write is a
  /// buffered store becoming globally visible (the step that conflicts).
  struct LastAccess {
    bool valid = false;
    OpKind kind = OpKind::kWork;
    Addr addr = 0;
    bool is_write = false;  // mutated the word (failed CAS is a read)
    MemOrder order = MemOrder::kSeqCst;
    bool buffered = false;
    bool forwarded = false;
    bool flush = false;
  };
  [[nodiscard]] const LastAccess& last_access() const noexcept {
    return last_access_;
  }

  // --- weak-memory interface (EngineConfig::weak_memory) ------------------
  /// Buffered stores of process `id` not yet globally visible.
  [[nodiscard]] std::size_t flush_pending(std::uint32_t id) const {
    return process(id).store_buffer.size();
  }
  /// Publish process `id`'s OLDEST buffered store as one engine step (the
  /// explorer schedules these as "flush agents").  Requires flush_pending.
  void flush_one(std::uint32_t id);
  /// Can `id` make PROGRAM progress this step?  False while a fence (RMW or
  /// seq_cst store) waits on the buffer to drain -- then only flush steps
  /// are enabled -- and false once the root coroutine finished.
  [[nodiscard]] bool can_advance(std::uint32_t id) const {
    const Process& p = process(id);
    return !p.finished && !p.crashed && !p.frozen &&
           !(p.has_pending && !p.store_buffer.empty());
  }

 private:
  friend struct Proc::OpAwaiter;
  friend struct Proc::LabelAwaiter;
  friend class Proc;

  /// One store sitting in a process's TSO buffer, waiting to be flushed.
  struct BufferedStore {
    Addr addr = 0;
    std::uint64_t value = 0;
    MemOrder order = MemOrder::kSeqCst;
    const char* label = "";  // pseudo-code line of the buffering store
  };

  struct Process {
    std::unique_ptr<Proc> facade;
    std::optional<Task<void>> root;
    std::coroutine_handle<> resume_point = nullptr;
    std::uint32_t processor = 0;
    bool started = false;
    bool finished = false;
    bool frozen = false;
    bool crashed = false;
    std::uint64_t stall_remaining = 0;
    const char* label = "";
    const char* freeze_label = nullptr;
    double last_step_cost = 0;
    // Weak-memory state: the FIFO store buffer, plus a fence op (RMW or
    // seq_cst store) parked until the buffer drains.  `pending_result`
    // points into the suspended OpAwaiter, whose frame stays alive across
    // the drain steps.
    std::vector<BufferedStore> store_buffer;
    bool has_pending = false;
    PendingOp pending_op{OpKind::kWork};
    std::uint64_t* pending_result = nullptr;

    [[nodiscard]] bool runnable() const noexcept {
      return !finished && !frozen && !crashed && stall_remaining == 0;
    }
  };

  struct Processor {
    double clock = 0;
    double quantum_used = 0;
    std::vector<std::uint32_t> procs;  // processes multiplexed here
    std::size_t current = 0;           // round-robin cursor
  };

  Process& process(std::uint32_t id) { return *processes_.at(id); }
  [[nodiscard]] const Process& process(std::uint32_t id) const {
    return *processes_.at(id);
  }

  /// Apply `op` to memory and charge its cost; called from await_suspend.
  std::uint64_t execute(std::uint32_t id, const PendingOp& op);

  /// Entry point from OpAwaiter::await_suspend: execute `op` now, or (weak
  /// mode, fence op, buffer nonempty) park it until the buffer drains.
  void submit(std::uint32_t id, const PendingOp& op, std::uint64_t* result);

  /// Does `op` require the issuing process's store buffer to be empty?
  [[nodiscard]] bool needs_drain(const PendingOp& op) const noexcept {
    if (!config_.weak_memory) return false;
    if (op.kind == OpKind::kCas || op.kind == OpKind::kFaa ||
        op.kind == OpKind::kSwap) {
      return true;  // RMWs are fences under TSO (x86 LOCK prefix)
    }
    return op.kind == OpKind::kWrite && op.order == MemOrder::kSeqCst;
  }

  /// Publish the oldest buffered store of `id` (one engine step).
  void flush_oldest(std::uint32_t id);

  /// Resume process `id` for one step (it must be runnable).
  void resume_one(std::uint32_t id);

  /// One engine step elapsed: tick down every live process's stall counter.
  void tick_stalls() noexcept;

  EngineConfig config_;
  SimMemory memory_;
  CostModel cost_model_;
  port::Xoshiro256 rng_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Processor> processors_;
  std::uint64_t steps_ = 0;
  check::RaceLog race_log_;
  std::optional<check::HbTracker> hb_;  // engaged iff config_.race_detect
  LastAccess last_access_{};
};

}  // namespace msq::sim
