// The two classic weak-memory litmus tests as simulated worlds, used by
// the memory-order mutation sweep and the weak-memory tests.
//
//  * SB (store buffering, Dekker's handshake): each process stores its own
//    flag then loads the peer's.  Under SC at least one process sees the
//    other's store; under TSO with non-seq_cst stores both loads can hit
//    before either buffer flushes and BOTH see zero.  This is the outcome
//    only store-buffer execution can produce -- no happens-before race is
//    involved (every access is atomic).
//
//  * MP (message passing): the producer writes plain data then releases a
//    flag; the consumer acquires the flag and, if set, reads the data.
//    TSO's FIFO buffers preserve this even relaxed, so the weakening is
//    invisible to execution -- but losing the release/acquire pair severs
//    the synchronizes-with edge and the hb tracker reports the plain data
//    race.  SB and MP together exercise both detection layers.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/mo_table.hpp"
#include "sim/task.hpp"

namespace msq::sim {

class SbLitmus {
 public:
  explicit SbLitmus(Engine& engine, const MoTable* mo = nullptr)
      : x_(engine.memory().alloc(1)),
        y_(engine.memory().alloc(1)),
        mo_store_(mo_resolve(mo, "sb.store_flag")),
        mo_load_(mo_resolve(mo, "sb.load_peer")) {}

  /// Process `who` (0 or 1) stores its flag, then loads the peer's.
  Task<void> run(Proc& p, int who) {
    const Addr mine = who == 0 ? x_ : y_;
    const Addr peer = who == 0 ? y_ : x_;
    co_await p.write(mine, 1, mo_store_);
    const std::uint64_t seen = co_await p.read(peer, mo_load_);
    r_[who] = seen;
  }

  /// The SC-forbidden outcome; assert !both_zero() after every execution.
  [[nodiscard]] bool both_zero() const noexcept {
    return r_[0] == 0 && r_[1] == 0;
  }

  [[nodiscard]] std::uint64_t result(int who) const noexcept { return r_[who]; }

 private:
  Addr x_;
  Addr y_;
  check::MemOrder mo_store_;
  check::MemOrder mo_load_;
  std::uint64_t r_[2] = {1, 1};
};

class MpLitmus {
 public:
  explicit MpLitmus(Engine& engine, const MoTable* mo = nullptr)
      : data_(engine.memory().alloc(1)),
        flag_(engine.memory().alloc(1)),
        mo_store_(mo_resolve(mo, "mp.flag_store")),
        mo_load_(mo_resolve(mo, "mp.flag_load")) {}

  Task<void> producer(Proc& p) {
    co_await p.write(data_, 42, check::MemOrder::kPlain);
    co_await p.write(flag_, 1, mo_store_);
  }

  Task<void> consumer(Proc& p) {
    const std::uint64_t flag = co_await p.read(flag_, mo_load_);
    if (flag == 1) {
      const std::uint64_t data = co_await p.read(data_, check::MemOrder::kPlain);
      observed_ = data;
      saw_flag_ = true;
    }
  }

  /// Value-level check: a consumer that saw the flag must see the data.
  [[nodiscard]] bool stale_data() const noexcept {
    return saw_flag_ && observed_ != 42;
  }

 private:
  Addr data_;
  Addr flag_;
  check::MemOrder mo_store_;
  check::MemOrder mo_load_;
  std::uint64_t observed_ = 0;
  bool saw_flag_ = false;
};

}  // namespace msq::sim
