// Single-lock queue baseline as a simulated step machine: one TATAS lock
// (with bounded exponential backoff) around a dummy-headed list.  The free
// list lives under the same lock, so allocation is plain reads/writes.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/queue_iface.hpp"
#include "sim/sim_lock.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimSingleLockQueue final : public SimQueue {
 public:
  SimSingleLockQueue(Engine& engine, std::uint32_t capacity,
                     double backoff_max = 1024)
      : engine_(engine),
        capacity_(capacity + 1),
        nodes_(engine.memory().alloc((capacity + 1) * 2)),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        free_top_(engine.memory().alloc(1)),
        lock_(engine, backoff_max) {
    SimMemory& mem = engine.memory();
    // Thread nodes 1..capacity onto a plain free list; node 0 is the dummy.
    std::uint64_t top = tagged::kNullIndex;
    for (std::uint32_t i = 1; i < capacity_; ++i) {
      mem.word(next_addr(i)) = top;
      top = i;
    }
    mem.word(free_top_) = top;
    mem.word(next_addr(0)) = tagged::kNullIndex;
    mem.word(head_) = 0;
    mem.word(tail_) = 0;
  }

  [[nodiscard]] const char* name() const noexcept override { return "single lock"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    co_await lock_.lock(p);
    co_await p.at("LOCK_HELD");
    // allocate from the plain free list
    const std::uint64_t node = co_await p.read(free_top_);
    if (node == tagged::kNullIndex) {
      co_await lock_.unlock(p);
      co_return false;
    }
    co_await p.write(free_top_, co_await p.read(next_addr(node)));
    co_await p.write(value_addr(node), value);
    co_await p.write(next_addr(node), tagged::kNullIndex);
    const std::uint64_t tail = co_await p.read(tail_);
    co_await p.write(next_addr(tail), node);
    co_await p.write(tail_, node);
    co_await lock_.unlock(p);
    co_return true;
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    co_await lock_.lock(p);
    co_await p.at("LOCK_HELD");
    const std::uint64_t dummy = co_await p.read(head_);
    const std::uint64_t first = co_await p.read(next_addr(dummy));
    if (first == tagged::kNullIndex) {
      co_await lock_.unlock(p);
      co_return kEmpty;
    }
    const std::uint64_t value = co_await p.read(value_addr(first));
    co_await p.write(head_, first);
    // free the dummy onto the plain free list (still under the lock)
    co_await p.write(next_addr(dummy), co_await p.read(free_top_));
    co_await p.write(free_top_, dummy);
    co_await lock_.unlock(p);
    co_return value;
  }

  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = mem.peek(head_);
    std::uint32_t hops = 0;
    for (std::uint64_t it = head; it != tagged::kNullIndex;
         it = mem.peek(next_addr(it))) {
      if (++hops > capacity_ + 1) {
        throw std::runtime_error("single-lock invariant: list not connected");
      }
    }
  }

 private:
  [[nodiscard]] Addr value_addr(std::uint64_t node) const noexcept {
    return nodes_ + static_cast<Addr>(node) * 2;
  }
  [[nodiscard]] Addr next_addr(std::uint64_t node) const noexcept {
    return nodes_ + static_cast<Addr>(node) * 2 + 1;
  }

  Engine& engine_;
  std::uint32_t capacity_;
  Addr nodes_;
  Addr head_;
  Addr tail_;
  Addr free_top_;
  SimTatasLock lock_;
};

}  // namespace msq::sim
