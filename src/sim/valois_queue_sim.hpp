// Valois's reference-counted non-blocking queue as a simulated step
// machine, mirroring queues/valois_queue.hpp + mem/refcount_pool.hpp
// (TR 599-corrected).  Node layout: [value, next, refct] where refct is
// (count << 1 | claim).
//
// This is deliberately the most memory-traffic-heavy algorithm in the
// simulator: every SafeRead is read + FAA + re-read, every Release a CAS
// loop -- which is why the paper calls it "comparatively inefficient" yet
// still worth benchmarking (it stays non-blocking under multiprogramming).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/mo_table.hpp"
#include "sim/queue_iface.hpp"
#include "sim/sim_freelist.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {

class SimValoisQueue final : public SimQueue {
 public:
  // `mo` overrides the annotated memory orders (mutation sweeps); the
  // defaults mirror queues/valois_queue.hpp + mem/refcount_pool.hpp --
  // rationale in sim/mo_table.hpp.
  SimValoisQueue(Engine& engine, std::uint32_t capacity,
                 double backoff_max = 1024, const MoTable* mo = nullptr)
      : engine_(engine),
        pool_(engine, capacity + 1, /*words_per_node=*/3, mo),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        backoff_max_(backoff_max) {
    mo_.init_value = mo_resolve(mo, "valois.init_value");
    mo_.init_next = mo_resolve(mo, "valois.init_next");
    mo_.ptr_read = mo_resolve(mo, "valois.ptr_read");
    mo_.ptr_reread = mo_resolve(mo, "valois.ptr_reread");
    mo_.refct_faa = mo_resolve(mo, "valois.refct_faa");
    mo_.refct_cas = mo_resolve(mo, "valois.refct_cas");
    mo_.link_cas = mo_resolve(mo, "valois.link_cas");
    mo_.value_read = mo_resolve(mo, "valois.value_read");
    mo_.reclaim_next = mo_resolve(mo, "valois.reclaim_next");
    SimMemory& mem = engine.memory();
    // All nodes start claimed (in the free list).
    for (std::uint32_t i = 0; i < pool_.capacity(); ++i) {
      mem.word(refct_addr(i)) = 1;
    }
    // Pop the dummy raw; count 2 = Head link + Tail link, claim clear.
    const auto free_top =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.free_top_addr()));
    const std::uint32_t dummy = free_top.index();
    mem.word(pool_.free_top_addr()) =
        tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(dummy))).bits();
    mem.word(pool_.next_addr(dummy)) = tagged::TaggedIndex{}.bits();
    mem.word(refct_addr(dummy)) = 4;  // two references
    mem.word(head_) = tagged::TaggedIndex(dummy, 0).bits();
    mem.word(tail_) = tagged::TaggedIndex(dummy, 0).bits();
  }

  [[nodiscard]] const char* name() const noexcept override { return "Valois"; }

  Task<bool> enqueue(Proc& p, std::uint64_t value) override {
    const std::uint32_t node = co_await allocate(p);
    if (node == tagged::kNullIndex) co_return false;
    co_await p.write(pool_.value_addr(node), value, mo_.init_value);
    co_await p.write(pool_.next_addr(node), tagged::TaggedIndex{}.bits(),
                     mo_.init_next);

    SimBackoff backoff(backoff_max_);
    for (;;) {
      const auto tail = co_await safe_read(p, tail_);
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(tail.index()), mo_.ptr_read));
      if (next.is_null()) {
        co_await p.at("V_LINK");
        const bool linked =
            co_await rc_cas(p, pool_.next_addr(tail.index()), next, node);
        if (linked) {
          // Single attempt to swing Tail; failure lets Tail lag (safely,
          // thanks to the reference counts).
          co_await rc_cas(p, tail_, tail, node);
          co_await release(p, tail.index());
          break;
        }
        co_await p.work(backoff.next());
      } else {
        co_await rc_cas(p, tail_, tail, next.index());  // help Tail forward
      }
      co_await release(p, tail.index());
    }
    co_await release(p, node);  // drop the allocation reference
    co_return true;
  }

  Task<std::uint64_t> dequeue(Proc& p) override {
    SimBackoff backoff(backoff_max_);
    for (;;) {
      const auto head = co_await safe_read(p, head_);
      const auto first = co_await safe_read_cell(p, pool_.next_addr(head.index()));
      if (first.is_null()) {
        co_await release(p, head.index());
        co_return kEmpty;
      }
      co_await p.at("V_SWING");
      const bool swung = co_await rc_cas(p, head_, head, first.index());
      if (swung) {
        const std::uint64_t value =
            co_await p.read(pool_.value_addr(first.index()), mo_.value_read);
        co_await release(p, head.index());
        co_await release(p, first.index());
        co_return value;
      }
      co_await release(p, head.index());
      co_await release(p, first.index());
      co_await p.work(backoff.next());
    }
  }

  void check_invariants() const override {
    const SimMemory& mem = engine_.memory();
    const auto head = tagged::TaggedIndex::from_bits(mem.peek(head_));
    const auto tail = tagged::TaggedIndex::from_bits(mem.peek(tail_));
    std::uint32_t hops = 0;
    for (auto it = head; !it.is_null();
         it = tagged::TaggedIndex::from_bits(mem.peek(pool_.next_addr(it.index())))) {
      if (++hops > pool_.capacity() + 1) {
        throw std::runtime_error("Valois invariant: list not connected");
      }
    }
    // Nodes referenced by Head/Tail must be live (claim bit clear, count>0).
    for (const auto ptr : {head, tail}) {
      const std::uint64_t rc = mem.peek(refct_addr(ptr.index()));
      if ((rc & 1) != 0 || rc < 2) {
        throw std::runtime_error("Valois invariant: live pointer to claimed node");
      }
    }
  }

 private:
  [[nodiscard]] Addr refct_addr(std::uint32_t node) const noexcept {
    return pool_.extra_addr(node, 0);
  }

  /// Allocate with the TR 599 claim-clearing add (+2 ref, -1 claim).
  Task<std::uint32_t> allocate(Proc& p) {
    const std::uint32_t node = co_await pool_.allocate(p);
    if (node != tagged::kNullIndex) {
      co_await p.faa(refct_addr(node), 1, mo_.refct_faa);
    }
    co_return node;
  }

  Task<tagged::TaggedIndex> safe_read(Proc& p, Addr shared_ptr_cell) {
    co_return co_await safe_read_cell(p, shared_ptr_cell);
  }

  /// Valois SafeRead: increment-then-revalidate.
  Task<tagged::TaggedIndex> safe_read_cell(Proc& p, Addr cell) {
    for (;;) {
      const auto seen = tagged::TaggedIndex::from_bits(
          co_await p.read(cell, mo_.ptr_read));
      if (seen.is_null()) co_return seen;
      co_await p.faa(refct_addr(seen.index()), 2, mo_.refct_faa);
      const std::uint64_t again = co_await p.read(cell, mo_.ptr_reread);
      if (again == seen.bits()) co_return seen;
      co_await release(p, seen.index());
    }
  }

  /// DecrementAndTestAndSet + recursive reclamation.
  Task<void> release(Proc& p, std::uint32_t node) {
    if (node == tagged::kNullIndex) co_return;
    std::uint32_t current = node;
    for (;;) {  // iterative tail-recursion over the reclamation chain
      bool reclaim = false;
      for (;;) {
        // relaxed: optimistic first read; the CAS below validates and orders
        const std::uint64_t old =
            co_await p.read(refct_addr(current), check::MemOrder::kRelaxed);
        const std::uint64_t desired = (old == 2) ? 1 : old - 2;
        const std::uint64_t swapped = co_await p.cas(
            refct_addr(current), old, desired, mo_.refct_cas);
        if (swapped == old) {
          reclaim = (old == 2);
          break;
        }
      }
      if (!reclaim) co_return;
      // Sole owner of a dead node: grab its outgoing link, recycle it,
      // then release the link target (the pinning cascade).
      const auto next = tagged::TaggedIndex::from_bits(
          co_await p.read(pool_.next_addr(current), mo_.reclaim_next));
      co_await pool_.free(p, current);
      if (next.is_null()) co_return;
      current = next.index();
    }
  }

  /// CAS of a shared link with CopyRef/Release bookkeeping.
  Task<bool> rc_cas(Proc& p, Addr cell, tagged::TaggedIndex expected,
                    std::uint32_t new_index) {
    co_await p.faa(refct_addr(new_index), 2,
                   mo_.refct_faa);  // reference for the new link
    const std::uint64_t old = co_await p.cas(
        cell, expected.bits(), expected.successor(new_index).bits(),
        mo_.link_cas);
    if (old == expected.bits()) {
      if (!expected.is_null()) co_await release(p, expected.index());
      co_return true;
    }
    co_await release(p, new_index);
    co_return false;
  }

  struct Orders {
    check::MemOrder init_value, init_next, ptr_read, ptr_reread;
    check::MemOrder refct_faa, refct_cas, link_cas, value_read, reclaim_next;
  };

  Engine& engine_;
  SimNodePool pool_;
  Addr head_;
  Addr tail_;
  double backoff_max_;
  Orders mo_{};
};

}  // namespace msq::sim
