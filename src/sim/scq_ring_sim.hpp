// Simulated SCQ index ring, mirroring queues/scq_queue.hpp::ScqRing
// op-for-op so DPOR schedules over this model transfer to the real code.
//
// Word layout (simulated memory):
//   entries_[0..2*half)  -- packed {cycle[63:32], unsafe[31], index[30:0]}
//   head_, tail_         -- FAA ticket counters
//   threshold_           -- int64 search budget, stored as two's-complement
//                           in the u64 word (faa with ~0ull decrements)
//
// Two deliberate divergences from the real header, both annotated inline:
//  * the consume fetch_or becomes a CAS loop (the engine has no fetch_or;
//    equivalent because only the unsafe bit can change under our feet),
//  * `threshold_enabled=false` removes the budget entirely -- the knob
//    tests/sim_scq_test.cpp uses to EXHIBIT the livelock the threshold
//    exists to kill.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/mo_table.hpp"
#include "sim/task.hpp"

namespace msq::sim {

class SimScqRing {
 public:
  static constexpr std::uint32_t kBottom = 0x7FFFFFFFu;

  /// Per-dequeue progress accounting for the threshold-bound proof: the
  /// engine runs coroutines cooperatively on one OS thread, so plain
  /// (non-simulated) members are race-free.
  struct Stats {
    std::uint64_t last_deq_rounds = 0;  // FAA rounds of the latest dequeue
    std::uint64_t max_deq_rounds = 0;   // worst dequeue seen on this ring
  };

  // `mo` overrides the annotated orders (mutation sweeps); defaults mirror
  // queues/scq_queue.hpp -- rationale per site in sim/mo_table.hpp.
  SimScqRing(Engine& engine, std::uint32_t half, bool full,
             const MoTable* mo = nullptr, bool threshold_enabled = true)
      : half_(half),
        size_(half * 2),
        mask_(size_ - 1),
        order_(log2_pow2(size_)),
        rot_(order_ < kMaxRot ? order_ : kMaxRot),
        threshold_init_(3 * static_cast<std::int64_t>(half) - 1),
        threshold_enabled_(threshold_enabled),
        entries_(engine.memory().alloc(size_)),
        head_(engine.memory().alloc(1)),
        tail_(engine.memory().alloc(1)),
        threshold_(engine.memory().alloc(1)),
        mo_enq_faa_tail_(mo_resolve(mo, "scq.enq_faa_tail")),
        mo_enq_entry_load_(mo_resolve(mo, "scq.enq_entry_load")),
        mo_enq_head_load_(mo_resolve(mo, "scq.enq_head_load")),
        mo_enq_cas_(mo_resolve(mo, "scq.enq_cas")),
        mo_threshold_check_(mo_resolve(mo, "scq.threshold_check")),
        mo_threshold_store_(mo_resolve(mo, "scq.threshold_store")),
        mo_threshold_faa_(mo_resolve(mo, "scq.threshold_faa")),
        mo_deq_faa_head_(mo_resolve(mo, "scq.deq_faa_head")),
        mo_deq_entry_load_(mo_resolve(mo, "scq.deq_entry_load")),
        mo_deq_consume_or_(mo_resolve(mo, "scq.deq_consume_or")),
        mo_deq_mark_cas_(mo_resolve(mo, "scq.deq_mark_cas")),
        mo_deq_tail_load_(mo_resolve(mo, "scq.deq_tail_load")),
        mo_catchup_cas_(mo_resolve(mo, "scq.catchup_cas")) {
    // Construction is single-site: raw memory writes, no simulated cost
    // (matches the real constructor's relaxed stores).
    SimMemory& mem = engine.memory();
    for (std::uint32_t i = 0; i < size_; ++i) {
      mem.word(entries_ + i) = make_entry(0xFFFFFFFFu, true, kBottom);
    }
    mem.word(head_) = 0;
    mem.word(tail_) = 0;
    if (full) {
      for (std::uint32_t i = 0; i < half_; ++i) {
        mem.word(entries_ + remap(i)) = make_entry(0, true, i);
      }
      mem.word(tail_) = half_;
      mem.word(threshold_) = static_cast<std::uint64_t>(threshold_init_);
    } else {
      mem.word(threshold_) = static_cast<std::uint64_t>(std::int64_t{-1});
    }
  }

  /// Deposit `idx`.  `max_rounds` bounds the FAA-retry loop so DPOR worlds
  /// that overfill the ring (or race a lagging consumer) stay finite;
  /// 0 = unbounded, like the real code.  Returns false iff the budget ran
  /// out with the deposit still pending.
  Task<bool> enqueue(Proc& p, std::uint32_t idx, std::uint32_t max_rounds = 0) {
    for (std::uint32_t round = 0;; ++round) {
      if (max_rounds != 0 && round == max_rounds) co_return false;
      const std::uint64_t t = co_await p.faa(tail_, 1, mo_enq_faa_tail_);
      const Addr slot = entries_ + remap(t);
      const std::uint32_t cycle = ticket_cycle(t);
      std::uint64_t e = co_await p.read(slot, mo_enq_entry_load_);
      for (;;) {
        if (cycle_less(entry_cycle(e), cycle) && entry_idx(e) == kBottom &&
            (entry_safe(e) ||
             co_await p.read(head_, mo_enq_head_load_) <= t)) {
          const std::uint64_t seen = co_await p.cas(
              slot, e, make_entry(cycle, true, idx), mo_enq_cas_);
          if (seen != e) {
            e = seen;
            continue;  // entry changed: re-test the same entry
          }
          if (threshold_enabled_) {
            const auto th = static_cast<std::int64_t>(
                co_await p.read(threshold_, mo_threshold_check_));
            if (th != threshold_init_) {
              co_await p.write(threshold_,
                               static_cast<std::uint64_t>(threshold_init_),
                               mo_threshold_store_);
            }
          }
          co_return true;
        }
        break;  // not depositable this cycle: take a new ticket
      }
    }
  }

  /// Take an index, or kBottom if the ring is (observably) empty.
  Task<std::uint32_t> dequeue(Proc& p) {
    if (threshold_enabled_) {
      const auto th = static_cast<std::int64_t>(
          co_await p.read(threshold_, mo_threshold_check_));
      if (th < 0) co_return kBottom;
    }
    std::uint64_t rounds = 0;
    for (;;) {
      ++rounds;
      const std::uint64_t h = co_await p.faa(head_, 1, mo_deq_faa_head_);
      const Addr slot = entries_ + remap(h);
      const std::uint32_t cycle = ticket_cycle(h);
      std::uint64_t e = co_await p.read(slot, mo_deq_entry_load_);
      for (;;) {
        if (entry_cycle(e) == cycle) {
          // Real code: fetch_or(kIdxMask).  The engine has no fetch_or, so
          // CAS until it lands; between our load and the CAS only LATER
          // dequeue tickets can touch a cycle-matching occupied entry, and
          // all they can do is set the unsafe bit -- the index bits stay
          // ours, so retrying with the seen value is the same fetch_or.
          for (;;) {
            const std::uint64_t seen =
                co_await p.cas(slot, e, e | kIdxMask, mo_deq_consume_or_);
            if (seen == e) break;
            e = seen;
          }
          note_rounds(rounds);
          co_return entry_idx(e);
        }
        if (cycle_less(entry_cycle(e), cycle)) {
          const std::uint64_t desired =
              entry_idx(e) == kBottom
                  ? make_entry(cycle, entry_safe(e), kBottom)
                  : (e | kUnsafeBit);
          const std::uint64_t seen =
              co_await p.cas(slot, e, desired, mo_deq_mark_cas_);
          if (seen != e) {
            e = seen;
            continue;  // entry changed: re-test (it may now match our cycle)
          }
        }
        const std::uint64_t t = co_await p.read(tail_, mo_deq_tail_load_);
        if (t <= h + 1) {
          co_await catch_up(p, t, h + 1);
          if (threshold_enabled_) {
            (void)co_await p.faa(threshold_, ~0ull, mo_threshold_faa_);
          }
          note_rounds(rounds);
          co_return kBottom;
        }
        if (threshold_enabled_) {
          const auto prior = static_cast<std::int64_t>(
              co_await p.faa(threshold_, ~0ull, mo_threshold_faa_));
          if (prior <= 0) {
            note_rounds(rounds);
            co_return kBottom;  // search budget exhausted
          }
        }
        break;  // keep scanning with a new ticket
      }
    }
  }

  [[nodiscard]] std::uint32_t half() const noexcept { return half_; }
  [[nodiscard]] std::int64_t threshold_init() const noexcept {
    return threshold_init_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Raw-word peeks for test assertions (no simulated cost).
  [[nodiscard]] std::uint64_t peek_head(const Engine& e) const {
    return e.memory().peek(head_);
  }
  [[nodiscard]] std::uint64_t peek_tail(const Engine& e) const {
    return e.memory().peek(tail_);
  }
  [[nodiscard]] std::int64_t peek_threshold(const Engine& e) const {
    return static_cast<std::int64_t>(e.memory().peek(threshold_));
  }

  /// Pre-arm the search budget as if a deposit had just happened (models
  /// "some earlier enqueue/dequeue pair completed"); construction-time
  /// only, raw write.
  void arm_threshold(Engine& e) const {
    e.memory().word(threshold_) = static_cast<std::uint64_t>(threshold_init_);
  }

 private:
  static constexpr std::uint64_t kIdxMask = 0x7FFFFFFFull;
  static constexpr std::uint64_t kUnsafeBit = 0x80000000ull;
  static constexpr std::uint32_t kMaxRot = 4;

  static constexpr std::uint64_t make_entry(std::uint32_t cycle, bool safe,
                                            std::uint32_t idx) noexcept {
    return (static_cast<std::uint64_t>(cycle) << 32) |
           (safe ? 0ull : kUnsafeBit) | idx;
  }
  static constexpr std::uint32_t entry_cycle(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e >> 32);
  }
  static constexpr bool entry_safe(std::uint64_t e) noexcept {
    return (e & kUnsafeBit) == 0;
  }
  static constexpr std::uint32_t entry_idx(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e & kIdxMask);
  }
  static constexpr bool cycle_less(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  static constexpr std::uint32_t log2_pow2(std::uint32_t n) noexcept {
    std::uint32_t l = 0;
    while ((1u << l) < n) ++l;
    return l;
  }

  [[nodiscard]] std::uint32_t ticket_cycle(std::uint64_t ticket) const
      noexcept {
    return static_cast<std::uint32_t>(ticket >> order_);
  }
  [[nodiscard]] std::uint32_t remap(std::uint64_t ticket) const noexcept {
    const std::uint32_t i = static_cast<std::uint32_t>(ticket) & mask_;
    return ((i << rot_) | (i >> (order_ - rot_))) & mask_;
  }

  Task<void> catch_up(Proc& p, std::uint64_t t, std::uint64_t h) {
    for (;;) {
      const std::uint64_t seen = co_await p.cas(tail_, t, h, mo_catchup_cas_);
      if (seen == t) co_return;
      h = co_await p.read(head_, mo_enq_head_load_ /*the head-word load site*/);
      t = co_await p.read(tail_, mo_deq_tail_load_);
      if (t >= h) co_return;
    }
  }

  void note_rounds(std::uint64_t rounds) noexcept {
    stats_.last_deq_rounds = rounds;
    if (rounds > stats_.max_deq_rounds) stats_.max_deq_rounds = rounds;
  }

  std::uint32_t half_;
  std::uint32_t size_;
  std::uint32_t mask_;
  std::uint32_t order_;
  std::uint32_t rot_;
  std::int64_t threshold_init_;
  bool threshold_enabled_;
  Addr entries_;
  Addr head_;
  Addr tail_;
  Addr threshold_;
  check::MemOrder mo_enq_faa_tail_;
  check::MemOrder mo_enq_entry_load_;
  check::MemOrder mo_enq_head_load_;
  check::MemOrder mo_enq_cas_;
  check::MemOrder mo_threshold_check_;
  check::MemOrder mo_threshold_store_;
  check::MemOrder mo_threshold_faa_;
  check::MemOrder mo_deq_faa_head_;
  check::MemOrder mo_deq_entry_load_;
  check::MemOrder mo_deq_consume_or_;
  check::MemOrder mo_deq_mark_cas_;
  check::MemOrder mo_deq_tail_load_;
  check::MemOrder mo_catchup_cas_;
  Stats stats_;
};

}  // namespace msq::sim
