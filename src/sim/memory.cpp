#include "sim/memory.hpp"

namespace msq::sim {

Addr sim::SimMemory::alloc(std::uint32_t words) {
  const Addr base = static_cast<Addr>(words_.size());
  words_.resize(words_.size() + words, 0);
  return base;
}

}  // namespace msq::sim
