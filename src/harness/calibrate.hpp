// Calibration of the "other work" spin loop.
//
// The paper inserts ~6 microseconds of empty-loop spinning between queue
// operations and later subtracts "the time required for one processor to
// complete the 'other work' from the total time reported in the figures".
// To do the same we must know how many spin_work() iterations one
// microsecond is on this machine.
#pragma once

#include <cstdint>

namespace msq::harness {

/// Measured iterations-per-microsecond of port::spin_work on this host.
/// Deterministic enough for benchmarking (median of several trials).
[[nodiscard]] double spin_iters_per_us();

/// Iterations equivalent to `us` microseconds (the paper's 6).
[[nodiscard]] std::uint64_t spin_iters_for_us(double us);

}  // namespace msq::harness
