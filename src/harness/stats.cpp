#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace msq::harness {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  // Even n: average the two middle samples (the upper-middle alone biases
  // the median high on small bench sample sets).
  const std::size_t mid = samples.size() / 2;
  s.median = (samples.size() % 2 == 0)
                 ? (samples[mid - 1] + samples[mid]) / 2.0
                 : samples[mid];
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace msq::harness
