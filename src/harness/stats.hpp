// Small statistics helpers for repeated benchmark runs.
#pragma once

#include <cstddef>
#include <vector>

namespace msq::harness {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  std::size_t n = 0;
};

[[nodiscard]] Summary summarize(std::vector<double> samples);

}  // namespace msq::harness
