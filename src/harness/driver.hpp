// The paper's benchmark loop (section 4), generalised over queue type.
//
// "All the experiments employ an initially-empty queue to which processes
//  perform a series of enqueue and dequeue operations.  Each process
//  enqueues an item, does 'other work', dequeues an item, does 'other
//  work', and repeats.  With p processes, each process executes this loop
//  floor(10^6/p) or ceil(10^6/p) times, for a total of one million enqueues
//  and dequeues. ... We subtracted the time required for one processor to
//  complete the 'other work' from the total time."
//
// The driver reproduces that loop with std::jthread workers, optionally
// recording an operation history for the linearizability checkers.  On this
// host (a single hardware core) any p > 1 run is inherently multiprogrammed;
// the simulator (src/sim) provides the dedicated-machine curves.
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "fault/watchdog.hpp"
#include "obs/histogram.hpp"
#include "port/clock.hpp"
#include "port/cpu.hpp"
#include "port/spin_work.hpp"
#include "queues/queue_concept.hpp"

namespace msq::harness {

struct WorkloadConfig {
  std::uint32_t threads = 2;
  std::uint64_t total_pairs = 1'000'000;  // the paper's 10^6
  std::uint64_t other_work_iters = 0;     // spin between ops (see calibrate)
  bool record_history = false;            // per-op timestamps + event logs
  bool record_latency = false;            // per-op ns histograms (obs)
  /// Pin worker t to CPU (t mod hardware_concurrency).  Dedicated-mode
  /// benches stop migrating between cores mid-run; multiprogrammed runs
  /// (threads > cores) keep it off so the scheduler can do its job.
  bool pin_threads = false;
  /// Deadline for the whole parallel phase; 0 = no watchdog.  A wedged run
  /// (deadlock, livelock, a faulted thread that never comes back) aborts
  /// loudly with the workload name instead of hanging the caller forever.
  std::chrono::milliseconds watchdog_deadline{0};
};

struct WorkloadResult {
  double elapsed_seconds = 0;  // wall time of the parallel phase
  double net_seconds = 0;      // elapsed minus one processor's "other work"
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;        // successful
  std::uint64_t empty_dequeues = 0;  // observed-empty results
  std::uint64_t enqueue_failures = 0;  // pool exhausted (retried)
  std::vector<check::ThreadLog> logs;  // filled iff record_history
  obs::Histogram enqueue_latency_ns;   // filled iff record_latency
  obs::Histogram dequeue_latency_ns;   // filled iff record_latency
};

/// Time for one processor to execute `pairs` iterations of the loop's two
/// "other work" spins (measured, memoised per iteration count).
[[nodiscard]] double other_work_seconds(std::uint64_t iters_per_spin,
                                        double pairs);

/// Pin the calling thread to `cpu` (mod the online CPU count).  Returns
/// false (and leaves affinity untouched) on platforms without
/// pthread_setaffinity_np or when the syscall is refused -- pinning is an
/// optimisation, never a correctness requirement.
bool pin_current_thread(std::uint32_t cpu) noexcept;

/// Open-loop pacing hook (src/scenario): wait until port::now_ns() reaches
/// `deadline_ns`, yielding rather than spinning so a single-core host can
/// run the consumers this thread is pacing against.  Returns the lateness
/// in nanoseconds (0 when the deadline was met; positive when the caller
/// fell behind schedule and the wait was a no-op).  Lateness is what the
/// coordinated-omission-safe drivers record: the op is stamped with the
/// intended deadline, never with the late return time.
std::int64_t await_deadline_ns(std::int64_t deadline_ns) noexcept;

/// Run the paper's loop against `queue`.  The queue must hold std::uint64_t
/// values (the harness encodes producer/sequence in them).
template <queues::ConcurrentQueue Q>
WorkloadResult run_workload(Q& queue, const WorkloadConfig& config) {
  const std::uint32_t p = config.threads;
  WorkloadResult result;
  result.logs.reserve(p);
  for (std::uint32_t t = 0; t < p; ++t) result.logs.emplace_back(t);

  // share-ok: each worker touches these once at exit (locals carry the hot
  // path), so false sharing costs nothing measurable here
  std::atomic<std::uint64_t> enqueues{0};
  std::atomic<std::uint64_t> dequeues{0};  // share-ok: see above
  std::atomic<std::uint64_t> empty_dequeues{0};  // share-ok: see above
  std::atomic<std::uint64_t> enqueue_failures{0};  // share-ok: see above
  std::barrier start_barrier(static_cast<std::ptrdiff_t>(p) + 1);

  // Per-thread shards, merged after the join: Histogram is deliberately
  // non-atomic (see obs/histogram.hpp), so each worker records privately.
  struct LatencyShard {
    obs::Histogram enqueue_ns;
    obs::Histogram dequeue_ns;
  };
  std::vector<LatencyShard> latency(config.record_latency ? p : 0);

  auto worker = [&](std::uint32_t thread_id) {
    // floor or ceil of total/p so the totals add up exactly, as in the paper.
    const std::uint64_t pairs =
        config.total_pairs / p + (thread_id < config.total_pairs % p ? 1 : 0);
    check::ThreadLog& log = result.logs[thread_id];
    if (config.record_history) log.reserve(2 * pairs);
    const bool timed = config.record_history || config.record_latency;

    std::uint64_t local_enq = 0, local_deq = 0, local_empty = 0, local_fail = 0;
    if (config.pin_threads) pin_current_thread(thread_id);
    start_barrier.arrive_and_wait();

    for (std::uint64_t i = 0; i < pairs; ++i) {
      // enqueue an item ...
      const std::uint64_t value = check::encode_value(thread_id, i);
      const std::int64_t enq_inv = timed ? port::now_ns() : 0;
      while (!queue.try_enqueue(value)) {
        ++local_fail;  // pool exhausted: another thread must dequeue first
        port::cpu_relax();
      }
      ++local_enq;
      if (timed) {
        const std::int64_t enq_done = port::now_ns();
        if (config.record_history) {
          log.record(check::OpKind::kEnqueue, value, enq_inv, enq_done);
        }
        if (config.record_latency) {
          latency[thread_id].enqueue_ns.record(
              static_cast<std::uint64_t>(enq_done - enq_inv));
        }
      }
      // ... do "other work" ...
      port::spin_work(config.other_work_iters);
      // ... dequeue an item ...
      std::uint64_t out = 0;
      const std::int64_t deq_inv = timed ? port::now_ns() : 0;
      const bool got = queue.try_dequeue(out);
      if (got) {
        ++local_deq;
      } else {
        ++local_empty;
      }
      if (timed) {
        const std::int64_t deq_done = port::now_ns();
        if (config.record_history) {
          log.record(
              got ? check::OpKind::kDequeue : check::OpKind::kDequeueEmpty,
              out, deq_inv, deq_done);
        }
        if (config.record_latency) {
          latency[thread_id].dequeue_ns.record(
              static_cast<std::uint64_t>(deq_done - deq_inv));
        }
      }
      // ... do "other work", and repeat.
      port::spin_work(config.other_work_iters);
    }

    // relaxed: totals are read only after the join below synchronizes
    enqueues.fetch_add(local_enq, std::memory_order_relaxed);
    dequeues.fetch_add(local_deq, std::memory_order_relaxed);  // relaxed: ^
    empty_dequeues.fetch_add(local_empty, std::memory_order_relaxed);  // relaxed: ^
    enqueue_failures.fetch_add(local_fail, std::memory_order_relaxed);  // relaxed: ^
  };

  {
    std::unique_ptr<fault::Watchdog> watchdog;
    if (config.watchdog_deadline.count() > 0) {
      watchdog = std::make_unique<fault::Watchdog>(config.watchdog_deadline,
                                                   "harness workload");
    }
    std::vector<std::jthread> threads;
    threads.reserve(p);
    for (std::uint32_t t = 0; t < p; ++t) threads.emplace_back(worker, t);
    start_barrier.arrive_and_wait();
    const std::int64_t t0 = port::now_ns();
    threads.clear();  // join all
    const std::int64_t t1 = port::now_ns();
    result.elapsed_seconds = port::ns_to_seconds(t1 - t0);
  }

  // relaxed: workers are joined; the join is the synchronization
  result.enqueues = enqueues.load(std::memory_order_relaxed);
  result.dequeues = dequeues.load(std::memory_order_relaxed);  // relaxed: ^
  result.empty_dequeues = empty_dequeues.load(std::memory_order_relaxed);  // relaxed: ^
  result.enqueue_failures = enqueue_failures.load(std::memory_order_relaxed);  // relaxed: ^
  for (const LatencyShard& shard : latency) {
    result.enqueue_latency_ns.merge(shard.enqueue_ns);
    result.dequeue_latency_ns.merge(shard.dequeue_ns);
  }

  // Subtract one processor's worth of "other work" (paper section 4).
  const double pairs_per_proc =
      static_cast<double>(config.total_pairs) / static_cast<double>(p);
  result.net_seconds =
      result.elapsed_seconds -
      other_work_seconds(config.other_work_iters, pairs_per_proc);
  return result;
}

}  // namespace msq::harness
