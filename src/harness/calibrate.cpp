#include "harness/calibrate.hpp"

#include <algorithm>
#include <array>

#include "port/clock.hpp"
#include "port/spin_work.hpp"

namespace msq::harness {

double spin_iters_per_us() {
  constexpr std::uint64_t kIters = 2'000'000;
  std::array<double, 5> trials{};
  for (double& trial : trials) {
    const std::int64_t t0 = port::now_ns();
    port::spin_work(kIters);
    const std::int64_t t1 = port::now_ns();
    trial = static_cast<double>(kIters) * 1e3 / static_cast<double>(t1 - t0);
  }
  std::sort(trials.begin(), trials.end());
  return trials[trials.size() / 2];
}

std::uint64_t spin_iters_for_us(double us) {
  static const double iters_per_us = spin_iters_per_us();
  return static_cast<std::uint64_t>(us * iters_per_us);
}

}  // namespace msq::harness
