// Console table / CSV rendering for the figure-reproduction benches.
//
// Each figure in the paper is a family of curves: net execution time vs.
// number of processors, one curve per algorithm.  SeriesTable collects
// exactly that shape and prints it as an aligned text table (the repo's
// equivalent of the figure) and optionally as CSV for external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace msq::harness {

class SeriesTable {
 public:
  /// `x_label` names the sweep variable (e.g. "procs").
  explicit SeriesTable(std::string title, std::string x_label);

  /// Register a curve; returns its column id.
  std::size_t add_series(std::string name);

  /// Add a sweep point (row); values are filled via set().
  void add_row(double x);

  /// Set series `col` at the most recent row.
  void set(std::size_t col, double value);

  /// Aligned human-readable table.
  void print(std::ostream& os) const;

  /// Machine-readable CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> rows_;  // rows_[row][col], NaN = missing
};

}  // namespace msq::harness
