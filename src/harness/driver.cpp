#include "harness/driver.hpp"

#include <map>
#include <mutex>

#include "port/clock.hpp"
#include "port/spin_work.hpp"

namespace msq::harness {

double other_work_seconds(std::uint64_t iters_per_spin, double pairs) {
  if (iters_per_spin == 0) return 0;

  // Measure seconds per (spin twice) once per iteration count.
  static std::mutex mutex;
  static std::map<std::uint64_t, double> cache;
  std::scoped_lock lock(mutex);
  auto it = cache.find(iters_per_spin);
  if (it == cache.end()) {
    constexpr int kTrials = 2000;
    const std::int64_t t0 = port::now_ns();
    for (int i = 0; i < kTrials; ++i) {
      port::spin_work(iters_per_spin);
      port::spin_work(iters_per_spin);
    }
    const std::int64_t t1 = port::now_ns();
    it = cache.emplace(iters_per_spin,
                       port::ns_to_seconds(t1 - t0) / kTrials)
             .first;
  }
  return it->second * pairs;
}

}  // namespace msq::harness
