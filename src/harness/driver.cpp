#include "harness/driver.hpp"

#include <map>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "port/clock.hpp"
#include "port/spin_work.hpp"

namespace msq::harness {

bool pin_current_thread(std::uint32_t cpu) noexcept {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % cores), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::int64_t await_deadline_ns(std::int64_t deadline_ns) noexcept {
  std::int64_t now = port::now_ns();
  if (now >= deadline_ns) return now - deadline_ns;
  // Coarse waits sleep-yield; the last microsecond busy-polls so pacing
  // jitter stays well under the arrival intervals the scenarios use.
  while (deadline_ns - now > 1'000) {
    std::this_thread::yield();
    now = port::now_ns();
  }
  while (now < deadline_ns) now = port::now_ns();
  return 0;
}

double other_work_seconds(std::uint64_t iters_per_spin, double pairs) {
  if (iters_per_spin == 0) return 0;

  // Measure seconds per (spin twice) once per iteration count.
  static std::mutex mutex;
  static std::map<std::uint64_t, double> cache;
  std::scoped_lock lock(mutex);
  auto it = cache.find(iters_per_spin);
  if (it == cache.end()) {
    constexpr int kTrials = 2000;
    const std::int64_t t0 = port::now_ns();
    for (int i = 0; i < kTrials; ++i) {
      port::spin_work(iters_per_spin);
      port::spin_work(iters_per_spin);
    }
    const std::int64_t t1 = port::now_ns();
    it = cache.emplace(iters_per_spin,
                       port::ns_to_seconds(t1 - t0) / kTrials)
             .first;
  }
  return it->second * pairs;
}

}  // namespace msq::harness
