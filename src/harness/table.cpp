#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

namespace msq::harness {

SeriesTable::SeriesTable(std::string title, std::string x_label)
    : title_(std::move(title)), x_label_(std::move(x_label)) {}

std::size_t SeriesTable::add_series(std::string name) {
  series_.push_back(std::move(name));
  for (auto& row : rows_) {
    row.resize(series_.size(), std::numeric_limits<double>::quiet_NaN());
  }
  return series_.size() - 1;
}

void SeriesTable::add_row(double x) {
  xs_.push_back(x);
  rows_.emplace_back(series_.size(), std::numeric_limits<double>::quiet_NaN());
}

void SeriesTable::set(std::size_t col, double value) {
  rows_.back().at(col) = value;
}

void SeriesTable::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  std::size_t longest = 12;
  for (const auto& name : series_) longest = std::max(longest, name.size());
  const int w = static_cast<int>(longest) + 2;
  os << std::left << std::setw(8) << x_label_;
  for (const auto& name : series_) os << std::right << std::setw(w) << name;
  os << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << std::left << std::setw(8) << xs_[r];
    for (double v : rows_[r]) {
      os << std::right << std::setw(w);
      if (std::isnan(v)) {
        os << "-";
      } else {
        os << std::fixed << std::setprecision(4) << v;
      }
      os << std::defaultfloat;
    }
    os << '\n';
  }
  os.flush();
}

void SeriesTable::print_csv(std::ostream& os) const {
  os << x_label_;
  for (const auto& name : series_) os << ',' << name;
  os << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << xs_[r];
    for (double v : rows_[r]) {
      os << ',';
      if (!std::isnan(v)) os << v;
    }
    os << '\n';
  }
  os.flush();
}

}  // namespace msq::harness
