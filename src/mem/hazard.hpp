// Hazard-pointer safe memory reclamation (Michael, 2004).
//
// The paper's own reclamation story is the counted-pointer + free-list
// scheme (nodes are type-stable and pool-bounded).  Hazard pointers are the
// historically-real successor -- invented by the same first author precisely
// to free queue nodes back to the general allocator without double-word CAS.
// We include them as the paper's "future work made concrete": MsQueueHp in
// queues/ms_queue_hp.hpp uses this domain, and bench/ablate_reclaim compares
// the two schemes.
//
// Design: a fixed table of per-thread slots, each with kHazardsPerSlot
// single-writer hazard cells.  retire() buffers nodes in a per-(thread,
// domain) entry and scans the table once the buffer exceeds a threshold; a
// node is reclaimed only when no published hazard references it.
//
// Lifetime handling: threads bind to a domain lazily.  The binding entries
// live in thread-local storage but are registered with the domain under a
// global registry mutex, so that (a) a thread exiting flushes its buffered
// nodes back to the domain and releases its slot, and (b) a domain being
// destroyed detaches surviving threads' entries safely (they see a null
// domain and become inert).  The mutex is touched only at bind/teardown;
// protect/retire/scan stay lock-free with respect to each other.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "port/cpu.hpp"

namespace msq::mem {

class HazardDomain {
 public:
  static constexpr std::size_t kMaxThreads = 128;
  static constexpr std::size_t kHazardsPerSlot = 2;  // MS queue needs 2

  HazardDomain() noexcept = default;
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  ~HazardDomain() {
    // Detach any threads still bound (they must no longer be *using* the
    // domain -- standard precondition), reclaiming what they buffered.
    std::scoped_lock lock(registry_mutex());
    for (Entry* entry : entries_) {
      for (auto& r : entry->retired) r.deleter(r.ptr);
      entry->retired.clear();
      entry->domain = nullptr;  // entry becomes inert
    }
    for (auto& r : orphans_) r.deleter(r.ptr);
  }

  /// Publish `ptr` in hazard cell `i` of the calling thread.  The caller
  /// must re-validate its source pointer afterwards (protect() does both).
  void set_hazard(std::size_t i, const void* ptr) {
    slot().hp[i].store(const_cast<void*>(ptr), std::memory_order_seq_cst);
  }

  void clear_hazard(std::size_t i) {
    slot().hp[i].store(nullptr, std::memory_order_release);
  }

  /// Acquire-load `src` and publish it in hazard cell `i`, retrying until
  /// the published value is still current (the standard HP protocol).
  template <typename T>
  [[nodiscard]] T* protect(std::size_t i, const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      set_hazard(i, p);
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  /// Hand a detached node to the domain; it is deleted once no hazard
  /// references it.
  template <typename T>
  void retire(T* ptr) {
    retire(ptr, [](void* p) { delete static_cast<T*>(p); });
  }

  void retire(void* ptr, void (*deleter)(void*)) {
    Entry& e = entry();
    e.retired.push_back(Retired{ptr, deleter});
    if (e.retired.size() >= scan_threshold()) scan();
  }

  /// Reclaim every retired node not currently protected.  Called
  /// automatically by retire(); public for tests and shutdown.
  void scan() {
    // ORDERING MATTERS: take possession of the orphaned nodes BEFORE
    // collecting the hazard snapshot.  The HP safety argument is "a node
    // retired before the snapshot is either unprotected or its hazard is
    // visible in the snapshot".  Orphans are pushed by exiting threads at
    // arbitrary times; grabbing them after the snapshot would admit nodes
    // retired AFTER it -- and a hazard published (and validated) between
    // snapshot and retirement would be missed, freeing a node another
    // thread is dereferencing.  This exact use-after-free was caught by
    // ASAN in the contended-lifecycle stress; regression:
    // tests/hazard_test.cpp ScanOrderingVsOrphans.
    std::vector<Retired> orphans;
    {
      std::scoped_lock lock(registry_mutex());
      orphans.swap(orphans_);
    }

    std::vector<void*> hazards;
    hazards.reserve(kMaxThreads * kHazardsPerSlot);
    for (auto& s : slots_) {
      if (!s.active.load(std::memory_order_acquire)) continue;
      for (const auto& hp : s.hp) {
        if (void* p = hp.load(std::memory_order_acquire)) hazards.push_back(p);
      }
    }
    auto is_protected = [&](void* p) {
      for (void* h : hazards) {
        if (h == p) return true;
      }
      return false;
    };

    auto sweep = [&](std::vector<Retired>& retired) {
      std::size_t keep = 0;
      for (auto& r : retired) {
        if (is_protected(r.ptr)) {
          retired[keep++] = r;
        } else {
          r.deleter(r.ptr);
        }
      }
      retired.resize(keep);
    };

    sweep(entry().retired);
    sweep(orphans);
    if (!orphans.empty()) {
      std::scoped_lock lock(registry_mutex());
      orphans_.insert(orphans_.end(), orphans.begin(), orphans.end());
    }
  }

  /// Retired nodes buffered by the calling thread (tests/metrics).
  [[nodiscard]] std::size_t retired_count() { return entry().retired.size(); }

 private:
  struct Slot {
    // share-ok: the pad below isolates each slot; hp+active belong to ONE
    // thread and are scanned (read-only) by reclaimers
    std::atomic<void*> hp[kHazardsPerSlot]{};
    std::atomic<bool> active{false};  // share-ok: ^
    char pad[port::kCacheLine]{};
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  // One binding of (thread, domain).  Owned by thread-local storage;
  // registered with the domain so either side can sever the link first.
  struct Entry {
    HazardDomain* domain = nullptr;
    Slot* slot = nullptr;
    std::vector<Retired> retired;

    ~Entry() {
      std::scoped_lock lock(registry_mutex());
      if (domain == nullptr) return;  // domain died first
      for (auto& hp : slot->hp) hp.store(nullptr, std::memory_order_release);
      domain->orphans_.insert(domain->orphans_.end(), retired.begin(),
                              retired.end());
      std::erase(domain->entries_, this);
      slot->active.store(false, std::memory_order_release);
    }
  };

  struct TlsEntries {
    // A thread rarely touches more than one or two domains; linear scan.
    std::vector<std::unique_ptr<Entry>> entries;
  };

  // One mutex for all domains: Entry teardown cannot take a per-domain
  // mutex because the domain pointer may be dangling until checked under
  // the lock that ~HazardDomain() also takes.
  static std::mutex& registry_mutex() {
    static std::mutex m;
    return m;
  }

  Entry& entry() {
    thread_local TlsEntries tls;
    for (auto& e : tls.entries) {
      if (e->domain == this) return *e;
    }
    auto fresh = std::make_unique<Entry>();
    fresh->domain = this;
    fresh->slot = acquire_slot();
    {
      std::scoped_lock lock(registry_mutex());
      entries_.push_back(fresh.get());
    }
    tls.entries.push_back(std::move(fresh));
    return *tls.entries.back();
  }

  Slot& slot() { return *entry().slot; }

  Slot* acquire_slot() {
    for (;;) {
      for (auto& s : slots_) {
        bool expected = false;
        if (s.active.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          return &s;
        }
      }
      port::cpu_relax();  // all slots busy: wait for a thread to exit
    }
  }

  [[nodiscard]] static constexpr std::size_t scan_threshold() noexcept {
    // Classic HP bound: scanning amortises once R >= H * 2.
    return kMaxThreads * kHazardsPerSlot * 2;
  }

  Slot slots_[kMaxThreads];
  std::vector<Entry*> entries_;     // guarded by registry_mutex()
  std::vector<Retired> orphans_;    // guarded by registry_mutex()
};

/// Process-wide domain used by MsQueueHp by default.
inline HazardDomain& default_domain() {
  static HazardDomain domain;
  return domain;
}

}  // namespace msq::mem
