// Non-blocking free list: Treiber's stack [21] over pool indices.
//
// Paper, section 2: "We use Treiber's simple and efficient non-blocking
// stack algorithm to implement a non-blocking free list."
//
// The stack links nodes through the same `next` field the queue uses (a
// node is either in the queue or in the free list, never both), and the
// counted top pointer defends against ABA exactly as Head/Tail do.
//
// Node requirements: a member `next` of type tagged::AtomicTagged.
#pragma once

#include <cstdint>

#include "mem/node_pool.hpp"
#include "obs/counters.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::mem {

template <typename Node>
class FreeList {
 public:
  /// Builds a free list containing every node of `pool`.
  explicit FreeList(NodePool<Node>& pool) : pool_(pool) {
    for (std::uint32_t i = 0; i < pool.capacity(); ++i) {
      push(i);
    }
  }

  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;

  /// Pop a node index, or kNullIndex if the pool is exhausted.
  /// Lock-free: fails or succeeds in a bounded number of *uncontended*
  /// steps; a retry implies another thread completed a push or pop.
  [[nodiscard]] std::uint32_t try_allocate() noexcept {
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kPoolRefuse);
        return tagged::kNullIndex;
      }
      const tagged::TaggedIndex next = pool_[top.index()].next.load(std::memory_order_acquire);
      if (top_.compare_and_swap(top, top.successor(next.index()), std::memory_order_acq_rel)) {
        MSQ_COUNT(kPoolGet);
        return top.index();
      }
    }
  }

  /// Push a node back.  The node must have come from this pool and must not
  /// be reachable from any shared structure.
  void free(std::uint32_t index) noexcept { push(index); }

  /// Number of nodes currently in the free list.  O(n); for tests and the
  /// memory-exhaustion experiment only -- the count is naturally racy.
  [[nodiscard]] std::size_t unsafe_size() const noexcept {
    std::size_t n = 0;
    for (tagged::TaggedIndex it = top_.load(std::memory_order_acquire); !it.is_null();
         it = pool_[it.index()].next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  void push(std::uint32_t index) noexcept {
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      // Link the node above the current top.  The node is private to us
      // here, so a plain store is enough.
      pool_[index].next.store(tagged::TaggedIndex(top.index(), 0), std::memory_order_release);
      if (top_.compare_and_swap(top, top.successor(index), std::memory_order_acq_rel)) return;
    }
  }

  NodePool<Node>& pool_;
  tagged::AtomicTagged top_;
};

}  // namespace msq::mem
