// Non-blocking free list: Treiber's stack [21] over pool indices.
//
// Paper, section 2: "We use Treiber's simple and efficient non-blocking
// stack algorithm to implement a non-blocking free list."
//
// The stack links nodes through the same `next` field the queue uses (a
// node is either in the queue or in the free list, never both), and the
// counted top pointer defends against ABA exactly as Head/Tail do.
//
// Node requirements: a member `next` of type tagged::AtomicTagged.
#pragma once

#include <cstdint>

#include "mem/node_pool.hpp"
#include "obs/counters.hpp"
#include "port/cpu.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::mem {

template <typename Node>
class FreeList {
 public:
  /// Builds a free list containing every node of `pool`.
  explicit FreeList(NodePool<Node>& pool) : pool_(pool) {
    for (std::uint32_t i = 0; i < pool.capacity(); ++i) {
      push(i);
    }
  }

  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;

  /// Pop a node index, or kNullIndex if the pool is exhausted.
  /// Lock-free: fails or succeeds in a bounded number of *uncontended*
  /// steps; a retry implies another thread completed a push or pop.
  [[nodiscard]] std::uint32_t try_allocate() noexcept {
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kPoolRefuse);
        return tagged::kNullIndex;
      }
      const tagged::TaggedIndex next = pool_[top.index()].next.load(std::memory_order_acquire);
      if (top_.compare_and_swap(top, top.successor(next.index()), std::memory_order_acq_rel)) {
        MSQ_COUNT(kPoolGet);
        MSQ_POOL_GAUGE(1);
        return top.index();
      }
      MSQ_COUNT(kPoolCasRetry);
    }
  }

  /// Pop up to `max` node indices with ONE successful CAS on the shared top
  /// (the magazine refill path).  Returns the number written into `out`.
  ///
  /// Safety of the prefix walk: nodes deeper in the stack can only be popped
  /// after the top node is, and every pop or push moves `top_` -- so if the
  /// final counted CAS succeeds, the prefix we walked was never touched.
  [[nodiscard]] std::uint32_t try_allocate_batch(std::uint32_t* out,
                                                std::uint32_t max) noexcept {
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kPoolRefuse);
        return 0;
      }
      std::uint32_t n = 0;
      tagged::TaggedIndex it = top;
      while (n < max && !it.is_null()) {
        out[n++] = it.index();
        it = pool_[it.index()].next.load(std::memory_order_acquire);
      }
      if (top_.compare_and_swap(top, top.successor(it.index()), std::memory_order_acq_rel)) {
        MSQ_COUNT_N(kPoolGet, n);
        MSQ_POOL_GAUGE(n);
        return n;
      }
      MSQ_COUNT(kPoolCasRetry);
    }
  }

  /// Push a node back.  The node must have come from this pool and must not
  /// be reachable from any shared structure.
  void free(std::uint32_t index) noexcept {
    MSQ_POOL_GAUGE(-1);
    push(index);
  }

  /// Push a pre-linked chain (head -> ... -> tail through the nodes' `next`
  /// fields, tail's next ignored) with ONE successful CAS -- the magazine
  /// flush path.  The chain must be private to the caller.
  void free_chain(std::uint32_t head, std::uint32_t tail) noexcept {
    if (obs::armed()) {
      // Chain length for the pool gauge: the chain is still private to the
      // caller, so the walk is race-free.  Armed-only, like the gauge.
      std::int64_t len = 1;
      for (std::uint32_t it = head; it != tail;
           it = pool_[it].next.load(std::memory_order_relaxed).index()) {  // relaxed: private chain; see free_chain comment below (proof: mo-sweep:fl.push_link)
        ++len;
      }
      obs::pool_gauge_add(-len);
    }
    // Tag monotonicity (see push): bump the tail's own count; the inner
    // chain links are the caller's writes and must bump likewise.
    // relaxed: the chain is private to the caller until the CAS publishes it (proof: mo-sweep:fl.push_link)
    const std::uint32_t count =
        pool_[tail].next.load(std::memory_order_relaxed).count() + 1;
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      pool_[tail].next.store(tagged::TaggedIndex(top.index(), count),
                             std::memory_order_release);
      if (top_.compare_and_swap(top, top.successor(head), std::memory_order_acq_rel)) return;
      MSQ_COUNT(kPoolCasRetry);
    }
  }

  /// Number of nodes currently in the free list.  O(n); for tests and the
  /// memory-exhaustion experiment only -- the count is naturally racy.
  [[nodiscard]] std::size_t unsafe_size() const noexcept {
    std::size_t n = 0;
    for (tagged::TaggedIndex it = top_.load(std::memory_order_acquire); !it.is_null();
         it = pool_[it.index()].next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  void push(std::uint32_t index) noexcept {
    // A node's link tag must stay MONOTONE across its whole lifetime, not
    // just while it sits in one structure: a queue's link CAS validates
    // `next` against a counted value read earlier, and a reset here would
    // let a recycled node re-expose an old count, making an arbitrarily
    // stale link CAS succeed (the fig_stall wedge: a thread that slept
    // between reading tail->next and CASing it linked a freed node).
    // relaxed: the node is private to the caller until the CAS publishes it (proof: mo-sweep:fl.push_link)
    const std::uint32_t count =
        pool_[index].next.load(std::memory_order_relaxed).count() + 1;
    for (;;) {
      const tagged::TaggedIndex top = top_.load(std::memory_order_acquire);
      // Link the node above the current top.  The node is private to us
      // here, so a plain store is enough.
      pool_[index].next.store(tagged::TaggedIndex(top.index(), count),
                              std::memory_order_release);
      if (top_.compare_and_swap(top, top.successor(index), std::memory_order_acq_rel)) return;
      MSQ_COUNT(kPoolCasRetry);
    }
  }

  NodePool<Node>& pool_;
  // The hottest word of every pool-backed queue; on its own cache line so
  // allocator traffic never false-shares with the pool reference above.
  alignas(port::kCacheLine) tagged::AtomicTagged top_;
};

namespace detail {
struct FreeListLayoutProbe {
  tagged::AtomicTagged next;
};
}  // namespace detail
// False-sharing audit: the member alignas must propagate to the whole
// struct (so `top_` starts a fresh line) and pad the tail (so whatever is
// allocated after a FreeList cannot share top_'s line).
static_assert(alignof(FreeList<detail::FreeListLayoutProbe>) >=
                  port::kCacheLine,
              "free-list top must start a cache line of its own");
static_assert(sizeof(FreeList<detail::FreeListLayoutProbe>) %
                      port::kCacheLine ==
                  0,
              "free-list top's cache line must not leak into a neighbour");

}  // namespace msq::mem
