// Fixed-capacity node pool addressed by 32-bit indices.
//
// The paper's algorithms allocate nodes "from the free list" and the
// experiments pre-initialise that free list (64,000 nodes in the Valois
// memory-exhaustion experiment).  Pool indices are also what lets the
// counted-pointer ABA defence fit index+counter into one 64-bit word
// (tagged/tagged_index.hpp).
//
// The pool itself is just stable storage: allocation policy lives in the
// free lists layered on top (FreeList, RefCountPool).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "tagged/tagged_index.hpp"

namespace msq::mem {

template <typename Node>
class NodePool {
 public:
  explicit NodePool(std::uint32_t capacity)
      : capacity_(capacity), nodes_(std::make_unique<Node[]>(capacity)) {
    assert(capacity > 0 && capacity < tagged::kNullIndex);
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  [[nodiscard]] Node& operator[](std::uint32_t index) noexcept {
    assert(index < capacity_);
    return nodes_[index];
  }
  [[nodiscard]] const Node& operator[](std::uint32_t index) const noexcept {
    assert(index < capacity_);
    return nodes_[index];
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Index of a node known to belong to this pool (for diagnostics).
  [[nodiscard]] std::uint32_t index_of(const Node& node) const noexcept {
    return static_cast<std::uint32_t>(&node - nodes_.get());
  }

 private:
  std::uint32_t capacity_;
  std::unique_ptr<Node[]> nodes_;
};

}  // namespace msq::mem
