// Race-tolerant value slot for the lock-free queues.
//
// In the paper's dequeue, the value is read *before* the CAS that removes
// the node ("Read value before CAS, otherwise another dequeue might free the
// next node").  A losing dequeuer may therefore read a node that a winning
// dequeuer has already recycled and that an enqueuer is concurrently
// refilling.  The algorithm discards the torn value (the CAS fails), but in
// C++ the racing read itself would be undefined behaviour on a plain field.
// ValueCell makes that read well-defined (and TSAN-clean) by storing the
// value in a relaxed std::atomic word.
//
// Consequence: the lock-free queues require trivially-copyable values of at
// most 8 bytes (store pointers or indices for anything larger).  The
// lock-based queues have no such restriction.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace msq::mem {

template <typename T>
class ValueCell {
  static_assert(std::is_trivially_copyable_v<T>,
                "lock-free queues require trivially copyable values");
  static_assert(sizeof(T) <= 8,
                "lock-free queues require values of at most 8 bytes; "
                "store a pointer or index for larger payloads");

 public:
  // Named put/get rather than store/load on purpose: the relaxed ordering
  // is a property of the TYPE (the queue's CAS carries the ordering; this
  // slot only needs atomicity against torn reads), so sites should not
  // look like tunable atomic operations to readers or to the atomics lint.
  void put(T value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    // relaxed: ordering is provided by the CAS that publishes the node (proof: mo-sweep:ms.E2.value_write)
    bits_.store(bits, std::memory_order_relaxed);
  }

  [[nodiscard]] T get() const noexcept {
    // relaxed: a stale/torn-free read; the guarding CAS rejects stale uses (proof: mo-sweep:ms.D11.value_read)
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
  }

 private:
  // share-ok: lives inside pool nodes, packed next to the link on purpose
  // (one node, one line; the queue ends are the contended words, not this)
  std::atomic<std::uint64_t> bits_{0};
};

}  // namespace msq::mem
