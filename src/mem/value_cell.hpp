// Race-tolerant value slot for the lock-free queues.
//
// In the paper's dequeue, the value is read *before* the CAS that removes
// the node ("Read value before CAS, otherwise another dequeue might free the
// next node").  A losing dequeuer may therefore read a node that a winning
// dequeuer has already recycled and that an enqueuer is concurrently
// refilling.  The algorithm discards the torn value (the CAS fails), but in
// C++ the racing read itself would be undefined behaviour on a plain field.
// ValueCell makes that read well-defined (and TSAN-clean) by storing the
// value in a relaxed std::atomic word.
//
// Consequence: the lock-free queues require trivially-copyable values of at
// most 8 bytes (store pointers or indices for anything larger).  The
// lock-based queues have no such restriction.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace msq::mem {

template <typename T>
class ValueCell {
  static_assert(std::is_trivially_copyable_v<T>,
                "lock-free queues require trivially copyable values");
  static_assert(sizeof(T) <= 8,
                "lock-free queues require values of at most 8 bytes; "
                "store a pointer or index for larger payloads");

 public:
  void store(T value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    bits_.store(bits, std::memory_order_relaxed);
  }

  [[nodiscard]] T load() const noexcept {
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

}  // namespace msq::mem
