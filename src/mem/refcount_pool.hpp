// Valois's reference-counting memory management for lock-free structures,
// with the corrections of Michael & Scott TR 599 ("Correction of a Memory
// Management Method for Lock-Free Data Structures", Dec 1995).
//
// The scheme (paper section 1): every node carries a reference count that
// reflects the number of links to it -- structure links (Head, Tail, next
// fields) and temporary process-local references.  SafeRead atomically
// increments the count of the node a shared cell points to and re-validates
// the cell; Release decrements and, when the count reaches zero, reclaims
// the node: its own outgoing link is released (recursively) and the node is
// pushed to a free list.  Because a node's count cannot drop to zero while
// any process or link refers to it, freed nodes are never reachable and the
// ABA problem cannot arise -- no modification counters needed.
//
// The TR 599 corrections folded in here:
//  * the count is stored as (count << 1 | claim): DecrementAndTestAndSet
//    atomically moves 1 -> claim so exactly one releaser reclaims a node;
//  * SafeRead increments BEFORE validating and undoes the increment with a
//    full Release on mismatch, so a stale increment of a recycled node is
//    harmless (paired decrement, possible recursive reclaim);
//  * nodes are handed out with count 1 (the allocator's own reference) and
//    the claim bit cleared.
//
// The famous flaw is preserved faithfully (it is the point of experiment
// A4): a delayed process holding one reference pins that node AND, because
// reclamation is what releases a node's next link, every later node -- so a
// bounded queue can exhaust an arbitrarily large pool (the paper ran out of
// 64,000 nodes with a 12-item queue).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "mem/node_pool.hpp"
#include "obs/counters.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::mem {

/// A node managed by RefCountPool.  Queues embed their payload next to it.
/// `next` doubles as the free-list link, exactly as in the MS queues.
struct RcHeader {
  tagged::AtomicTagged next;
  // share-ok: link+refcount packed per node by design (one node, one line)
  std::atomic<std::uint32_t> refct_claim{0};  // (count << 1) | claim
};

template <typename Node>  // Node must derive from or contain RcHeader as `rc`
class RefCountPool {
 public:
  explicit RefCountPool(std::uint32_t capacity) : pool_(capacity) {
    // Build the free list privately; freed/claimed nodes have refct 0|claim.
    for (std::uint32_t i = 0; i < capacity; ++i) {
      // relaxed: construction is single-threaded (proof: test:tests/refcount_pool_test.cpp)
      pool_[i].rc.refct_claim.store(1, std::memory_order_relaxed);  // claimed
      push_free(i);
    }
  }

  [[nodiscard]] Node& node(std::uint32_t index) noexcept { return pool_[index]; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return pool_.capacity(); }

  /// Allocate a node with reference count 1 (the caller's reference) or
  /// return kNullIndex if the pool is exhausted.
  [[nodiscard]] std::uint32_t try_allocate() noexcept {
    for (;;) {
      const tagged::TaggedIndex top = free_top_.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kPoolRefuse);
        return tagged::kNullIndex;
      }
      const tagged::TaggedIndex next = pool_[top.index()].rc.next.load(std::memory_order_acquire);
      if (free_top_.compare_and_swap(top, top.successor(next.index()), std::memory_order_acq_rel)) {
        Node& n = pool_[top.index()];
        n.rc.next.store(tagged::TaggedIndex{}, std::memory_order_release);  // NULL
        // Clear the claim bit and take the allocator's reference in one
        // atomic add (+2 for the reference, -1 for the claim bit).  A plain
        // store would erase increments from concurrent stale SafeReads,
        // which is one of the races TR 599 fixes.
        n.rc.refct_claim.fetch_add(1, std::memory_order_acq_rel);
        MSQ_COUNT(kPoolGet);
        MSQ_POOL_GAUGE(1);
        return top.index();
      }
    }
  }

  /// Valois SafeRead: dereference the shared cell `loc` acquiring a counted
  /// reference to the target.  Returns the exact (index, count) value seen
  /// -- callers use it as the `expected` of a subsequent CAS -- or a null
  /// TaggedIndex if the cell was NULL (no reference taken).
  [[nodiscard]] tagged::TaggedIndex safe_read(
      const tagged::AtomicTagged& loc) noexcept {
    for (;;) {
      const tagged::TaggedIndex seen = loc.load(std::memory_order_acquire);
      if (seen.is_null()) return seen;
      add_reference(seen.index());
      // Re-validate: if the cell moved on, our increment may have landed on
      // a recycled node; Release undoes it (and reclaims if we resurrected
      // a dying node).  This re-check is the heart of the TR 599 fix.
      if (loc.load(std::memory_order_acquire) == seen) return seen;
      release(seen.index());
    }
  }

  /// Add a reference for a link about to be installed (CopyRef).
  void add_reference(std::uint32_t index) noexcept {
    pool_[index].rc.refct_claim.fetch_add(2, std::memory_order_acq_rel);
  }

  /// Drop one reference; reclaim the node if we held the last one.
  void release(std::uint32_t index) noexcept {
    if (index == tagged::kNullIndex) return;
    if (decrement_and_test_and_set(pool_[index].rc.refct_claim)) {
      reclaim(index);
    }
  }

  /// Free-list occupancy (racy; for tests and the exhaustion experiment).
  [[nodiscard]] std::size_t unsafe_free_count() const noexcept {
    std::size_t n = 0;
    for (tagged::TaggedIndex it = free_top_.load(std::memory_order_acquire); !it.is_null();
         it = pool_[it.index()].rc.next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  /// TR 599 DecrementAndTestAndSet: subtract one reference (2); if the
  /// count hits zero, atomically set the claim bit and report that the
  /// caller must reclaim.  CAS loop because decrement and claim must be one
  /// atomic transition (two bare FAAs could both see zero).
  static bool decrement_and_test_and_set(std::atomic<std::uint32_t>& rc) noexcept {
    // relaxed: optimistic first read; the CAS below validates and orders (proof: mo-sweep:valois.refct_cas)
    std::uint32_t old = rc.load(std::memory_order_relaxed);
    for (;;) {
      assert(old >= 2 && "release without matching reference");
      const std::uint32_t desired = (old == 2) ? 1u : old - 2;
      // relaxed: CAS failure reloads `old` and retries; no payload is read (proof: mo-sweep:valois.refct_cas)
      if (rc.compare_exchange_weak(old, desired, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
        return old == 2;
      }
    }
  }

  /// Sole owner of a dead node: release its outgoing link, recycle it.
  /// This is where the pinning cascade comes from -- a node that is never
  /// reclaimed never releases its successor.
  void reclaim(std::uint32_t index) noexcept {
    MSQ_POOL_GAUGE(-1);
    Node& n = pool_[index];
    const tagged::TaggedIndex next = n.rc.next.load(std::memory_order_acquire);
    if (!next.is_null()) release(next.index());
    push_free(index);
  }

  void push_free(std::uint32_t index) noexcept {
    for (;;) {
      const tagged::TaggedIndex top = free_top_.load(std::memory_order_acquire);
      pool_[index].rc.next.store(tagged::TaggedIndex(top.index(), 0), std::memory_order_release);
      if (free_top_.compare_and_swap(top, top.successor(index), std::memory_order_acq_rel)) return;
    }
  }

  NodePool<Node> pool_;
  tagged::AtomicTagged free_top_;
};

}  // namespace msq::mem
