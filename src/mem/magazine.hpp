// Per-thread magazines over the Treiber free list (Bonwick-style, scaled
// down to pool indices).
//
// The paper's section 4 cost model counts contended cache-line transfers;
// for every pool-backed queue the free-list top is a *second* contended
// line besides Head/Tail -- each enqueue pops it, each dequeue pushes it.
// A magazine is a small thread-local cache of node indices refilled and
// flushed in batches, so the shared top is touched once per kCap/2
// operations instead of once per operation (obs: mag_hit vs pool_cas_retry
// quantify the saving; see EXPERIMENTS.md, magazine ablation).
//
// Ownership discipline: magazines live in a small fixed array of slots,
// each claimed per *call* with a CAS on its busy flag (probe starts at a
// per-thread hint, so the common case is an uncontended re-claim of "your"
// slot).  Claim-per-call instead of claim-per-thread sidesteps thread-exit
// reclamation entirely: a slot is never orphaned, its contents never leak.
//
// Exhaustion: a refused allocation must mean the pool is *really* empty,
// not that free nodes are snoozing in other threads' magazines (that both
// breaks pool_exhaustion determinism and can deadlock a producer while a
// consumer hoards).  So the allocate slow path sweeps every unclaimed
// magazine back into the shared list before refusing -- cached capacity is
// only ever invisible to a thread while another call is mid-flight.
//
// Drop-in for FreeList: same constructor shape, try_allocate()/free().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "obs/counters.hpp"
#include "port/cpu.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::mem {

namespace detail {
/// Per-thread probe hint: threads spread over claimable slots (magazines
/// here, hazard cells in queues/segment_queue.hpp) the same way counter
/// shards are assigned.  Collisions are harmless (the claim CAS
/// arbitrates); distinctness is only a fast-path optimisation.
inline std::uint32_t thread_hint() noexcept {
  // share-ok: touched once per thread lifetime (hint assignment)
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t hint =
      // relaxed: a pure ordinal draw; nothing is published through it (proof: test:tests/mem_test.cpp)
      next.fetch_add(1, std::memory_order_relaxed);
  return hint;
}
}  // namespace detail

/// `kCap` is the magazine size: refills pop kCap/2 indices with one shared
/// CAS, flushes push kCap/2 back with one shared CAS.  Node needs a `next`
/// member of type tagged::AtomicTagged (same contract as FreeList).
template <typename Node, std::uint32_t kCap = 32>
class MagazineAllocator {
  static_assert(kCap >= 2 && kCap % 2 == 0, "kCap must be even");

 public:
  explicit MagazineAllocator(NodePool<Node>& pool)
      : pool_(pool), list_(pool) {}

  MagazineAllocator(const MagazineAllocator&) = delete;
  MagazineAllocator& operator=(const MagazineAllocator&) = delete;

  /// Pop a node index, or kNullIndex only when pool capacity is truly
  /// exhausted (magazines of non-mid-flight calls included, see sweep).
  [[nodiscard]] std::uint32_t try_allocate() noexcept {
    if (Slot* s = try_claim()) {
      if (s->count > 0) {
        const std::uint32_t idx = s->items[--s->count];
        release(s);
        MSQ_COUNT(kMagHit);
        return idx;
      }
      const std::uint32_t got = list_.try_allocate_batch(s->items.data(), kCap / 2);
      if (got > 0) {
        MSQ_COUNT(kMagRefill);
        const std::uint32_t idx = s->items[got - 1];
        s->count = got - 1;
        release(s);
        return idx;
      }
      release(s);
    } else {
      // Every slot is mid-operation under heavy contention: take the
      // shared-list fast path rather than spinning on busy flags.
      const std::uint32_t idx = list_.try_allocate();
      if (idx != tagged::kNullIndex) return idx;
    }
    flush_all();
    return list_.try_allocate();
  }

  /// Push a node back.  Same contract as FreeList::free.
  void free(std::uint32_t index) noexcept {
    Slot* s = try_claim();
    if (s == nullptr) {
      list_.free(index);
      return;
    }
    if (s->count == kCap) flush_half(*s);
    s->items[s->count++] = index;
    release(s);
  }

  /// Sweep every unclaimed magazine back into the shared free list (the
  /// exhaustion path above, quiescent teardown, and the ablation's
  /// magazines-off baseline measurements).
  void flush_all() noexcept {
    for (Slot& s : slots_) {
      std::uint32_t expected = 0;
      if (!s.busy.compare_exchange_strong(expected, 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        continue;
      }
      if (s.count > 0) flush(s, /*keep=*/0);
      release(&s);
    }
  }

  /// Free nodes visible right now: shared list + unclaimed magazines.
  /// Racy by nature; tests-only, like FreeList::unsafe_size.
  [[nodiscard]] std::size_t unsafe_size() noexcept {
    std::size_t n = list_.unsafe_size();
    for (Slot& s : slots_) {
      std::uint32_t expected = 0;
      if (s.busy.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        n += s.count;
        release(&s);
      }
    }
    return n;
  }

  /// The shared list underneath (ablation baselines allocate through it
  /// directly to measure the no-magazine contention).
  [[nodiscard]] FreeList<Node>& shared() noexcept { return list_; }

 private:
  struct alignas(port::kCacheLine) Slot {
    // share-ok: claim flag; the slot body below it is only touched while
    // claimed, and each slot owns a full cache line
    std::atomic<std::uint32_t> busy{0};
    std::uint32_t count = 0;
    std::array<std::uint32_t, kCap> items{};
  };

  static constexpr std::uint32_t kMagazines = 16;  // power of two (probe mask)

  /// Probe from the per-thread hint; first successful busy-CAS wins the
  /// slot exclusively until release().  nullptr when all are mid-flight.
  [[nodiscard]] Slot* try_claim() noexcept {
    const std::uint32_t start = detail::thread_hint();
    for (std::uint32_t i = 0; i < kMagazines; ++i) {
      Slot& s = slots_[(start + i) & (kMagazines - 1)];
      std::uint32_t expected = 0;
      if (s.busy.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return &s;
      }
    }
    return nullptr;
  }

  void release(Slot* s) noexcept {
    s->busy.store(0, std::memory_order_release);
  }

  /// Flush all but `keep` items as one pre-linked chain: one shared CAS.
  void flush(Slot& s, std::uint32_t keep) noexcept {
    for (std::uint32_t i = keep; i + 1 < s.count; ++i) {
      // Tag monotonicity (FreeList::push): every link write over a node's
      // lifetime bumps its count, or recycling would replay old counts.
      // relaxed: the chain is private to this slot until free_chain's CAS (proof: test:tests/mem_test.cpp)
      auto& next = pool_[s.items[i]].next;
      const std::uint32_t c = next.load(std::memory_order_relaxed).count() + 1;
      next.store(tagged::TaggedIndex(s.items[i + 1], c),
                 std::memory_order_release);
    }
    list_.free_chain(s.items[keep], s.items[s.count - 1]);
    s.count = keep;
    MSQ_COUNT(kMagFlush);
  }

  void flush_half(Slot& s) noexcept { flush(s, kCap / 2); }

  NodePool<Node>& pool_;
  FreeList<Node> list_;
  std::array<Slot, kMagazines> slots_{};
};

}  // namespace msq::mem
