// Low-level CPU portability helpers: cache-line geometry, spin-wait hinting.
//
// The paper's testbed was a 12-node SGI Challenge (MIPS R4000, LL/SC).  We
// target x86-64 (lock cmpxchg / cmpxchg16b); everything architecture-specific
// in the library funnels through this header.
#pragma once

#include <cstddef>
#include <new>

namespace msq::port {

/// Size of a coherence granule.  Shared variables that must not false-share
/// (Head, Tail, the two locks of the two-lock queue) are padded to this.
/// Pinned to 64 (x86-64, and a safe choice elsewhere) rather than
/// std::hardware_destructive_interference_size, whose value shifts with
/// compiler tuning flags and would silently change our ABI.
inline constexpr std::size_t kCacheLine = 64;

/// Polite busy-wait hint.  On x86 this is `pause`, which de-pipelines the
/// spin loop and releases the sibling hyperthread; elsewhere a compiler
/// barrier keeps the loop from being optimised away.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Wrapper that places T alone on its own cache line.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};
};

}  // namespace msq::port
