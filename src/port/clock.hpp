// Monotonic timing used by the harness.  The paper reports "net elapsed time
// in seconds for one million enqueue/dequeue pairs"; we measure with
// steady_clock and convert to the same unit.
#pragma once

#include <chrono>
#include <cstdint>

namespace msq::port {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since an arbitrary epoch; monotonic.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Convert a nanosecond interval to the paper's reporting unit (seconds).
inline double ns_to_seconds(std::int64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace msq::port
