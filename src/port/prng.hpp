// Small fast PRNG (xoshiro256**) used for randomised backoff jitter, test
// schedules and workload value streams.  Deterministic given a seed, cheap
// enough to sit inside a benchmark inner loop, and header-only so the
// simulator can embed one per virtual process.
#pragma once

#include <cstdint>

namespace msq::port {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).  Bias is negligible for bound << 2^64.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return (*this)() % bound;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace msq::port
