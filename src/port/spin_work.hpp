// The paper's "other work": ~6us of spinning in an empty loop between queue
// operations, which "serves to make the experiments more realistic by
// preventing long runs of queue operations by the same process".  We provide
// the same device: an opaque spin of N iterations, plus a calibration helper
// (harness/calibrate.hpp) that converts microseconds to iterations.
#pragma once

#include <cstdint>

namespace msq::port {

/// Spin for `iters` iterations of work the optimiser cannot elide.
inline void spin_work(std::uint64_t iters) noexcept {
  for (std::uint64_t i = 0; i < iters; ++i) {
    asm volatile("" ::: "memory");
  }
}

}  // namespace msq::port
