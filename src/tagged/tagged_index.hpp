// 64-bit counted "pointer": a 32-bit node-pool index packed with a 32-bit
// modification counter.
//
// Paper, section 1: "To implement this solution, one must either employ a
// double-word compare_and_swap, or else use array indices instead of
// pointers, so that they may share a single word with a counter."
//
// This is the array-index variant: the queue's nodes live in a pool
// (mem/node_pool.hpp) and every shared link (Head, Tail, node.next) stores a
// TaggedIndex.  Each successful CAS installs a value whose counter is the
// observed counter + 1, making an ABA hazard require 2^32 intervening
// operations within one read-CAS window.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace msq::tagged {

/// Sentinel index playing the role of the paper's NULL pointer.
inline constexpr std::uint32_t kNullIndex = std::numeric_limits<std::uint32_t>::max();

class TaggedIndex {
 public:
  constexpr TaggedIndex() noexcept = default;
  constexpr TaggedIndex(std::uint32_t index, std::uint32_t count) noexcept
      : bits_(static_cast<std::uint64_t>(count) << 32 | index) {}

  /// The pool slot this "pointer" designates, or kNullIndex.
  [[nodiscard]] constexpr std::uint32_t index() const noexcept {
    return static_cast<std::uint32_t>(bits_);
  }
  /// The ABA modification counter.
  [[nodiscard]] constexpr std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(bits_ >> 32);
  }
  [[nodiscard]] constexpr bool is_null() const noexcept {
    return index() == kNullIndex;
  }

  /// The value a successful CAS should install: new target, counter + 1.
  [[nodiscard]] constexpr TaggedIndex successor(std::uint32_t new_index) const noexcept {
    return TaggedIndex(new_index, count() + 1);
  }

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }
  static constexpr TaggedIndex from_bits(std::uint64_t bits) noexcept {
    TaggedIndex t;
    t.bits_ = bits;
    return t;
  }

  /// Equality compares index AND counter, exactly like the paper's
  /// double-word CAS comparison; two pointers to the same node at different
  /// times are intentionally unequal.
  friend constexpr bool operator==(TaggedIndex, TaggedIndex) noexcept = default;

 private:
  // Layout: [ count : 32 | index : 32 ].  A default-constructed value is a
  // null pointer with counter 0.
  std::uint64_t bits_ = static_cast<std::uint64_t>(kNullIndex);
};

static_assert(sizeof(TaggedIndex) == 8);
static_assert(TaggedIndex{}.is_null());

}  // namespace msq::tagged
