// Atomic cell holding a TaggedIndex, wrapping std::atomic<uint64_t>.
//
// The read/CAS discipline mirrors the paper's pseudo-code: loads return the
// (index, count) pair read atomically in one word ("Read Tail.ptr and
// Tail.count together"), and compare-and-swap succeeds only if both match.
#pragma once

#include <atomic>

#include "tagged/tagged_index.hpp"

namespace msq::tagged {

class AtomicTagged {
 public:
  AtomicTagged() noexcept = default;
  explicit AtomicTagged(TaggedIndex initial) noexcept : bits_(initial.bits()) {}
  AtomicTagged(const AtomicTagged&) = delete;
  AtomicTagged& operator=(const AtomicTagged&) = delete;

  [[nodiscard]] TaggedIndex load(
      std::memory_order order = std::memory_order_acquire) const noexcept {
    return TaggedIndex::from_bits(bits_.load(order));
  }

  void store(TaggedIndex value,
             std::memory_order order = std::memory_order_release) noexcept {
    bits_.store(value.bits(), order);
  }

  /// Unconditional swap (fetch_and_store); returns the previous value.
  /// Used by the Mellor-Crummey queue's tail claim, which by construction
  /// needs no counter discipline (the swap cannot spuriously succeed).
  TaggedIndex exchange(TaggedIndex desired,
                       std::memory_order order = std::memory_order_acq_rel) noexcept {
    return TaggedIndex::from_bits(bits_.exchange(desired.bits(), order));
  }

  /// Single-word CAS over the packed (index, count) pair.
  bool compare_and_swap(TaggedIndex expected, TaggedIndex desired) noexcept {
    std::uint64_t exp = expected.bits();
    return bits_.compare_exchange_strong(exp, desired.bits(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> bits_{TaggedIndex{}.bits()};
};

static_assert(sizeof(AtomicTagged) == 8);

}  // namespace msq::tagged
