// Atomic cell holding a TaggedIndex, wrapping std::atomic<uint64_t>.
//
// The read/CAS discipline mirrors the paper's pseudo-code: loads return the
// (index, count) pair read atomically in one word ("Read Tail.ptr and
// Tail.count together"), and compare-and-swap succeeds only if both match.
//
// No defaulted memory orders: every call site spells out the ordering it
// relies on, so the compiler enforces the same discipline that
// tools/atomics_lint.py checks textually.
#pragma once

#include <atomic>

#include "tagged/tagged_index.hpp"

namespace msq::tagged {

/// The failure ordering a CAS is entitled to, given its success ordering
/// (C++17 dropped the "failure no stronger than success" rule, but keeping
/// the derivation explicit documents what the failed path may assume).
[[nodiscard]] constexpr std::memory_order cas_failure_order(
    std::memory_order success) noexcept {
  switch (success) {
    case std::memory_order_seq_cst: return std::memory_order_seq_cst;
    case std::memory_order_acq_rel:
    case std::memory_order_acquire: return std::memory_order_acquire;
    // relaxed: a relaxed/release-success CAS promises nothing on failure
    default:                        return std::memory_order_relaxed;
  }
}

class AtomicTagged {
 public:
  AtomicTagged() noexcept = default;
  explicit AtomicTagged(TaggedIndex initial) noexcept : bits_(initial.bits()) {}
  AtomicTagged(const AtomicTagged&) = delete;
  AtomicTagged& operator=(const AtomicTagged&) = delete;

  [[nodiscard]] TaggedIndex load(std::memory_order order) const noexcept {
    return TaggedIndex::from_bits(bits_.load(order));
  }

  void store(TaggedIndex value, std::memory_order order) noexcept {
    bits_.store(value.bits(), order);
  }

  /// Unconditional swap (fetch_and_store); returns the previous value.
  /// Used by the Mellor-Crummey queue's tail claim, which by construction
  /// needs no counter discipline (the swap cannot spuriously succeed).
  TaggedIndex exchange(TaggedIndex desired, std::memory_order order) noexcept {
    return TaggedIndex::from_bits(bits_.exchange(desired.bits(), order));
  }

  /// Single-word CAS over the packed (index, count) pair.  `order` is the
  /// success ordering; the failure ordering is derived (acquire for
  /// acquire-class successes, so a failed linearizing CAS still observes
  /// the winner's published state before retrying).
  bool compare_and_swap(TaggedIndex expected, TaggedIndex desired,
                        std::memory_order order) noexcept {
    std::uint64_t exp = expected.bits();
    return bits_.compare_exchange_strong(exp, desired.bits(), order,
                                         cas_failure_order(order));
  }

 private:
  // share-ok: single-word cell; callers place it (CacheAligned for queue
  // ends, packed inside Node where count+link must share one CAS word).
  std::atomic<std::uint64_t> bits_{TaggedIndex{}.bits()};
};

static_assert(sizeof(AtomicTagged) == 8);

}  // namespace msq::tagged
