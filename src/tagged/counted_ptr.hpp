// 128-bit counted pointer: a real T* packed with a 64-bit modification
// counter, CASed with x86-64 cmpxchg16b (the paper's "double-word
// compare_and_swap" option).
//
// We use the __sync builtin on unsigned __int128 rather than
// std::atomic<struct>, because GCC lowers the latter to libatomic calls that
// may take a lock; __sync_val_compare_and_swap with -mcx16 emits an inline
// cmpxchg16b, which is the lock-free primitive the algorithms require.
#pragma once

#include <atomic>
#include <cstdint>

namespace msq::tagged {

template <typename T>
struct CountedPtr {
  T* ptr = nullptr;
  std::uint64_t count = 0;

  friend constexpr bool operator==(CountedPtr, CountedPtr) noexcept = default;

  [[nodiscard]] constexpr CountedPtr successor(T* new_ptr) const noexcept {
    return CountedPtr{new_ptr, count + 1};
  }
};

/// 16-byte-aligned atomic cell for CountedPtr<T> driven by cmpxchg16b.
template <typename T>
class alignas(16) AtomicCountedPtr {
 public:
  AtomicCountedPtr() noexcept = default;
  explicit AtomicCountedPtr(CountedPtr<T> initial) noexcept
      : bits_(pack(initial)) {}
  AtomicCountedPtr(const AtomicCountedPtr&) = delete;
  AtomicCountedPtr& operator=(const AtomicCountedPtr&) = delete;

  // The memory_order parameters document the WEAKEST ordering each call
  // site requires; the __sync builtins always emit a full-barrier
  // cmpxchg16b, which satisfies any requested order.  Requiring the
  // parameter keeps these sites under the same explicit-order discipline
  // as the single-word cells (tools/atomics_lint.py).

  /// Atomic 128-bit load.  Implemented as CAS(x, x): on x86-64 there is no
  /// plain 16-byte atomic load pre-AVX guarantees, and the algorithms only
  /// ever need a consistent snapshot, which this provides.
  [[nodiscard]] CountedPtr<T> load(std::memory_order order) const noexcept {
    static_cast<void>(order);  // full barrier regardless (see above)
    unsigned __int128 v = __sync_val_compare_and_swap(&bits_, 0, 0);
    return unpack(v);
  }

  void store(CountedPtr<T> value, std::memory_order order) noexcept {
    static_cast<void>(order);  // full barrier regardless (see above)
    unsigned __int128 expected = bits_;
    const unsigned __int128 desired = pack(value);
    for (;;) {
      unsigned __int128 prev =
          __sync_val_compare_and_swap(&bits_, expected, desired);
      if (prev == expected) return;
      expected = prev;
    }
  }

  bool compare_and_swap(CountedPtr<T> expected, CountedPtr<T> desired,
                        std::memory_order order) noexcept {
    static_cast<void>(order);  // full barrier regardless (see above)
    return __sync_bool_compare_and_swap(&bits_, pack(expected), pack(desired));
  }

 private:
  static unsigned __int128 pack(CountedPtr<T> v) noexcept {
    return static_cast<unsigned __int128>(reinterpret_cast<std::uintptr_t>(v.ptr)) |
           (static_cast<unsigned __int128>(v.count) << 64);
  }
  static CountedPtr<T> unpack(unsigned __int128 bits) noexcept {
    return CountedPtr<T>{
        // NOLINTNEXTLINE(performance-no-int-to-ptr): the low word IS a
        // pointer previously packed by pack(); DWCAS works on the 128-bit
        // integer image, so the round-trip is the whole point here.
        reinterpret_cast<T*>(static_cast<std::uintptr_t>(
            static_cast<std::uint64_t>(bits))),
        static_cast<std::uint64_t>(bits >> 64)};
  }

  mutable unsigned __int128 bits_ = 0;
};

static_assert(sizeof(AtomicCountedPtr<int>) == 16);

}  // namespace msq::tagged
