// The MS non-blocking queue with hazard-pointer reclamation and heap
// allocation (Michael, "Safe Memory Reclamation for Dynamic Lock-Free
// Objects Using Atomic Reads and Writes" / IEEE TPDS 2004).
//
// This is the paper's algorithm freed from its two 1996-era constraints:
// no counted pointers (plain single-word pointer CAS suffices) and no
// type-stable pool (nodes are new/delete'd).  Two hazard cells per thread:
// hazard 0 protects the Head/Tail node an operation navigates from, hazard
// 1 protects its successor.  A dequeued dummy is retire()d, not freed, and
// is deleted only once no thread's hazard references it -- that is what
// replaces the counted-pointer ABA defence.
//
// Included as the "future work made real" extension; bench/ablate_reclaim
// compares it against the counted-pointer/free-list original.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "mem/hazard.hpp"
#include "obs/counters.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class MsQueueHp {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = false,  // unbounded: heap-allocated nodes
      .linearizable = true,
  };

  explicit MsQueueHp(mem::HazardDomain& domain = mem::default_domain())
      : domain_(domain) {
    Node* dummy = new Node{};
    MSQ_POOL_GAUGE(1);
    // relaxed: construction is single-threaded; publication happens when (proof: test:tests/queue_basic_test.cpp)
    // the queue itself is handed to other threads
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);  // relaxed: ^
  }

  ~MsQueueHp() {
    // Single-threaded teardown: free the remaining chain directly.
    // relaxed: no concurrent access can exist during destruction (proof: test:tests/queue_basic_test.cpp)
    Node* node = head_.value.load(std::memory_order_relaxed);
    while (node != nullptr) {
      // relaxed: no concurrent access can exist during destruction (proof: test:tests/queue_basic_test.cpp)
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      MSQ_POOL_GAUGE(-1);
      node = next;
    }
    domain_.scan();  // give back what retire() buffered
  }

  MsQueueHp(const MsQueueHp&) = delete;
  MsQueueHp& operator=(const MsQueueHp&) = delete;

  /// Unbounded: fails only on allocation failure (propagates bad_alloc).
  bool try_enqueue(T value) {
    Node* node = new Node{.value = std::move(value)};
    MSQ_POOL_GAUGE(1);
    BackoffPolicy backoff;
    for (;;) {
      Node* tail = domain_.protect(0, tail_.value);  // E5 + hazard publish
      Node* next = tail->next.load(std::memory_order_acquire);  // E6
      if (tail != tail_.value.load(std::memory_order_acquire)) continue;  // E7
      if (next == nullptr) {  // E8
        Node* expected = nullptr;
        MSQ_COUNT(kCasAttempt);
        // relaxed: E9 failure retries via the acquire loads at E6/E7 (proof: mo-sweep:ms.E9.link_cas)
        if (tail->next.compare_exchange_strong(expected, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {  // relaxed: E9 ^
          Node* t = tail;
          // relaxed: E13 failure means someone else swung the tail; done (proof: mo-sweep:ms.E13.tail_swing)
          tail_.value.compare_exchange_strong(t, node,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);  // relaxed: E13 ^
          domain_.clear_hazard(0);
          MSQ_COUNT(kEnqueue);
          return true;
        }
        MSQ_COUNT(kCasFail);
        backoff.pause();
      } else {
        Node* t = tail;
        // relaxed: helping CAS; failure means the help already happened (proof: mo-sweep:ms.E12.tail_help)
        tail_.value.compare_exchange_strong(t, next, std::memory_order_release,
                                            std::memory_order_relaxed);  // E12
      }
    }
  }

  bool try_dequeue(T& out) {
    BackoffPolicy backoff;
    for (;;) {
      Node* head = domain_.protect(0, head_.value);            // D2
      Node* tail = tail_.value.load(std::memory_order_acquire);  // D3
      Node* next = domain_.protect(1, head->next);             // D4
      if (head != head_.value.load(std::memory_order_acquire)) continue;  // D5
      if (head == tail) {                                      // D6
        if (next == nullptr) {                                 // D7
          clear_hazards();
          MSQ_COUNT(kDequeueEmpty);
          return false;                                        // D8
        }
        Node* t = tail;
        // relaxed: helping CAS; failure means the help already happened (proof: mo-sweep:ms.D9.tail_help)
        tail_.value.compare_exchange_strong(t, next, std::memory_order_release,
                                            std::memory_order_relaxed);  // D9
      } else {
        // D11: copy (not move) -- concurrent losing dequeuers may read the
        // same node, which their hazards keep alive.
        const T value = next->value;
        Node* h = head;
        MSQ_COUNT(kCasAttempt);
        // relaxed: D12 failure retries via the acquire loads at D3/D5 (proof: mo-sweep:ms.D12.head_swing)
        if (head_.value.compare_exchange_strong(h, next,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {  // relaxed: D12 ^
          out = value;
          clear_hazards();
          // D14: deferred free replaces the free list.  The gauge decrement
          // rides in the deleter, not here: a retired-but-unreclaimed node
          // is still resident (the limbo population the memory bench puts
          // next to the pool-backed queues' bounded footprints).
          domain_.retire(head, [](void* p) {
            delete static_cast<Node*>(p);
            MSQ_POOL_GAUGE(-1);
          });
          MSQ_COUNT(kDequeue);
          return true;
        }
        MSQ_COUNT(kCasFail);
        backoff.pause();
      }
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  /// Bytes of one heap node (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Node);
  }

 private:
  struct Node {
    T value{};
    // share-ok: value+link packed in one node by design (one node, one line)
    std::atomic<Node*> next{nullptr};
  };

  void clear_hazards() noexcept {
    domain_.clear_hazard(0);
    domain_.clear_hazard(1);
  }

  mem::HazardDomain& domain_;
  port::CacheAligned<std::atomic<Node*>> head_;
  port::CacheAligned<std::atomic<Node*>> tail_;
};

}  // namespace msq::queues
