// Mellor-Crummey's concurrent queue (UR TR 229, 1987): the paper's
// representative of algorithms that are "lock-free but not non-blocking:
// they do not use locking mechanisms, but they allow a slow process to
// delay faster processes indefinitely".
//
// Reconstruction (TR 229 itself is not reproduced in the paper) built on
// the paper's precise structural hint: the algorithm "uses compare_and_swap
// in a fetch_and_store-modify-compare_and_swap sequence rather than the
// usual read-modify-compare_and_swap sequence", which is why it needs no
// ABA precautions -- and why it is blocking.  Concretely, on a dummy-headed
// linked list:
//
//   enqueue:  prev = FETCH_AND_STORE(Tail, node)   // unconditional claim
//             prev->next = node                     // MODIFY: the link
//   dequeue:  read Head, read Head->next,
//             if next missing: queue is empty iff Tail == Head, else an
//                 enqueuer is mid-link -> WAIT (the blocking window);
//             COMPARE_AND_SWAP Head forward, free the old dummy.
//
// No operation ever retries an update to Tail (the swap always succeeds),
// so the uncontended path is shorter than the MS queue's -- matching the
// paper's remark that MC "could be expected to display lower constant
// overhead in the absence of unpredictable process delays, but is likely to
// degenerate on a multiprogrammed system": an enqueuer preempted between
// the swap and the link stalls every dequeuer once the queue drains to its
// node.
//
// Node reuse is safe without any extra machinery: a node is freed only
// after Head moves past it, which requires its `next` link to have been
// observed -- i.e. the enqueuer that might still write into it has already
// finished.  (Head still carries a modification counter for the dequeuers'
// CAS race among themselves.)
#pragma once

#include <cstdint>
#include <optional>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class MellorCrummeyQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kLockFreeBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit MellorCrummeyQueue(std::uint32_t capacity)
      : pool_(capacity + 1), freelist_(pool_) {
    const std::uint32_t dummy = freelist_.try_allocate();
    pool_[dummy].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    head_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
  }

  MellorCrummeyQueue(const MellorCrummeyQueue&) = delete;
  MellorCrummeyQueue& operator=(const MellorCrummeyQueue&) = delete;

  /// Returns false iff the node pool is exhausted.  Never retries: the
  /// fetch_and_store claims the tail position unconditionally.
  bool try_enqueue(T value) noexcept {
    const std::uint32_t node = freelist_.try_allocate();
    if (node == tagged::kNullIndex) return false;
    pool_[node].value.put(value);
    pool_[node].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    // fetch_and_store: swing Tail to the new node, learn the predecessor.
    const tagged::TaggedIndex prev =
        tail_.value.exchange(tagged::TaggedIndex(node, 0), std::memory_order_acq_rel);
    // modify: link the predecessor.  A stall HERE is the blocking window.
    MSQ_PROBE("mc.link");
    pool_[prev.index()].next.store(tagged::TaggedIndex(node, 0), std::memory_order_release);
    MSQ_COUNT(kEnqueue);
    return true;
  }

  /// Returns false iff the queue is empty.  WAITS (blocking) for an
  /// enqueuer that has swapped Tail but not yet linked.
  bool try_dequeue(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {
      const tagged::TaggedIndex head = head_.value.load(std::memory_order_acquire);
      const tagged::TaggedIndex next = pool_[head.index()].next.load(std::memory_order_acquire);
      if (next.is_null()) {
        const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);
        if (tail.index() == head.index() && head == head_.value.load(std::memory_order_acquire)) {
          MSQ_COUNT(kDequeueEmpty);
          return false;  // genuinely empty
        }
        // An enqueuer holds the claim on head->next: wait for its link.
        // The wait iterations are the algorithm's blocking cost; account
        // them like lock spins (this IS waiting on another thread's CS).
        MSQ_COUNT(kLockSpin);
        backoff.pause();
        continue;
      }
      // Read value before the CAS (another dequeuer might free `next`).
      const T value = pool_[next.index()].value.get();
      MSQ_COUNT(kCasAttempt);
      if (head_.value.compare_and_swap(head, head.successor(next.index()), std::memory_order_acq_rel)) {
        out = value;
        freelist_.free(head.index());
        MSQ_COUNT(kDequeue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      backoff.pause();
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicTagged next;
  };

  mem::NodePool<Node> pool_;
  mem::FreeList<Node> freelist_;
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
};

}  // namespace msq::queues
