// Function-shipping queue: operations are executed by a dedicated manager
// thread on a private (unsynchronised) queue; clients ship requests and
// wait for replies.
//
// Paper, section 5: the authors' larger project compares "single locks,
// data-structure-specific multilock algorithms, general-purpose and
// special-purpose non-blocking algorithms, and FUNCTION SHIPPING TO A
// CENTRALIZED MANAGER (a valid technique for situations in which remote
// access latencies dominate computation time)".  This is that fourth
// mechanism, included so the comparison the paper sketches can actually be
// run (bench/micro_ops).
//
// Design: each client thread owns a request slot (acquired lazily, like a
// hazard-pointer slot).  A request publishes {op, value} with a sequence
// handshake; the manager thread scans slots, applies operations to a plain
// ring buffer, and publishes {result, ok} back.  Clients spin on their own
// slot only, so the coherence traffic is one line per request and one per
// reply -- the "remote access" of the shipping model.
//
// Progress: blocking by construction (everything waits on the manager),
// but immune to client preemption: a preempted CLIENT delays only itself.
// Only manager preemption stalls the structure -- which is why the paper
// frames shipping as a scheduling-aware alternative worth comparing
// against non-blocking algorithms.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"

namespace msq::queues {

template <typename T>
class FunctionShippingQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,  // the manager is a total order
  };

  explicit FunctionShippingQueue(std::uint32_t capacity)
      : capacity_(capacity),
        ring_(std::make_unique<T[]>(capacity)),
        manager_([this](const std::stop_token& stop) { manage(stop); }) {}

  ~FunctionShippingQueue() {
    manager_.request_stop();
    manager_.join();
  }

  FunctionShippingQueue(const FunctionShippingQueue&) = delete;
  FunctionShippingQueue& operator=(const FunctionShippingQueue&) = delete;

  bool try_enqueue(T value) { return ship(Op::kEnqueue, std::move(value)).ok; }

  bool try_dequeue(T& out) {
    Reply reply = ship(Op::kDequeue, T{});
    if (reply.ok) out = std::move(reply.value);
    return reply.ok;
  }

  [[nodiscard]] std::optional<T> try_dequeue() {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  static constexpr std::size_t kMaxClients = 64;

  enum class Op : std::uint8_t { kEnqueue, kDequeue };

  // One request/reply mailbox per client thread.  seq odd = request
  // pending, even = reply ready; the client bumps to odd, the manager back
  // to even.  Value and ok are protected by the seq handshake
  // (release/acquire on seq).
  struct alignas(port::kCacheLine) Slot {
    // share-ok: the Slot struct is cache-line aligned; one mailbox per
    // client, so its fields share a line with nothing else
    std::atomic<std::uint64_t> seq{0};
    std::atomic<bool> active{false};  // share-ok: ^
    Op op = Op::kEnqueue;
    T value{};
    bool ok = false;
  };

  struct Reply {
    bool ok;
    T value;
  };

  Reply ship(Op op, T value) {
    Slot& slot = my_slot();
    // relaxed: only this client bumps to odd; re-reads its own/manager state (proof: test:tests/function_shipping_test.cpp)
    // that the previous reply's acquire already synchronized
    const std::uint64_t request_seq = slot.seq.load(std::memory_order_relaxed) + 1;
    slot.op = op;
    slot.value = std::move(value);
    slot.seq.store(request_seq, std::memory_order_release);  // odd: pending
    // Short local spin for the fast path, then yield the processor: on an
    // oversubscribed machine the manager needs our timeslice to reply.
    int spins = 0;
    while (slot.seq.load(std::memory_order_acquire) != request_seq + 1) {
      if (++spins < 64) {
        port::cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    return Reply{slot.ok, std::move(slot.value)};
  }

  void manage(const std::stop_token& stop) {
    while (!stop.stop_requested()) {
      bool did_work = false;
      for (auto& slot : slots_) {
        if (!slot.active.load(std::memory_order_acquire)) continue;
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if ((seq & 1) == 0) continue;  // no pending request
        apply(slot);
        slot.seq.store(seq + 1, std::memory_order_release);  // even: reply
        did_work = true;
      }
      if (!did_work) std::this_thread::yield();
    }
  }

  void apply(Slot& slot) {
    if (slot.op == Op::kEnqueue) {
      if (size_ == capacity_) {
        slot.ok = false;
        return;
      }
      ring_[(head_ + size_) % capacity_] = std::move(slot.value);
      ++size_;
      slot.ok = true;
    } else {
      if (size_ == 0) {
        slot.ok = false;
        return;
      }
      slot.value = std::move(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
      --size_;
      slot.ok = true;
    }
  }

  Slot& my_slot() {
    // Keyed by a unique per-queue id, never by address: a destroyed queue's
    // address can be reused by a new instance, and a stale cache hit would
    // bypass slot registration (the manager would ignore the request).
    thread_local std::unordered_map<std::uint64_t, Slot*> cache;
    Slot*& cached = cache[id_];
    if (cached == nullptr) {
      for (auto& slot : slots_) {
        bool expected = false;
        if (slot.active.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
          cached = &slot;
          break;
        }
      }
      // More than kMaxClients concurrent client threads is a configuration
      // error for this mechanism; fail loudly rather than corrupt.
      if (cached == nullptr) std::terminate();
    }
    return *cached;
  }

  // Manager-private state: no synchronisation, the whole point of shipping.
  std::uint32_t capacity_;
  std::unique_ptr<T[]> ring_;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;

  static std::uint64_t next_id() noexcept {
    // share-ok: touched once per queue construction
    static std::atomic<std::uint64_t> counter{1};
    // relaxed: unique-id draw; no payload is published through it (proof: test:tests/function_shipping_test.cpp)
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_id();
  Slot slots_[kMaxClients];
  std::jthread manager_;
};

}  // namespace msq::queues
