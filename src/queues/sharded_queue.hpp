// Sharded queue-of-queues front end: N independent sub-queues behind one
// try_enqueue/try_dequeue surface, with work-stealing dequeue.
//
// Motivation (ROADMAP item 1, and *No Cords Attached: Coordination-Free
// Concurrent Lock-Free Queues*, PAPERS.md): every queue in this library --
// including the FAA segment queue -- ultimately serialises all operations
// through one or two contended cache lines (Head/Tail or the ticket
// words).  Beyond a handful of cores the coherence traffic on those lines,
// not the instruction count, caps throughput.  The coordination-free fix
// is to stop sharing: N inner queues ("shards"), producers and consumers
// spread over them by a per-thread hint, so in the common case each thread
// operates on a line no other thread is touching.
//
// What is deliberately given up: GLOBAL FIFO ORDER.  The contract
// (docs/ALGORITHMS.md, "The sharded queue-of-queues") is:
//   * per-shard FIFO -- each shard is an Inner queue with Inner's full
//     ordering; elements that land in the same shard come out in order;
//   * per-producer order decomposes into at most N FIFO subsequences (a
//     producer's items live in at most N shards);
//   * conservation -- nothing lost, duplicated, or fabricated;
//   * emptiness is a coherent snapshot (below), not a single-shard peek.
//
// Shard selection: a producer enqueues to its HOME shard, a per-thread
// hint seeded round-robin by thread ordinal (mem::detail::thread_hint), so
// P <= N producers settle on distinct shards.  On a full home shard the
// producer sweeps the other shards for space; after kRehomeAfter
// consecutive home failures it RE-HOMES to the shard that accepted
// (obs: shard_rehome), so a persistently full or contended shard sheds its
// producers instead of taxing every future operation.  Consumers dequeue
// from their home shard and fall back to a bounded work-stealing sweep
// over the other N-1 shards; shard_hit and shard_steal partition the
// successful dequeues (hit + steal = dequeues, the bench's steal rate);
// a successful steal re-homes the consumer's dequeue hint to the donor
// shard (sticky stealing), which is what lets one consumer drain shards
// whose own consumers stopped.
//
// The empty snapshot: "queue empty" must mean ALL shards were empty at one
// coherent instant, not merely "each shard looked empty at some point
// during my sweep" -- the naive sweep admits the classic lost-item race
// (scan shard A empty; a producer enqueues to A; an item leaves shard B;
// scan B empty; report empty while an item sat in A the whole time --
// demonstrated schedule-exhaustively in tests/sim_sharded_test.cpp).
// Every shard therefore carries a monotone enqueue TICKET, bumped by a
// producer BEFORE it touches the inner queue.  A dequeuer that found every
// shard empty re-reads all tickets: if none moved across the whole sweep
// (a double collect, same shape as the PLJ snapshot), no enqueue even
// *began* during the sweep, so each shard's individually-observed
// emptiness held simultaneously and returning false is sound.  If any
// ticket moved, the sweep re-runs (obs: empty_rescan) -- the bump proves
// another thread made progress, so this is the same lock-free retry
// argument as a failed CAS.  Residual window, documented honestly: an
// enqueue that bumped its ticket before the sweep began but has not yet
// inserted is CONCURRENT with the dequeue, and a false-empty against only
// such in-flight enqueues is linearizable (order the dequeue first);
// sequential/quiescent emptiness is always exact.
//
// Cost accounting: the ticket adds one uncontended-in-the-common-case
// fetch_add per enqueue on a line owned by the producer's home shard.
// That is the price of a sound empty report; everything else the front
// end adds is thread-local (hint reads) or cold (re-home stores).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "mem/magazine.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"

namespace msq::queues {

/// Queue-of-queues over N shards of Inner.  Inner must satisfy
/// ConcurrentQueue and be constructible from a capacity (every pool-backed
/// queue here).  The aggregate capacity is split evenly across shards.
template <typename Inner, std::uint32_t N>
  requires ConcurrentQueue<Inner> && (N >= 1)
class ShardedQueue {
 public:
  using value_type = typename Inner::value_type;
  static constexpr std::uint32_t kShards = N;
  static constexpr QueueTraits traits{
      // The front end adds only bounded sweeps and lock-free retries on
      // top of Inner, so Inner's progress class survives.
      .progress = Inner::traits.progress,
      .mpmc = true,
      .pool_backed = Inner::traits.pool_backed,
      // Global FIFO is deliberately not promised for N > 1 (per-shard
      // FIFO only); the degenerate single shard is exactly Inner.
      .linearizable = N == 1 && Inner::traits.linearizable,
  };

  /// Consecutive home-shard enqueue failures before the producer re-homes
  /// to the shard that accepted its item.
  static constexpr std::uint32_t kRehomeAfter = 2;

  /// `capacity` is the aggregate item capacity, split ceil-evenly over the
  /// shards (each shard may round up further, e.g. whole segments).
  explicit ShardedQueue(std::uint32_t capacity) {
    const std::uint32_t per_shard = (capacity + N - 1) / N;
    for (std::uint32_t s = 0; s < N; ++s) {
      shards_[s] = std::make_unique<Shard>(per_shard);
    }
    for (std::uint32_t i = 0; i < kHintSlots; ++i) {
      // relaxed: construction-time seeding, no other thread exists yet (proof: test:tests/sharded_queue_test.cpp)
      hints_[i].enq_home.store(i % N, std::memory_order_relaxed);
      // relaxed: same construction-time exclusivity
      hints_[i].deq_home.store(i % N, std::memory_order_relaxed);
      // relaxed: same construction-time exclusivity
      hints_[i].enq_fail_streak.store(0, std::memory_order_relaxed);
    }
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  /// Returns false iff every shard refused (aggregate capacity exhausted).
  bool try_enqueue(value_type value) noexcept {
    HintSlot& hint = hint_slot();
    // relaxed: the hint is pure routing; any stale value is still a valid (proof: test:tests/sim_sharded_test.cpp)
    // shard index and the ticket/steal machinery keeps it correct
    const std::uint32_t home = hint.enq_home.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < N; ++i) {
      const std::uint32_t s = (home + i) % N;
      Shard& shard = *shards_[s];
      // Announce-then-insert: the ticket bump is what makes a concurrent
      // empty sweep rescan instead of missing this item (header comment).
      shard.ticket.value.fetch_add(1, std::memory_order_release);
      MSQ_PROBE("shardq.insert");
      if (shard.queue.try_enqueue(value)) {
        if (i == 0) {
          // relaxed: routing-only heuristic state (see enq_home above) (proof: test:tests/sim_sharded_test.cpp)
          if (hint.enq_fail_streak.load(std::memory_order_relaxed) != 0) {
            // relaxed: ^
            hint.enq_fail_streak.store(0, std::memory_order_relaxed);
          }
        } else {
          // Repeatedly-full home: move in with the shard that had room.
          // relaxed: routing-only heuristic state (proof: test:tests/sim_sharded_test.cpp)
          const std::uint32_t streak =
              hint.enq_fail_streak.load(std::memory_order_relaxed) + 1;
          if (streak >= kRehomeAfter) {
            MSQ_PROBE("shardq.rehome");
            MSQ_COUNT(kShardRehome);
            // relaxed: routing-only (a racing thread sharing this slot (proof: test:tests/sim_sharded_test.cpp)
            // just gets a different, equally valid home)
            hint.enq_home.store(s, std::memory_order_relaxed);
            // relaxed: ^
            hint.enq_fail_streak.store(0, std::memory_order_relaxed);
          } else {
            // relaxed: ^
            hint.enq_fail_streak.store(streak, std::memory_order_relaxed);
          }
        }
        return true;
      }
      // Home (or current) shard full: sweep onwards.  The wasted ticket
      // bump is harmless -- it can only cause a spurious empty rescan.
    }
    return false;
  }

  /// Returns false only after a coherent all-shards-empty snapshot (ticket
  /// double collect, header comment).
  bool try_dequeue(value_type& out) noexcept {
    HintSlot& hint = hint_slot();
    // relaxed: routing only (see enq_home in try_enqueue) (proof: test:tests/sim_sharded_test.cpp)
    const std::uint32_t home = hint.deq_home.load(std::memory_order_relaxed);
    if (shards_[home]->queue.try_dequeue(out)) {
      MSQ_COUNT(kShardHit);
      return true;
    }
    // Home empty: bounded stealing sweep, repeated only while the ticket
    // double collect proves another thread enqueued mid-sweep.
    for (;;) {
      std::array<std::uint64_t, N> pre;
      for (std::uint32_t s = 0; s < N; ++s) {
        pre[s] = shards_[s]->ticket.value.load(std::memory_order_acquire);
      }
      for (std::uint32_t i = 0; i < N; ++i) {
        const std::uint32_t s = (home + i) % N;
        MSQ_PROBE("shardq.steal");
        if (shards_[s]->queue.try_dequeue(out)) {
          if (s == home) {
            MSQ_COUNT(kShardHit);
          } else {
            MSQ_COUNT(kShardSteal);
            // Sticky stealing: follow the shard that actually has items
            // (this is what drains a shard whose home consumer stopped).
            // relaxed: routing-only hint (proof: test:tests/sim_sharded_test.cpp)
            hint.deq_home.store(s, std::memory_order_relaxed);
          }
          return true;
        }
      }
      // Every shard individually empty; coherent only if no enqueue was
      // announced anywhere across the sweep.
      MSQ_PROBE("shardq.verify");
      bool stable = true;
      for (std::uint32_t s = 0; s < N; ++s) {
        if (shards_[s]->ticket.value.load(std::memory_order_acquire) !=
            pre[s]) {
          stable = false;
          break;
        }
      }
      if (stable) {
        MSQ_COUNT(kDequeueEmpty);
        return false;
      }
      MSQ_COUNT(kEmptyRescan);
      port::cpu_relax();
    }
  }

  /// Convenience wrapper with optional-return style.
  [[nodiscard]] std::optional<value_type> try_dequeue() noexcept {
    value_type value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  /// Direct shard access for tests and shard-aware oracles.  Not part of
  /// the queue concept; never used on the hot path.
  [[nodiscard]] Inner& unsafe_shard(std::uint32_t s) noexcept {
    return shards_[s]->queue;
  }

  /// The calling thread's current enqueue home shard (racy; tests only).
  [[nodiscard]] std::uint32_t unsafe_home_shard() noexcept {
    // relaxed: tests-only peek at routing state (proof: test:tests/sharded_queue_test.cpp)
    return hint_slot().enq_home.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    explicit Shard(std::uint32_t capacity) : queue(capacity) {}
    // Monotone count of enqueue attempts ANNOUNCED against this shard; the
    // empty sweep's double collect keys off it.  Own line: producers homed
    // here bump it on every enqueue.
    port::CacheAligned<std::atomic<std::uint64_t>> ticket;
    Inner queue;
  };

  /// Per-thread-slot routing hints.  Slots are claimed by thread ordinal
  /// modulo kHintSlots -- a collision just means two threads share a home
  /// (correctness never depends on the hints).  One line per slot so a
  /// thread's routing reads never bounce on another thread's re-home.
  struct alignas(port::kCacheLine) HintSlot {
    // share-ok: all three words are routing state for ONE thread slot,
    // packed on one line on purpose (single owner in the common case)
    std::atomic<std::uint32_t> enq_home{0};
    std::atomic<std::uint32_t> deq_home{0};  // share-ok: ^
    std::atomic<std::uint32_t> enq_fail_streak{0};  // share-ok: ^
  };

  static constexpr std::uint32_t kHintSlots = 64;

  [[nodiscard]] HintSlot& hint_slot() noexcept {
    return hints_[mem::detail::thread_hint() % kHintSlots];
  }

  // unique_ptr per shard keeps the (atomics-laden, non-movable) inner
  // queues constructible with a capacity argument; the pointer array
  // itself is written once at construction and read-shared thereafter.
  std::array<std::unique_ptr<Shard>, N> shards_;
  std::array<HintSlot, kHintSlots> hints_;
};

static_assert(sizeof(port::CacheAligned<std::atomic<std::uint64_t>>) >=
                  port::kCacheLine,
              "shard tickets must not share a cache line with inner queues");

}  // namespace msq::queues
