// Valois's list-based non-blocking queue [23,24], with the TR 599
// corrections to its reference-counting memory management (see
// mem/refcount_pool.hpp) -- the paper's "comparatively inefficient
// non-blocking algorithm [that] can outperform blocking algorithms" on
// multiprogrammed systems.
//
// Structure (paper section 1): a singly-linked list with a dummy node at
// the head, like the MS queue (Valois is where the dummy-node technique
// comes from, crediting Sites).  Two deliberate differences from MS:
//
//  1. Reclamation by per-node reference counts instead of counted pointers +
//     free list.  SafeRead/Release bracket every shared-pointer traversal.
//     Nodes are freed only when no link or process references them -- which
//     prevents ABA, but lets one delayed process pin an unbounded suffix of
//     dequeued nodes (each unreclaimed node's outgoing link keeps its
//     successor alive).  bench/valois_memory reproduces the paper's
//     exhaustion experiment ("we ran out of memory several times ... using a
//     free list initialized with 64,000 nodes" with a <= 12-item queue).
//
//  2. "The algorithm allows the tail pointer to lag behind the head
//     pointer": the Tail swing after linking is a single CAS attempt, and
//     dequeuers never help Tail, so Tail can point at dequeued (but pinned)
//     nodes.  Reference counts are exactly what makes that lag safe.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/refcount_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class ValoisQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit ValoisQueue(std::uint32_t capacity) : pool_(capacity + 1) {
    const std::uint32_t dummy = pool_.try_allocate();  // count 1 (ours)
    pool_.add_reference(dummy);  // Head's link
    pool_.add_reference(dummy);  // Tail's link
    head_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
    pool_.release(dummy);  // drop the allocation reference
  }

  ~ValoisQueue() {
    // Drain, then drop the structure's own references so every node returns
    // to the free list (keeps the leak checkers honest).  Tail may still
    // lag behind Head (it holds its own reference wherever it points);
    // releasing each target once cascades the whole remaining chain.
    T sink;
    while (try_dequeue(sink)) {
    }
    const tagged::TaggedIndex head = head_.value.load(std::memory_order_acquire);
    const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);
    pool_.release(tail.index());  // Tail's link (possibly a lagging node)
    pool_.release(head.index());  // Head's link (the final dummy)
  }

  ValoisQueue(const ValoisQueue&) = delete;
  ValoisQueue& operator=(const ValoisQueue&) = delete;

  bool try_enqueue(T value) noexcept {
    const std::uint32_t node = pool_.try_allocate();  // count 1 (ours)
    if (node == tagged::kNullIndex) return false;
    pool_.node(node).value.put(value);

    BackoffPolicy backoff;
    for (;;) {
      const tagged::TaggedIndex tail = pool_.safe_read(tail_.value);
      const tagged::TaggedIndex next = pool_.node(tail.index()).rc.next.load(std::memory_order_acquire);
      if (next.is_null()) {
        MSQ_COUNT(kCasAttempt);
        if (rc_cas(pool_.node(tail.index()).rc.next, next, node)) {
          // Linked.  Single attempt to swing Tail (may fail: Tail lags).
          MSQ_PROBE("valois.link");
          rc_cas(tail_.value, tail, node);
          pool_.release(tail.index());  // SafeRead reference
          MSQ_COUNT(kEnqueue);
          break;
        }
        MSQ_COUNT(kCasFail);
        backoff.pause();
      } else {
        // Tail is lagging; help it forward one node.  `next` cannot be
        // reclaimed here: the live node `tail` holds a link reference to it.
        rc_cas(tail_.value, tail, next.index());
      }
      pool_.release(tail.index());
    }
    pool_.release(node);  // drop the allocation reference; links own it now
    return true;
  }

  bool try_dequeue(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {
      const tagged::TaggedIndex head = pool_.safe_read(head_.value);
      const tagged::TaggedIndex first =
          pool_.safe_read(pool_.node(head.index()).rc.next);
      if (first.is_null()) {
        pool_.release(head.index());
        MSQ_COUNT(kDequeueEmpty);
        return false;  // empty
      }
      MSQ_COUNT(kCasAttempt);
      if (rc_cas(head_.value, head, first.index())) {
        // We hold a SafeRead reference on `first`, so its value is stable
        // even though it is now the dummy and other dequeues proceed.
        out = pool_.node(first.index()).value.get();
        pool_.release(head.index());   // SafeRead ref; may trigger reclaim
        pool_.release(first.index());  // SafeRead ref
        MSQ_COUNT(kDequeue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      pool_.release(head.index());
      pool_.release(first.index());
      backoff.pause();
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  struct Node {
    mem::ValueCell<T> value;
    mem::RcHeader rc;
  };

  /// Nodes currently in the free list (racy; exhaustion experiment).
  [[nodiscard]] std::size_t unsafe_free_nodes() const noexcept {
    return pool_.unsafe_free_count();
  }

  /// Pool handle for tests that need to hold references like a "delayed
  /// process" (the exhaustion scenario).
  [[nodiscard]] mem::RefCountPool<Node>& pool() noexcept { return pool_; }
  [[nodiscard]] const tagged::AtomicTagged& head_cell() const noexcept {
    return head_.value;
  }

  /// Bytes of one pool node (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Node);
  }

 private:
  /// CAS a shared link cell with reference-count bookkeeping: the new
  /// target's reference is taken before the CAS and returned on failure;
  /// the old target's reference is dropped on success (CopyRef/Release
  /// discipline of the corrected Valois scheme).
  bool rc_cas(tagged::AtomicTagged& cell, tagged::TaggedIndex expected,
              std::uint32_t new_index) noexcept {
    pool_.add_reference(new_index);
    if (cell.compare_and_swap(expected, expected.successor(new_index), std::memory_order_acq_rel)) {
      if (!expected.is_null()) pool_.release(expected.index());
      return true;
    }
    pool_.release(new_index);
    return false;
  }

  mem::RefCountPool<Node> pool_;
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
};

}  // namespace msq::queues
