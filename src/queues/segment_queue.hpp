// Fetch-and-add segmented queue: the paper's list-of-nodes made wide.
//
// Section 4 of Michael & Scott attributes every throughput gap to contended
// cache-line transfers: the MS queue pays one CAS *retry loop* on Tail per
// enqueue and one on Head per dequeue, and under contention each failed CAS
// is a wasted exclusive acquisition of the hottest line in the program.
// The modern fix (LCRQ, FAAArrayQueue, SCQ -- see PAPERS.md) keeps the
// paper's linked-list backbone but makes each node a fixed-size *segment*
// of kSlots items, so the common case claims a slot with ONE fetch-and-add
// on a ticket counter -- fetch_add always succeeds, so the line is acquired
// exactly once per operation instead of once per retry.  The MS-style CAS
// machinery (counted pointers, E12/D9 helping) survives, but runs only on
// the cold segment-append path, i.e. once every kSlots operations.
//
// Slot handshake (the ring_queue cell discipline, single-shot): each slot
// is a {state, value} pair.  An enqueuer that won ticket t writes the value
// and CASes state kEmpty -> kFilled (release).  A dequeuer that won ticket
// t exchanges state -> kTaken (acq_rel): if it saw kFilled the value is its
// result; if it saw kEmpty it has *killed* a slot whose enqueuer is still
// in flight -- that enqueuer's CAS fails and it retries with a fresh
// ticket, which is what keeps both sides non-blocking (no waiting on a
// stalled peer, exactly the paper's progress argument for dequeue D5-D15).
//
// Memory reclamation: counted pointers defend every CAS here exactly as in
// ms_queue.hpp, but they CANNOT defend the unconditional fetch-and-add: a
// stale thread FAA-ing the ticket of a recycled segment would consume a
// ticket the new incarnation never handed out and strand an item.  So a
// thread may only touch a segment while *protecting* it in a hazard cell
// (claim-and-publish CAS, seq_cst, then re-validate Head/Tail -- the
// classic hazard-pointer store/load fence argument, cf. mem/hazard.hpp).
// Retired segments whose index is still published go to a small limbo
// array and are reaped on later retires.  Segments are reset by their new
// exclusive owner at ALLOCATION time (published by the release link-CAS),
// never at retire time, so a late reader of a free segment sees only
// stale-but-harmless state.
//
// Allocation: segments come from a NodePool through a MagazineAllocator by
// default -- one shared free-list CAS per kCap/2 segment turnovers.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "mem/magazine.hpp"
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

/// Default segment allocator: small magazines (a segment is recycled once
/// per kSlots operations, so a deep cache would only hoard capacity).
template <typename Node>
using SegmentMagazine = mem::MagazineAllocator<Node, 8>;

/// Unbounded-by-design, pool-bounded-in-practice lock-free MPMC FIFO.
/// `T` must be trivially copyable and at most 8 bytes (mem/value_cell.hpp).
/// `capacity` rounds up to whole segments: the queue accepts at least
/// `capacity` items before refusing, possibly up to a segment more.
template <typename T, template <typename> class Alloc = SegmentMagazine>
class SegmentQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  /// Items per segment: the FAA fast path amortises one segment append
  /// (CAS + allocation) over this many enqueues.
  static constexpr std::uint32_t kSlots = 64;

  explicit SegmentQueue(std::uint32_t capacity)
      : pool_(segments_for(capacity)), alloc_(pool_) {
    for (auto& slot : limbo_) {
      // relaxed: construction-time store, no other thread exists yet (proof: test:tests/sim_segment_test.cpp)
      slot.store(tagged::kNullIndex, std::memory_order_relaxed);
    }
    // The initial segment is born DRAINED (all tickets consumed): the
    // first enqueue appends a fresh segment exactly like every later
    // fill/drain cycle, so pool accounting is identical from cycle 0
    // (tests/pool_exhaustion_test.cpp counts on this).
    const std::uint32_t s0 = alloc_.try_allocate();
    Segment& seg = pool_[s0];
    for (Slot& slot : seg.slots) {
      // relaxed: queue is being constructed; no other thread exists yet (proof: test:tests/sim_segment_test.cpp)
      slot.state.store(kTaken, std::memory_order_relaxed);
    }
    // relaxed: same construction-time exclusivity for all stores below
    seg.enq.store(kSlots, std::memory_order_relaxed);
    seg.deq.store(kSlots, std::memory_order_relaxed);
    // relaxed: construction-time store, no other thread exists yet (proof: test:tests/sim_segment_test.cpp)
    seg.next.store(tagged::TaggedIndex{}, std::memory_order_relaxed);
    head_.value.store(tagged::TaggedIndex(s0, 0), std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(s0, 0), std::memory_order_release);
  }

  SegmentQueue(const SegmentQueue&) = delete;
  SegmentQueue& operator=(const SegmentQueue&) = delete;

  /// Returns false iff the segment pool is exhausted.
  bool try_enqueue(T value) noexcept {
    Protector hp(*this);
    for (;;) {
      const tagged::TaggedIndex tail = hp.protect(tail_.value);
      Segment& seg = pool_[tail.index()];
      // Ticket pre-check: once a segment has overflowed, retries must not
      // keep FAA-ing its counter into the sky (and dirtying its line).
      if (seg.enq.load(std::memory_order_acquire) < kSlots) {
        MSQ_PROBE("segq.faa_enq");
        const std::uint64_t t = seg.enq.fetch_add(1, std::memory_order_acq_rel);
        if (t < kSlots) {
          seg.slots[t].value.put(value);
          MSQ_PROBE_COUNT("segq.fill", kCasAttempt);
          std::uint32_t expected = kEmpty;
          if (seg.slots[t].state.compare_exchange_strong(
                  expected, kFilled, std::memory_order_release,
                  // relaxed: on failure the slot was killed; the observed (proof: test:tests/sim_segment_test.cpp)
                  // value is not reused, we just take a fresh ticket
                  std::memory_order_relaxed)) {
            MSQ_COUNT(kEnqueue);
            return true;
          }
          // An impatient dequeuer killed our slot: lost the race, retry.
          MSQ_COUNT(kCasFail);
          continue;
        }
      }
      // Segment full.  If it already has a successor, help swing Tail
      // (the paper's E12) and retry there.
      const tagged::TaggedIndex next = seg.next.load(std::memory_order_acquire);
      if (!next.is_null()) {
        tail_.value.compare_and_swap(tail, tail.successor(next.index()),
                                     std::memory_order_acq_rel);
        continue;
      }
      // Append a fresh segment, pre-seeded with our value in slot 0 (saves
      // the new segment's first FAA + slot CAS).
      std::uint32_t fresh = alloc_.try_allocate();
      if (fresh == tagged::kNullIndex) {
        // Exhaustion sweep, mirroring the magazine's sweep-before-refusing
        // discipline: limbo is otherwise only re-scanned by a LATER retire,
        // and once the pool is dry no dequeue can ever retire again -- a
        // segment whose hazard cleared after the last retire parked it
        // would stay stranded forever, wedging every future enqueue on a
        // queue whose capacity is nominally free (with per-shard pools as
        // small as one usable segment this is a near-certain livelock in
        // any enqueue-retry loop, not a rare corner).
        sweep_limbo();
        fresh = alloc_.try_allocate();
        if (fresh == tagged::kNullIndex) return false;
      }
      reset_segment(fresh);
      Segment& nseg = pool_[fresh];
      nseg.slots[0].value.put(value);
      // relaxed: `fresh` is private until the link-CAS below publishes it (proof: test:tests/sim_segment_test.cpp)
      nseg.slots[0].state.store(kFilled, std::memory_order_relaxed);
      // relaxed: same pre-publication exclusivity
      nseg.enq.store(1, std::memory_order_relaxed);
      MSQ_PROBE_COUNT("segq.close", kCasAttempt);
      if (seg.next.compare_and_swap(next, next.successor(fresh),
                                    std::memory_order_acq_rel)) {
        MSQ_COUNT(kSegClose);
        // Swing Tail to the new segment (paper's E13; failure means
        // someone helped us, which is fine).
        tail_.value.compare_and_swap(tail, tail.successor(fresh),
                                     std::memory_order_acq_rel);
        MSQ_COUNT(kEnqueue);
        return true;
      }
      // Lost the append race; give the segment back and retry.
      MSQ_COUNT(kCasFail);
      alloc_.free(fresh);
    }
  }

  /// Returns false iff the queue was observed empty.
  bool try_dequeue(T& out) noexcept {
    Protector hp(*this);
    for (;;) {
      const tagged::TaggedIndex head = hp.protect(head_.value);
      Segment& seg = pool_[head.index()];
      // Read order matters for the empty check: deq first, then enq, then
      // next.  Both tickets are monotone, so deq >= enq here implies the
      // segment was drained at the instant deq was read; `next` is
      // write-once, so null now means null at that same instant -- a valid
      // linearization point for returning empty.
      const std::uint64_t d = seg.deq.load(std::memory_order_acquire);
      const std::uint64_t e = seg.enq.load(std::memory_order_acquire);
      const tagged::TaggedIndex next = seg.next.load(std::memory_order_acquire);
      // Once a successor exists the segment is closed, but straggler
      // enqueuers holding pre-close tickets may still fill ANY slot: every
      // slot's dequeue ticket must be consumed (taking or killing it)
      // before the segment can be abandoned -- hence the kSlots limit.
      const std::uint64_t limit =
          next.is_null() ? (e < kSlots ? e : kSlots) : kSlots;
      if (d >= limit) {
        if (next.is_null()) {
          MSQ_COUNT(kDequeueEmpty);
          return false;
        }
        // Drained segment with a successor: advance Head.  First make
        // sure Tail is not left pointing at the segment we are about to
        // retire (the paper's D9 discipline that makes reuse safe).
        const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);
        if (tail.index() == head.index()) {
          tail_.value.compare_and_swap(tail, tail.successor(next.index()),
                                       std::memory_order_acq_rel);
        }
        MSQ_PROBE_COUNT("segq.swing_head", kCasAttempt);
        if (head_.value.compare_and_swap(head, head.successor(next.index()),
                                         std::memory_order_acq_rel)) {
          // Clear our own hazard BEFORE the retire scan, or the scan
          // would always find the segment "in use" -- by us.
          hp.release();
          retire(head.index());
        } else {
          MSQ_COUNT(kCasFail);
        }
        continue;
      }
      MSQ_PROBE("segq.faa_deq");
      const std::uint64_t t = seg.deq.fetch_add(1, std::memory_order_acq_rel);
      if (t >= kSlots) continue;  // overshoot: segment drained, re-examine
      // Ticket t names a single dequeuer (us); once kFilled is visible its
      // single enqueuer is done with the slot, so the consume transition
      // needs no RMW -- a plain store suffices.  Only the kill race (an
      // enqueuer's fill-CAS still in flight) needs the atomic exchange.
      if (seg.slots[t].state.load(std::memory_order_acquire) == kFilled) {
        out = seg.slots[t].value.get();
        seg.slots[t].state.store(kTaken, std::memory_order_release);
        MSQ_COUNT(kDequeue);
        return true;
      }
      const std::uint32_t prev =
          seg.slots[t].state.exchange(kTaken, std::memory_order_acq_rel);
      if (prev == kFilled) {
        out = seg.slots[t].value.get();
        MSQ_COUNT(kDequeue);
        return true;
      }
      // Killed a slot whose enqueuer is still in flight (it will retry
      // with a fresh ticket); burn onwards.
      MSQ_PROBE("segq.kill");
    }
  }

  /// Convenience wrapper with optional-return style.
  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  /// Segments the pool can still hand out (racy; tests/metrics only).
  [[nodiscard]] std::size_t unsafe_free_segments() noexcept {
    return alloc_.unsafe_size();
  }

  /// Item capacity still allocatable (racy; tests/metrics only).
  [[nodiscard]] std::size_t unsafe_free_nodes() noexcept {
    return unsafe_free_segments() * kSlots;
  }

  /// Bytes of one SEGMENT -- the allocation grain the pool gauge counts
  /// (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Segment);
  }

 private:
  // Slot states: single-shot handshake, in transition order.
  static constexpr std::uint32_t kEmpty = 0;   // no value yet
  static constexpr std::uint32_t kFilled = 1;  // value visible (enq committed)
  static constexpr std::uint32_t kTaken = 2;   // consumed OR killed

  struct Slot {
    // share-ok: state+value of ONE slot share a line on purpose (one
    // transfer per op); adjacent slots sharing is the ring-array cost
    std::atomic<std::uint32_t> state{kEmpty};
    mem::ValueCell<T> value;
  };

  struct Segment {
    // Enqueuers and dequeuers each contend on their own ticket line.
    alignas(port::kCacheLine) std::atomic<std::uint64_t> enq{0};
    alignas(port::kCacheLine) std::atomic<std::uint64_t> deq{0};
    // MS-style link, also the free-list chain field (mem/freelist.hpp).
    alignas(port::kCacheLine) tagged::AtomicTagged next;
    std::array<Slot, kSlots> slots{};
  };

  static constexpr std::uint32_t segments_for(std::uint32_t capacity) noexcept {
    // Enough segments for `capacity` items plus the one drained segment
    // that is always resident as the list anchor (the paper's dummy node,
    // scaled up to a segment).
    return (capacity + kSlots - 1) / kSlots + 1;
  }

  // ---- hazard cells: per-queue protection for the FAA targets ----------
  //
  // kCells bounds the number of concurrently *protected* segments; an op
  // protects exactly one at a time, so this is a concurrency bound, not a
  // correctness bound -- thread 65+ spins for a free cell (documented
  // deviation from strict lock-freedom at >64 threads on one queue).

  static constexpr std::uint32_t kCells = 64;
  static constexpr std::uint32_t kLimbo = 2 * kCells;

  struct HazardCell {
    // share-ok: one cell per cache line (struct is cache-line aligned)
    alignas(port::kCacheLine) std::atomic<std::uint32_t> v{tagged::kNullIndex};
  };

  /// RAII claim of one hazard cell for the duration of an operation.
  class Protector {
   public:
    explicit Protector(SegmentQueue& q) noexcept : q_(q) {}
    ~Protector() { release(); }
    Protector(const Protector&) = delete;
    Protector& operator=(const Protector&) = delete;

    /// Publish protection for whatever segment `word` currently points
    /// to, re-validating until the published index survives a re-read of
    /// `word` (the hazard-pointer handshake: seq_cst publish, seq_cst
    /// re-read, vs. the seq_cst scan in retire()).
    [[nodiscard]] tagged::TaggedIndex protect(
        const tagged::AtomicTagged& word) noexcept {
      tagged::TaggedIndex cur = word.load(std::memory_order_acquire);
      if (cell_ == nullptr) {
        // The claim-CAS stores `cur.index()` itself, so it doubles as the
        // first seq_cst publication -- no separate store needed.
        claim(cur.index());
      } else {
        cell_->v.store(cur.index(), std::memory_order_seq_cst);
      }
      for (;;) {
        const tagged::TaggedIndex check = word.load(std::memory_order_seq_cst);
        if (check.index() == cur.index()) return check;
        cur = check;
        cell_->v.store(cur.index(), std::memory_order_seq_cst);
      }
    }

    void release() noexcept {
      if (cell_ != nullptr) {
        cell_->v.store(tagged::kNullIndex, std::memory_order_release);
        cell_ = nullptr;
      }
    }

   private:
    void claim(std::uint32_t idx) noexcept {
      const std::uint32_t start = mem::detail::thread_hint();
      for (std::uint32_t i = 0;; ++i) {
        HazardCell& c = q_.cells_[(start + i) % kCells];
        std::uint32_t expected = tagged::kNullIndex;
        if (c.v.compare_exchange_strong(expected, idx,
                                        std::memory_order_seq_cst,
                                        // relaxed: failure value unused; (proof: test:tests/sim_segment_test.cpp)
                                        // the claim moves to the next cell
                                        std::memory_order_relaxed)) {
          cell_ = &c;
          return;
        }
        if (i >= kCells) port::cpu_relax();
      }
    }

    SegmentQueue& q_;
    HazardCell* cell_ = nullptr;
  };

  [[nodiscard]] bool hazarded(std::uint32_t idx) noexcept {
    for (HazardCell& c : cells_) {
      if (c.v.load(std::memory_order_seq_cst) == idx) return true;
    }
    return false;
  }

  /// Unlinked segment: free it now if no cell protects it, else park it in
  /// limbo for a later sweep.  Callers must have released their own cell.
  void retire(std::uint32_t idx) noexcept {
    if (limbo_count_.load(std::memory_order_acquire) > 0) sweep_limbo();
    if (!hazarded(idx)) {
      alloc_.free(idx);
      return;
    }
    for (;;) {
      for (std::atomic<std::uint32_t>& slot : limbo_) {
        std::uint32_t expected = tagged::kNullIndex;
        if (slot.compare_exchange_strong(expected, idx,
                                         std::memory_order_acq_rel,
                                         // relaxed: occupied slot, move on (proof: test:tests/sim_segment_test.cpp)
                                         std::memory_order_relaxed)) {
          limbo_count_.fetch_add(1, std::memory_order_acq_rel);
          return;
        }
      }
      // Limbo full (can only happen transiently: parked segments become
      // reapable as soon as their protectors move on).  Reap and retry.
      sweep_limbo();
      port::cpu_relax();
    }
  }

  void sweep_limbo() noexcept {
    for (std::atomic<std::uint32_t>& slot : limbo_) {
      std::uint32_t idx = slot.load(std::memory_order_acquire);
      if (idx == tagged::kNullIndex || hazarded(idx)) continue;
      if (slot.compare_exchange_strong(idx, tagged::kNullIndex,
                                       std::memory_order_acq_rel,
                                       // relaxed: lost the reap race (proof: test:tests/sim_segment_test.cpp)
                                       std::memory_order_relaxed)) {
        limbo_count_.fetch_sub(1, std::memory_order_acq_rel);
        alloc_.free(idx);
      }
    }
  }

  /// Reset a just-allocated segment.  We are its exclusive owner: the
  /// hazard scan in retire() proved no thread could still touch it, and
  /// the allocator handed it to us alone.  The release link-CAS publishes
  /// everything written here.
  void reset_segment(std::uint32_t idx) noexcept {
    Segment& seg = pool_[idx];
    for (Slot& slot : seg.slots) {
      // relaxed: exclusive pre-publication writes (see function comment) (proof: test:tests/sim_segment_test.cpp)
      slot.state.store(kEmpty, std::memory_order_relaxed);
    }
    // relaxed: same exclusivity; slot states are reset above BEFORE the
    // tickets re-open the segment, in case of a torn future publication
    seg.enq.store(0, std::memory_order_relaxed);
    // relaxed: same exclusivity
    seg.deq.store(0, std::memory_order_relaxed);
    // relaxed: same exclusivity
    seg.next.store(tagged::TaggedIndex{}, std::memory_order_relaxed);
  }

  mem::NodePool<Segment> pool_;
  Alloc<Segment> alloc_;
  // Head and Tail on separate cache lines, as in every queue here: the
  // FAA design makes these *cold* (one CAS per kSlots ops), but a false
  // share would still couple enqueuers to dequeuers.
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
  std::array<HazardCell, kCells> cells_{};
  // share-ok: limbo slots are rarely touched (one park per lost retire
  // race); packing them is kinder than 128 dedicated lines
  std::array<std::atomic<std::uint32_t>, kLimbo> limbo_{};
  // share-ok: adjacent to limbo_ by design, same rare-touch argument
  std::atomic<std::uint32_t> limbo_count_{0};
};

// The false-sharing audit in one line: a CacheAligned word occupies a full
// line, so any two distinct CacheAligned members are on distinct lines.
static_assert(sizeof(port::CacheAligned<tagged::AtomicTagged>) >=
                  port::kCacheLine,
              "Head/Tail must not share a cache line");

}  // namespace msq::queues
