// SCQ: the indirect bounded lock-free FIFO of Nikolaev's "A Scalable,
// Portable, and Memory-Efficient Lock-Free FIFO Queue" (PAPERS.md), built
// next to ring_queue.hpp as the memory-bounded answer to the MS queue's
// unbounded nodes-in-flight.
//
// Where the MS queue allocates a node per element (a stalled consumer pins
// an arbitrary amount of pool memory -- bench/fig_memory measures exactly
// that), SCQ circulates a FIXED set of `n` data-array indices through two
// index rings:
//
//   fq  -- free indices, initialised full with {0..n-1}
//   aq  -- allocated indices, initialised empty
//
//   enqueue(v): i = fq.dequeue(); data[i] = v; aq.enqueue(i)
//   dequeue():  i = aq.dequeue(); v = data[i]; fq.enqueue(i)
//
// so total memory is exactly `capacity` elements + two 2n-entry rings of
// 64-bit words -- no node pool, no hazard pointers, no limbo lists.
//
// Each ring (ScqRing) is the paper's circular queue of indices:
//  * 2n entries for n indices ("half full at most"), so a FAA-claimed
//    enqueue ticket always has an empty entry within one lap -- this is
//    what makes unconditional FAA workable where the segment queue needed
//    hazard cells (see docs/ALGORITHMS.md).
//  * an entry packs {cycle[63:32], unsafe-bit[31], index[30:0]}; the
//    cycle tag (ticket / ring_size, compared wrap-safely) makes reuse
//    ABA-proof, index 0x7FFFFFFF is the paper's bottom.
//  * dequeuers that overtake a slow enqueuer mark its entry UNSAFE; the
//    enqueuer deposits into an unsafe entry only after re-checking that no
//    live dequeuer ticket could still scan it (head <= its ticket).
//  * a dequeuer that drains past the tail CASes the tail forward to
//    head+1 ("catch up"), so enqueuers never deposit behind the head.
//  * the THRESHOLD counter (3n-1) bounds how many entries dequeuers may
//    inspect-and-miss after the last enqueue: each miss decrements it, a
//    deposit re-arms it, and a negative threshold is a proof the queue was
//    empty at some point during the scan -- dequeue returns empty instead
//    of chasing enqueuers forever.  tests/sim_scq_test.cpp replays the
//    livelock that exists WITHOUT the threshold and proves the bound WITH
//    it over every DPOR schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"

namespace msq::queues {

/// The paper's circular queue of indices (SCQ figure 5/6), reusable for
/// both the free ring and the allocated ring.  Stores values in
/// [0, 2^31 - 2]; kBottom is the reserved empty marker.
class ScqRing {
 public:
  static constexpr std::uint32_t kBottom = 0x7FFFFFFFu;

  /// `half` = the number of indices the ring must hold (rounded up to a
  /// power of two by the caller); the entry array is 2*half.  `full`
  /// pre-populates with {0..half-1} (the free ring); otherwise empty.
  explicit ScqRing(std::uint32_t half, bool full)
      : half_(half),
        size_(half * 2),
        mask_(size_ - 1),
        order_(log2_pow2(size_)),
        rot_(order_ < kMaxRot ? order_ : kMaxRot),
        threshold_init_(3 * static_cast<std::int64_t>(half) - 1),
        entries_(std::make_unique<std::atomic<std::uint64_t>[]>(size_)) {
    for (std::uint32_t i = 0; i < size_; ++i) {
      // Unused entries start at cycle -1 (0xFFFFFFFF): older than every
      // real cycle under the wrap-safe compare, so both the ticket-0
      // enqueuer (cycle 0) and the first recycling enqueuer (cycle >= 1
      // after an init-full lap) can deposit into them.
      // relaxed: construction is single-threaded (proof: test:tests/queue_concurrent_test.cpp)
      entries_[i].store(make_entry(0xFFFFFFFFu, true, kBottom),
                        std::memory_order_relaxed);
    }
    if (full) {
      for (std::uint32_t i = 0; i < half_; ++i) {
        // relaxed: construction is single-threaded (proof: test:tests/queue_concurrent_test.cpp)
        entries_[remap(i)].store(make_entry(0, true, i),
                                 std::memory_order_relaxed);
      }
      // relaxed: construction is single-threaded (proof: test:tests/queue_concurrent_test.cpp)
      tail_.store(half_, std::memory_order_relaxed);
      threshold_.store(threshold_init_, std::memory_order_relaxed);  // relaxed: ^
    } else {
      // Empty ring: threshold -1 arms the dequeue fast path immediately.
      // relaxed: construction is single-threaded (proof: test:tests/queue_concurrent_test.cpp)
      threshold_.store(-1, std::memory_order_relaxed);
    }
  }

  ScqRing(const ScqRing&) = delete;
  ScqRing& operator=(const ScqRing&) = delete;

  /// Deposit an index.  Loops until it lands; terminates because callers
  /// (ScqQueue) never have more than `half` indices in flight, so some
  /// entry within one lap is always depositable -- and is lock-free: a
  /// failed lap means another thread's deposit or consume succeeded.
  void enqueue(std::uint32_t idx) noexcept {
    for (;;) {
      MSQ_PROBE("scq.faa_enq");
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_acq_rel);
      const std::uint32_t j = remap(t);
      const std::uint32_t cycle = ticket_cycle(t);
      std::uint64_t e = entries_[j].load(std::memory_order_acquire);
      for (;;) {
        // Depositable: entry from an older cycle, no index parked in it,
        // and either still safe or provably unscannable (every issued
        // dequeue ticket is past it: head <= t means no dequeuer with an
        // older ticket can still be about to scan this entry's old cycle).
        if (cycle_less(entry_cycle(e), cycle) && entry_idx(e) == kBottom &&
            (entry_safe(e) ||
             head_.load(std::memory_order_acquire) <= t)) {
          MSQ_PROBE_COUNT("scq.enq_cas", kCasAttempt);
          if (!entries_[j].compare_exchange_weak(
                  e, make_entry(cycle, true, idx), std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            MSQ_COUNT(kCasFail);
            continue;  // entry changed: re-test the same entry
          }
          // Deposit landed: re-arm the dequeuers' search budget.
          if (threshold_.load(std::memory_order_acquire) != threshold_init_) {
            threshold_.store(threshold_init_, std::memory_order_release);
            MSQ_COUNT(kScqThresholdReset);
          }
          return;
        }
        break;  // entry not depositable this cycle: take a new ticket
      }
    }
  }

  /// Take an index, or kBottom if the ring is (observably) empty.
  /// Livelock-free via the threshold: at most threshold_init_+1 losing
  /// probes after the last deposit before every dequeuer reports empty.
  [[nodiscard]] std::uint32_t dequeue() noexcept {
    if (threshold_.load(std::memory_order_acquire) < 0) {
      return kBottom;  // fast path: a prior exhausted scan proved emptiness
    }
    for (;;) {
      MSQ_PROBE("scq.faa_deq");
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_acq_rel);
      const std::uint32_t j = remap(h);
      const std::uint32_t cycle = ticket_cycle(h);
      std::uint64_t e = entries_[j].load(std::memory_order_acquire);
      for (;;) {
        if (entry_cycle(e) == cycle) {
          // A value was deposited for exactly this ticket: consume it by
          // blanking the index bits (cycle and safe bit survive).  Only
          // this ticket's owner can be here, so the fetch_or result's
          // index is the deposited one.
          const std::uint64_t prev =
              entries_[j].fetch_or(kIdxMask, std::memory_order_acq_rel);
          return entry_idx(prev);
        }
        if (cycle_less(entry_cycle(e), cycle)) {
          // Older entry.  Empty entries get their cycle advanced so a
          // lagging enqueuer with an old ticket cannot deposit where we
          // already scanned; occupied ones are marked unsafe for the same
          // reason (their enqueuer must re-validate against head).
          const std::uint64_t desired =
              entry_idx(e) == kBottom
                  ? make_entry(cycle, entry_safe(e), kBottom)
                  : (e | kUnsafeBit);
          MSQ_PROBE_COUNT("scq.deq_mark", kCasAttempt);
          if (!entries_[j].compare_exchange_weak(e, desired,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
            MSQ_COUNT(kCasFail);
            continue;  // entry changed: re-test (it may now match our cycle)
          }
        }
        // No value for this ticket.  If the tail is at or behind our scan
        // point the ring is empty: drag the tail up to head+1 so future
        // enqueuers start ahead of everything already scanned.
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        if (t <= h + 1) {
          catch_up(t, h + 1);
          threshold_.fetch_sub(1, std::memory_order_acq_rel);
          return kBottom;
        }
        MSQ_PROBE("scq.threshold");
        if (threshold_.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
          return kBottom;  // search budget exhausted: observably empty
        }
        break;  // budget remains: take a new ticket and keep scanning
      }
    }
  }

  [[nodiscard]] std::uint32_t half() const noexcept { return half_; }

  /// Exposed for tests/benches: current threshold (negative = drained).
  [[nodiscard]] std::int64_t threshold() const noexcept {
    return threshold_.load(std::memory_order_acquire);
  }

 private:
  // Entry layout: {cycle[63:32], unsafe[31], index[30:0]}.
  static constexpr std::uint64_t kIdxMask = 0x7FFFFFFFull;
  static constexpr std::uint64_t kUnsafeBit = 0x80000000ull;
  // Rotate ticket bits so consecutive tickets land kMaxRot entries apart
  // (distinct cache lines); any bijection preserves correctness, and rings
  // with <= 2^kMaxRot entries degrade to the identity map.
  static constexpr std::uint32_t kMaxRot = 4;

  static constexpr std::uint64_t make_entry(std::uint32_t cycle, bool safe,
                                            std::uint32_t idx) noexcept {
    return (static_cast<std::uint64_t>(cycle) << 32) |
           (safe ? 0ull : kUnsafeBit) | idx;
  }
  static constexpr std::uint32_t entry_cycle(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e >> 32);
  }
  static constexpr bool entry_safe(std::uint64_t e) noexcept {
    return (e & kUnsafeBit) == 0;
  }
  static constexpr std::uint32_t entry_idx(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e & kIdxMask);
  }
  /// Wrap-safe cycle comparison (cycles are mod-2^32 lap counters).
  static constexpr bool cycle_less(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  static constexpr std::uint32_t log2_pow2(std::uint32_t n) noexcept {
    std::uint32_t l = 0;
    while ((1u << l) < n) ++l;
    return l;
  }

  [[nodiscard]] std::uint32_t ticket_cycle(std::uint64_t ticket) const
      noexcept {
    return static_cast<std::uint32_t>(ticket >> order_);
  }
  [[nodiscard]] std::uint32_t remap(std::uint64_t ticket) const noexcept {
    const std::uint32_t i = static_cast<std::uint32_t>(ticket) & mask_;
    return ((i << rot_) | (i >> (order_ - rot_))) & mask_;
  }

  /// The tail lags head+1: CAS it forward so deposits resume ahead of the
  /// scanned region.  Loses benignly to concurrent enqueuers' FAAs.
  void catch_up(std::uint64_t t, std::uint64_t h) noexcept {
    MSQ_PROBE("scq.catchup");
    MSQ_COUNT(kScqCatchup);
    while (!tail_.compare_exchange_weak(t, h, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      h = head_.load(std::memory_order_acquire);
      t = tail_.load(std::memory_order_acquire);
      if (t >= h) break;
    }
  }

  std::uint32_t half_;
  std::uint32_t size_;
  std::uint32_t mask_;
  std::uint32_t order_;
  std::uint32_t rot_;
  std::int64_t threshold_init_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
  alignas(port::kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(port::kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(port::kCacheLine) std::atomic<std::int64_t> threshold_{0};
};

/// SCQ proper: two index rings circulating indices into a caller-sized
/// data array.  Bounded at exactly `capacity` elements; lock-free in both
/// directions (a stalled thread's entry is marked unsafe and skipped --
/// contrast RingQueue, whose slot handshake BLOCKS the matching op).
template <typename T>
class ScqQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,  // bounded: enqueue refuses at capacity
      .linearizable = true,
  };

  explicit ScqQueue(std::uint32_t capacity)
      : capacity_(round_up_pow2(capacity < 1 ? 1 : capacity)),
        fq_(capacity_, /*full=*/true),
        aq_(capacity_, /*full=*/false),
        data_(std::make_unique<T[]>(capacity_)) {}

  ScqQueue(const ScqQueue&) = delete;
  ScqQueue& operator=(const ScqQueue&) = delete;

  /// Returns false iff the queue holds `capacity()` undequeued items (the
  /// free ring ran dry).  The data slot is exclusively owned between the
  /// fq take and the aq deposit, so the store below is race-free: the aq
  /// entry CAS releases it to exactly one consumer.
  bool try_enqueue(T value) noexcept {
    MSQ_PROBE("scq.enq");
    const std::uint32_t idx = fq_.dequeue();
    if (idx == ScqRing::kBottom) {
      MSQ_COUNT(kPoolRefuse);  // the bounded analogue of a dry node pool
      MSQ_COUNT(kQueueFull);   // backpressure signal (scenario shed policy)
      return false;
    }
    data_[idx] = std::move(value);
    aq_.enqueue(idx);
    MSQ_COUNT(kEnqueue);
    return true;
  }

  /// Returns false iff the queue was observed empty (threshold-certified:
  /// the allocated ring's scan budget ran out or its fast path fired).
  bool try_dequeue(T& out) noexcept {
    MSQ_PROBE("scq.deq");
    const std::uint32_t idx = aq_.dequeue();
    if (idx == ScqRing::kBottom) {
      MSQ_COUNT(kDequeueEmpty);
      return false;
    }
    out = std::move(data_[idx]);
    fq_.enqueue(idx);
    MSQ_COUNT(kDequeue);
    return true;
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Per-element storage grain: one data slot plus its share of the two
  /// 2n-entry index rings (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(T) + 4 * sizeof(std::uint64_t);
  }

  /// Exposed for the memory bench: bytes of element + ring storage this
  /// queue will EVER hold -- the bounded-memory claim, as a number.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return static_cast<std::size_t>(capacity_) * node_bytes();
  }

 private:
  static std::uint32_t round_up_pow2(std::uint32_t n) noexcept {
    std::uint32_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::uint32_t capacity_;
  ScqRing fq_;  // free indices, starts {0..capacity-1}
  ScqRing aq_;  // allocated indices, starts empty
  std::unique_ptr<T[]> data_;
};

}  // namespace msq::queues
