// Treiber's non-blocking stack [21] as a public LIFO container.
//
// Inside the library it is the free list (mem/freelist.hpp); the paper also
// discusses it as the non-blocking *queue* candidate it is not ("Treiber
// presents an algorithm that is non-blocking but inefficient: a dequeue
// operation takes time proportional to the number of the elements in the
// queue" -- that variant dequeued from the far end).  As a stack it is
// simple, fast and non-blocking, so we expose it alongside the queues.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class TreiberStack {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit TreiberStack(std::uint32_t capacity) : pool_(capacity) {
    // Private free list threaded through the same next fields.
    for (std::uint32_t i = 0; i < capacity; ++i) free_push(i);
  }

  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  /// Push; false iff out of nodes.
  bool try_push(T value) noexcept {
    const std::uint32_t node = free_pop();
    if (node == tagged::kNullIndex) return false;
    pool_[node].value.put(value);
    BackoffPolicy backoff;
    for (;;) {
      const tagged::TaggedIndex top = top_.value.load(std::memory_order_acquire);
      pool_[node].next.store(tagged::TaggedIndex(top.index(), 0), std::memory_order_release);
      MSQ_PROBE_COUNT("treiber.push_cas", kCasAttempt);
      if (top_.value.compare_and_swap(top, top.successor(node), std::memory_order_acq_rel)) {
        MSQ_COUNT(kEnqueue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      backoff.pause();
    }
  }

  /// Pop; false iff empty.
  bool try_pop(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {
      const tagged::TaggedIndex top = top_.value.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kDequeueEmpty);
        return false;
      }
      const tagged::TaggedIndex next = pool_[top.index()].next.load(std::memory_order_acquire);
      const T value = pool_[top.index()].value.get();  // before CAS, as in D11
      MSQ_PROBE_COUNT("treiber.pop_cas", kCasAttempt);
      if (top_.value.compare_and_swap(top, top.successor(next.index()), std::memory_order_acq_rel)) {
        out = value;
        free_push(top.index());
        MSQ_COUNT(kDequeue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      backoff.pause();
    }
  }

  [[nodiscard]] std::optional<T> try_pop() noexcept {
    T value;
    if (try_pop(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicTagged next;
  };

  void free_push(std::uint32_t node) noexcept {
    for (;;) {
      const tagged::TaggedIndex top = free_top_.value.load(std::memory_order_acquire);
      pool_[node].next.store(tagged::TaggedIndex(top.index(), 0), std::memory_order_release);
      if (free_top_.value.compare_and_swap(top, top.successor(node), std::memory_order_acq_rel)) return;
    }
  }
  std::uint32_t free_pop() noexcept {
    for (;;) {
      const tagged::TaggedIndex top = free_top_.value.load(std::memory_order_acquire);
      if (top.is_null()) {
        MSQ_COUNT(kPoolRefuse);
        return tagged::kNullIndex;
      }
      const tagged::TaggedIndex next = pool_[top.index()].next.load(std::memory_order_acquire);
      if (free_top_.value.compare_and_swap(top, top.successor(next.index()), std::memory_order_acq_rel)) {
        MSQ_COUNT(kPoolGet);
        return top.index();
      }
    }
  }

  mem::NodePool<Node> pool_;
  port::CacheAligned<tagged::AtomicTagged> top_;
  port::CacheAligned<tagged::AtomicTagged> free_top_;
};

}  // namespace msq::queues
