// Bounded MPMC ring queue with ticketed slots and per-slot sequence
// handshakes (the design popularised by Dmitry Vyukov).
//
// NOT part of the paper's evaluation -- included as the modern comparison
// point the library's users would reach for today.  Like Mellor-Crummey's
// queue it is lock-free but BLOCKING (a claimant stalled between taking a
// ticket and completing the slot handshake stalls the matching operation),
// but its coherence profile is far better than any of the 1996 algorithms:
// one contended RMW per operation plus slot lines shared by just two
// processors at a time.  bench/micro_ops shows it beating the MS queue on
// throughput -- exactly the kind of result the paper's framework predicts
// for algorithms that reduce hot-line transfers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"

namespace msq::queues {

template <typename T>
class RingQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kLockFreeBlocking,
      .mpmc = true,
      .pool_backed = true,  // bounded ring
      .linearizable = true,
  };

  explicit RingQueue(std::uint32_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      // relaxed: construction is single-threaded (proof: test:tests/queue_concurrent_test.cpp)
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  /// Returns false iff the ring is full of undequeued items.
  bool try_enqueue(T value) noexcept {
    // relaxed: a stale ticket just retries; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
    std::uint64_t ticket = enq_ticket_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq == ticket) {
        // Slot free for this round: claim the ticket.
        // relaxed: the seq acquire/release handshake orders the payload; (proof: test:tests/queue_concurrent_test.cpp)
        // the ticket is only an allocation counter
        if (enq_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                              std::memory_order_relaxed)) {  // relaxed: ^
          cell.value = std::move(value);
          // Handshake: publish the filled slot.  A stall between the claim
          // above and this store is exactly the blocking window.
          cell.seq.store(ticket + 1, std::memory_order_release);
          MSQ_COUNT(kEnqueue);
          return true;
        }
      } else if (seq < ticket) {
        // The slot still holds an item from `capacity_` tickets ago that no
        // dequeuer has taken: ring full.
        // relaxed: fullness estimate; a stale read only delays the verdict (proof: test:tests/queue_concurrent_test.cpp)
        if (deq_ticket_.load(std::memory_order_relaxed) + capacity_ <= ticket) {
          MSQ_COUNT(kPoolRefuse);  // bounded ring's analogue of pool refusal
          // Distinct from pool_refuse: queue_full is the backpressure signal
          // the open-loop shed policy keys off (src/scenario/driver.hpp) --
          // capacity reached, as opposed to an allocator running dry.
          MSQ_COUNT(kQueueFull);
          return false;
        }
        // A dequeuer is mid-handshake on this slot; wait for it (blocking).
        port::cpu_relax();
        // relaxed: retry reload; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
        ticket = enq_ticket_.load(std::memory_order_relaxed);
      } else {
        // Another enqueuer advanced the ticket; reload and retry.
        // relaxed: retry reload; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
        ticket = enq_ticket_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Returns false iff the queue was observed empty (all enqueue tickets
  /// consumed).  Waits -- blocks -- for an in-flight enqueuer.
  bool try_dequeue(T& out) noexcept {
    // relaxed: a stale ticket just retries; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
    std::uint64_t ticket = deq_ticket_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq == ticket + 1) {
        // Slot filled for this round: claim it.
        // relaxed: the seq acquire/release handshake orders the payload; (proof: test:tests/queue_concurrent_test.cpp)
        // the ticket is only an allocation counter
        if (deq_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                              std::memory_order_relaxed)) {  // relaxed: ^
          out = std::move(cell.value);
          // Handshake: recycle the slot for `capacity_` tickets later.
          cell.seq.store(ticket + capacity_, std::memory_order_release);
          MSQ_COUNT(kDequeue);
          return true;
        }
      } else if (seq <= ticket) {
        // Slot not filled.  Empty, or an enqueuer claimed it and stalled?
        // relaxed: emptiness estimate; a stale read only delays the verdict (proof: test:tests/queue_concurrent_test.cpp)
        if (enq_ticket_.load(std::memory_order_relaxed) <= ticket) {
          MSQ_COUNT(kDequeueEmpty);
          return false;  // no enqueue ticket issued for us: truly empty
        }
        port::cpu_relax();  // enqueuer in flight: wait (blocking)
        // relaxed: retry reload; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
        ticket = deq_ticket_.load(std::memory_order_relaxed);
      } else {
        // relaxed: retry reload; cell.seq carries the ordering (proof: test:tests/queue_concurrent_test.cpp)
        ticket = deq_ticket_.load(std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Bytes of one ring slot (bench/fig_memory: the whole footprint is
  /// capacity() x node_bytes(), allocated once at construction).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Cell);
  }

 private:
  struct Cell {
    // share-ok: seq+value packed per slot by design (one slot, one line
    // when T is small; the tickets are the contended words, aligned below)
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  static std::uint32_t round_up_pow2(std::uint32_t n) noexcept {
    std::uint32_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::uint32_t capacity_;
  std::uint32_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(port::kCacheLine) std::atomic<std::uint64_t> enq_ticket_{0};
  alignas(port::kCacheLine) std::atomic<std::uint64_t> deq_ticket_{0};
};

}  // namespace msq::queues
