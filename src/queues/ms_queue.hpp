// The non-blocking concurrent queue of Michael & Scott -- the paper's
// primary contribution (Figure 1), in the single-word counted-pointer
// formulation (32-bit pool index + 32-bit modification counter packed into
// one 64-bit word; the paper's suggested alternative to double-word CAS).
//
// Structure: a singly-linked list with Head and Tail counted pointers.
// Head always points to a dummy node (the first node in the list); Tail
// points to the last or second-to-last node.  Nodes are recycled through a
// Treiber-stack free list.  Dequeue ensures Tail never points at (or before)
// a dequeued node, which is what makes immediate reuse safe.
//
// Line numbering in comments follows Figure 1 (E1..E13, D1..D15) so the
// implementation can be audited against the paper, and so the liveness
// tests (tests/sim_nonblocking_test.cpp) can speak the same language.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

/// Lock-free MPMC FIFO queue.  `T` must be trivially copyable and at most
/// 8 bytes (see mem/value_cell.hpp).  `BackoffPolicy` is applied after a
/// failed CAS (sync::NullBackoff disables it for the ablation).  `Alloc`
/// selects the node allocator: the paper's plain Treiber free list by
/// default, or mem::MagazineAllocator for the magazine ablation
/// (bench/ablate_magazine.cpp) -- same pool, batched refills/flushes.
template <typename T, typename BackoffPolicy = sync::Backoff,
          template <typename> class Alloc = mem::FreeList>
class MsQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  /// `capacity` is the maximum number of queued items; one extra node is
  /// reserved for the dummy.
  explicit MsQueue(std::uint32_t capacity)
      : pool_(capacity + 1), freelist_(pool_) {
    // initialize(Q): node = new_node(); node->next.ptr = NULL;
    //                Q->Head = Q->Tail = node
    const std::uint32_t dummy = freelist_.try_allocate();
    pool_[dummy].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    head_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  /// enqueue(Q, value).  Returns false iff the node pool is exhausted.
  bool try_enqueue(T value) noexcept {
    // E1: node = new_node()
    const std::uint32_t node = freelist_.try_allocate();
    if (node == tagged::kNullIndex) return false;
    // E2: node->value = value;  E3: node->next.ptr = NULL
    // The null is COUNTED: preserving and bumping the node's tag keeps its
    // link count monotone across recycles (FreeList::push has the full
    // argument), so a stale E9 CAS against a previous life of this node
    // can never succeed.  The paper's E3 resets the count; with a shared
    // free list that re-exposes old counts and voids the E7/E9 guard.
    pool_[node].value.put(value);
    const tagged::TaggedIndex stale =
        pool_[node].next.load(std::memory_order_acquire);
    pool_[node].next.store(
        tagged::TaggedIndex(tagged::kNullIndex, stale.count() + 1),
        std::memory_order_release);

    BackoffPolicy backoff;
    for (;;) {  // E4: repeat
      const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);       // E5
      const tagged::TaggedIndex next = pool_[tail.index()].next.load(std::memory_order_acquire);  // E6
      if (tail == tail_.value.load(std::memory_order_acquire)) {  // E7: are tail and next consistent?
        if (next.is_null()) {            // E8: was Tail pointing to the last node?
          // E9: try to link node at the end of the linked list
          MSQ_PROBE_COUNT("ms.E9", kCasAttempt);
          if (pool_[tail.index()].next.compare_and_swap(
                  next, next.successor(node), std::memory_order_acq_rel)) {
            // E10: break -- enqueue is done.
            // E13: try to swing Tail to the inserted node.  A thread halted
            // HERE has committed the enqueue but left Tail lagging -- the
            // window the helping paths (E12/D9) exist for.
            MSQ_PROBE("ms.E13");
            tail_.value.compare_and_swap(tail, tail.successor(node), std::memory_order_acq_rel);
            MSQ_COUNT(kEnqueue);
            return true;
          }
          MSQ_COUNT(kCasFail);
          backoff.pause();
        } else {
          // E12: Tail was not pointing to the last node; try to swing it
          tail_.value.compare_and_swap(tail, tail.successor(next.index()), std::memory_order_acq_rel);
        }
      }
    }
  }

  /// dequeue(Q, pvalue): boolean.  Returns false iff the queue was empty.
  bool try_dequeue(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {  // D1: repeat
      const tagged::TaggedIndex head = head_.value.load(std::memory_order_acquire);  // D2
      const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);  // D3
      const tagged::TaggedIndex next = pool_[head.index()].next.load(std::memory_order_acquire);  // D4
      if (head == head_.value.load(std::memory_order_acquire)) {      // D5: consistent?
        if (head.index() == tail.index()) {  // D6: empty or Tail falling behind?
          if (next.is_null()) {              // D7: is queue empty?
            MSQ_COUNT(kDequeueEmpty);
            return false;                    // D8
          }
          // D9: Tail is falling behind; try to advance it
          tail_.value.compare_and_swap(tail, tail.successor(next.index()), std::memory_order_acq_rel);
        } else {
          // D11: read value before CAS; otherwise another dequeue might
          // free the next node
          const T value = pool_[next.index()].value.get();
          // D12: try to swing Head to the next node
          MSQ_PROBE_COUNT("ms.D12", kCasAttempt);
          if (head_.value.compare_and_swap(head, head.successor(next.index()), std::memory_order_acq_rel)) {
            out = value;                     // (D11's *pvalue assignment)
            freelist_.free(head.index());    // D14: free the old dummy node
            MSQ_COUNT(kDequeue);
            return true;                     // D13 break; D15 return TRUE
          }
          MSQ_COUNT(kCasFail);
          backoff.pause();
        }
      }
    }
  }

  /// Convenience wrapper with optional-return style.
  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  /// Items the pool can still hold (racy snapshot; tests/metrics only).
  [[nodiscard]] std::size_t unsafe_free_nodes() const noexcept {
    return freelist_.unsafe_size();
  }

  /// Bytes of one pool node (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Node);
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicTagged next;
  };

  mem::NodePool<Node> pool_;
  Alloc<Node> freelist_;
  // Head and Tail on separate cache lines: dequeuers and enqueuers must not
  // false-share (the two-lock queue's design rationale applies here too).
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
};

}  // namespace msq::queues
