// The MS non-blocking queue in its double-word-CAS formulation: real node
// pointers paired with 64-bit modification counters, updated with
// cmpxchg16b.  This is the other implementation option the paper names for
// the counted-pointer ABA defence ("one must either employ a double-word
// compare_and_swap, or else use array indices instead of pointers").
//
// Algorithmically identical to queues/ms_queue.hpp (Figure 1); only the
// pointer representation differs.  Nodes still live in a pool and recycle
// through a Treiber free list -- reclamation safety comes from counters and
// type-stable memory, exactly as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/counted_ptr.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class MsQueueDw {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit MsQueueDw(std::uint32_t capacity)
      : capacity_(capacity + 1), nodes_(std::make_unique<Node[]>(capacity + 1)) {
    // Free list initially holds all nodes but the dummy.
    for (std::uint32_t i = 1; i < capacity_; ++i) push_free(&nodes_[i]);
    Node* dummy = &nodes_[0];
    dummy->next.store({nullptr, 0}, std::memory_order_release);
    head_.value.store({dummy, 0}, std::memory_order_release);
    tail_.value.store({dummy, 0}, std::memory_order_release);
  }

  MsQueueDw(const MsQueueDw&) = delete;
  MsQueueDw& operator=(const MsQueueDw&) = delete;

  bool try_enqueue(T value) noexcept {
    Node* node = pop_free();  // E1
    if (node == nullptr) return false;
    node->value.put(value);       // E2
    node->next.store({nullptr, 0}, std::memory_order_release);  // E3

    BackoffPolicy backoff;
    for (;;) {                                              // E4
      const tagged::CountedPtr<Node> tail = tail_.value.load(std::memory_order_acquire);  // E5
      const tagged::CountedPtr<Node> next = tail.ptr->next.load(std::memory_order_acquire);  // E6
      if (tail == tail_.value.load(std::memory_order_acquire)) {                     // E7
        if (next.ptr == nullptr) {                          // E8
          MSQ_PROBE_COUNT("msdw.E9", kCasAttempt);
          if (tail.ptr->next.compare_and_swap(next, next.successor(node), std::memory_order_acq_rel)) {  // E9
            MSQ_PROBE("msdw.E13");  // linked, Tail still lagging
            tail_.value.compare_and_swap(tail, tail.successor(node), std::memory_order_acq_rel);  // E13
            MSQ_COUNT(kEnqueue);
            return true;  // E10
          }
          MSQ_COUNT(kCasFail);
          backoff.pause();
        } else {
          tail_.value.compare_and_swap(tail, tail.successor(next.ptr), std::memory_order_acq_rel);  // E12
        }
      }
    }
  }

  bool try_dequeue(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {                                                   // D1
      const tagged::CountedPtr<Node> head = head_.value.load(std::memory_order_acquire);  // D2
      const tagged::CountedPtr<Node> tail = tail_.value.load(std::memory_order_acquire);  // D3
      const tagged::CountedPtr<Node> next = head.ptr->next.load(std::memory_order_acquire);  // D4
      if (head == head_.value.load(std::memory_order_acquire)) {  // D5
        if (head.ptr == tail.ptr) {      // D6
          if (next.ptr == nullptr) {  // D7-D8
            MSQ_COUNT(kDequeueEmpty);
            return false;
          }
          tail_.value.compare_and_swap(tail, tail.successor(next.ptr), std::memory_order_acq_rel);  // D9
        } else {
          const T value = next.ptr->value.get();  // D11
          MSQ_PROBE_COUNT("msdw.D12", kCasAttempt);
          if (head_.value.compare_and_swap(head, head.successor(next.ptr), std::memory_order_acq_rel)) {  // D12
            out = value;
            push_free(head.ptr);  // D14
            MSQ_COUNT(kDequeue);
            return true;          // D15
          }
          MSQ_COUNT(kCasFail);
          backoff.pause();
        }
      }
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicCountedPtr<Node> next;
  };

  // Treiber free list over counted pointers.
  void push_free(Node* node) noexcept {
    for (;;) {
      const tagged::CountedPtr<Node> top = free_top_.value.load(std::memory_order_acquire);
      node->next.store({top.ptr, 0}, std::memory_order_release);
      if (free_top_.value.compare_and_swap(top, top.successor(node), std::memory_order_acq_rel)) return;
    }
  }

  Node* pop_free() noexcept {
    for (;;) {
      const tagged::CountedPtr<Node> top = free_top_.value.load(std::memory_order_acquire);
      if (top.ptr == nullptr) {
        MSQ_COUNT(kPoolRefuse);
        return nullptr;
      }
      const tagged::CountedPtr<Node> next = top.ptr->next.load(std::memory_order_acquire);
      if (free_top_.value.compare_and_swap(top, top.successor(next.ptr), std::memory_order_acq_rel)) {
        MSQ_COUNT(kPoolGet);
        return top.ptr;
      }
      MSQ_COUNT(kPoolCasRetry);
    }
  }

  std::uint32_t capacity_;
  std::unique_ptr<Node[]> nodes_;
  port::CacheAligned<tagged::AtomicCountedPtr<Node>> free_top_;
  port::CacheAligned<tagged::AtomicCountedPtr<Node>> head_;
  port::CacheAligned<tagged::AtomicCountedPtr<Node>> tail_;
};

}  // namespace msq::queues
