// The non-blocking queue of Prakash, Lee & Johnson [14,16] -- the paper's
// "best of the known non-blocking alternatives" baseline.
//
// Characteristic structure (paper section 1): operations "take a snapshot
// of the queue in order to determine its 'state' prior to updating it", and
// the algorithm "achieves the non-blocking property by allowing faster
// processes to complete the operations of slower processes instead of
// waiting for them" (helping: any process may swing a lagging Tail).
//
// Reconstruction note.  TR 600 does not reproduce PLJ's pseudo-code, and the
// published algorithm's delicate empty/single-item handling (it has no dummy
// node) is orthogonal to what the evaluation measures.  We therefore keep
// the dummy-node list representation but implement PLJ's *protocol*: every
// operation first acquires a validated snapshot of BOTH shared pointers and
// the successor cell -- re-reading until the triple is mutually consistent --
// and only then attempts its CAS, helping lagging tails it observed.  This
// reproduces exactly the overhead the paper attributes to PLJ relative to
// the MS queue: "sequences of reads that re-check earlier values ... similar
// to, but simpler than, the snapshots of Prakash et al. (we need to check
// only ONE shared variable rather than TWO)."  See DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/counters.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/backoff.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename BackoffPolicy = sync::Backoff>
class PljQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kNonBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit PljQueue(std::uint32_t capacity)
      : pool_(capacity + 1), freelist_(pool_) {
    const std::uint32_t dummy = freelist_.try_allocate();
    pool_[dummy].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    head_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(dummy, 0), std::memory_order_release);
  }

  PljQueue(const PljQueue&) = delete;
  PljQueue& operator=(const PljQueue&) = delete;

  bool try_enqueue(T value) noexcept {
    const std::uint32_t node = freelist_.try_allocate();
    if (node == tagged::kNullIndex) return false;
    pool_[node].value.put(value);
    pool_[node].next.store(tagged::TaggedIndex{}, std::memory_order_release);

    BackoffPolicy backoff;
    for (;;) {
      const Snapshot snap = take_snapshot();
      if (!snap.tail_next.is_null()) {
        // The snapshot exposed a lagging Tail: complete the slower
        // process's operation (helping), then retry.
        tail_.value.compare_and_swap(
            snap.tail, snap.tail.successor(snap.tail_next.index()), std::memory_order_acq_rel);
        continue;
      }
      MSQ_COUNT(kCasAttempt);
      if (pool_[snap.tail.index()].next.compare_and_swap(
              snap.tail_next, snap.tail_next.successor(node), std::memory_order_acq_rel)) {
        tail_.value.compare_and_swap(snap.tail, snap.tail.successor(node), std::memory_order_acq_rel);
        MSQ_COUNT(kEnqueue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      backoff.pause();
    }
  }

  bool try_dequeue(T& out) noexcept {
    BackoffPolicy backoff;
    for (;;) {
      const Snapshot snap = take_snapshot();
      const tagged::TaggedIndex first = pool_[snap.head.index()].next.load(std::memory_order_acquire);
      if (snap.head != head_.value.load(std::memory_order_acquire)) continue;  // snapshot went stale
      if (snap.head.index() == snap.tail.index()) {
        if (first.is_null()) {
          MSQ_COUNT(kDequeueEmpty);
          return false;  // state: empty
        }
        // State: tail lagging on a non-empty queue; help before touching
        // Head, so Tail can never point at a dequeued node.
        tail_.value.compare_and_swap(snap.tail,
                                     snap.tail.successor(first.index()), std::memory_order_acq_rel);
        continue;
      }
      if (first.is_null()) continue;  // stale triple; cannot happen if the
                                      // snapshot invariants hold, but cheap
      const T value = pool_[first.index()].value.get();
      MSQ_COUNT(kCasAttempt);
      if (head_.value.compare_and_swap(snap.head,
                                       snap.head.successor(first.index()), std::memory_order_acq_rel)) {
        out = value;
        freelist_.free(snap.head.index());
        MSQ_COUNT(kDequeue);
        return true;
      }
      MSQ_COUNT(kCasFail);
      backoff.pause();
    }
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicTagged next;
  };

  struct Snapshot {
    tagged::TaggedIndex head;
    tagged::TaggedIndex tail;
    tagged::TaggedIndex tail_next;
  };

  /// PLJ's distinguishing step: a validated snapshot of Head, Tail and
  /// Tail->next -- two shared variables re-checked (vs. the MS queue's one).
  [[nodiscard]] Snapshot take_snapshot() const noexcept {
    for (;;) {
      const tagged::TaggedIndex head = head_.value.load(std::memory_order_acquire);
      const tagged::TaggedIndex tail = tail_.value.load(std::memory_order_acquire);
      const tagged::TaggedIndex tail_next = pool_[tail.index()].next.load(std::memory_order_acquire);
      if (head == head_.value.load(std::memory_order_acquire) && tail == tail_.value.load(std::memory_order_acquire)) {
        return Snapshot{head, tail, tail_next};
      }
      port::cpu_relax();
    }
  }

  mem::NodePool<Node> pool_;
  mem::FreeList<Node> freelist_;
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
};

}  // namespace msq::queues
