// Lamport's wait-free single-producer/single-consumer queue [9]
// ("Specifying Concurrent Program Modules", TOPLAS 1983).
//
// The paper cites it as the wait-free point in the design space, usable only
// when concurrency is restricted to one enqueuer and one dequeuer.  It needs
// no atomic RMW at all: the producer owns `tail`, the consumer owns `head`,
// and each reads the other's index with acquire/release ordering.  Both
// operations complete in a bounded number of steps regardless of what the
// other process does -- wait-free, the strongest progress guarantee in the
// taxonomy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"

namespace msq::queues {

template <typename T>
class SpscRing {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kWaitFree,
      .mpmc = false,  // ONE producer thread and ONE consumer thread
      .pool_backed = true,
      .linearizable = true,
  };

  /// Holds up to `capacity` items (one ring slot is kept empty to
  /// distinguish full from empty, as in Lamport's original).
  explicit SpscRing(std::uint32_t capacity)
      : size_(capacity + 1), ring_(std::make_unique<T[]>(size_)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side only.  Returns false iff full.  Wait-free: one load, one
  /// store, no retry loop.
  bool try_enqueue(T value) noexcept {
    // relaxed: only the producer writes tail_; this re-reads its own write (proof: test:tests/spsc_ring_test.cpp)
    const std::uint32_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint32_t next = successor(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;  // full
    ring_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side only.  Returns false iff empty.  Wait-free.
  bool try_dequeue(T& out) noexcept {
    // relaxed: only the consumer writes head_; this re-reads its own write (proof: test:tests/spsc_ring_test.cpp)
    const std::uint32_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;  // empty
    out = std::move(ring_[head]);
    head_.store(successor(head), std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  [[nodiscard]] std::uint32_t successor(std::uint32_t i) const noexcept {
    return (i + 1 == size_) ? 0 : i + 1;
  }

  std::uint32_t size_;
  std::unique_ptr<T[]> ring_;
  alignas(port::kCacheLine) std::atomic<std::uint32_t> head_{0};  // consumer's
  alignas(port::kCacheLine) std::atomic<std::uint32_t> tail_{0};  // producer's
};

}  // namespace msq::queues
