// Umbrella header: every queue and stack in the library.
//
//   Core contributions (Michael & Scott, PODC'96):
//     MsQueue       -- non-blocking queue, counted pool indices (Figure 1)
//     MsQueueDw     -- same algorithm, 128-bit counted pointers (cmpxchg16b)
//     TwoLockQueue  -- two-lock queue with dummy node (Figure 2)
//   Evaluation baselines (paper section 4):
//     SingleLockQueue     -- one lock around a plain list
//     MellorCrummeyQueue  -- lock-free but blocking ticket/slot ring
//     PljQueue            -- Prakash-Lee-Johnson snapshot queue
//     ValoisQueue         -- reference-counted non-blocking queue
//   Related work / extensions:
//     SpscRing      -- Lamport wait-free single-producer/single-consumer
//     TreiberStack  -- the non-blocking LIFO used as the free list
//     MsQueueHp     -- MS queue with hazard-pointer reclamation (2004)
//     RingQueue     -- ticketed bounded MPMC ring (Vyukov-style, modern)
//     SegmentQueue  -- unbounded FAA-segment queue (LCRQ/SCQ lineage)
//     ScqQueue      -- bounded indirect SCQ ring (Nikolaev): lock-free,
//                      memory bounded at exactly capacity + O(n) indices
//     ShardedQueue  -- queue-of-queues front end with work-stealing dequeue
//     WfQueue       -- wait-free announcement-helping wrapper over the core
#pragma once

#include "queues/mellor_crummey_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/ms_queue_dwcas.hpp"
#include "queues/ms_queue_hp.hpp"
#include "queues/function_shipping_queue.hpp"
#include "queues/plj_queue.hpp"
#include "queues/queue_concept.hpp"
#include "queues/ring_queue.hpp"
#include "queues/scq_queue.hpp"
#include "queues/segment_queue.hpp"
#include "queues/sharded_queue.hpp"
#include "queues/single_lock_queue.hpp"
#include "queues/spsc_ring.hpp"
#include "queues/treiber_stack.hpp"
#include "queues/two_lock_queue.hpp"
#include "queues/valois_queue.hpp"
#include "queues/wf_queue.hpp"
