// Wait-free MPMC queue: an announcement-array helping wrapper over the
// MS-queue core (ROADMAP item 3; the bounded-helping idiom of Kogan &
// Petrank, "Wait-free queues with multiple enqueuers and dequeuers",
// PPoPP'11, which Naderibeni & Ruppert's polylog queue builds on --
// PAPERS.md).
//
// The paper's own queue (Figure 1, src/queues/ms_queue.hpp) is non-blocking
// but not wait-free: a thread whose CAS keeps losing can retry forever while
// faster peers race ahead.  The fix is to make every operation PUBLIC before
// it is attempted:
//
//   * A global monotone phase counter hands each operation a priority.
//   * The operation is announced in a fixed array of descriptor slots:
//     one 16-byte cell holding {phase | state | payload}, CASed with
//     cmpxchg16b (tagged/counted_ptr.hpp idiom).
//   * Every thread, before and while running its own operation, helps all
//     announced operations with phase <= its own to completion.  A thread
//     that stalls mid-operation therefore has its operation finished by any
//     peer that passes by -- the tail-latency property bench/fig_stall.cpp
//     measures.
//
// Completion is a phase-guarded CAS on the announcement cell, so an
// operation completes exactly once no matter how many helpers race, and a
// helper holding an arbitrarily stale view can never corrupt a newer
// operation: either its expected {phase|state} no longer matches, or --
// for a dequeue deposit, where the helper may have re-read the reused
// slot's CURRENT announcement -- the live-Head revalidation in
// finish_deq rejects its dead dummy incarnation before any value is read.
//
// Step bound: once announced, an operation completes within
// O(kSlots * N) steps of ANY thread executing the protocol (N = number of
// concurrently active threads <= kSlots): a helper completes each
// lower-phase operation it meets before its own, and each of an op's CAS
// failures is caused by a distinct operation that either started before the
// announcement was visible (at most one per thread) or has lower phase (at
// most one in flight per slot).  tests/sim_wf_test.cpp asserts the bound
// over every DPOR schedule of an abstract model of this protocol;
// docs/ALGORITHMS.md "Progress guarantees" gives the argument in full.
//
// Memory reclamation stays the paper's: pool indices + counted tags
// (32-bit counter halves in every link), so the ABA regime is the same
// "2^32 intervening operations" argument as MsQueue, not a new one.  The
// descriptor slots themselves are recycled under the protection of the
// phase in their announcement word -- the phase IS the slot's counted tag.
//
// Wait-freedom caveat (documented, by design): the announcement array has
// kSlots entries claimed per-operation via a busy flag probed from
// mem::detail::thread_hint().  With more than kSlots threads inside the
// queue at once, slot acquisition itself can wait; size kSlots to the
// thread count (default 64, matching ShardedQueue's hint table).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>

#include "mem/freelist.hpp"
#include "mem/magazine.hpp"  // mem::detail::thread_hint
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

namespace wf_detail {

/// The 16-byte announcement word: a sequence half (phase << 3 | state) and
/// a payload half (the enqueue's node index, or the dequeued value's bits).
struct SeqVal {
  std::uint64_t seq = 0;
  std::uint64_t bits = 0;

  friend constexpr bool operator==(SeqVal, SeqVal) noexcept = default;
};

/// Operation states, in the low 3 bits of `seq`.
enum State : std::uint64_t {
  kIdle = 0,        // slot free / previous op harvested by its owner
  kPendingEnq = 1,  // bits = node index awaiting linking
  kPendingDeq = 2,  // bits = 0, awaiting a value (or an empty verdict)
  kDoneEnq = 3,     // node linked and completion recorded
  kDoneDeq = 4,     // bits = dequeued value
  kEmpty = 5,       // dequeue observed an empty queue
};

constexpr std::uint64_t make_seq(std::uint64_t phase, State state) noexcept {
  return (phase << 3) | static_cast<std::uint64_t>(state);
}
constexpr State state_of(std::uint64_t seq) noexcept {
  return static_cast<State>(seq & 7);
}
constexpr std::uint64_t phase_of(std::uint64_t seq) noexcept {
  return seq >> 3;
}

/// 16-byte-aligned atomic cell for SeqVal, driven by cmpxchg16b exactly as
/// tagged::AtomicCountedPtr (see that header for why the __sync builtins
/// and not std::atomic<struct>).  The memory_order parameters document the
/// weakest ordering each call site needs; the builtins are full barriers.
class alignas(16) AtomicSeqVal {
 public:
  AtomicSeqVal() noexcept = default;
  AtomicSeqVal(const AtomicSeqVal&) = delete;
  AtomicSeqVal& operator=(const AtomicSeqVal&) = delete;

  [[nodiscard]] SeqVal load(std::memory_order order) const noexcept {
    static_cast<void>(order);  // full barrier regardless (see header cmt)
    const unsigned __int128 v = __sync_val_compare_and_swap(&bits_, 0, 0);
    return unpack(v);
  }

  void store(SeqVal value, std::memory_order order) noexcept {
    static_cast<void>(order);  // full barrier regardless (see header cmt)
    // Unlike AtomicCountedPtr::store (only ever called single-threaded),
    // announcement stores race with helper CASes, so the seed read must
    // itself be atomic (CAS(0, 0)) -- also keeps TSAN builds clean.
    unsigned __int128 expected = __sync_val_compare_and_swap(&bits_, 0, 0);
    const unsigned __int128 desired = pack(value);
    for (;;) {
      const unsigned __int128 prev =
          __sync_val_compare_and_swap(&bits_, expected, desired);
      if (prev == expected) return;
      expected = prev;
    }
  }

  bool compare_and_swap(SeqVal expected, SeqVal desired,
                        std::memory_order order) noexcept {
    static_cast<void>(order);  // full barrier regardless (see header cmt)
    return __sync_bool_compare_and_swap(&bits_, pack(expected),
                                        pack(desired));
  }

 private:
  static unsigned __int128 pack(SeqVal v) noexcept {
    return static_cast<unsigned __int128>(v.seq) |
           (static_cast<unsigned __int128>(v.bits) << 64);
  }
  static SeqVal unpack(unsigned __int128 v) noexcept {
    return SeqVal{static_cast<std::uint64_t>(v),
                  static_cast<std::uint64_t>(v >> 64)};
  }

  mutable unsigned __int128 bits_ = 0;
};

static_assert(sizeof(AtomicSeqVal) == 16);

}  // namespace wf_detail

/// Wait-free MPMC FIFO queue.  `T` must be trivially copyable and at most
/// 8 bytes (mem/value_cell.hpp).  `kSlots` bounds the number of threads
/// that can be inside an operation at once while keeping the wait-free
/// step bound (see header comment).
template <typename T, std::uint32_t kSlots = 64>
class WfQueue {
  // The enqueue stamp packs (phase << 8 | slot) into one word, so the
  // phase finish_tail reconstructs is truncated to 56 bits -- an ABSOLUTE
  // lifetime bound of 2^56 enqueues per queue (roughly two years at a
  // sustained 10^9 ops/s), after which the completion CAS would stop
  // matching and the owner would spin.  Stated separately from the
  // library-wide 2^32 ABA regime because that one is a RELATIVE bound
  // (2^32 interleaving operations within one read-CAS window), while this
  // one accumulates over the queue's whole life.
  static_assert(kSlots >= 1 && kSlots <= 256,
                "enqueue stamps pack the slot into 8 bits");
  static_assert(sizeof(T) <= 8, "values must fit the 16-byte result cell");

 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kWaitFree,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  /// `capacity` is the maximum number of queued items; one extra node is
  /// reserved for the dummy (exactly as MsQueue).
  explicit WfQueue(std::uint32_t capacity)
      : pool_(capacity + 1), freelist_(pool_) {
    const std::uint32_t dummy = freelist_.try_allocate();
    pool_[dummy].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    head_.value.store(tagged::TaggedIndex(dummy, 0),
                      std::memory_order_release);
    tail_.value.store(tagged::TaggedIndex(dummy, 0),
                      std::memory_order_release);
  }

  WfQueue(const WfQueue&) = delete;
  WfQueue& operator=(const WfQueue&) = delete;

  /// Enqueue.  Returns false iff the node pool is exhausted (checked
  /// before the operation is announced, so a refused enqueue leaves no
  /// trace and costs no helping).
  bool try_enqueue(T value) noexcept {
    const std::uint32_t node = freelist_.try_allocate();
    if (node == tagged::kNullIndex) return false;

    const std::uint32_t slot = acquire_slot();
    Descriptor& d = desc_[slot];
    // relaxed: the phase is published by the full-barrier announcement (proof: test:tests/sim_wf_test.cpp)
    // store below; the FAA only needs to draw a unique monotone number
    const std::uint64_t phase = phase_.value.fetch_add(1, std::memory_order_relaxed);

    // Prepare the node while it is still private.  The stamp lets ANY
    // thread that sees the node linked find and complete its announcement
    // (finish_tail); it must be in place before the node can become
    // visible, i.e. before the announcement below.
    Node& n = pool_[node];
    n.value.put(value);
    n.enq_stamp.store((phase << 8) | slot, std::memory_order_release);
    // Reset the link, preserving and bumping the tag half: together with
    // FreeList::push (which bumps likewise) the node's link count is
    // monotone over its WHOLE lifetime, so a helper's stale link CAS from
    // a previous life of this node can never succeed.  Helping makes this
    // load-bearing here -- an op completed behind its owner's back leaves
    // the owner holding a counted null that MUST never match again.
    const tagged::TaggedIndex stale = n.next.load(std::memory_order_acquire);
    n.next.store(tagged::TaggedIndex(tagged::kNullIndex, stale.count() + 1),
                 std::memory_order_release);

    const wf_detail::SeqVal announced{
        wf_detail::make_seq(phase, wf_detail::kPendingEnq), node};
    d.result.store(announced, std::memory_order_seq_cst);
    // A thread halted HERE has only announced: the operation completes
    // entirely through peers' helping -- the wait-free property in one
    // fault site (tests/fault_tolerance_test.cpp halts a victim here).
    MSQ_PROBE("wfq.announce");

    help_lower_phases(phase, slot);
    while (d.result.load(std::memory_order_seq_cst) == announced) {
      MSQ_PROBE("wfq.enq_wait");
      help_enq_round(slot, announced);
    }

    // Harvest: only the owner writes announcements, so the cell still
    // holds our completion; mark the slot idle (phase-stamped so stale
    // helper CASes keep failing) and release it.
    d.result.store(
        wf_detail::SeqVal{wf_detail::make_seq(phase, wf_detail::kIdle), 0},
        std::memory_order_seq_cst);
    release_slot(slot);
    MSQ_COUNT(kEnqueue);
    return true;
  }

  /// Dequeue.  Returns false iff the queue was observed empty.
  bool try_dequeue(T& out) noexcept {
    const std::uint32_t slot = acquire_slot();
    Descriptor& d = desc_[slot];
    // relaxed: same argument as the enqueue-side FAA above
    const std::uint64_t phase = phase_.value.fetch_add(1, std::memory_order_relaxed);

    // Reset the taken-binding from our previous dequeue in this slot.  The
    // reset value is tagged with the phase so the cell's history never
    // repeats (helpers CAS it against full expected values).
    for (;;) {
      const tagged::TaggedIndex tk = d.taken.load(std::memory_order_acquire);
      if (tk.is_null() ||
          d.taken.compare_and_swap(
              tk,
              tagged::TaggedIndex(tagged::kNullIndex,
                                  static_cast<std::uint32_t>(phase)),
              std::memory_order_acq_rel)) {
        break;
      }
    }

    const wf_detail::SeqVal announced{
        wf_detail::make_seq(phase, wf_detail::kPendingDeq), 0};
    d.result.store(announced, std::memory_order_seq_cst);
    MSQ_PROBE("wfq.announce");

    help_lower_phases(phase, slot);
    wf_detail::SeqVal r = d.result.load(std::memory_order_seq_cst);
    while (r == announced) {
      MSQ_PROBE("wfq.deq_wait");
      help_deq_round(slot, announced);
      r = d.result.load(std::memory_order_seq_cst);
    }

    const bool got = wf_detail::state_of(r.seq) == wf_detail::kDoneDeq;
    if (got) {
      // The depositor recorded which dummy (index AND head-tag) it
      // consumed in `taken`; make sure Head has swung past it and the
      // node is freed BEFORE the slot can be reused, otherwise a stale
      // finisher meeting a recycled dummy with a coincidentally matching
      // index could swing Head past an unconsumed node.
      settle_consumed_dummy(d);
      std::memcpy(&out, &r.bits, sizeof(T));
    }
    d.result.store(
        wf_detail::SeqVal{wf_detail::make_seq(phase, wf_detail::kIdle), 0},
        std::memory_order_seq_cst);
    release_slot(slot);
    if (got) {
      MSQ_COUNT(kDequeue);
    } else {
      MSQ_COUNT(kDequeueEmpty);
    }
    return got;
  }

  /// Convenience wrapper with optional-return style.
  [[nodiscard]] std::optional<T> try_dequeue() noexcept {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

  /// Items the pool can still hold (racy snapshot; tests/metrics only).
  [[nodiscard]] std::size_t unsafe_free_nodes() const noexcept {
    return freelist_.unsafe_size();
  }

  /// Bytes of one pool node (bench/fig_memory: peak_nodes x node_bytes).
  [[nodiscard]] static constexpr std::size_t node_bytes() noexcept {
    return sizeof(Node);
  }

 private:
  struct Node {
    mem::ValueCell<T> value;
    tagged::AtomicTagged next;
    // Which descriptor slot's dequeue owns this node while it is the
    // dummy: {slot | null, tag}.  Never touched by the free list, so its
    // tag is monotone for the node's whole lifetime.
    tagged::AtomicTagged claim;
    // (phase << 8 | slot) of the enqueue that inserted this node; lets
    // any helper that finds the node linked complete that enqueue.  The
    // packing truncates the phase to 56 bits -- see the lifetime-bound
    // comment at the kSlots static_assert.
    // share-ok: written only while the node is private, read-mostly after
    std::atomic<std::uint64_t> enq_stamp{0};
  };

  /// One announcement slot.  Cache-line aligned: the cell, its taken
  /// binding and its busy flag are one operation's words and travel
  /// together by design; different slots never share a line.
  struct alignas(port::kCacheLine) Descriptor {
    wf_detail::AtomicSeqVal result;
    // Which dummy ({index, head-tag}) the in-flight dequeue's deposit
    // consumed.  Storing the Head tag -- globally monotone, bumped by
    // every successful Head CAS -- makes the binding identify one dummy
    // INCARNATION, so index recycling can never replay it.
    tagged::AtomicTagged taken;
    // share-ok: same line as the result cell on purpose (see struct cmt)
    std::atomic<std::uint32_t> busy{0};
  };

  std::uint32_t acquire_slot() noexcept {
    const std::uint32_t start = mem::detail::thread_hint();
    for (std::uint32_t i = 0;; ++i) {
      const std::uint32_t s = (start + i) % kSlots;
      std::uint32_t expected = 0;
      if (desc_[s].busy.compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        return s;
      }
      if (i % kSlots == kSlots - 1) {
        MSQ_PROBE("wfq.slot_wait");
        port::cpu_relax();
      }
    }
  }

  void release_slot(std::uint32_t slot) noexcept {
    desc_[slot].busy.store(0, std::memory_order_release);
  }

  /// The helping sweep: complete every announced operation with phase <=
  /// ours before working on our own.  One pass suffices -- an operation
  /// announced after its slot was inspected here is newer than our read
  /// and will be helped by its own owner and by later sweeps.
  void help_lower_phases(std::uint64_t phase, std::uint32_t own) noexcept {
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (s == own) continue;
      const wf_detail::SeqVal sv =
          desc_[s].result.load(std::memory_order_seq_cst);
      const wf_detail::State st = wf_detail::state_of(sv.seq);
      if (st != wf_detail::kPendingEnq && st != wf_detail::kPendingDeq) {
        continue;
      }
      if (wf_detail::phase_of(sv.seq) > phase) continue;
      MSQ_COUNT(kWfHelp);
      while (desc_[s].result.load(std::memory_order_seq_cst) == sv) {
        MSQ_PROBE("wfq.help_wait");
        if (st == wf_detail::kPendingEnq) {
          help_enq_round(s, sv);
        } else {
          help_deq_round(s, sv);
        }
      }
    }
  }

  /// One attempt at an announced enqueue: link its node at the tail, or
  /// clear whatever other linked-but-unfinished node is in the way.
  ///
  /// Safety of linking a possibly stale announcement (the central
  /// subtlety): the CAS below succeeds only if tail's next held the SAME
  /// counted null from our read to the CAS, which pins Tail to `t` for
  /// that window (Tail only advances along a non-null next).  The
  /// re-validation of the announcement inside that window shows the
  /// operation was then incomplete, and an incomplete enqueue's node is
  /// either unlinked, or linked at the CURRENT tail with next non-null
  /// (finish_tail marks completion before any Tail swing) -- which our
  /// null read rules out.  So a successful CAS linked an unlinked,
  /// unfreed node exactly once; every stale interleaving loses a CAS.
  void help_enq_round(std::uint32_t slot, wf_detail::SeqVal sv) noexcept {
    const std::uint32_t node = static_cast<std::uint32_t>(sv.bits);
    const tagged::TaggedIndex t = tail_.value.load(std::memory_order_acquire);
    const tagged::TaggedIndex next =
        pool_[t.index()].next.load(std::memory_order_acquire);
    if (t != tail_.value.load(std::memory_order_acquire)) return;
    if (!next.is_null()) {
      finish_tail();
      return;
    }
    if (desc_[slot].result.load(std::memory_order_seq_cst) != sv) return;
    MSQ_PROBE_COUNT("wfq.link", kCasAttempt);
    if (pool_[t.index()].next.compare_and_swap(next, next.successor(node),
                                               std::memory_order_acq_rel)) {
      finish_tail();
      return;
    }
    MSQ_COUNT(kCasFail);
  }

  /// Complete the enqueue of whatever node follows Tail, then swing Tail
  /// past it (the wait-free analogue of MS's E12/D9 helping).  Invariant:
  /// Tail never advances past a node whose announcement has not been
  /// resolved -- the completion CAS strictly precedes the swing.
  void finish_tail() noexcept {
    const tagged::TaggedIndex t = tail_.value.load(std::memory_order_acquire);
    const tagged::TaggedIndex next =
        pool_[t.index()].next.load(std::memory_order_acquire);
    if (next.is_null()) return;
    const std::uint64_t stamp =
        pool_[next.index()].enq_stamp.load(std::memory_order_acquire);
    // Counted Tail unchanged => Tail never moved since our first read =>
    // `next` is still the linked successor (a linked node is only freed
    // after Tail, then Head, pass it) => the stamp we read is its.
    if (tail_.value.load(std::memory_order_acquire) != t) return;
    const std::uint32_t slot = static_cast<std::uint32_t>(stamp & 0xff);
    const std::uint64_t phase = stamp >> 8;
    desc_[slot].result.compare_and_swap(
        wf_detail::SeqVal{wf_detail::make_seq(phase, wf_detail::kPendingEnq),
                          next.index()},
        wf_detail::SeqVal{wf_detail::make_seq(phase, wf_detail::kDoneEnq),
                          next.index()},
        std::memory_order_seq_cst);
    MSQ_PROBE("wfq.swing");
    tail_.value.compare_and_swap(t, t.successor(next.index()),
                                 std::memory_order_acq_rel);
  }

  /// One attempt at an announced dequeue: resolve emptiness, or claim the
  /// dummy for this operation and drive the claimed operation home.
  void help_deq_round(std::uint32_t slot, wf_detail::SeqVal sv) noexcept {
    const tagged::TaggedIndex h = head_.value.load(std::memory_order_acquire);
    const tagged::TaggedIndex t = tail_.value.load(std::memory_order_acquire);
    const tagged::TaggedIndex next =
        pool_[h.index()].next.load(std::memory_order_acquire);
    if (h != head_.value.load(std::memory_order_acquire)) return;
    if (h.index() == t.index()) {
      if (next.is_null()) {
        // Empty verdict, linearized at the next-is-null read above (Head
        // and Tail were equal and consistent).  Phase-guarded: if the
        // operation was meanwhile completed with a value, this fails.
        desc_[slot].result.compare_and_swap(
            sv,
            wf_detail::SeqVal{
                wf_detail::make_seq(wf_detail::phase_of(sv.seq),
                                    wf_detail::kEmpty),
                0},
            std::memory_order_seq_cst);
        return;
      }
      finish_tail();  // Tail is lagging; resolve the in-flight enqueue
      return;
    }
    if (next.is_null()) return;  // stale view; re-read
    const tagged::TaggedIndex claim =
        pool_[h.index()].claim.load(std::memory_order_acquire);
    if (claim.is_null()) {
      // Bind the dummy to the operation we are helping -- but never claim
      // on behalf of an operation that is already complete.
      if (desc_[slot].result.load(std::memory_order_seq_cst) != sv) return;
      MSQ_PROBE_COUNT("wfq.claim", kCasAttempt);
      if (!pool_[h.index()].claim.compare_and_swap(
              claim, claim.successor(slot), std::memory_order_acq_rel)) {
        MSQ_COUNT(kCasFail);
      }
    }
    finish_deq(h);
  }

  /// Drive the dequeue that holds the dummy's claim to completion:
  /// deposit the first value into its announcement, swing Head, free the
  /// old dummy.  Called with `first` = a validated read of Head; every
  /// mutation is guarded (phase-guarded 16-byte CAS, full-value counted
  /// CAS), so arbitrarily stale callers lose every race harmlessly.
  void finish_deq(tagged::TaggedIndex first) noexcept {
    Node& dummy = pool_[first.index()];
    const tagged::TaggedIndex claim =
        dummy.claim.load(std::memory_order_acquire);
    if (claim.is_null()) return;
    const tagged::TaggedIndex next = dummy.next.load(std::memory_order_acquire);
    if (next.is_null()) return;  // stale view of a recycled node
    // A thread halted HERE holds a possibly ancient view of Head and this
    // node's claim/next; everything it does below is guarded against that
    // (tests/fault_tolerance_test.cpp parks a victim here and replays the
    // consumed-freed-recycled dummy scenario against it).
    MSQ_PROBE("wfq.finish");
    const std::uint32_t slot = claim.index() % kSlots;
    Descriptor& d = desc_[slot];
    const wf_detail::SeqVal r = d.result.load(std::memory_order_seq_cst);

    if (wf_detail::state_of(r.seq) == wf_detail::kPendingDeq) {
      // Record WHICH dummy incarnation this operation consumes before
      // depositing: {index, Head tag}.  If the claim is a stale leftover
      // from a previous life of this node index, the pending operation
      // simply adopts the current dummy -- a valid linearization.
      tagged::TaggedIndex tk = d.taken.load(std::memory_order_acquire);
      if (tk.is_null()) {
        d.taken.compare_and_swap(
            tk, tagged::TaggedIndex(first.index(), first.count()),
            std::memory_order_acq_rel);
        tk = d.taken.load(std::memory_order_acquire);
      }
      if (tk != tagged::TaggedIndex(first.index(), first.count())) {
        // Bound to some OTHER dummy incarnation -- either our `first` is
        // stale (binding is live: leave it), or the binding itself is
        // stale pollution that would wedge the operation (clear it).
        unbind_if_stale(d, tk);
        return;
      }
      // Deposit guard.  `r` was re-read above, so the phase guard alone
      // cannot reject a stale helper: if our `first` predates a swing, the
      // dummy may have been consumed, freed and recycled, its dangling
      // claim may point at a slot now reused by a FRESH pending dequeue
      // (whose taken our CAS above just polluted), and `next` may be a
      // free-list link or mid-queue edge -- depositing would complete the
      // new operation with a garbage or duplicate value while removing
      // nothing.  Head's tag is bumped by every swing, so equality with
      // `first` proves no swing intervened: `first` is the LIVE dummy
      // incarnation, our binding is genuine, and from here Head stays
      // pinned until this operation leaves kPendingDeq (every swing
      // requires a resolved kDoneDeq with a matching binding), making the
      // value read below stable.  The polluted-taken case this guard
      // abandons is cleaned up by unbind_if_stale on any later pass.
      if (head_.value.load(std::memory_order_seq_cst) !=
          tagged::TaggedIndex(first.index(), first.count())) {
        return;
      }
      const T value = pool_[next.index()].value.get();
      std::uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(T));
      MSQ_PROBE_COUNT("wfq.deposit", kCasAttempt);
      d.result.compare_and_swap(
          r,
          wf_detail::SeqVal{wf_detail::make_seq(wf_detail::phase_of(r.seq),
                                                wf_detail::kDoneDeq),
                            bits},
          std::memory_order_seq_cst);
      // Fall through: whoever won the deposit, the swing below applies.
    }

    // Swing Head past the dummy iff the claimed operation's completed
    // deposit consumed exactly THIS dummy incarnation.  kEmpty or a
    // later/earlier state never swings; an orphaned claim (stale leftover
    // whose slot shows no matching activity) is reset so the dummy can be
    // claimed afresh.
    const tagged::TaggedIndex tk = d.taken.load(std::memory_order_acquire);
    const wf_detail::SeqVal now = d.result.load(std::memory_order_seq_cst);
    if (wf_detail::state_of(now.seq) == wf_detail::kDoneDeq &&
        tk == tagged::TaggedIndex(first.index(), first.count())) {
      MSQ_PROBE("wfq.swing");
      if (head_.value.compare_and_swap(first, first.successor(next.index()),
                                       std::memory_order_seq_cst)) {
        freelist_.free(first.index());
      }
      return;
    }
    if (wf_detail::state_of(now.seq) != wf_detail::kPendingDeq) {
      // Orphan: the claim points at a slot that is no longer running a
      // dequeue that could consume this dummy; clear it (tag bumps keep
      // the cell's history monotone).
      dummy.claim.compare_and_swap(claim, claim.successor(tagged::kNullIndex),
                                   std::memory_order_acq_rel);
    }
  }

  /// Clear a taken-binding left by a stale helper, so the pending dequeue
  /// it pollutes can be re-bound instead of wedging forever.  Staleness
  /// proof: Head's tag is globally monotone (bumped by every successful
  /// swing) and a non-null binding is always the copy of a genuine Head
  /// read, so a binding whose tag differs from the live Head's names an
  /// incarnation Head can never show again.  Crucially the converse holds
  /// too: between a deposit and the swing that retires it, the consumed
  /// binding's tag still EQUALS Head's (the swing is what bumps it), so a
  /// consumed-but-unswung binding is never cleared here -- clearing one
  /// would let the same dummy be claimed and deposited twice.  The tag
  /// comparison shares the library-wide 2^32 ABA regime.
  void unbind_if_stale(Descriptor& d, tagged::TaggedIndex tk) noexcept {
    if (tk.is_null()) return;
    const tagged::TaggedIndex h = head_.value.load(std::memory_order_seq_cst);
    if (tk.count() == h.count()) return;  // live (or plausibly live): keep
    MSQ_PROBE("wfq.unbind");
    d.taken.compare_and_swap(
        tk, tagged::TaggedIndex(tagged::kNullIndex, tk.count() + 1),
        std::memory_order_acq_rel);
  }

  /// Owner-side epilogue of a successful dequeue: before the slot can be
  /// reused, make sure Head has swung past the consumed dummy and the
  /// node went back to the free list (the one successful counted Head
  /// CAS frees; everyone else fails harmlessly).
  void settle_consumed_dummy(Descriptor& d) noexcept {
    const tagged::TaggedIndex tk = d.taken.load(std::memory_order_acquire);
    for (;;) {
      const tagged::TaggedIndex h = head_.value.load(std::memory_order_acquire);
      if (tagged::TaggedIndex(h.index(), h.count()) !=
          tagged::TaggedIndex(tk.index(), tk.count())) {
        return;  // already swung (tag is monotone: never this dummy again)
      }
      const tagged::TaggedIndex next =
          pool_[h.index()].next.load(std::memory_order_acquire);
      if (next.is_null()) return;  // unreachable for a consumed dummy
      if (head_.value.compare_and_swap(h, h.successor(next.index()),
                                       std::memory_order_seq_cst)) {
        freelist_.free(h.index());
        return;
      }
    }
  }

  mem::NodePool<Node> pool_;
  mem::FreeList<Node> freelist_;
  // Head and Tail on separate cache lines, exactly as MsQueue; the phase
  // counter is a third contended word and gets its own line too.
  port::CacheAligned<tagged::AtomicTagged> head_;
  port::CacheAligned<tagged::AtomicTagged> tail_;
  port::CacheAligned<std::atomic<std::uint64_t>> phase_;
  std::array<Descriptor, kSlots> desc_;
};

}  // namespace msq::queues
