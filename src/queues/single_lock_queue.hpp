// Straightforward single-lock queue -- the baseline of the paper's
// evaluation ("a straightforward single-lock queue ... For a queue that is
// usually accessed by only one or two processors, a single lock will run a
// little faster").
//
// One test-and-test_and_set lock (with bounded exponential backoff, as in
// the paper) protects the whole structure; with both ends serialised, the
// plain (non-atomic) free list can live under the same lock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "mem/node_pool.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/tatas_lock.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename Lock = sync::TatasLock>
class SingleLockQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit SingleLockQueue(std::uint32_t capacity) : pool_(capacity + 1) {
    // Private free list: singly linked through `next` indices.
    for (std::uint32_t i = 0; i < pool_.capacity(); ++i) {
      pool_[i].next = free_top_;
      free_top_ = i;
    }
    const std::uint32_t dummy = allocate();
    pool_[dummy].next = tagged::kNullIndex;
    head_ = tail_ = dummy;
  }

  SingleLockQueue(const SingleLockQueue&) = delete;
  SingleLockQueue& operator=(const SingleLockQueue&) = delete;

  bool try_enqueue(T value) {
    std::scoped_lock guard(lock_.value);
    MSQ_PROBE("singlelock.held");  // halted here: the whole queue wedges
    const std::uint32_t node = allocate();
    if (node == tagged::kNullIndex) return false;
    pool_[node].value = std::move(value);
    pool_[node].next = tagged::kNullIndex;
    pool_[tail_].next = node;
    tail_ = node;
    MSQ_COUNT(kEnqueue);
    return true;
  }

  bool try_dequeue(T& out) {
    std::scoped_lock guard(lock_.value);
    MSQ_PROBE("singlelock.held");
    const std::uint32_t dummy = head_;
    const std::uint32_t first = pool_[dummy].next;
    if (first == tagged::kNullIndex) {
      MSQ_COUNT(kDequeueEmpty);
      return false;
    }
    out = std::move(pool_[first].value);
    head_ = first;
    release(dummy);
    MSQ_COUNT(kDequeue);
    return true;
  }

  [[nodiscard]] std::optional<T> try_dequeue() {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    T value{};
    std::uint32_t next = tagged::kNullIndex;
  };

  std::uint32_t allocate() noexcept {
    if (free_top_ == tagged::kNullIndex) {
      MSQ_COUNT(kPoolRefuse);
      return tagged::kNullIndex;
    }
    const std::uint32_t node = free_top_;
    free_top_ = pool_[node].next;
    MSQ_COUNT(kPoolGet);
    return node;
  }
  void release(std::uint32_t node) noexcept {
    pool_[node].next = free_top_;
    free_top_ = node;
  }

  mem::NodePool<Node> pool_;
  std::uint32_t free_top_ = tagged::kNullIndex;
  std::uint32_t head_ = tagged::kNullIndex;  // all guarded by lock_
  std::uint32_t tail_ = tagged::kNullIndex;
  port::CacheAligned<Lock> lock_;
};

}  // namespace msq::queues
