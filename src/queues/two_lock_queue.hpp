// The two-lock concurrent queue -- the paper's second contribution
// (Figure 2): separate Head and Tail locks so one enqueue and one dequeue
// proceed concurrently, with a dummy node at the head of the list so
// "enqueuers never have to access Head, and dequeuers never have to access
// Tail, thus avoiding potential deadlock problems that arise from processes
// trying to acquire the locks in different orders."
//
// The paper benchmarks this with test-and-test_and_set locks with bounded
// exponential backoff; `Lock` is a template parameter so the lock ablation
// can swap in TAS, ticket or MCS locks.
//
// Node allocation: enqueuers allocate while holding only T_lock and
// dequeuers free while holding only H_lock, so the free list must itself be
// thread-safe between one allocator and one deallocator; we reuse the
// Treiber free list (also what the paper's C code does).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "obs/probe.hpp"
#include "port/cpu.hpp"
#include "queues/queue_concept.hpp"
#include "sync/tatas_lock.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {

template <typename T, typename Lock = sync::TatasLock>
class TwoLockQueue {
 public:
  using value_type = T;
  static constexpr QueueTraits traits{
      .progress = Progress::kBlocking,
      .mpmc = true,
      .pool_backed = true,
      .linearizable = true,
  };

  explicit TwoLockQueue(std::uint32_t capacity)
      : pool_(capacity + 1), freelist_(pool_) {
    // initialize(Q): node = new_node(); node->next = NULL;
    //                Q->Head = Q->Tail = node; locks free
    const std::uint32_t dummy = freelist_.try_allocate();
    pool_[dummy].next.store(tagged::TaggedIndex{}, std::memory_order_release);
    head_.value = dummy;
    tail_.value = dummy;
  }

  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  bool try_enqueue(T value) {
    // node = new_node(); node->value = value; node->next = NULL
    // (allocation outside the critical section: CP.43, and the free list is
    //  lock-free so this cannot deadlock with a dequeuer freeing)
    const std::uint32_t node = freelist_.try_allocate();
    if (node == tagged::kNullIndex) return false;
    pool_[node].value = std::move(value);
    pool_[node].next.store(tagged::TaggedIndex{}, std::memory_order_release);

    {
      std::scoped_lock guard(tail_lock_.value);       // lock(&Q->T_lock)
      MSQ_PROBE("twolock.T_held");  // a thread halted here wedges enqueuers
      pool_[tail_.value].next.store(                  // Q->Tail->next = node
          tagged::TaggedIndex(node, 0), std::memory_order_release);
      tail_.value = node;                             // Q->Tail = node
    }                                                 // unlock(&Q->T_lock)
    MSQ_COUNT(kEnqueue);
    return true;
  }

  bool try_dequeue(T& out) {
    std::uint32_t old_dummy;
    {
      std::scoped_lock guard(head_lock_.value);       // lock(&Q->H_lock)
      MSQ_PROBE("twolock.H_held");  // a thread halted here wedges dequeuers
      old_dummy = head_.value;                        // node = Q->Head
      const tagged::TaggedIndex new_head =
          pool_[old_dummy].next.load(std::memory_order_acquire);               // new_head = node->next
      if (new_head.is_null()) {                       // is queue empty?
        MSQ_COUNT(kDequeueEmpty);
        return false;                                 // unlock via RAII
      }
      out = std::move(pool_[new_head.index()].value); // *pvalue = new_head->value
      head_.value = new_head.index();                 // Q->Head = new_head
    }                                                 // unlock(&Q->H_lock)
    freelist_.free(old_dummy);                        // free(node)
    MSQ_COUNT(kDequeue);
    return true;
  }

  [[nodiscard]] std::optional<T> try_dequeue() {
    T value;
    if (try_dequeue(value)) return value;
    return std::nullopt;
  }

 private:
  struct Node {
    T value{};
    tagged::AtomicTagged next;
  };

  mem::NodePool<Node> pool_;
  mem::FreeList<Node> freelist_;
  // Each lock lives with the pointer it guards, on its own cache line, so
  // enqueuers and dequeuers touch disjoint lines (the whole point of the
  // algorithm).
  port::CacheAligned<std::uint32_t> head_;   // guarded by head_lock_
  port::CacheAligned<std::uint32_t> tail_;   // guarded by tail_lock_
  port::CacheAligned<Lock> head_lock_;
  port::CacheAligned<Lock> tail_lock_;
};

}  // namespace msq::queues
