// The uniform interface every queue in the library implements, as a C++20
// concept, plus compile-time traits the tests, harness and benches use to
// select applicable queues.
//
// All queues are MPMC FIFO unless their traits say otherwise, and follow the
// paper's operational signatures: enqueue(value) and a dequeue that reports
// emptiness via its boolean result (Figure 1's `dequeue(Q, pvalue): boolean`).
// Pool-backed queues additionally report allocation failure from enqueue,
// which is the honest translation of "no finite memory can guarantee..."
// concerns into an API.
#pragma once

#include <concepts>
#include <cstddef>

namespace msq::queues {

template <typename Q>
concept ConcurrentQueue = requires(Q q, typename Q::value_type v) {
  typename Q::value_type;
  /// Returns false iff the queue is out of nodes (bounded/pool-backed).
  { q.try_enqueue(v) } -> std::convertible_to<bool>;
  /// Returns false iff the queue was observed empty.
  { q.try_dequeue(v) } -> std::convertible_to<bool>;
};

/// Progress guarantee of the implementation, per the paper's taxonomy
/// (section 1): blocking, lock-free-but-blocking ("they do not use locking
/// mechanisms, but they allow a slow process to delay faster processes
/// indefinitely"), non-blocking, wait-free.
enum class Progress {
  kBlocking,          // single-lock, two-lock
  kLockFreeBlocking,  // Mellor-Crummey
  kNonBlocking,       // MS, PLJ, Valois, Treiber
  kWaitFree,          // Lamport SPSC (single enqueuer + single dequeuer)
};

/// Compile-time description each queue exports as `Q::traits`.
struct QueueTraits {
  Progress progress = Progress::kBlocking;
  bool mpmc = true;            // false: SPSC only
  bool pool_backed = true;     // enqueue can fail when nodes run out
  bool linearizable = true;
};

}  // namespace msq::queues
