// Bounded exponential backoff (paper section 4).
//
// "For the two lock-based algorithms we use test-and-test_and_set locks with
//  bounded exponential backoff.  We also use backoff where appropriate in the
//  non-lock-based algorithms.  Performance was not sensitive to the exact
//  choice of backoff parameters in programs that do at least a modest amount
//  of work between queue operations."
//
// Every contended retry loop in the library (lock acquisition, failed CAS)
// takes a Backoff by value and calls pause() on failure.  The ablation bench
// (bench/ablate_backoff) swaps in NullBackoff to quantify the paper's claim.
#pragma once

#include <cstdint>

#include "obs/counters.hpp"
#include "port/cpu.hpp"
#include "port/prng.hpp"

namespace msq::sync {

/// Exponential backoff with an upper bound and uniform jitter.
/// Doubles the window on every pause() up to `max_spins`; spins a uniformly
/// random number of cpu_relax() iterations within the current window
/// (randomisation desynchronises competitors, per Anderson [1]).
class Backoff {
 public:
  struct Params {
    std::uint32_t min_spins = 4;
    std::uint32_t max_spins = 1024;
  };

  Backoff() noexcept : Backoff(Params{}) {}
  explicit Backoff(Params p, std::uint64_t seed = 0xb0ff5eed) noexcept
      : params_(p), window_(p.min_spins), rng_(seed) {}

  /// Wait one backoff episode and widen the window.
  void pause() noexcept {
    const std::uint64_t spins = 1 + rng_.below(window_);
    for (std::uint64_t i = 0; i < spins; ++i) port::cpu_relax();
    // One bump per episode, after the wait: the probe never sits inside
    // the spin loop itself (obs probe-naming convention: backoff_wait
    // counts cpu_relax() spins spent backing off, across all callers).
    MSQ_COUNT_N(kBackoffWait, spins);
    if (window_ < params_.max_spins) window_ *= 2;
  }

  /// Forget accumulated contention history (call after success).
  void reset() noexcept { window_ = params_.min_spins; }

  /// Current window (upper bound on the next episode's spin count).
  /// Observable so tests can pin down the doubling/saturation/reset
  /// semantics without timing anything.
  [[nodiscard]] std::uint32_t window() const noexcept { return window_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  std::uint32_t window_;
  port::Xoshiro256 rng_;
};

/// Drop-in no-op used by the backoff ablation and by tests that need
/// maximal interleaving pressure.
class NullBackoff {
 public:
  void pause() noexcept { port::cpu_relax(); }
  void reset() noexcept {}
};

}  // namespace msq::sync
