// Plain test_and_set spin lock.
//
// The paper's motivation for the two-lock queue is machines whose only
// universal-ish primitive is test_and_set; this is the simplest such lock.
// It generates coherence traffic on every failed attempt (each test_and_set
// is a write), which is why TatasLock (test-and-test_and_set) is what the
// paper actually benchmarks.  Kept as a baseline and for the lock tests.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"

namespace msq::sync {

class TasLock {
 public:
  TasLock() noexcept = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    obs::SpinTally spins;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      spins.bump();  // every failed attempt is a (write-generating) spin
      backoff.pause();
    }
    spins.commit(obs::Counter::kLockSpin);
    MSQ_COUNT(kLockAcquire);
  }

  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  // share-ok: the flag IS the whole lock; callers place it (the queues
  // wrap their locks in port::CacheAligned at the use site)
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace msq::sync
