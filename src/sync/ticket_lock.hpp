// Ticket lock: FIFO-fair spin lock built from fetch_and_increment.
//
// Included as the classic fair alternative discussed in the scalable-
// synchronisation literature the paper builds on [12].  Fairness makes it
// the worst case under multiprogramming (the thread whose turn it is may be
// preempted, stalling everyone behind it), which the multiprogrammed benches
// demonstrate.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/counters.hpp"
#include "port/cpu.hpp"

namespace msq::sync {

class TicketLock {
 public:
  TicketLock() noexcept = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    // relaxed: drawing a ticket orders nothing; the acquire spin below syncs
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t rounds = 0;
    obs::SpinTally spins;
    while (serving_.load(std::memory_order_acquire) != my) {
      spins.bump();
      // Proportional backoff: spin roughly in proportion to queue distance;
      // like the MCS lock, hand-off is to a SPECIFIC waiter, so yield once
      // the wait outlives a short spin (oversubscribed hosts).
      // relaxed: distance estimate for backoff only; staleness is harmless
      const std::uint32_t ahead = my - serving_.load(std::memory_order_relaxed);
      if (++rounds > 256) {
        std::this_thread::yield();
        continue;
      }
      for (std::uint32_t i = 0; i < ahead * 8 + 1; ++i) port::cpu_relax();
    }
    spins.commit(obs::Counter::kLockSpin);
    MSQ_COUNT(kLockAcquire);
  }

  bool try_lock() noexcept {
    // relaxed: a stale read only makes the CAS below fail (spurious busy)
    std::uint32_t s = serving_.load(std::memory_order_relaxed);
    std::uint32_t expected = s;
    // Succeed only if no one is waiting: next == serving and we can claim it.
    // relaxed: CAS failure means contention; caller just returns false
    return next_.compare_exchange_strong(expected, s + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);  // relaxed: ^
  }

  void unlock() noexcept {
    // relaxed: only the holder writes serving_; this re-reads its own write
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  alignas(port::kCacheLine) std::atomic<std::uint32_t> next_{0};
  alignas(port::kCacheLine) std::atomic<std::uint32_t> serving_{0};
};

}  // namespace msq::sync
