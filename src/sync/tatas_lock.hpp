// Test-and-test_and_set lock with bounded exponential backoff.
//
// This is the exact lock the paper uses for its lock-based algorithms
// (section 4, citing Mellor-Crummey & Scott [12] and Anderson [1]): spin
// reading the flag locally (cache hit) and only attempt the atomic RMW when
// the flag is observed free; back off exponentially after a failed RMW.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"

namespace msq::sync {

template <typename BackoffPolicy = Backoff>
class BasicTatasLock {
 public:
  BasicTatasLock() noexcept = default;
  BasicTatasLock(const BasicTatasLock&) = delete;
  BasicTatasLock& operator=(const BasicTatasLock&) = delete;

  void lock() noexcept {
    BackoffPolicy backoff;
    obs::SpinTally spins;  // tallied in a register, published once on exit
    for (;;) {
      // Local spin: read-only, stays in this processor's cache until the
      // holder's release invalidates the line.
      // relaxed: the winning exchange below is the acquire
      while (locked_.load(std::memory_order_relaxed)) {
        spins.bump();
        port::cpu_relax();
      }
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        spins.commit(obs::Counter::kLockSpin);
        MSQ_COUNT(kLockAcquire);
        return;
      }
      spins.bump();     // the RMW itself lost a race: that is a spin too
      backoff.pause();  // somebody grabbed it first
    }
  }

  bool try_lock() noexcept {
    // relaxed: optimistic pre-check; the exchange is the acquire
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  // share-ok: the flag IS the whole lock; callers place it (the queues
  // wrap their locks in port::CacheAligned at the use site)
  std::atomic<bool> locked_{false};
};

using TatasLock = BasicTatasLock<Backoff>;
using TatasLockNoBackoff = BasicTatasLock<NullBackoff>;

}  // namespace msq::sync
