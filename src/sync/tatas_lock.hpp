// Test-and-test_and_set lock with bounded exponential backoff.
//
// This is the exact lock the paper uses for its lock-based algorithms
// (section 4, citing Mellor-Crummey & Scott [12] and Anderson [1]): spin
// reading the flag locally (cache hit) and only attempt the atomic RMW when
// the flag is observed free; back off exponentially after a failed RMW.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"

namespace msq::sync {

template <typename BackoffPolicy = Backoff>
class BasicTatasLock {
 public:
  BasicTatasLock() noexcept = default;
  BasicTatasLock(const BasicTatasLock&) = delete;
  BasicTatasLock& operator=(const BasicTatasLock&) = delete;

  void lock() noexcept {
    BackoffPolicy backoff;
    for (;;) {
      // Local spin: read-only, stays in this processor's cache until the
      // holder's release invalidates the line.
      while (locked_.load(std::memory_order_relaxed)) {
        port::cpu_relax();
      }
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      backoff.pause();  // RMW lost a race: somebody grabbed it first
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

using TatasLock = BasicTatasLock<Backoff>;
using TatasLockNoBackoff = BasicTatasLock<NullBackoff>;

}  // namespace msq::sync
