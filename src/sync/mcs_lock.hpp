// MCS list-based queue lock (Mellor-Crummey & Scott [12]).
//
// Each waiter spins on its *own* qnode, so under contention only one cache
// line per waiter bounces.  This is the lock that made the authors' earlier
// work famous and is the natural "good lock" point of comparison for the
// two-lock queue; the lock tests and ablations use it interchangeably with
// TatasLock through the shared Lockable concept.
//
// Usage differs from std::mutex: each lock()/unlock() pair needs a QNode
// owned by the acquiring thread.  The Guard RAII type supplies one from the
// stack, which is the idiomatic pattern (the qnode only needs to live for
// the duration of the critical section).
#pragma once

#include <atomic>
#include <thread>

#include "obs/counters.hpp"
#include "port/cpu.hpp"

namespace msq::sync {

class McsLock {
 public:
  struct alignas(port::kCacheLine) QNode {
    // share-ok: both fields belong to ONE waiter (struct is line-aligned)
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  McsLock() noexcept = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock(QNode& node) noexcept {
    // relaxed: node is still private; the exchange below publishes it
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(true, std::memory_order_relaxed);  // relaxed: ditto
    QNode* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(&node, std::memory_order_release);
      // Queue locks hand off to one SPECIFIC waiter; on an oversubscribed
      // machine that waiter must actually get scheduled, so fall back to
      // yielding after a short local spin (the paper's multiprogramming
      // pathology, mitigated).
      int spins = 0;
      obs::SpinTally tally;
      while (node.locked.load(std::memory_order_acquire)) {
        tally.bump();
        if (++spins < 1024) {
          port::cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
      tally.commit(obs::Counter::kLockSpin);
    }
    MSQ_COUNT(kLockAcquire);
  }

  bool try_lock(QNode& node) noexcept {
    // relaxed: node is still private; the CAS below publishes it
    node.next.store(nullptr, std::memory_order_relaxed);
    QNode* expected = nullptr;
    // relaxed: CAS failure means contention; caller just returns false
    return tail_.compare_exchange_strong(expected, &node,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);  // relaxed: ^
  }

  void unlock(QNode& node) noexcept {
    QNode* successor = node.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      QNode* expected = &node;
      // relaxed: on CAS failure the acquire re-read of next below syncs
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {  // relaxed: ^
        return;  // no waiter
      }
      // A waiter swapped itself in but has not linked yet; wait for the link.
      int spins = 0;
      while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
        if (++spins < 1024) {
          port::cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
    successor->locked.store(false, std::memory_order_release);
  }

  /// RAII adapter that makes McsLock satisfy the same scoped-usage pattern
  /// as the other locks (CP.20: use RAII, never plain lock/unlock).
  class Guard {
   public:
    explicit Guard(McsLock& lock) noexcept : lock_(lock) { lock_.lock(node_); }
    ~Guard() { lock_.unlock(node_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    McsLock& lock_;
    QNode node_;
  };

 private:
  // share-ok: the tail IS the whole lock; callers place it (the queues
  // wrap their locks in port::CacheAligned at the use site)
  std::atomic<QNode*> tail_{nullptr};
};

/// Adapter giving McsLock the BasicLockable interface (lock()/unlock() with
/// no explicit qnode) so it can parameterise the lock-based queues.  Each
/// thread keeps a small stack of qnodes so that holding several *different*
/// McsMutexes (LIFO-nested, as scoped locking guarantees) is safe; the node
/// in use for this mutex is remembered in the mutex itself, which only the
/// current holder touches.
class McsMutex {
 public:
  void lock() noexcept {
    McsLock::QNode& node = acquire_node();
    lock_.lock(node);
    holder_ = &node;
  }

  bool try_lock() noexcept {
    McsLock::QNode& node = acquire_node();
    if (lock_.try_lock(node)) {
      holder_ = &node;
      return true;
    }
    release_node();
    return false;
  }

  void unlock() noexcept {
    McsLock::QNode* node = holder_;
    holder_ = nullptr;
    lock_.unlock(*node);
    release_node();
  }

 private:
  static constexpr int kMaxNested = 8;
  struct NodeStack {
    McsLock::QNode nodes[kMaxNested];
    int depth = 0;
  };
  static NodeStack& tls_stack() noexcept {
    thread_local NodeStack stack;
    return stack;
  }
  static McsLock::QNode& acquire_node() noexcept {
    NodeStack& s = tls_stack();
    return s.nodes[s.depth++ % kMaxNested];
  }
  static void release_node() noexcept { --tls_stack().depth; }

  McsLock lock_;
  McsLock::QNode* holder_ = nullptr;
};

}  // namespace msq::sync
