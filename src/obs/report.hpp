// Observability layer, part 4: human-readable and machine-readable output.
//
// Two consumers with different needs share the same data:
//  * people, reading a post-run report (obs_tour, the bench tables, the
//    watchdog's wedge attribution) -- aligned text, per-op rates;
//  * machines, consuming BENCH_*.json (the CI smoke-bench, external
//    plotting) -- strict JSON via the small streaming JsonWriter below,
//    which is also what bench/fig_common uses for its --json output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace msq::obs {

/// Minimal streaming JSON writer: objects/arrays with automatic comma
/// placement, string escaping, and NaN/Inf mapped to null (JSON has no
/// representation for them).  No DOM, no allocation beyond the nesting
/// stack -- enough for bench output, small enough to audit.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(bool v);

 private:
  void separate();  // emit ',' if needed before a sibling element
  static void write_escaped(std::ostream& os, std::string_view s);

  std::ostream& os_;
  std::vector<bool> needs_comma_;  // one flag per open container
  bool after_key_ = false;
};

/// Aligned text table of counter totals and per-op rates ("- " when ops is
/// unknown/zero).  Zero-valued counters are listed too: "this mechanism
/// never fired" is a finding (e.g. cas_fail == 0 at p = 1).
void print_counters(std::ostream& os, const Snapshot& s, std::uint64_t ops,
                    std::string_view title = "counters");

/// One-line-per-quantile latency summary: count, mean, p50/p90/p99, max.
void print_histogram(std::ostream& os, const Histogram& h,
                     std::string_view title, std::string_view unit);

/// JSON object {"<name>": {"total": N, "per_op": R}, ...} for all counters.
void write_counters_json(JsonWriter& w, const Snapshot& s, std::uint64_t ops);

/// JSON object {"count": .., "mean": .., "p50": .., "p90": .., "p99": ..,
/// "max": ..} for a histogram.
void write_histogram_json(JsonWriter& w, const Histogram& h);

/// async-signal-unsafe-free-ish stderr dump for the watchdog's abort path:
/// fprintf only, no ostreams, no allocation.  Prints nothing when every
/// counter is zero (probes disabled or never armed) except a note saying so.
void dump_counters_stderr(const char* why) noexcept;

}  // namespace msq::obs
