// Observability layer, part 1: named per-thread-sharded operation counters.
//
// The paper's section 4 argument is about *mechanisms*, not just net time:
// the MS queue wins because failed CASes are cheap retries while lock-based
// algorithms burn their time spinning on a held lock, and bounded
// exponential backoff tames both.  These counters make those mechanisms
// measurable: every instrumented retry loop bumps a named counter
// (cas_attempt/cas_fail, lock_spin, backoff_wait, ...) and the bench layer
// reports them per operation next to the throughput curves.
//
// Design constraints, in order:
//  1. The hot path must stay honest.  Counting is per-thread-sharded
//     (cacheline-padded shards, relaxed increments -- no contention is
//     *added* by the act of measuring contention) and, when no one has
//     called arm(), a probe is a single relaxed load of one shared flag --
//     the same one-relaxed-load-when-unarmed idiom as fault::point().
//  2. Compiled out entirely when MSQ_OBS=0 (or the MSQ_PROBES CMake option
//     is OFF): every entry point degenerates to a constexpr no-op.  The
//     constexpr-ness is itself the compile-time proof that the disabled
//     path contains no atomic operations -- std::atomic loads are not
//     constant-expression-evaluable, so `static_assert((obs::count(...),
//     true))` only compiles when the function body is empty of them
//     (tests/probes_off_test.cpp).
//  3. Snapshots aggregate on read: snapshot() sums the shards with relaxed
//     loads, so writers are never stalled by a reader.  Benches bracket a
//     run with two snapshots and subtract.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "port/cpu.hpp"

// MSQ_PROBES gates BOTH the fault-injection points and the observability
// probes (shared CMake option); MSQ_OBS can additionally be forced to 0 to
// strip only the counters while keeping fault points.
#ifndef MSQ_PROBES
#define MSQ_PROBES 1
#endif
#ifndef MSQ_OBS
#define MSQ_OBS MSQ_PROBES
#endif

namespace msq::obs {

/// The counter registry.  Names follow the probe-naming convention in
/// docs/ALGORITHMS.md: a counter records *events of one mechanism*, summed
/// over all sites that exhibit it, so curves stay comparable across
/// algorithms.
enum class Counter : std::uint32_t {
  kEnqueue,       // completed enqueue/push operations
  kDequeue,       // completed dequeue/pop operations (non-empty)
  kDequeueEmpty,  // dequeue/pop attempts that observed an empty container
  kCasAttempt,    // linearizing CAS attempts (the labelled E9/D12-class sites)
  kCasFail,       // ... of which failed (lost the race; paper's retry cost)
  kBackoffWait,   // cpu_relax() spins executed inside backoff episodes
  kLockAcquire,   // lock() acquisitions
  kLockSpin,      // spin iterations while the lock was observed held
  kPoolGet,       // successful node-pool allocations
  kPoolRefuse,    // pool-exhausted allocation failures
  kExploreRun,    // schedules actually executed by the sim explorers
  kExploreSkip,   // degenerate schedules skipped (identical to one already run)
  kRaceReport,    // happens-before violations reported by the race detector
  kPoolCasRetry,  // failed CASes on the global free-list top (contention cost)
  kSegClose,      // segment-queue segments closed and appended (amortised CAS)
  kMagHit,        // allocations served from a thread-local magazine
  kMagRefill,     // magazine refills from the global free list (batch pops)
  kMagFlush,      // magazine flushes back to the free list (batch pushes)
  kShardHit,      // sharded dequeues served by the consumer's home shard
  kShardSteal,    // sharded dequeues stolen from a non-home shard
  kShardRehome,   // producer hint re-homed after repeated full shards
  kEmptyRescan,   // empty sweeps re-run because a shard ticket moved
  kWfHelp,        // wait-free helping episodes (another slot's op completed)
  kQueueFull,     // bounded-capacity enqueue refusals (ring full, not pool)
  kShedRetry,     // open-loop producer retries after an enqueue refusal
  kShed,          // open-loop offered ops dropped after the retry budget
  kScqCatchup,    // SCQ dequeuer CAS'd a lagging tail forward to head+1
  kScqThresholdReset,  // SCQ enqueue re-armed the dequeue threshold (3n-1)
};

inline constexpr std::size_t kCounterCount = 28;

inline constexpr std::array<Counter, kCounterCount> kAllCounters = {
    Counter::kEnqueue,      Counter::kDequeue,    Counter::kDequeueEmpty,
    Counter::kCasAttempt,   Counter::kCasFail,    Counter::kBackoffWait,
    Counter::kLockAcquire,  Counter::kLockSpin,   Counter::kPoolGet,
    Counter::kPoolRefuse,   Counter::kExploreRun, Counter::kExploreSkip,
    Counter::kRaceReport,   Counter::kPoolCasRetry, Counter::kSegClose,
    Counter::kMagHit,       Counter::kMagRefill,  Counter::kMagFlush,
    Counter::kShardHit,     Counter::kShardSteal, Counter::kShardRehome,
    Counter::kEmptyRescan,  Counter::kWfHelp,     Counter::kQueueFull,
    Counter::kShedRetry,    Counter::kShed,       Counter::kScqCatchup,
    Counter::kScqThresholdReset};

[[nodiscard]] constexpr const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kEnqueue:      return "enqueue";
    case Counter::kDequeue:      return "dequeue";
    case Counter::kDequeueEmpty: return "dequeue_empty";
    case Counter::kCasAttempt:   return "cas_attempt";
    case Counter::kCasFail:      return "cas_fail";
    case Counter::kBackoffWait:  return "backoff_wait";
    case Counter::kLockAcquire:  return "lock_acquire";
    case Counter::kLockSpin:     return "lock_spin";
    case Counter::kPoolGet:      return "pool_get";
    case Counter::kPoolRefuse:   return "pool_refuse";
    case Counter::kExploreRun:   return "explore_run";
    case Counter::kExploreSkip:  return "explore_skip";
    case Counter::kRaceReport:   return "race_report";
    case Counter::kPoolCasRetry: return "pool_cas_retry";
    case Counter::kSegClose:     return "seg_close";
    case Counter::kMagHit:       return "mag_hit";
    case Counter::kMagRefill:    return "mag_refill";
    case Counter::kMagFlush:     return "mag_flush";
    case Counter::kShardHit:     return "shard_hit";
    case Counter::kShardSteal:   return "shard_steal";
    case Counter::kShardRehome:  return "shard_rehome";
    case Counter::kEmptyRescan:  return "empty_rescan";
    case Counter::kWfHelp:       return "wf_help";
    case Counter::kQueueFull:    return "queue_full";
    case Counter::kShedRetry:    return "shed_retry";
    case Counter::kShed:         return "shed";
    case Counter::kScqCatchup:   return "scq_catchup";
    case Counter::kScqThresholdReset: return "scq_threshold_reset";
  }
  return "?";
}

/// Aggregated totals at one instant.  Plain values: subtract two snapshots
/// to attribute counts to a bracketed run.
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> totals{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const noexcept {
    return totals[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] Snapshot operator-(const Snapshot& rhs) const noexcept {
    Snapshot d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.totals[i] = totals[i] - rhs.totals[i];
    }
    return d;
  }
  /// Per-operation rate (0 when ops == 0, so empty runs render cleanly).
  [[nodiscard]] double per_op(Counter c, std::uint64_t ops) const noexcept {
    return ops == 0 ? 0.0
                    : static_cast<double>((*this)[c]) /
                          static_cast<double>(ops);
  }
};

#if MSQ_OBS

namespace detail {

/// Shard count bounds memory, not thread count: thread 65+ shares a shard
/// (increments stay atomic, sums stay exact).  Shards of exited threads
/// keep their totals -- aggregate-on-read wants history, not residency.
inline constexpr std::size_t kShards = 64;

struct alignas(port::kCacheLine) Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> v{};
};

struct Registry {
  std::array<Shard, kShards> shards{};
  // share-ok: touched once per thread lifetime (shard assignment)
  std::atomic<std::uint32_t> next_slot{0};
};

inline Registry& registry() noexcept {
  static Registry r;
  return r;
}

// share-ok: read-mostly flag; flipped only around bench sections
inline std::atomic<bool> g_armed{false};

/// Cheap thread-local handle: one shard assignment per thread lifetime.
inline Shard& local_shard() noexcept {
  thread_local Shard* shard =
      &registry().shards[registry().next_slot.fetch_add(
                             1, std::memory_order_relaxed) %
                         kShards];
  return *shard;
}

}  // namespace detail

/// Start recording.  Probes hit before arm() cost one relaxed load each.
inline void arm() noexcept {
  detail::g_armed.store(true, std::memory_order_release);
}
inline void disarm() noexcept {
  detail::g_armed.store(false, std::memory_order_release);
}
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_acquire);
}

/// The probe.  Unarmed: one relaxed load, no store, no shared-line write.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (!detail::g_armed.load(std::memory_order_relaxed)) [[likely]] return;
  detail::local_shard().v[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Aggregate-on-read: sums every shard with relaxed loads.  Taken while
/// writers run, the result is a consistent-enough monotone snapshot (each
/// counter individually exact up to in-flight increments).
[[nodiscard]] inline Snapshot snapshot() noexcept {
  Snapshot s;
  for (const detail::Shard& shard : detail::registry().shards) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      s.totals[i] += shard.v[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

/// Zero every shard.  Only meaningful while no instrumented code runs;
/// bracketing with two snapshots is the race-free alternative.
inline void reset() noexcept {
  for (detail::Shard& shard : detail::registry().shards) {
    for (auto& cell : shard.v) cell.store(0, std::memory_order_relaxed);
  }
}

namespace detail {

/// The pool_hwm gauge is NOT sharded, unlike the counters above: a
/// high-water mark is a max over the true global value, and max does not
/// distribute over per-shard sums (each shard's local peak can occur at a
/// different instant, so summing shard maxima overstates the real peak).
/// Exactness requires one shared current/hwm pair; allocators absorb one
/// armed fetch_add per pool transition, which the benches that arm it are
/// explicitly paying to measure.
struct alignas(port::kCacheLine) PoolGauge {
  // share-ok: current+hwm are one gauge updated by the same sites; the
  // struct is cache-aligned as a unit
  std::atomic<std::int64_t> current{0};
  // share-ok: same gauge as `current` above, aligned as a unit
  std::atomic<std::int64_t> hwm{0};
};

inline PoolGauge& pool_gauge() noexcept {
  static PoolGauge g;
  return g;
}

}  // namespace detail

/// Record a pool population change (+n allocate, -n free).  Unarmed: one
/// relaxed load, identical cost profile to count().
inline void pool_gauge_add(std::int64_t delta) noexcept {
  if (!detail::g_armed.load(std::memory_order_relaxed)) [[likely]] return;
  detail::PoolGauge& g = detail::pool_gauge();
  const std::int64_t now =
      g.current.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) {
    std::int64_t seen = g.hwm.load(std::memory_order_relaxed);
    while (seen < now &&
           !g.hwm.compare_exchange_weak(seen, now, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }
}

/// Peak nodes outstanding since the last pool_gauge_reset().
[[nodiscard]] inline std::int64_t pool_gauge_hwm() noexcept {
  return detail::pool_gauge().hwm.load(std::memory_order_acquire);
}

/// Nodes outstanding right now (relative to the last reset).
[[nodiscard]] inline std::int64_t pool_gauge_current() noexcept {
  return detail::pool_gauge().current.load(std::memory_order_acquire);
}

/// Re-zero the gauge.  Call before constructing the structure under test so
/// the baseline is "no nodes outstanding"; like reset(), only meaningful
/// while no instrumented code runs.
inline void pool_gauge_reset() noexcept {
  detail::pool_gauge().current.store(0, std::memory_order_relaxed);
  detail::pool_gauge().hwm.store(0, std::memory_order_relaxed);
}

#else  // MSQ_OBS == 0: constexpr no-ops (see header comment, point 2).

constexpr void arm() noexcept {}
constexpr void disarm() noexcept {}
[[nodiscard]] constexpr bool armed() noexcept { return false; }
constexpr void count(Counter, std::uint64_t = 1) noexcept {}
[[nodiscard]] inline Snapshot snapshot() noexcept { return {}; }
constexpr void reset() noexcept {}
constexpr void pool_gauge_add(std::int64_t) noexcept {}
[[nodiscard]] constexpr std::int64_t pool_gauge_hwm() noexcept { return 0; }
[[nodiscard]] constexpr std::int64_t pool_gauge_current() noexcept {
  return 0;
}
constexpr void pool_gauge_reset() noexcept {}

#endif  // MSQ_OBS

/// Local spin tally for lock loops: accumulate in a register while
/// spinning, publish once on exit, so the armed cost stays out of the
/// spin loop itself.  Compiles to nothing when MSQ_OBS=0.
class SpinTally {
 public:
#if MSQ_OBS
  void bump(std::uint64_t n = 1) noexcept { n_ += n; }
  void commit(Counter c) noexcept {
    if (n_ != 0) {
      count(c, n_);
      n_ = 0;
    }
  }

 private:
  std::uint64_t n_ = 0;
#else
  constexpr void bump(std::uint64_t = 1) noexcept {}
  constexpr void commit(Counter) noexcept {}
#endif
};

}  // namespace msq::obs

/// Site-side sugar: MSQ_COUNT(kCasFail) / MSQ_COUNT_N(kBackoffWait, spins).
#define MSQ_COUNT(counter) ::msq::obs::count(::msq::obs::Counter::counter)
#define MSQ_COUNT_N(counter, n) \
  ::msq::obs::count(::msq::obs::Counter::counter, (n))
/// Pool-population gauge sugar for allocator sites (see pool_gauge_add).
#define MSQ_POOL_GAUGE(delta) ::msq::obs::pool_gauge_add(delta)
