// Observability layer, part 3: labelled probe macros.
//
// A probe site is one place in an algorithm where two orthogonal tools
// want a hook:
//  * fault injection (src/fault): stall or halt a thread exactly there, to
//    replay the paper's "processes halted or delayed" hypothesis;
//  * counting (src/obs): record that the mechanism fired, to explain the
//    benchmark curves.
//
// MSQ_PROBE_COUNT fuses both at the labelled CAS windows the queues
// already annotate (ms.E9, ms.D12, ...), so the site label stays the
// single source of truth shared by the simulator's co_await p.at(...)
// lines, the fault plans, and the counter reports.  Sites that only ever
// stall (e.g. lock-held critical sections) keep plain MSQ_PROBE.
//
// Cost: both macros inherit the layered gating of their halves -- compiled
// out entirely under MSQ_PROBES=0 / MSQ_OBS=0, one relaxed load each when
// compiled in but not armed.
#pragma once

#include "fault/fault_plan.hpp"
#include "obs/counters.hpp"

/// Fault-injection stall point only (no counter).
#define MSQ_PROBE(site) ::msq::fault::point(site)

/// Stall point + counter bump, e.g. the linearizing CAS attempts:
///   MSQ_PROBE_COUNT("ms.E9", kCasAttempt);
#define MSQ_PROBE_COUNT(site, counter) \
  do {                                 \
    ::msq::fault::point(site);         \
    MSQ_COUNT(counter);                \
  } while (0)
