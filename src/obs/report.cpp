#include "obs/report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace msq::obs {

// --- JsonWriter -----------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  needs_comma_.push_back(false);
  return *this;
}
JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  os_ << '}';
  return *this;
}
JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  needs_comma_.push_back(false);
  return *this;
}
JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  os_ << ']';
  return *this;
}
JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  write_escaped(os_, k);
  os_ << ':';
  after_key_ = true;
  return *this;
}
JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(os_, v);
  return *this;
}
JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}
JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";
  } else {
    // ostringstream so the caller's stream flags stay untouched.
    std::ostringstream tmp;
    tmp << std::setprecision(12) << v;
    os_ << tmp.str();
  }
  return *this;
}
JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}
JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}
JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

// --- text reports ---------------------------------------------------------

void print_counters(std::ostream& os, const Snapshot& s, std::uint64_t ops,
                    std::string_view title) {
  os << title << (ops != 0 ? "  (per-op over " : "") ;
  if (ops != 0) os << ops << " ops)";
  os << '\n';
  for (const Counter c : kAllCounters) {
    os << "  " << std::left << std::setw(14) << counter_name(c)
       << std::right << std::setw(14) << s[c];
    if (ops != 0) {
      std::ostringstream rate;
      rate << std::fixed << std::setprecision(4) << s.per_op(c, ops);
      os << "   " << std::setw(12) << rate.str() << " /op";
    }
    os << '\n';
  }
}

void print_histogram(std::ostream& os, const Histogram& h,
                     std::string_view title, std::string_view unit) {
  os << title << ": n=" << h.count();
  if (h.count() == 0) {
    os << " (empty)\n";
    return;
  }
  os << "  mean=" << std::fixed << std::setprecision(1) << h.mean()
     << "  p50=" << h.percentile(50) << "  p90=" << h.percentile(90)
     << "  p99=" << h.percentile(99) << "  max=" << h.max() << "  [" << unit
     << "]\n";
  os.unsetf(std::ios_base::floatfield);
}

void write_counters_json(JsonWriter& w, const Snapshot& s,
                         std::uint64_t ops) {
  w.begin_object();
  for (const Counter c : kAllCounters) {
    w.key(counter_name(c))
        .begin_object()
        .key("total")
        .value(s[c])
        .key("per_op")
        .value(s.per_op(c, ops))
        .end_object();
  }
  w.end_object();
}

void write_histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object()
      .key("count")
      .value(h.count())
      .key("mean")
      .value(h.mean())
      .key("p50")
      .value(h.percentile(50))
      .key("p90")
      .value(h.percentile(90))
      .key("p99")
      .value(h.percentile(99))
      .key("max")
      .value(h.max())
      .end_object();
}

void dump_counters_stderr(const char* why) noexcept {
  const Snapshot s = snapshot();
  std::uint64_t total = 0;
  for (const Counter c : kAllCounters) total += s[c];
  if (total == 0) {
    std::fprintf(stderr,
                 "[obs] %s: all counters zero (probes disabled or never "
                 "armed)\n",
                 why);
    return;
  }
  std::fprintf(stderr, "[obs] %s:\n", why);
  for (const Counter c : kAllCounters) {
    std::fprintf(stderr, "[obs]   %-14s %" PRIu64 "\n", counter_name(c),
                 s[c]);
  }
  std::fflush(stderr);
}

}  // namespace msq::obs
