// Observability layer, part 2: log-bucketed (HDR-style) latency histograms.
//
// Per-operation latency distributions, not just means: the paper's
// multiprogramming story (Figures 4-5) is a *tail* story -- a preempted
// lock holder turns a handful of operations catastrophically slow while
// the median stays fine.  A histogram with logarithmic buckets captures
// that with fixed memory and O(1) record cost.
//
// Bucketing: values below 2^kSubBits are exact (one bucket per value);
// above that, each power-of-two octave is split into 2^kSubBits linear
// sub-buckets, so relative error is bounded by 2^-kSubBits (~6% at the
// default 4 sub-bucket bits).  This is the scheme of HdrHistogram, sized
// here for full uint64 range (cycles or nanoseconds -- the histogram is
// unit-agnostic; callers pick one and label the report).
//
// Thread model: a Histogram is a plain (non-atomic) value type.  Each
// thread records into its own shard and shards merge() after the run --
// mergeable per-thread shards instead of shared atomics, because latency
// recording sits on the measured path itself.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace msq::obs {

class Histogram {
 public:
  /// Linear sub-buckets per octave = 2^kSubBits.
  static constexpr unsigned kSubBits = 4;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  /// Values [0, kSubCount) get exact buckets; each of the remaining
  /// (64 - kSubBits) octaves contributes kSubCount sub-buckets.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits) * kSubCount + kSubCount;

  /// Bucket holding `v`.  Monotone in v; exact below kSubCount.
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t v) noexcept {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
    const unsigned shift = msb - kSubBits;  // >= 0 here
    const std::uint64_t top = v >> shift;   // in [kSubCount, 2*kSubCount)
    return static_cast<std::size_t>((shift + 1) * kSubCount +
                                    (top - kSubCount));
  }

  /// Smallest value mapping to bucket `i` (inverse of bucket_index).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(
      std::size_t i) noexcept {
    if (i < kSubCount) return static_cast<std::uint64_t>(i);
    const std::uint64_t shift = i / kSubCount - 1;
    const std::uint64_t top = kSubCount + i % kSubCount;
    return top << shift;
  }

  /// Largest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_ceil(
      std::size_t i) noexcept {
    return i + 1 < kBucketCount ? bucket_floor(i + 1) - 1 : ~0ull;
  }

  void record(std::uint64_t v) noexcept {
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = std::min(min_, v);
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return count_ == 0 ? 0 : max_;
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t i) const noexcept {
    return counts_[i];
  }

  /// Value at quantile `p` in [0, 100]: the upper bound of the bucket
  /// containing the p-th percentile sample, clamped to the observed max
  /// (so percentile(100) == max(), and the sub-bucket-exact region reports
  /// exact values).  0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    p = std::clamp(p, 0.0, 100.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p / 100.0 *
                                      static_cast<double>(count_) +
                                      0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i];
      if (seen >= rank) return std::min(bucket_ceil(i), max_);
    }
    return max_;
  }

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ull;
};

}  // namespace msq::obs
