// Open-loop scenario subsystem, part 4: SLO verdicts.
//
// A scenario run ends with a queueing-delay histogram and a shed count;
// an operator ends with a yes/no question: "did the system serve this
// traffic within its service-level objective?"  This header turns the
// former into the latter -- three machine-checkable clauses (p99 sojourn,
// p99.9 sojourn, shed rate) evaluated against per-preset targets, so a
// bench run, a CI job, or a regression diff can gate on `verdict ==
// "pass"` instead of a human eyeballing a table.
//
// The sojourn percentiles come from coordinated-omission-safe histograms
// (driver.hpp stamps ops with their SCHEDULED arrival), so a failing p99.9
// here means real users would have waited that long -- not merely that the
// loadgen slowed down with the system.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace msq::scenario {

/// Per-preset targets.  `shed_rate_max` is a fraction of OFFERED ops: a
/// preset that expects overload (the 100x burst into a bounded queue) sets
/// it non-zero to assert "backpressure engaged, but bounded"; a steady
/// preset sets 0 to assert "no drops at all".
struct SloSpec {
  std::uint64_t p99_ns_max = 0;   // 0 disables the clause
  std::uint64_t p999_ns_max = 0;  // 0 disables the clause
  double shed_rate_max = 0.0;
};

/// The evaluated verdict: each clause individually, plus the measured
/// values it was judged on (so reports never need to re-derive them).
struct SloVerdict {
  bool p99_ok = true;
  bool p999_ok = true;
  bool shed_ok = true;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  double shed_rate = 0.0;

  [[nodiscard]] bool pass() const noexcept {
    return p99_ok && p999_ok && shed_ok;
  }
  [[nodiscard]] const char* verdict() const noexcept {
    return pass() ? "pass" : "fail";
  }
};

/// Judge one run.  `offered` is the scheduled arrival count (enqueued +
/// shed); an empty histogram with offered == 0 passes vacuously.
[[nodiscard]] inline SloVerdict evaluate_slo(const SloSpec& spec,
                                             const obs::Histogram& sojourn_ns,
                                             std::uint64_t offered,
                                             std::uint64_t shed) noexcept {
  SloVerdict v;
  v.p99_ns = sojourn_ns.percentile(99.0);
  v.p999_ns = sojourn_ns.percentile(99.9);
  v.shed_rate = offered == 0 ? 0.0
                             : static_cast<double>(shed) /
                                   static_cast<double>(offered);
  if (spec.p99_ns_max > 0) v.p99_ok = v.p99_ns <= spec.p99_ns_max;
  if (spec.p999_ns_max > 0) v.p999_ok = v.p999_ns <= spec.p999_ns_max;
  v.shed_ok = v.shed_rate <= spec.shed_rate_max;
  return v;
}

}  // namespace msq::scenario
