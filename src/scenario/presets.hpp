// Open-loop scenario subsystem, part 5: the scenario presets.
//
// Each preset is a named, reproducible traffic pattern + the SLO it is
// judged against.  The set covers the ROADMAP item 5 checklist:
//
//   steady     stationary Poisson at a comfortable utilisation -- the
//              baseline every family should pass with zero shed
//   ramp       compressed diurnal curve (trough -> peak -> trough): does
//              the tail hold through a 9x swing in offered load?
//   burst100   flash crowd: 100x the base rate for 10% of the run into a
//              SMALL capacity.  This preset exists to drive bounded queues
//              into backpressure -- its SLO tolerates (bounded) shedding,
//              and the bench asserts shed_rate > 0 on the ring family
//   hotskew    90% of traffic from one producer: per-producer pacing with
//              a single hot arrival stream (the sharded front end's
//              re-homing story under open-loop load)
//   worksteal  skewed producers, consumer-heavy: most items arrive where
//              most consumers are NOT, so dequeue-side stealing (today:
//              ShardedQueue's sticky steal sweep; future: a
//              Sundell-Tsigas single-word-CAS deque per consumer, see
//              PAPERS.md) is what keeps the tail flat
//
// Rates are tuned for the repo's single-core CI host: total offered load
// stays in the tens of kHz so the pacing loop, producers, and consumers
// can share one core without the scheduler becoming the experiment
// (docs/ALGORITHMS.md "Open-loop vs closed-loop" carries the caveat).
// `rate_scale` scales every base rate for bigger hosts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/arrival.hpp"
#include "scenario/driver.hpp"
#include "scenario/slo.hpp"

namespace msq::scenario {

struct ScenarioPreset {
  std::string name;
  ArrivalSpec arrival;
  std::uint32_t consumers = 1;
  ShedPolicy shed;
  double service_us = 0;      // consumer work per item (spin-calibrated)
  std::uint32_t capacity = 0; // in-flight bound handed to the queue ctor
  SloSpec slo;
  std::string note;
};

/// The built-in suite.  `ops` is the offered-arrival count per run (the
/// virtual horizon scales with it, so shapes are size-invariant);
/// `rate_scale` multiplies every base rate.
[[nodiscard]] inline std::vector<ScenarioPreset> builtin_presets(
    std::uint64_t ops, double rate_scale = 1.0) {
  std::vector<ScenarioPreset> presets;

  {
    ScenarioPreset p;
    p.name = "steady";
    p.arrival.ops = ops;
    p.arrival.base_rate_hz = 20'000 * rate_scale;
    p.arrival.shape = RateShape::kSteady;
    p.arrival.producers = 2;
    p.consumers = 2;
    p.service_us = 2.0;
    p.capacity = 4096;
    p.slo = {.p99_ns_max = 20'000'000,    // 20 ms
             .p999_ns_max = 60'000'000,   // 60 ms
             .shed_rate_max = 0.0};
    p.note = "stationary Poisson baseline; zero shed tolerated";
    presets.push_back(p);
  }
  {
    ScenarioPreset p;
    p.name = "ramp";
    p.arrival.ops = ops;
    p.arrival.base_rate_hz = 15'000 * rate_scale;
    p.arrival.shape = RateShape::kDiurnal;
    p.arrival.diurnal_amplitude = 0.8;  // trough 3 kHz, peak 27 kHz
    p.arrival.producers = 2;
    p.consumers = 2;
    p.service_us = 2.0;
    p.capacity = 4096;
    p.slo = {.p99_ns_max = 30'000'000,
             .p999_ns_max = 80'000'000,
             .shed_rate_max = 0.0};
    p.note = "compressed diurnal curve; tail judged across the 9x swing";
    presets.push_back(p);
  }
  {
    ScenarioPreset p;
    p.name = "burst100";
    p.arrival.ops = ops;
    p.arrival.base_rate_hz = 1'500 * rate_scale;
    p.arrival.shape = RateShape::kBurst;
    p.arrival.burst_factor = 100.0;  // 150 kHz inside the window
    p.arrival.burst_start_frac = 0.45;
    p.arrival.burst_len_frac = 0.10;
    p.arrival.producers = 2;
    p.consumers = 1;
    p.shed.max_retries = 2;  // tiny budget: shed, don't stall the pacer
    p.service_us = 25.0;     // consumer tops out ~40 kHz << burst rate
    p.capacity = 32;         // the bound the flash crowd slams into
    p.slo = {.p99_ns_max = 250'000'000,
             .p999_ns_max = 600'000'000,
             .shed_rate_max = 0.60};  // bounded shedding IS the objective
    p.note = "flash crowd into a small bound; backpressure must engage "
             "(shed_rate > 0 on bounded families) without deadlock";
    presets.push_back(p);
  }
  {
    ScenarioPreset p;
    p.name = "hotskew";
    p.arrival.ops = ops;
    p.arrival.base_rate_hz = 20'000 * rate_scale;
    p.arrival.shape = RateShape::kSteady;
    p.arrival.producers = 4;
    p.arrival.hot_share = 0.9;  // one producer carries 90% of the traffic
    p.consumers = 2;
    p.service_us = 2.0;
    p.capacity = 4096;
    p.slo = {.p99_ns_max = 30'000'000,
             .p999_ns_max = 80'000'000,
             .shed_rate_max = 0.0};
    p.note = "90% of arrivals from producer 0; exercises per-producer "
             "pacing and (sharded) re-homing under open-loop load";
    presets.push_back(p);
  }
  {
    ScenarioPreset p;
    p.name = "worksteal";
    p.arrival.ops = ops;
    p.arrival.base_rate_hz = 25'000 * rate_scale;
    p.arrival.shape = RateShape::kSteady;
    p.arrival.producers = 4;
    p.arrival.hot_share = 0.75;
    p.consumers = 4;
    p.service_us = 1.0;
    p.capacity = 4096;
    p.slo = {.p99_ns_max = 30'000'000,
             .p999_ns_max = 80'000'000,
             .shed_rate_max = 0.0};
    p.note = "skewed producers, consumer-heavy: dequeue-side stealing "
             "carries the load (shard_steal on shard4; grounds a future "
             "Sundell-Tsigas per-consumer deque, PAPERS.md)";
    presets.push_back(p);
  }
  return presets;
}

}  // namespace msq::scenario
