// Open-loop scenario subsystem, part 3: the shared CLOSED-loop stamped
// runner.
//
// Two figure benches (fig_stall, fig_sharded) need the paper's section 4
// pair loop *with item sojourn measurement*: every enqueued value is the
// submitting thread's timestamp, and the dequeuing thread records
// (now - stamp) -- the item's time in (and around) the queue.  Before this
// header each bench carried its own copy of the stamping loop; they now
// share this one, and it lives next to the open-loop driver because the
// stamp/sojourn convention must be identical everywhere sojourn figures
// are compared (same clock, same encoding: the raw steady-clock ns as the
// queue value).
//
// Run shape (inherited from fig_stall, where it is load-bearing): every
// thread keeps doing pairs until EVERY thread has reached its quota.  A
// fixed per-thread quota would let fast threads exit early and leave a
// stall-victim running helper-less -- silently converting a multi-thread
// point into the lone-thread case.  Threads past their quota keep
// operating (their extra pairs are counted); the run ends when the last
// thread arrives.
//
// This is still a CLOSED loop -- each thread submits its next pair when
// the previous one returns, so sojourn here answers "how long do items
// wait when the offered load tracks capacity", not the open-loop question
// (driver.hpp answers that one).  docs/ALGORITHMS.md "Open-loop vs
// closed-loop" spells out the difference.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "harness/driver.hpp"
#include "obs/histogram.hpp"
#include "obs/probe.hpp"
#include "port/clock.hpp"
#include "port/spin_work.hpp"
#include "queues/queue_concept.hpp"

namespace msq::scenario {

struct StampedLoopConfig {
  std::uint32_t threads = 2;
  std::uint64_t pairs = 100'000;    // total across all threads
  std::uint64_t think_iters = 0;    // spin_work between ops (paper's ~6us)
  bool pin_threads = false;
};

struct StampedLoopResult {
  double elapsed_seconds = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t empty_dequeues = 0;    // dequeue retries on observed-empty
  std::uint64_t enqueue_failures = 0;  // enqueue retries on refusal
  std::uint64_t injected_stall_ns = 0;  // fault-layer sleep delivered
  obs::Histogram sojourn_ns;  // submit stamp -> dequeue, merged shards
};

/// The paper's paired loop with items carrying their submission stamp and
/// the dequeue side retrying until it lands an item (conservation makes an
/// item always eventually available: at any block point the blocked thread
/// has one more enqueue than dequeue in flight).  The caller owns fault
/// plans and watchdogs; injected stall time is accounted per thread via
/// fault::injected_stall_ns() and summed.
template <queues::ConcurrentQueue Q>
StampedLoopResult run_stamped_pairs(Q& queue,
                                    const StampedLoopConfig& config) {
  const std::uint32_t threads = config.threads;

  struct Shard {
    obs::Histogram sojourn_ns;
    std::uint64_t enq = 0, deq = 0, empty = 0, fail = 0, injected = 0;
  };
  std::vector<Shard> shards(threads);
  std::barrier start_barrier(static_cast<std::ptrdiff_t>(threads) + 1);
  // share-ok: run-termination handshake, touched once per pair
  std::atomic<std::uint32_t> at_quota{0};
  std::atomic<bool> stop{false};  // share-ok: ^

  auto worker = [&](std::uint32_t t) {
    Shard& shard = shards[t];
    const std::uint64_t quota =
        config.pairs / threads + (t < config.pairs % threads ? 1 : 0);
    std::uint64_t done = 0;
    bool counted = false;
    const std::uint64_t injected_before = fault::injected_stall_ns();
    if (config.pin_threads) harness::pin_current_thread(t);
    start_barrier.arrive_and_wait();
    // relaxed: the stop flag carries no data; pair results are merged
    // only after the join
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t stamp = static_cast<std::uint64_t>(port::now_ns());
      while (!queue.try_enqueue(stamp)) {
        // fault-cover: benchmark-driver backpressure accounting, not an
        // algorithm window; injecting here would measure the driver
        MSQ_PROBE("bench.enq_retry");
        ++shard.fail;
        std::this_thread::yield();  // single-core host: spinning starves
      }
      ++shard.enq;
      port::spin_work(config.think_iters);  // "other work"
      std::uint64_t out = 0;
      while (!queue.try_dequeue(out)) {
        // fault-cover: same driver-loop exemption as bench.enq_retry
        MSQ_PROBE("bench.deq_retry");
        ++shard.empty;
        std::this_thread::yield();
      }
      ++shard.deq;
      shard.sojourn_ns.record(static_cast<std::uint64_t>(port::now_ns()) -
                              out);
      port::spin_work(config.think_iters);  // "other work", and repeat
      if (!counted && ++done >= quota) {
        counted = true;
        // acq_rel: the last thread to reach quota must observe every
        // earlier arrival before declaring the run over
        if (at_quota.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            threads) {
          // relaxed: see the load above
          stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    shard.injected = fault::injected_stall_ns() - injected_before;
  };

  StampedLoopResult result;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back(worker, t);
    }
    start_barrier.arrive_and_wait();
    const std::int64_t t0 = port::now_ns();
    workers.clear();  // join all
    result.elapsed_seconds = port::ns_to_seconds(port::now_ns() - t0);
  }

  for (const Shard& shard : shards) {
    result.sojourn_ns.merge(shard.sojourn_ns);
    result.enqueues += shard.enq;
    result.dequeues += shard.deq;
    result.empty_dequeues += shard.empty;
    result.enqueue_failures += shard.fail;
    result.injected_stall_ns += shard.injected;
  }
  return result;
}

}  // namespace msq::scenario
