// Open-loop scenario subsystem, part 1: virtual-time arrival schedules.
//
// Every bench in bench/fig_*.cpp is CLOSED-loop in the paper's section 4
// style: each thread issues its next operation the instant the previous
// one returns, so the offered load automatically slows down whenever the
// queue does.  Real services are OPEN-loop -- users do not politely stop
// clicking because the backend got slow -- and measuring an open-loop
// system with closed-loop timestamps is the classic coordinated-omission
// mistake: the slow periods generate fewer samples exactly when latency is
// worst.
//
// This header generates the arrival side of an open-loop run entirely in
// VIRTUAL time, before any thread starts: a deterministic (seeded) Poisson
// process whose instantaneous rate follows one of three shapes --
//
//   kSteady    r(t) = base                       (stationary Poisson)
//   kDiurnal   r(t) = base * (1 + A*sin(2*pi*t/T - pi/2))
//                                                 (a compressed "day":
//                                                  trough, peak, trough)
//   kBurst     r(t) = base, except burst_factor * base inside the window
//              [burst_start, burst_start + burst_len)   (flash crowd)
//
// -- with each arrival assigned to a producer either uniformly or with a
// hot-producer skew (producer 0 receives `hot_share` of the traffic).
//
// The schedule is materialised up front (per-producer sorted offsets, in
// nanoseconds from run start) so that (a) generation is single-threaded
// and deterministic given a seed, (b) the driver's producers never
// coordinate at run time, and (c) tests can inspect the exact schedule a
// run will offer.  Each op's INTENDED arrival time is its identity: the
// driver stamps the op with the scheduled time even when it submits late,
// which is what makes the sojourn histograms coordinated-omission-safe
// (see driver.hpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "port/prng.hpp"

namespace msq::scenario {

enum class RateShape { kSteady, kDiurnal, kBurst };

[[nodiscard]] constexpr const char* rate_shape_name(RateShape s) noexcept {
  switch (s) {
    case RateShape::kSteady:  return "steady";
    case RateShape::kDiurnal: return "diurnal";
    case RateShape::kBurst:   return "burst";
  }
  return "?";
}

/// Parameters of one arrival process.  Fractions are of the nominal run
/// horizon (ops / mean rate), so the same shape scales from a smoke run to
/// a long sweep without retuning.
struct ArrivalSpec {
  std::uint64_t ops = 10'000;     // total offered operations
  double base_rate_hz = 25'000;   // off-peak arrival rate
  RateShape shape = RateShape::kSteady;
  double diurnal_amplitude = 0.75;  // kDiurnal: peak = base*(1+A), trough
                                    // = base*(1-A); A in [0, 1)
  double burst_factor = 100.0;      // kBurst: rate multiplier in-window
  double burst_start_frac = 0.45;   // kBurst: window start, fraction of T
  double burst_len_frac = 0.10;     // kBurst: window length, fraction of T
  std::uint32_t producers = 2;
  double hot_share = 0.0;  // 0 = uniform producer choice; else the
                           // probability that producer 0 owns an arrival
                           // (remaining mass uniform over producers 1..P-1)
};

/// Mean rate over one nominal horizon (exact for the three shapes: the
/// diurnal sine integrates to zero over a full period).
[[nodiscard]] inline double mean_rate_hz(const ArrivalSpec& spec) noexcept {
  if (spec.shape == RateShape::kBurst) {
    return spec.base_rate_hz *
           (1.0 + (spec.burst_factor - 1.0) * spec.burst_len_frac);
  }
  return spec.base_rate_hz;
}

/// Nominal horizon: the virtual duration over which `ops` arrivals are
/// expected.  Shape fractions (burst window, diurnal period) refer to it.
[[nodiscard]] inline double nominal_horizon_seconds(
    const ArrivalSpec& spec) noexcept {
  return static_cast<double>(spec.ops) / mean_rate_hz(spec);
}

/// Instantaneous rate r(t) at `t` seconds into the run.  Beyond the
/// nominal horizon (the Poisson tail when the draw ran long) the shape is
/// held at its final value so generation always terminates.
[[nodiscard]] inline double rate_at_hz(const ArrivalSpec& spec,
                                       double t_seconds) noexcept {
  const double horizon = nominal_horizon_seconds(spec);
  const double t = t_seconds < horizon ? t_seconds : horizon;
  switch (spec.shape) {
    case RateShape::kSteady:
      return spec.base_rate_hz;
    case RateShape::kDiurnal: {
      constexpr double kPi = 3.14159265358979323846;
      const double phase = 2.0 * kPi * t / horizon - kPi / 2.0;
      return spec.base_rate_hz *
             (1.0 + spec.diurnal_amplitude * std::sin(phase));
    }
    case RateShape::kBurst: {
      const double start = spec.burst_start_frac * horizon;
      const double end = start + spec.burst_len_frac * horizon;
      return (t >= start && t < end) ? spec.base_rate_hz * spec.burst_factor
                                     : spec.base_rate_hz;
    }
  }
  return spec.base_rate_hz;
}

/// The materialised schedule: per-producer arrival offsets (ns from run
/// start), each producer's list sorted ascending.
struct ArrivalSchedule {
  std::vector<std::vector<std::uint64_t>> per_producer;
  std::uint64_t ops = 0;         // sum of the per-producer list sizes
  std::uint64_t horizon_ns = 0;  // last arrival offset actually drawn
  double offered_rate_hz = 0;    // ops / max(horizon, nominal horizon)
};

/// Draw the schedule.  Deterministic given (spec, seed).  Inhomogeneous
/// Poisson via per-arrival rate lookup: the next inter-arrival gap is
/// Exp(1) / r(t), which is exact for piecewise-constant shapes up to the
/// gap straddling a boundary -- plenty for benchmark traffic.
[[nodiscard]] inline ArrivalSchedule generate_arrivals(
    const ArrivalSpec& spec, std::uint64_t seed) {
  ArrivalSchedule schedule;
  schedule.per_producer.resize(spec.producers);
  port::Xoshiro256 rng(seed);
  const double inv_2_64 = 1.0 / 18446744073709551616.0;  // 2^-64

  double t = 0;  // virtual seconds
  for (std::uint64_t i = 0; i < spec.ops; ++i) {
    // u in (0, 1]: never 0, so -log(u) is finite.
    const double u =
        (static_cast<double>(rng()) + 1.0) * inv_2_64;
    const double rate = rate_at_hz(spec, t);
    t += -std::log(u) / rate;

    std::uint32_t producer = 0;
    if (spec.producers > 1) {
      const double v = static_cast<double>(rng()) * inv_2_64;
      if (spec.hot_share > 0) {
        producer = v < spec.hot_share
                       ? 0
                       : 1 + static_cast<std::uint32_t>(
                                 rng() % (spec.producers - 1));
      } else {
        producer = static_cast<std::uint32_t>(rng() % spec.producers);
      }
    }
    const auto offset_ns = static_cast<std::uint64_t>(t * 1e9);
    schedule.per_producer[producer].push_back(offset_ns);
    schedule.horizon_ns = offset_ns;
  }
  schedule.ops = spec.ops;
  const double horizon_s =
      std::max(static_cast<double>(schedule.horizon_ns) * 1e-9,
               nominal_horizon_seconds(spec));
  schedule.offered_rate_hz =
      horizon_s > 0 ? static_cast<double>(spec.ops) / horizon_s : 0;
  return schedule;
}

}  // namespace msq::scenario
