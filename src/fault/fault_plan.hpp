// Real-thread fault injection: a FaultPlan arms delay/halt rules against
// labelled CAS/lock sites inside the queue implementations.
//
// The queues are instrumented with fault::point("site") calls at the same
// pseudo-code windows the simulator labels with co_await p.at(...) -- after
// a successful E9 link but before the E13 tail swing, inside a lock-held
// critical section, between MC's fetch_and_store and its link write.  When
// no plan is armed, point() is a single relaxed atomic load and the queues
// behave exactly as before; the hook is injected the same way the Backoff
// policies are -- a seam the hot path pays (nearly) nothing for.
//
// Two actions:
//  * delay: the calling thread yields N times at the site -- an adversarial
//    scheduler squeezing the window open (the paper's "processes ... delayed");
//  * halt: the calling thread parks on a condition variable at the site --
//    crash-stop for real threads ("processes ... halted").  A halted thread
//    cannot be destroyed, so tests release_halted() before joining; the
//    point is what the OTHER threads manage to do meanwhile.
//
// Tests-only machinery: rules are fixed while armed, and every slow-path
// interaction takes one mutex (fine under test loads, unacceptable in a
// benchmark -- which is why benches simply never arm a plan).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

// Shared probe gate (see src/obs/counters.hpp and the MSQ_PROBES CMake
// option): when 0, point() is a constexpr no-op and the FaultPlan class
// stays compilable but inert -- Release figure runs pay nothing at all.
#ifndef MSQ_PROBES
#define MSQ_PROBES 1
#endif

namespace msq::fault {

class FaultPlan;

namespace detail {
// share-ok: armed/disarmed a handful of times per test; never contended
inline std::atomic<FaultPlan*> g_active_plan{nullptr};
}  // namespace detail

class FaultPlan {
 public:
  enum class Action : std::uint8_t { kDelay, kHalt };

  struct Rule {
    const char* site;
    Action action;
    std::uint64_t skip;          // ignore the first `skip` hits of the site
    std::uint64_t delay_yields;  // kDelay: how many sched yields per hit
    std::uint32_t max_victims;   // kHalt: how many threads to park, total
  };

  FaultPlan() = default;
  ~FaultPlan() {
    disarm();
    release_halted();
    // A well-behaved test joins its threads before the plan dies; waiting
    // here for parked_ to drain would deadlock against a test that already
    // failed, so we only wake everyone and trust join-before-destroy.
  }

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Every hit of `site` after the first `skip` yields `yields` times.
  FaultPlan& delay_at(const char* site, std::uint64_t yields,
                      std::uint64_t skip = 0) {
    rules_.push_back({{site, Action::kDelay, skip, yields, 0}, 0});
    return *this;
  }

  /// The first `victims` threads to hit `site` (after `skip` earlier hits)
  /// park forever -- crash-stop -- until release_halted().
  FaultPlan& halt_at(const char* site, std::uint64_t skip = 0,
                     std::uint32_t victims = 1) {
    rules_.push_back({{site, Action::kHalt, skip, 0, victims}, 0});
    return *this;
  }

  /// Install as the process-wide active plan.  One plan at a time.
  void arm() noexcept {
    detail::g_active_plan.store(this, std::memory_order_release);
  }
  /// Uninstall (idempotent; only if this plan is the active one).
  void disarm() noexcept {
    FaultPlan* expected = this;
    detail::g_active_plan.compare_exchange_strong(expected, nullptr,
                                                  std::memory_order_acq_rel);
  }

  /// Wake every parked thread and let all future halts pass through.
  void release_halted() {
    {
      std::scoped_lock lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

  /// Total times `site` was reached while this plan was armed.
  [[nodiscard]] std::uint64_t hits(const char* site) const {
    std::scoped_lock lock(mutex_);
    for (const auto& c : counters_) {
      if (std::string_view(c.site) == site) return c.hits;
    }
    return 0;
  }

  /// Threads parked at halt sites right now.
  [[nodiscard]] std::uint32_t halted_now() const {
    std::scoped_lock lock(mutex_);
    return parked_;
  }

  /// Block until at least `n` threads are parked (the victim really crashed
  /// before the test starts measuring survivor progress).
  void wait_for_halted(std::uint32_t n) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return parked_ >= n || released_; });
  }

  /// Slow path of fault::point().  noexcept: the queues call it from
  /// noexcept operations; a mutex failure here is fatal anyway.
  void on_point(const char* site) noexcept {
    std::uint64_t yields = 0;
    bool park = false;
    {
      std::scoped_lock lock(mutex_);
      const std::uint64_t hit = bump(site);
      for (auto& rule : rules_) {
        if (std::string_view(rule.site) != site) continue;
        if (hit <= rule.skip) continue;
        if (rule.action == Action::kDelay) {
          yields += rule.delay_yields;
        } else if (!released_ && rule.victims_taken < rule.max_victims) {
          ++rule.victims_taken;
          park = true;
        }
      }
    }
    if (park) {
      std::unique_lock lock(mutex_);
      ++parked_;
      cv_.notify_all();  // wake wait_for_halted() observers
      cv_.wait(lock, [&] { return released_; });
      --parked_;
    }
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }

 private:
  struct RuleState : Rule {
    std::uint32_t victims_taken = 0;
  };
  struct Counter {
    const char* site;
    std::uint64_t hits = 0;
  };

  // Returns the 1-based hit number of this visit.  Caller holds mutex_.
  std::uint64_t bump(const char* site) {
    for (auto& c : counters_) {
      if (std::string_view(c.site) == site) return ++c.hits;
    }
    counters_.push_back({site, 1});
    return 1;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<RuleState> rules_;
  std::vector<Counter> counters_;
  bool released_ = false;
  std::uint32_t parked_ = 0;
};

/// The instrumentation hook: compiled into the queues at labelled sites.
/// No plan armed (the default, and all benchmarks): one relaxed load.
/// MSQ_PROBES=0: constexpr no-op -- the constexpr-ness doubles as the
/// compile-time proof that the disabled hook contains no atomic load
/// (tests/probes_off_test.cpp).
#if MSQ_PROBES
inline void point(const char* site) noexcept {
  FaultPlan* plan = detail::g_active_plan.load(std::memory_order_acquire);
  if (plan != nullptr) [[unlikely]] {
    plan->on_point(site);
  }
}
#else
constexpr void point(const char* /*site*/) noexcept {}
#endif

}  // namespace msq::fault
