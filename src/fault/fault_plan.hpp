// Real-thread fault injection: a FaultPlan arms delay/stall/halt rules
// against labelled CAS/lock sites inside the queue implementations.
//
// The queues are instrumented with fault::point("site") calls at the same
// pseudo-code windows the simulator labels with co_await p.at(...) -- after
// a successful E9 link but before the E13 tail swing, inside a lock-held
// critical section, between MC's fetch_and_store and its link write.  When
// no plan is armed, point() is a single relaxed atomic load and the queues
// behave exactly as before; the hook is injected the same way the Backoff
// policies are -- a seam the hot path pays (nearly) nothing for.
//
// Three actions:
//  * delay: the calling thread yields N times at the site -- an adversarial
//    scheduler squeezing the window open (the paper's "processes ... delayed");
//  * stall: ONE sticky victim thread (the first to hit the site, bound for
//    the plan's lifetime) sleeps a fixed duration on every subsequent hit --
//    a de-scheduled or page-faulting thread, the tail-latency scenario
//    bench/fig_stall.cpp measures.  The injected time is accounted per
//    thread (injected_stall_ns()) so benchmarks can separate the stall
//    itself from the damage it causes;
//  * halt: the calling thread parks on a condition variable at the site --
//    crash-stop for real threads ("processes ... halted").  A halted thread
//    cannot be destroyed, so tests release_halted() before joining; the
//    point is what the OTHER threads manage to do meanwhile.
//
// Rules are FIXED while armed (build the plan, then arm), which is what
// lets the armed hit path run lock-free: rule matching, hit counting,
// delay and stall all touch only atomics, so a benchmark can arm a stall
// plan without the instrumentation serialising its measured threads.  Only
// halt parking takes the mutex -- a parked thread is off the clock anyway.
//
// Every armed hit also drops a per-thread breadcrumb (last labelled site
// touched); Watchdog dumps them on timeout, so a starvation hang in CI
// names the site each stuck thread last passed (dump_breadcrumbs_stderr).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

// Shared probe gate (see src/obs/counters.hpp and the MSQ_PROBES CMake
// option): when 0, point() is a constexpr no-op and the FaultPlan class
// stays compilable but inert -- Release figure runs pay nothing at all.
#ifndef MSQ_PROBES
#define MSQ_PROBES 1
#endif

namespace msq::fault {

class FaultPlan;

namespace detail {
// share-ok: armed/disarmed a handful of times per test; never contended
inline std::atomic<FaultPlan*> g_active_plan{nullptr};

/// Small process-wide thread ordinal (same idiom as mem::detail::
/// thread_hint, duplicated so src/fault does not depend on src/mem).
inline std::uint32_t thread_id() noexcept {
  // share-ok: touched once per thread lifetime (ordinal assignment)
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      // relaxed: a pure ordinal draw; nothing is published through it
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Timed-stall nanoseconds injected into the calling thread so far.
inline std::uint64_t& injected_ns_ref() noexcept {
  thread_local std::uint64_t ns = 0;
  return ns;
}
}  // namespace detail

/// Nanoseconds of kStall sleep this thread has absorbed (monotone).
/// Benchmarks subtract deltas of this from raw op latency to report the
/// EXCESS latency a stall causes beyond the injected sleep itself.
[[nodiscard]] inline std::uint64_t injected_stall_ns() noexcept {
  return detail::injected_ns_ref();
}

// ---------------------------------------------------------------------------
// Breadcrumbs: the last labelled fault site each thread touched while a
// plan was armed.  Unarmed probes do NOT update them (they stay one relaxed
// load) -- the hangs worth diagnosing from CI logs are fault-injection
// tests, which always have a plan armed.
inline constexpr std::uint32_t kBreadcrumbSlots = 64;

struct Breadcrumb {
  // share-ok: slot is owned by one thread (ordinal % kBreadcrumbSlots);
  // collisions just overwrite, which is fine for a diagnostic of record
  std::atomic<const char*> site{nullptr};
  // share-ok: written with the site above, same single-writer argument
  std::atomic<std::uint32_t> tid{0};
};

namespace detail {
inline std::array<Breadcrumb, kBreadcrumbSlots>& breadcrumbs() noexcept {
  static std::array<Breadcrumb, kBreadcrumbSlots> crumbs{};
  return crumbs;
}

inline void leave_breadcrumb(const char* site) noexcept {
  Breadcrumb& b = breadcrumbs()[thread_id() % kBreadcrumbSlots];
  // relaxed: diagnostic of record only, read after the fact by the
  // watchdog; no data is published through it
  b.tid.store(thread_id(), std::memory_order_relaxed);
  // relaxed: same argument as the tid store above
  b.site.store(site, std::memory_order_relaxed);
}
}  // namespace detail

/// One line per thread that touched an armed fault site: which site it
/// last passed.  Called by Watchdog::run() on timeout so a starvation
/// hang names its suspects.
inline void dump_breadcrumbs_stderr() {
  std::fprintf(stderr, "[fault] last armed site per thread:\n");
  bool any = false;
  for (const Breadcrumb& b : detail::breadcrumbs()) {
    // relaxed: diagnostic read; pairs with the relaxed breadcrumb stores
    const char* site = b.site.load(std::memory_order_relaxed);
    if (site == nullptr) continue;
    any = true;
    std::fprintf(stderr, "[fault]   thread #%u: %s\n",
                 // relaxed: same diagnostic argument
                 b.tid.load(std::memory_order_relaxed), site);
  }
  if (!any) {
    std::fprintf(stderr,
                 "[fault]   (none -- no armed fault site was reached)\n");
  }
}

class FaultPlan {
 public:
  enum class Action : std::uint8_t { kDelay, kStall, kHalt };

  static constexpr std::uint32_t kUnbound = 0xffffffffu;

  struct Rule {
    const char* site;
    Action action;
    std::uint64_t skip;          // ignore the first `skip` hits of the site
    std::uint64_t delay_yields;  // kDelay: how many sched yields per hit
    std::uint32_t max_victims;   // kHalt: how many threads to park, total
    std::uint64_t stall_ns;      // kStall: sleep per hit of the bound victim
    std::uint64_t stall_every;   // kStall: sleep on every Nth victim hit
  };

  FaultPlan() = default;
  ~FaultPlan() {
    disarm();
    release_halted();
    // A well-behaved test joins its threads before the plan dies; waiting
    // here for parked_ to drain would deadlock against a test that already
    // failed, so we only wake everyone and trust join-before-destroy.
  }

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Every hit of `site` after the first `skip` yields `yields` times.
  FaultPlan& delay_at(const char* site, std::uint64_t yields,
                      std::uint64_t skip = 0) {
    rules_.push_back(
        {{site, Action::kDelay, skip, yields, 0, 0, 0}, 0, kUnbound, 0});
    return *this;
  }

  /// The first thread to hit `site` after `skip` earlier hits becomes the
  /// rule's sticky victim; its binding hit and every `every`th victim hit
  /// after it sleeps `stall` -- the repeatedly-descheduled thread of the
  /// tail-latency experiments.  Other threads pass free.
  ///
  /// `every` = 1 (default) sleeps on EVERY victim hit.  Against a site
  /// inside a read-validate-CAS retry loop (ms.E9) that is unbounded
  /// starvation, not a latency experiment: each sleep guarantees a peer
  /// invalidated the read, so the victim re-enters the loop, is stalled
  /// again, and NEVER completes while any peer keeps operating -- real
  /// (lock-free, not wait-free), but the run cannot terminate.  Pass
  /// `every` = 2 to sleep on alternate hits so each victim operation
  /// absorbs ~one stall and still finishes (bench/fig_stall.cpp).
  FaultPlan& stall_at(const char* site, std::chrono::nanoseconds stall,
                      std::uint64_t skip = 0, std::uint64_t every = 1) {
    rules_.push_back({{site, Action::kStall, skip, 0, 0,
                       static_cast<std::uint64_t>(stall.count()),
                       every == 0 ? 1 : every},
                      0,
                      kUnbound,
                      0});
    return *this;
  }

  /// The first `victims` threads to hit `site` (after `skip` earlier hits)
  /// park forever -- crash-stop -- until release_halted().
  FaultPlan& halt_at(const char* site, std::uint64_t skip = 0,
                     std::uint32_t victims = 1) {
    rules_.push_back(
        {{site, Action::kHalt, skip, 0, victims, 0, 0}, 0, kUnbound, 0});
    return *this;
  }

  /// Install as the process-wide active plan.  One plan at a time; the
  /// rule list must not change while armed (that contract is what makes
  /// the hit path below lock-free).
  void arm() noexcept {
    detail::g_active_plan.store(this, std::memory_order_release);
  }
  /// Uninstall (idempotent; only if this plan is the active one).
  void disarm() noexcept {
    FaultPlan* expected = this;
    detail::g_active_plan.compare_exchange_strong(expected, nullptr,
                                                  std::memory_order_acq_rel);
  }

  /// Wake every parked thread and let all future halts pass through.
  void release_halted() {
    {
      std::scoped_lock lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

  /// Total times `site` was reached while this plan was armed.
  [[nodiscard]] std::uint64_t hits(const char* site) const noexcept {
    for (const SiteCounter& c : counters_) {
      // acquire: pairs with the claim CAS in bump(); a claimed slot's name
      // must be visible before its count is attributed
      const char* s = c.site.load(std::memory_order_acquire);
      if (s == nullptr) break;
      // relaxed: monotone count read after the fact by test assertions
      if (std::string_view(s) == site)
        return c.hits.load(std::memory_order_relaxed);
    }
    return 0;
  }

  /// Threads parked at halt sites right now.
  [[nodiscard]] std::uint32_t halted_now() const {
    std::scoped_lock lock(mutex_);
    return parked_;
  }

  /// Block until at least `n` threads are parked (the victim really crashed
  /// before the test starts measuring survivor progress).
  void wait_for_halted(std::uint32_t n) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return parked_ >= n || released_; });
  }

  /// Slow path of fault::point().  noexcept: the queues call it from
  /// noexcept operations; an allocation/lock failure here is fatal anyway.
  /// Lock-free for delay and stall rules; only halt parking locks.
  void on_point(const char* site) noexcept {
    detail::leave_breadcrumb(site);
    const std::uint64_t hit = bump(site);
    std::uint64_t yields = 0;
    std::uint64_t stall_ns = 0;
    bool park = false;
    for (RuleState& rule : rules_) {
      if (std::string_view(rule.site) != site) continue;
      if (hit <= rule.skip) continue;
      switch (rule.action) {
        case Action::kDelay:
          yields += rule.delay_yields;
          break;
        case Action::kStall: {
          // Sticky binding: the first eligible hitter takes the rule for
          // the plan's lifetime; everyone else passes free.
          std::atomic_ref<std::uint32_t> victim(rule.victim);
          std::uint32_t bound = victim.load(std::memory_order_acquire);
          if (bound == kUnbound) {
            std::uint32_t expected = kUnbound;
            victim.compare_exchange_strong(expected, detail::thread_id(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
            bound = victim.load(std::memory_order_acquire);
          }
          if (bound == detail::thread_id()) {
            // Only the bound victim ever touches its hit counter, so the
            // atomic_ref is for formal data-race freedom, not contention.
            std::atomic_ref<std::uint64_t> hits(rule.victim_hits);
            // relaxed: single writer, single reader (this thread)
            const std::uint64_t n =
                hits.fetch_add(1, std::memory_order_relaxed);
            if (n % rule.stall_every == 0) stall_ns += rule.stall_ns;
          }
          break;
        }
        case Action::kHalt: {
          std::scoped_lock lock(mutex_);
          if (!released_ && rule.victims_taken < rule.max_victims) {
            ++rule.victims_taken;
            park = true;
          }
          break;
        }
      }
    }
    if (park) {
      std::unique_lock lock(mutex_);
      ++parked_;
      cv_.notify_all();  // wake wait_for_halted() observers
      cv_.wait(lock, [&] { return released_; });
      --parked_;
    }
    if (stall_ns > 0) {
      // A sleeping victim yields the CPU (essential on a 1-core host: a
      // busy-spin "stall" would starve the very survivors being measured).
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_ns));
      detail::injected_ns_ref() += stall_ns;
    }
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }

 private:
  struct RuleState : Rule {
    std::uint32_t victims_taken = 0;  // kHalt bookkeeping; guarded by mutex_
    // kStall victim binding; accessed via std::atomic_ref (plain storage
    // keeps RuleState copyable for the builder-time vector)
    std::uint32_t victim = kUnbound;
    // kStall: hits the bound victim has taken (drives `stall_every`);
    // written only by the victim, via std::atomic_ref as above
    std::uint64_t victim_hits = 0;
  };

  /// Lock-free per-site hit counters: a fixed pool of slots claimed by
  /// CAS on first touch.  Sites are compile-time literals, so the scan
  /// compares a handful of interned strings.
  static constexpr std::size_t kMaxSites = 64;
  struct SiteCounter {
    // share-ok: test bookkeeping, deliberately dense; contention on a hit
    // counter costs nothing the tests measure
    std::atomic<const char*> site{nullptr};
    // share-ok: same argument as the site pointer above
    std::atomic<std::uint64_t> hits{0};
  };

  /// Returns the 1-based hit number of this visit of `site`.
  std::uint64_t bump(const char* site) noexcept {
    for (SiteCounter& c : counters_) {
      const char* s = c.site.load(std::memory_order_acquire);
      if (s == nullptr) {
        const char* expected = nullptr;
        if (c.site.compare_exchange_strong(expected, site,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          s = site;
        } else {
          s = expected;  // somebody claimed it first -- maybe for our site
        }
      }
      if (std::string_view(s) == site)
        // relaxed: monotone ordinal; rule skip windows only need
        // per-site ordering, which FAA on one cell gives by itself
        return c.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    // Slot exhaustion must not fail silently: returning 0 here would make
    // `hit <= rule.skip` true even for skip=0, quietly disabling any rule
    // targeting the overflow site.  This is test-only machinery -- abort
    // loudly instead of corrupting a fault-injection experiment.
    std::fprintf(stderr,
                 "FaultPlan: more than %zu distinct sites hit while armed "
                 "(overflowed at '%s'); raise kMaxSites\n",
                 kMaxSites, site);
    std::abort();
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<RuleState> rules_;
  std::array<SiteCounter, kMaxSites> counters_;
  bool released_ = false;
  std::uint32_t parked_ = 0;
};

/// The instrumentation hook: compiled into the queues at labelled sites.
/// No plan armed (the default, and all benchmarks): one relaxed load.
/// MSQ_PROBES=0: constexpr no-op -- the constexpr-ness doubles as the
/// compile-time proof that the disabled hook contains no atomic load
/// (tests/probes_off_test.cpp).
#if MSQ_PROBES
inline void point(const char* site) noexcept {
  FaultPlan* plan = detail::g_active_plan.load(std::memory_order_acquire);
  if (plan != nullptr) [[unlikely]] {
    plan->on_point(site);
  }
}
#else
constexpr void point(const char* /*site*/) noexcept {}
#endif

}  // namespace msq::fault
