// Deadline watchdog for the concurrent stress tests.
//
// A wedged run -- a livelocked retry loop, a parked lock holder nobody
// releases, an MC dequeuer waiting on a link that will never be written --
// used to hang ctest until the outer CI timeout killed the whole suite
// with no indication of WHICH test wedged.  The watchdog turns that into a
// loud, attributed failure: if the guarded scope is still alive after the
// deadline it prints the scope name to stderr and abort()s, which gtest
// and ctest both report against the right test.
//
// Usage (RAII):
//   fault::Watchdog dog(std::chrono::seconds(60), "PairedLoopConserves");
//   ... threads ...                 // wedge => abort with message
//   // destructor cancels the deadline on normal exit
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "fault/fault_plan.hpp"
#include "obs/report.hpp"

namespace msq::fault {

class Watchdog {
 public:
  explicit Watchdog(std::chrono::milliseconds deadline,
                    std::string scope = "concurrent test")
      : scope_(std::move(scope)),
        deadline_(deadline),
        thread_([this] { run(); }) {}

  ~Watchdog() {
    cancel();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Disarm (normal completion).  Idempotent.
  void cancel() {
    {
      std::scoped_lock lock(mutex_);
      cancelled_ = true;
    }
    cv_.notify_all();
  }

  /// Push the deadline out from *now* (long tests that are making progress
  /// can kick the dog between phases).
  void kick() {
    {
      std::scoped_lock lock(mutex_);
      epoch_ += 1;
    }
    cv_.notify_all();
  }

 private:
  void run() {
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t epoch = epoch_;
      if (cv_.wait_for(lock, deadline_, [&] {
            return cancelled_ || epoch_ != epoch;
          })) {
        if (cancelled_) return;
        continue;  // kicked: restart the countdown
      }
      // Deadline passed with no cancel and no kick: fail loudly.  abort()
      // rather than a gtest FAIL(): the guarded threads are wedged, so
      // returning from here would just hang in their joins.
      std::fprintf(stderr,
                   "\n[watchdog] '%s' exceeded its %lld ms deadline -- "
                   "wedged (deadlock or livelock); aborting so ctest fails "
                   "loudly instead of hanging\n",
                   scope_.c_str(),
                   static_cast<long long>(deadline_.count()));
      // Wedge attribution: the counter snapshot says which mechanism the
      // threads died in -- a livelocked CAS loop shows cas_fail racing
      // ahead of completed ops, a parked lock holder shows lock_spin
      // climbing with zero dequeues, a drained pool shows pool_refuse.
      obs::dump_counters_stderr("counter snapshot at watchdog abort");
      // And the breadcrumbs say WHERE: the last labelled fault site each
      // thread passed while a plan was armed, so a fault-injection hang
      // names the exact CAS window the stuck threads died in.
      dump_breadcrumbs_stderr();
      std::fflush(stderr);
      std::abort();
    }
  }

  std::string scope_;
  std::chrono::milliseconds deadline_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  std::uint64_t epoch_ = 0;
  std::thread thread_;
};

}  // namespace msq::fault
