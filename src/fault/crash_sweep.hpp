// Crash-step sweep over the simulator: the paper's robustness claim made
// mechanical.
//
// "If a process is halted or delayed ... non-blocking algorithms guarantee
//  that some process will complete an operation in a finite number of
//  steps" (section 1).  The sweep tests exactly that hypothesis at EVERY
//  reachable point of one operation: replay a victim performing a single
//  enqueue (or dequeue), crash-stop it after k = 0, 1, 2, ... shared-memory
//  steps (Engine::crash), then let fresh survivor processes hammer the
//  half-updated queue and record what they manage to complete.
//
// For the non-blocking algorithms (MS, PLJ, Valois) every crash point must
// leave the survivors able to complete unbounded operations and every
// structural invariant intact.  For the blocking algorithms (single-lock,
// two-lock, MC) the sweep instead MAPS the wedge window: the contiguous
// band of crash steps -- exactly the lock-held / mid-link region -- where
// survivors complete nothing, ever.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/task.hpp"
#include "sim/workload.hpp"

namespace msq::fault {

enum class VictimOp { kEnqueue, kDequeue };

struct CrashPoint {
  std::uint64_t crash_step = 0;       // victim crashed after this many steps
  const char* victim_label = "";      // pseudo-code line it died at
  std::uint64_t survivor_enqueues = 0;
  std::uint64_t survivor_dequeues = 0;  // successful only
  bool victim_completed = false;  // op finished before step k was reached
  bool invariants_ok = true;
  std::string invariant_error;
};

struct CrashSweep {
  std::vector<CrashPoint> points;     // one per crash step 0..op_steps-1
  std::uint64_t op_steps = 0;         // victim op length, uncrashed
};

struct CrashSweepConfig {
  std::uint32_t capacity = 64;
  std::uint32_t preload = 8;          // items enqueued before the victim runs
  std::uint32_t survivors = 2;
  std::uint64_t survivor_steps = 12'000;
  std::uint64_t seed = 7;
};

namespace detail {

struct SurvivorCounts {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
};

inline sim::Task<void> survivor_pairs(sim::Proc& p, sim::SimQueue& queue,
                                      std::uint32_t producer,
                                      SurvivorCounts& counts) {
  for (std::uint64_t i = 0;; ++i) {
    const bool ok =
        co_await queue.enqueue(p, (std::uint64_t{producer} << 40) | i);
    if (ok) ++counts.enqueues;
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got != sim::kEmpty) ++counts.dequeues;
  }
}

inline sim::Task<void> victim_once(sim::Proc& p, sim::SimQueue& queue,
                                   VictimOp op) {
  if (op == VictimOp::kEnqueue) {
    co_await queue.enqueue(p, 0xdeadull);
  } else {
    co_await queue.dequeue(p);
  }
}

inline sim::Task<void> preload_n(sim::Proc& p, sim::SimQueue& queue,
                                 std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    co_await queue.enqueue(p, 0x9000ull + i);
  }
}

}  // namespace detail

/// Run one crash point: fresh engine + queue, preload, run the victim for
/// `crash_step` steps, crash it, then let survivors run.
inline CrashPoint run_crash_point(sim::Algo algo, VictimOp op,
                                  std::uint64_t crash_step,
                                  const CrashSweepConfig& config) {
  // Declared before the engine so suspended survivor coroutines (torn down
  // by ~Engine) never outlive the counters they reference.
  detail::SurvivorCounts counts;

  sim::EngineConfig engine_config;
  engine_config.seed = config.seed;
  sim::Engine engine(engine_config);
  auto queue = sim::make_sim_queue(algo, engine, config.capacity);

  CrashPoint result;
  result.crash_step = crash_step;

  {  // Preload runs to completion (holds nothing afterwards).
    const auto id = engine.spawn(0, [&](sim::Proc& p) {
      return detail::preload_n(p, *queue, config.preload);
    });
    while (engine.step(id)) {
    }
  }

  const auto victim = engine.spawn(0, [&](sim::Proc& p) {
    return detail::victim_once(p, *queue, op);
  });
  for (std::uint64_t k = 0; k < crash_step && !engine.done(victim); ++k) {
    engine.step(victim);
  }
  if (engine.done(victim)) {
    result.victim_completed = true;  // op was shorter than crash_step
    return result;
  }
  engine.crash(victim);
  result.victim_label = engine.label(victim);

  for (std::uint32_t s = 0; s < config.survivors; ++s) {
    engine.spawn(0, [&, s](sim::Proc& p) {
      return detail::survivor_pairs(p, *queue, s + 1, counts);
    });
  }
  for (std::uint64_t i = 0; i < config.survivor_steps; ++i) {
    if (!engine.step_random()) break;
  }
  result.survivor_enqueues = counts.enqueues;
  result.survivor_dequeues = counts.dequeues;

  try {
    queue->check_invariants();
  } catch (const std::exception& e) {
    result.invariants_ok = false;
    result.invariant_error = e.what();
  }
  return result;
}

/// Measure the victim's uncrashed op length (same preload, no survivors).
inline std::uint64_t measure_op_steps(sim::Algo algo, VictimOp op,
                                      const CrashSweepConfig& config) {
  sim::EngineConfig engine_config;
  engine_config.seed = config.seed;
  sim::Engine engine(engine_config);
  auto queue = sim::make_sim_queue(algo, engine, config.capacity);
  {
    const auto id = engine.spawn(0, [&](sim::Proc& p) {
      return detail::preload_n(p, *queue, config.preload);
    });
    while (engine.step(id)) {
    }
  }
  const auto victim = engine.spawn(0, [&](sim::Proc& p) {
    return detail::victim_once(p, *queue, op);
  });
  std::uint64_t steps = 0;
  while (engine.step(victim)) ++steps;
  return steps;
}

/// The full sweep: crash after every k in [0, op_steps).
inline CrashSweep crash_sweep(sim::Algo algo, VictimOp op,
                              const CrashSweepConfig& config = {}) {
  CrashSweep sweep;
  sweep.op_steps = measure_op_steps(algo, op, config);
  sweep.points.reserve(sweep.op_steps);
  for (std::uint64_t k = 0; k < sweep.op_steps; ++k) {
    sweep.points.push_back(run_crash_point(algo, op, k, config));
  }
  return sweep;
}

}  // namespace msq::fault
