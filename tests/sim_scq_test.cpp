// The SCQ threshold-bound proof (src/sim/scq_ring_sim.hpp, mirroring
// src/queues/scq_queue.hpp), in three movements:
//
//  1. DPOR over a producer/consumer world: EVERY schedule terminates, and
//     no dequeue call ever exceeds the derived round bound
//     threshold_init * (1 + deposits) + 1 -- livelock-freedom as an
//     exhaustively checked property, not a benchmark anecdote.
//
//  2. The livelock the threshold exists to kill, replayed as a directed
//     schedule with `threshold_enabled=false`: a frozen second enqueuer
//     keeps the tail two ahead of the head, and a dequeuer + lagging
//     enqueuer then chase each other around the ring FOREVER -- each round
//     the dequeuer's cycle-advance invalidates the enqueuer's pending
//     deposit CAS, and the enqueuer's fresh ticket keeps the tail ahead of
//     the dequeuer's empty check.  Head and tail both advance; neither op
//     completes.  (This is the SCQ paper's argument for why "infinite
//     array" FAA queues need a budget; the segment queue escapes it by
//     appending segments instead of wrapping.)
//
//  3. The SAME choreography with the threshold armed: the dequeuer's
//     budget decrements strike 0 within threshold_init rounds, it returns
//     empty, and both enqueuers then complete and their values drain FIFO.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/scq_ring_sim.hpp"
#include "sim/task.hpp"

namespace msq::sim {
namespace {

// ---- movement 1: DPOR termination + round bound ------------------------

constexpr std::uint32_t kHalf = 1;          // ring of 2 entries, 1 index
constexpr std::uint32_t kValues = 2;        // producer deposits {1, 2}
constexpr std::uint32_t kAttempts = 3;      // consumer's bounded tries
constexpr std::uint32_t kEnqBudget = 5;     // producer FAA-round budget

struct ScqWorld {
  Engine engine;
  SimScqRing ring;
  bool enq_ok[kValues] = {false, false};
  std::vector<std::uint32_t> got;

  ScqWorld() : ring(engine, kHalf, /*full=*/false) {
    got.reserve(kAttempts);
    engine.spawn(0, [this](Proc& p) { return producer(p); });
    engine.spawn(0, [this](Proc& p) { return consumer(p); });
  }

  // A half=1 ring only holds one index, so value 2's deposit can depend on
  // the consumer draining value 1 first; the FAA-round budget keeps
  // schedules where the consumer never does finite for DPOR.
  Task<void> producer(Proc& p) {
    for (std::uint32_t v = 0; v < kValues; ++v) {
      enq_ok[v] = co_await ring.enqueue(p, v + 1, kEnqBudget);
      if (!enq_ok[v]) break;  // budget ran dry: give up (tracked)
    }
  }

  Task<void> consumer(Proc& p) {
    for (std::uint32_t i = 0; i < kAttempts; ++i) {
      const std::uint32_t r = co_await ring.dequeue(p);
      if (r != SimScqRing::kBottom) got.push_back(r);
    }
  }
};

TEST(SimScqDpor, EveryScheduleTerminatesWithinTheThresholdRoundBound) {
  // Round bound per dequeue call: the first round is free; each further
  // round spends one unit of a budget that starts at threshold_init and is
  // re-armed (at most) once per deposit -- so
  //   rounds <= threshold_init * (1 + kValues) + 1.
  const std::int64_t kRoundBound =
      (3 * static_cast<std::int64_t>(kHalf) - 1) * (1 + kValues) + 1;

  std::unique_ptr<ScqWorld> world;
  std::uint64_t checked = 0;
  std::uint64_t worst_rounds = 0;
  DporConfig config;
  config.max_steps_per_run = 4'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<ScqWorld>();
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        // Termination of every schedule IS the livelock-freedom claim:
        // movement 2 shows the identical world without the threshold has
        // schedules that never finish.
        ASSERT_TRUE(engine.all_done()) << "a schedule wedged an SCQ op";
        // The consumer saw a sub-multiset of {1, 2} in FIFO order.  (The
        // producer may have given its bounded budget up on value 2, so
        // only prefix-FIFO is guaranteed, not delivery.)
        ASSERT_LE(world->got.size(), kValues);
        for (std::size_t i = 0; i < world->got.size(); ++i) {
          ASSERT_EQ(world->got[i], i + 1)
              << "duplicate, invented, or reordered value";
        }
        const std::uint64_t rounds = world->ring.stats().max_deq_rounds;
        ASSERT_LE(rounds, static_cast<std::uint64_t>(kRoundBound));
        if (rounds > worst_rounds) worst_rounds = rounds;
        ++checked;
      });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(checked, 100u) << "DPOR covered suspiciously few schedules";
  EXPECT_EQ(checked, result.schedules_run);
  // The bound is not vacuous: some schedule actually needs > 1 round.
  EXPECT_GT(worst_rounds, 1u);
}

// ---- movements 2 & 3: the directed chase choreography ------------------

// Free coroutine helpers: spawn() lambdas must NOT be coroutines
// themselves (their captures would dangle with the temporary lambda);
// plain lambdas calling these copy the arguments into the frame.
Task<void> enq_into(Proc& p, SimScqRing& ring, std::uint32_t idx, bool& ok) {
  ok = co_await ring.enqueue(p, idx);
}

Task<void> deq_into(Proc& p, SimScqRing& ring, std::uint32_t& out) {
  out = co_await ring.dequeue(p);
}

Task<void> drain_n(Proc& p, SimScqRing& ring, int n,
                   std::vector<std::uint32_t>& out) {
  for (int i = 0; i < n; ++i) {
    const std::uint32_t r = co_await ring.dequeue(p);
    if (r != SimScqRing::kBottom) out.push_back(r);
  }
}

/// half=1 world (2 entries): enqueuer E2 freezes right after its tail FAA
/// (keeping tail >= head + 2 forever), enqueuer E1 chases a deposit,
/// dequeuer D chases a value that is never deposited.
struct ChaseWorld {
  Engine engine;
  SimScqRing ring;
  bool e1_ok = false;
  bool e2_ok = false;
  std::uint32_t deq_result = 0xDEADBEEFu;

  // Proc ids, in spawn order.
  static constexpr std::uint32_t kE2 = 0;
  static constexpr std::uint32_t kE1 = 1;
  static constexpr std::uint32_t kD = 2;

  explicit ChaseWorld(bool threshold_enabled)
      : ring(engine, /*half=*/1, /*full=*/false, /*mo=*/nullptr,
             threshold_enabled) {
    if (threshold_enabled) {
      // Model "an earlier enqueue/dequeue pair completed": the budget sits
      // at threshold_init (a fresh empty ring's -1 would short-circuit D
      // before the chase even starts -- itself a liveness win, but not the
      // mechanism under test).
      ring.arm_threshold(engine);
    }
    engine.spawn(0, [this](Proc& p) { return enq_into(p, ring, 7, e2_ok); });
    engine.spawn(0, [this](Proc& p) { return enq_into(p, ring, 5, e1_ok); });
    engine.spawn(0,
                 [this](Proc& p) { return deq_into(p, ring, deq_result); });
  }

  void step_n(std::uint32_t id, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(engine.step(id)) << "proc " << id << " finished early";
    }
  }
};

TEST(SimScqLivelock, WithoutTheThresholdTheChaseNeverTerminates) {
  ChaseWorld w(/*threshold_enabled=*/false);

  // Prologue: E2 takes ticket 0 and freezes (tail=1).  E1 takes ticket 1
  // and loads its entry (tail=2).  D scans tickets 0 and 1, advancing both
  // entries' cycles past E1's pending deposit.
  w.step_n(ChaseWorld::kE2, 1);  // FAA tail -> 1, then frozen forever
  w.step_n(ChaseWorld::kE1, 2);  // FAA (ticket 1), load entry
  w.step_n(ChaseWorld::kD, 7);   // FAA h=0, load, advance; tail check;
                                 // FAA h=1, load, advance

  // The sustained chase: per round E1 fails its deposit CAS (D advanced
  // the entry's cycle), takes a fresh ticket, reloads; D sees tail still
  // ahead, takes a fresh ticket, and advances the very entry E1 is about
  // to CAS.  Head and tail each move +1 per round; the gap never closes
  // and neither op completes -- run any number of rounds you like.
  constexpr std::uint32_t kRounds = 6;
  for (std::uint32_t k = 1; k <= kRounds; ++k) {
    w.step_n(ChaseWorld::kE1, 3);  // CAS-fail, FAA, load
    w.step_n(ChaseWorld::kD, 4);   // tail check, FAA, load, CAS-advance
    EXPECT_EQ(w.ring.peek_head(w.engine), 2u + k);
    EXPECT_EQ(w.ring.peek_tail(w.engine), 2u + k);
  }
  EXPECT_FALSE(w.engine.done(ChaseWorld::kE1));
  EXPECT_FALSE(w.engine.done(ChaseWorld::kD));
  EXPECT_FALSE(w.engine.all_done());
}

TEST(SimScqLivelock, TheThresholdEndsTheSameChaseAndTheRingRecovers) {
  ChaseWorld w(/*threshold_enabled=*/true);
  const auto threshold_init =
      static_cast<std::uint64_t>(w.ring.threshold_init());
  ASSERT_EQ(threshold_init, 2u);  // half=1: 3n-1

  // Same prologue as above; D pays one extra op for the fast-path read and
  // one per losing round for the budget decrement.
  w.step_n(ChaseWorld::kE2, 1);
  w.step_n(ChaseWorld::kE1, 2);
  w.step_n(ChaseWorld::kD, 9);  // fast-path read; round h=0 (+decrement);
                                // round h=1

  // Chase rounds: D's budget decrements hit 0 within threshold_init
  // rounds and its dequeue returns empty instead of chasing forever.
  std::uint32_t d_steps = 0;
  for (std::uint32_t k = 1; k <= threshold_init + 1; ++k) {
    if (w.engine.done(ChaseWorld::kD)) break;
    w.step_n(ChaseWorld::kE1, 3);
    for (std::uint32_t i = 0; i < 5 && w.engine.step(ChaseWorld::kD); ++i) {
      ++d_steps;
    }
  }
  ASSERT_TRUE(w.engine.done(ChaseWorld::kD));
  EXPECT_EQ(w.deq_result, SimScqRing::kBottom);
  EXPECT_LE(w.ring.stats().max_deq_rounds, threshold_init + 2);

  // With the chase broken, both enqueuers complete unaided...
  std::uint32_t guard = 0;
  while (w.engine.step(ChaseWorld::kE1)) ASSERT_LT(++guard, 200u);
  while (w.engine.step(ChaseWorld::kE2)) ASSERT_LT(++guard, 200u);
  ASSERT_TRUE(w.engine.all_done());
  EXPECT_TRUE(w.e1_ok);
  EXPECT_TRUE(w.e2_ok);
  // ... E1's deposit re-armed the budget ...
  EXPECT_EQ(w.ring.peek_threshold(w.engine),
            static_cast<std::int64_t>(threshold_init));

  // ... and the ring drains FIFO: E1 deposited before E2's retry landed.
  std::vector<std::uint32_t> drained;
  const std::uint32_t drainer = w.engine.spawn(
      0, [&](Proc& p) { return drain_n(p, w.ring, 2, drained); });
  while (w.engine.step(drainer)) ASSERT_LT(++guard, 400u);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 5u);
  EXPECT_EQ(drained[1], 7u);
}

// ---- single-proc sanity: init-full ring + FIFO through the remap -------

Task<void> drain_lap(Proc& p, SimScqRing& ring,
                     std::vector<std::uint32_t>& out) {
  for (int i = 0; i < 5; ++i) {
    out.push_back(co_await ring.dequeue(p));
  }
  // Recycle one index and take it back: one full produce/consume lap.
  (void)co_await ring.enqueue(p, 2);
  out.push_back(co_await ring.dequeue(p));
}

TEST(SimScqRingBasic, InitFullRingDrainsInOrderAndRefusesWhenEmpty) {
  Engine engine;
  SimScqRing ring(engine, /*half=*/4, /*full=*/true);
  std::vector<std::uint32_t> out;
  // 5 dequeues (the 5th refuses), then one recycle lap.
  engine.spawn(0, [&](Proc& p) { return drain_lap(p, ring, out); });
  std::uint32_t guard = 0;
  while (engine.step_random()) ASSERT_LT(++guard, 2'000u);
  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(out.size(), 6u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(out[4], SimScqRing::kBottom);
  EXPECT_EQ(out[5], 2u);
}

}  // namespace
}  // namespace msq::sim
