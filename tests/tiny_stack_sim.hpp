// Test-support: a minimal simulated Treiber stack parameterised on pointer
// representation, shared by the directed ABA test (sim_aba_test.cpp) and
// the systematic exploration test (sim_explore_test.cpp).
//
// `Counted == true` packs (index, count) as TaggedIndex bits (the paper's
// ABA defence); `false` uses bare node indices (the vulnerable variant).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim::testing {

inline constexpr std::uint64_t kNullNode = ~0ull;

template <bool Counted>
class TinyStack {
 public:
  TinyStack(Engine& engine, std::uint32_t capacity)
      : nodes_(engine.memory().alloc(capacity)),
        top_(engine.memory().alloc(1)) {
    engine.memory().word(top_) = encode(kNullNode, 0);
  }

  [[nodiscard]] Addr next_addr(std::uint64_t node) const {
    return nodes_ + static_cast<Addr>(node);
  }

  Task<void> push(Proc& p, std::uint64_t node) {
    for (;;) {
      const std::uint64_t top = co_await p.read(top_);
      co_await p.write(next_addr(node), encode(index_of(top), 0));
      const std::uint64_t old = co_await p.cas(top_, top, bump(top, node));
      if (old == top) co_return;
    }
  }

  Task<std::uint64_t> pop(Proc& p) {
    for (;;) {
      const std::uint64_t top = co_await p.read(top_);
      if (index_of(top) == kNullNode) co_return kNullNode;
      const std::uint64_t next = co_await p.read(next_addr(index_of(top)));
      co_await p.at("POP_CAS");
      const std::uint64_t old = co_await p.cas(top_, top, bump(top, index_of(next)));
      if (old == top) {
        co_return index_of(top);
      }
    }
  }

  /// Walk the stack raw (between steps) and return the node sequence.
  [[nodiscard]] std::vector<std::uint64_t> snapshot(const Engine& engine) const {
    std::vector<std::uint64_t> out;
    std::uint64_t it = index_of(engine.memory().peek(top_));
    while (it != kNullNode && out.size() < 16) {
      out.push_back(it);
      it = index_of(engine.memory().peek(next_addr(it)));
    }
    return out;
  }

  static std::uint64_t index_of(std::uint64_t bits) {
    if constexpr (Counted) {
      const auto t = tagged::TaggedIndex::from_bits(bits);
      return t.is_null() ? kNullNode : t.index();
    } else {
      return bits;
    }
  }
  static std::uint64_t encode(std::uint64_t index, std::uint32_t count) {
    if constexpr (Counted) {
      return tagged::TaggedIndex(index == kNullNode
                                     ? tagged::kNullIndex
                                     : static_cast<std::uint32_t>(index),
                                 count)
          .bits();
    } else {
      return index;
    }
  }
  /// Value a successful CAS installs given observed `top` and new index.
  static std::uint64_t bump(std::uint64_t observed_top, std::uint64_t index) {
    if constexpr (Counted) {
      const auto t = tagged::TaggedIndex::from_bits(observed_top);
      return t
          .successor(index == kNullNode ? tagged::kNullIndex
                                        : static_cast<std::uint32_t>(index))
          .bits();
    } else {
      return index;
    }
  }

 private:
  Addr nodes_;
  Addr top_;
};

}  // namespace msq::sim::testing
