// Happens-before race detection (check/race.hpp) wired into the simulator,
// and DPOR (sim/explore.hpp) as its schedule driver.
//
// Headline assertions:
//  * an unsynchronized counter increment is reported as a race naming the
//    labelled lines of BOTH conflicting accesses;
//  * a CAS-spin lock whose unlock is an atomic swap is race-free under the
//    rmw sync model, while the same lock with a plain-write unlock races --
//    the memory-order audit the lint enforces textually, demonstrated
//    dynamically;
//  * the simulated MS and two-lock queues report ZERO races across a full
//    DPOR sweep under their declared edges (SyncModel::kFull, modelling the
//    seq_cst pseudo-code), while the naive no-edges model (SyncModel::kNone)
//    flags the Valois and single-lock queues immediately;
//  * DPOR reaches exactly the brute-force set of distinct terminal states
//    with strictly fewer schedules (the reduction ratio is asserted > 1 and
//    logged).
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "check/race.hpp"
#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"
#include "tests/tiny_stack_sim.hpp"

namespace msq::sim {
namespace {

using check::SyncModel;
using testing::kNullNode;
using testing::TinyStack;

[[nodiscard]] EngineConfig race_config(SyncModel model) {
  EngineConfig config;
  config.race_detect = true;
  config.sync_model = model;
  return config;
}

[[nodiscard]] bool has_label(const check::RaceReport& r, std::string_view l) {
  return std::string_view(r.first_label) == l ||
         std::string_view(r.second_label) == l;
}

// --- the canonical bug: load-modify-store on a shared counter ---------------

Task<void> unsync_increment(Proc& p, Addr counter) {
  co_await p.at("C_READ");
  const std::uint64_t v = co_await p.read(counter);
  co_await p.at("C_WRITE");
  co_await p.write(counter, v + 1);
}

TEST(RaceDetect, UnsynchronizedCounterFlagsRaceWithBothLabels) {
  Engine engine(race_config(SyncModel::kRmw));
  const Addr counter = engine.memory().alloc(1);
  for (int t = 0; t < 2; ++t) {
    engine.spawn(0,
                 [&, counter](Proc& p) { return unsync_increment(p, counter); });
  }
  run_schedule(engine, {}, 1'000, nullptr);

  ASSERT_FALSE(engine.races().empty())
      << "unsynchronized increment not flagged";
  bool saw_labelled_pair = false;
  for (const check::RaceReport& r : engine.races().reports()) {
    EXPECT_EQ(r.addr, counter);
    if (has_label(r, "C_READ") || has_label(r, "C_WRITE")) {
      saw_labelled_pair = true;
      // The report must read like the paper's race catalogue: both sites
      // named, e.g. "P1 read at [C_READ] ... vs P0 write at [C_WRITE]".
      EXPECT_NE(r.format().find("C_"), std::string::npos) << r.format();
    }
  }
  EXPECT_TRUE(saw_labelled_pair)
      << "no report names the C_READ/C_WRITE pseudo-code lines";
}

Task<void> faa_increment(Proc& p, Addr counter) {
  co_await p.at("C_FAA");
  co_await p.faa(counter, 1);
}

TEST(RaceDetect, FetchAndAddCounterIsCleanUnderRmwModel) {
  Engine engine(race_config(SyncModel::kRmw));
  const Addr counter = engine.memory().alloc(1);
  for (int t = 0; t < 2; ++t) {
    engine.spawn(0,
                 [&, counter](Proc& p) { return faa_increment(p, counter); });
  }
  run_schedule(engine, {}, 1'000, nullptr);
  EXPECT_TRUE(engine.races().empty());
  EXPECT_EQ(engine.memory().peek(counter), 2u);
}

// --- memory-order audit, dynamically: the spin-lock unlock ------------------
//
// A CAS-spin lock synchronizes through its word only if the UNLOCK is also
// an atomic RMW (or a release store, which the rmw model approximates with
// swap).  Demoting the unlock to a plain write is exactly the bug the
// atomics lint's explicit-order rule exists to catch in real code; here the
// detector catches it dynamically through the missing happens-before edge.

Task<void> lock_protected_bump(Proc& p, Addr lock, Addr data,
                               bool swap_unlock) {
  for (;;) {
    co_await p.at("L_ACQ");
    const std::uint64_t old = co_await p.cas(lock, 0, 1);
    if (old == 0) break;
  }
  co_await p.at("L_DATA");
  const std::uint64_t v = co_await p.read(data);
  co_await p.write(data, v + 1);
  co_await p.at("L_REL");
  if (swap_unlock) {
    co_await p.swap(lock, 0);  // RMW: carries the release edge
  } else {
    co_await p.write(lock, 0);  // plain write: edge silently dropped
  }
}

std::uint64_t spinlock_races(bool swap_unlock) {
  Engine engine(race_config(SyncModel::kRmw));
  const Addr lock = engine.memory().alloc(1);
  const Addr data = engine.memory().alloc(1);
  for (int t = 0; t < 2; ++t) {
    engine.spawn(0, [&, lock, data](Proc& p) {
      return lock_protected_bump(p, lock, data, swap_unlock);
    });
  }
  run_schedule(engine, {}, 10'000, nullptr);
  EXPECT_EQ(engine.memory().peek(data), 2u);
  return engine.races().observed();
}

TEST(RaceDetect, SpinLockWithSwapUnlockIsClean) {
  EXPECT_EQ(spinlock_races(/*swap_unlock=*/true), 0u);
}

TEST(RaceDetect, SpinLockWithPlainWriteUnlockRaces) {
  EXPECT_GT(spinlock_races(/*swap_unlock=*/false), 0u)
      << "the dropped release edge on unlock must surface as a race";
}

// --- the queues under their declared edges ----------------------------------

Task<void> enqueue_one(Proc& p, SimQueue& queue, std::uint64_t value) {
  for (;;) {
    const bool ok = co_await queue.enqueue(p, value);
    if (ok) break;
  }
}

Task<void> dequeue_one(Proc& p, SimQueue& queue, std::uint64_t& out) {
  out = co_await queue.dequeue(p);
}

/// One producer, one consumer over a fresh simulated queue with race
/// detection under `model`.
struct RaceQueueWorld {
  Engine engine;
  std::unique_ptr<SimQueue> queue;
  std::uint64_t dequeued = kEmpty;

  RaceQueueWorld(Algo algo, SyncModel model) : engine(race_config(model)) {
    queue = make_sim_queue(algo, engine, 8);
    engine.spawn(0, [this](Proc& p) { return enqueue_one(p, *queue, 41); });
    engine.spawn(0, [this](Proc& p) { return dequeue_one(p, *queue, dequeued); });
  }
};

/// Total race observations across a full DPOR sweep of the world.
std::uint64_t races_across_dpor(Algo algo, SyncModel model,
                                std::uint64_t* schedules = nullptr) {
  std::unique_ptr<RaceQueueWorld> world;
  std::uint64_t observed = 0;
  DporConfig config;
  config.max_steps_per_run = 5'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<RaceQueueWorld>(algo, model);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) { observed += engine.races().observed(); });
  EXPECT_FALSE(result.budget_exhausted) << algo_name(algo);
  EXPECT_GT(result.schedules_run, 1u)
      << algo_name(algo) << ": DPOR explored no alternatives";
  if (schedules != nullptr) *schedules = result.schedules_run;
  return observed;
}

TEST(RaceDetect, MsQueueIsCleanUnderDeclaredEdgesAcrossDporSweep) {
  EXPECT_EQ(races_across_dpor(Algo::kMs, SyncModel::kFull), 0u)
      << "the MS queue raced under its declared (seq_cst pseudo-code) edges";
}

TEST(RaceDetect, TwoLockQueueIsCleanUnderDeclaredEdgesAcrossDporSweep) {
  EXPECT_EQ(races_across_dpor(Algo::kTwoLock, SyncModel::kFull), 0u)
      << "the two-lock queue raced under its declared edges";
}

TEST(RaceDetect, NaiveModeFlagsValoisAndSingleLockQueues) {
  // SyncModel::kNone models the naive port that declares NO ordering: every
  // conflicting pair is a race.  The detector must flag the known-racy
  // sharing immediately -- on the plain round-robin schedule, no
  // exploration needed.
  for (const Algo algo : {Algo::kValois, Algo::kSingleLock}) {
    RaceQueueWorld world(algo, SyncModel::kNone);
    run_schedule(world.engine, {}, 10'000, nullptr);
    EXPECT_GT(world.engine.races().observed(), 0u)
        << algo_name(algo) << ": naive mode flagged nothing";
  }
}

// --- DPOR vs brute force ----------------------------------------------------

/// Two poppers racing on a counted Treiber stack holding [A=0, B=1]: small
/// enough to enumerate EVERY interleaving, contended enough that schedules
/// genuinely differ (who gets A, who gets B, who retries).
struct PopRaceWorld {
  Engine engine;
  TinyStack<true> stack{engine, 4};
  std::uint64_t p0 = kNullNode;
  std::uint64_t p1 = kNullNode;

  PopRaceWorld() {
    SimMemory& mem = engine.memory();
    mem.word(stack.next_addr(1)) = TinyStack<true>::encode(kNullNode, 0);
    mem.word(stack.next_addr(0)) = TinyStack<true>::encode(1, 0);
    mem.word(stack.next_addr(4)) = TinyStack<true>::encode(0, 7);  // top
    engine.spawn(0, [this](Proc& p) { return pop_into(p, p0); });
    engine.spawn(0, [this](Proc& p) { return pop_into(p, p1); });
  }

  Task<void> pop_into(Proc& p, std::uint64_t& out) {
    out = co_await stack.pop(p);
  }

  [[nodiscard]] std::string terminal() const {
    std::string s = std::to_string(p0) + "/" + std::to_string(p1) + ":";
    for (const std::uint64_t n : stack.snapshot(engine)) {
      s += std::to_string(n) + ",";
    }
    return s;
  }
};

/// Exhaustive DFS over every scheduling choice, by replay.  Complete
/// schedule count lands in `schedules`, terminal states in `states`.
void brute_force_terminals(std::set<std::string>& states,
                           std::uint64_t& schedules) {
  std::vector<std::vector<std::uint32_t>> options;  // enabled procs per depth
  std::vector<std::size_t> pick;                    // chosen index per depth
  schedules = 0;
  for (;;) {
    PopRaceWorld world;
    Engine& engine = world.engine;
    for (std::size_t d = 0; d < pick.size(); ++d) {
      engine.step(options[d][pick[d]]);
    }
    for (;;) {  // extend with first-enabled until everything finishes
      std::vector<std::uint32_t> enabled;
      for (std::uint32_t q = 0; q < engine.process_count(); ++q) {
        if (!engine.done(q)) enabled.push_back(q);
      }
      if (enabled.empty()) break;
      ASSERT_LT(options.size(), 64u) << "brute-force runaway";  // safety net
      options.push_back(enabled);
      pick.push_back(0);
      engine.step(enabled[0]);
    }
    ++schedules;
    states.insert(world.terminal());
    while (!pick.empty()) {  // backtrack to the deepest untried choice
      if (++pick.back() < options.back().size()) break;
      pick.pop_back();
      options.pop_back();
    }
    if (pick.empty()) break;
  }
}

TEST(Dpor, CoversEveryBruteForceTerminalStateWithFewerSchedules) {
  std::set<std::string> brute_states;
  std::uint64_t brute_schedules = 0;
  brute_force_terminals(brute_states, brute_schedules);
  ASSERT_GT(brute_schedules, 0u);
  ASSERT_FALSE(brute_states.empty());

  std::set<std::string> dpor_states;
  std::unique_ptr<PopRaceWorld> world;
  const DporResult result = explore_dpor(
      DporConfig{}, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<PopRaceWorld>();
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine&) { dpor_states.insert(world->terminal()); });

  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(dpor_states, brute_states)
      << "DPOR missed (or invented) a reachable terminal state";
  ASSERT_LT(result.schedules_run, brute_schedules)
      << "DPOR must beat brute-force enumeration";
  std::cout << "[ DPOR     ] brute-force " << brute_schedules
            << " schedules, DPOR " << result.schedules_run << " run + "
            << result.sleep_blocked << " sleep-blocked, "
            << brute_states.size() << " distinct terminal states, reduction "
            << static_cast<double>(brute_schedules) /
                   static_cast<double>(result.schedules_run)
            << "x\n";
}

}  // namespace
}  // namespace msq::sim
