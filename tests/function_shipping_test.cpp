// Tests for the function-shipping queue (paper section 5's "function
// shipping to a centralized manager" comparison mechanism).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "queues/function_shipping_queue.hpp"

namespace msq::queues {
namespace {

TEST(FunctionShipping, SequentialFifo) {
  FunctionShippingQueue<std::uint64_t> queue(16);
  std::uint64_t out = 0;
  EXPECT_FALSE(queue.try_dequeue(out));
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(queue.try_enqueue(i));
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_dequeue(out));
}

TEST(FunctionShipping, CapacityIsExact) {
  FunctionShippingQueue<std::uint64_t> queue(4);
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(queue.try_enqueue(i));
  EXPECT_FALSE(queue.try_enqueue(99));
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(queue.try_enqueue(99));
}

TEST(FunctionShipping, SatisfiesConceptAndTraits) {
  static_assert(ConcurrentQueue<FunctionShippingQueue<std::uint64_t>>);
  EXPECT_EQ(FunctionShippingQueue<int>::traits.progress, Progress::kBlocking);
  EXPECT_TRUE(FunctionShippingQueue<int>::traits.linearizable);
}

TEST(FunctionShipping, ConcurrentClientsConserveValues) {
  FunctionShippingQueue<std::uint64_t> queue(256);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPairs = 5'000;
  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t out = 0;
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          if (queue.try_enqueue(check::encode_value(t, i))) {
            enqueued.fetch_add(1, std::memory_order_relaxed);
          }
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  std::uint64_t out = 0;
  std::uint64_t drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(enqueued.load(), dequeued.load() + drained);
}

TEST(FunctionShipping, ManyInstancesOnOneThreadDoNotAlias) {
  // The slot cache is keyed by queue id, not address: create and destroy
  // several queues at (likely) the same address and keep using them from
  // this one thread.
  for (int round = 0; round < 10; ++round) {
    FunctionShippingQueue<std::uint64_t> queue(4);
    ASSERT_TRUE(queue.try_enqueue(round));
    std::uint64_t out = 0;
    ASSERT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, static_cast<std::uint64_t>(round));
  }
}

TEST(FunctionShipping, MovableOnlyPayload) {
  FunctionShippingQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.try_enqueue(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_dequeue(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);
}

}  // namespace
}  // namespace msq::queues
