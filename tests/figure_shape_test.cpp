// Regression tests for the SHAPE of the paper's evaluation (section 4) on
// the simulated multiprocessor: who wins, roughly by how much, and where
// the crossovers fall.  These are the claims of Figures 3-5 and the
// conclusions section, encoded as assertions:
//
//  F3.a  "In all three graphs, the new non-blocking queue outperforms all
//         of the other alternatives when three or more processors are
//         active."
//  F3.b  "The two-lock algorithm outperforms the one-lock algorithm when
//         more than 5 processors are active on a dedicated system."
//  F3.c  PLJ is the best previous non-blocking alternative but slower than
//         MS (it checks two shared variables rather than one).
//  F3.d  With one processor, the single lock is (a little) fastest.
//  F4/5.a "The blocking algorithms fare much worse in the presence of
//         multiprogramming" -- non-blocking beats blocking heavily.
//  F4/5.b "The degree of performance degradation increases with the level
//         of multiprogramming."
//
// Absolute numbers depend on the cost model; the assertions use ratios and
// orderings only, and the final test sweeps cost parameters to show the
// orderings are not an artefact of one parameter choice.
#include <gtest/gtest.h>

#include <map>

#include "sim/workload.hpp"

namespace msq::sim {
namespace {

constexpr std::uint64_t kPairs = 20'000;

double net_time(Algo algo, std::uint32_t processors,
                std::uint32_t procs_per_processor = 1,
                const CostParams& cost = {}) {
  SimRunConfig config;
  config.algo = algo;
  config.processors = processors;
  config.procs_per_processor = procs_per_processor;
  config.total_pairs = kPairs;
  config.cost = cost;
  const SimRunResult result = run_sim_workload(config);
  return result.net;
}

TEST(Figure3Shape, MsWinsFromThreeProcessorsUp) {
  // MC is excluded here: our FAS-list reconstruction of TR 229 (one swap +
  // one store per enqueue vs. the MS queue's two CASes) is legitimately
  // ~10-15% FASTER than MS on the dedicated simulator, unlike the curve in
  // the paper's Figure 3.  See EXPERIMENTS.md "Deviations".  The paper's
  // load-bearing MC claims -- blocking semantics and preemption
  // vulnerability -- are asserted in sim_liveness_test and
  // McPaysForBlockingUnderFrequentPreemption below.
  for (const std::uint32_t p : {3u, 6u, 9u, 12u}) {
    const double ms = net_time(Algo::kMs, p);
    for (const Algo other : {Algo::kSingleLock, Algo::kValois, Algo::kTwoLock,
                             Algo::kPlj}) {
      EXPECT_LT(ms, net_time(other, p) * 1.05)
          << "MS lost to " << algo_name(other) << " at p=" << p;
    }
  }
}

TEST(Figure3Shape, TwoLockBeatsSingleLockOnBusyDedicatedMachine) {
  // Crossover "when more than 5 processors are active".
  for (const std::uint32_t p : {8u, 12u}) {
    EXPECT_LT(net_time(Algo::kTwoLock, p), net_time(Algo::kSingleLock, p))
        << "two-lock should win at p=" << p;
  }
}

TEST(Figure3Shape, PljBeatsValoisButLosesToMs) {
  for (const std::uint32_t p : {6u, 12u}) {
    const double ms = net_time(Algo::kMs, p);
    const double plj = net_time(Algo::kPlj, p);
    const double valois = net_time(Algo::kValois, p);
    EXPECT_LT(plj, valois) << "PLJ should beat Valois at p=" << p;
    EXPECT_LT(ms, plj * 1.05) << "MS should beat PLJ at p=" << p;
  }
}

TEST(Figure3Shape, SingleLockIsCompetitiveAtOneProcessor) {
  // "For a queue that is usually accessed by only one or two processors, a
  // single lock will run a little faster."  Allow a generous band: the
  // single lock must be within 1.5x of the best algorithm at p=1, and MS
  // must not beat it by more than that.
  const double single = net_time(Algo::kSingleLock, 1);
  const double ms = net_time(Algo::kMs, 1);
  EXPECT_LT(single, ms * 1.10)
      << "single lock should be at least as fast as MS at p=1";
}

TEST(Figure45Shape, NonBlockingBeatsBlockingUnderMultiprogramming) {
  // 2 processes per processor (Figure 4), p = 6 processors.  MS and PLJ
  // must beat both lock-based algorithms outright; Valois -- "even a
  // comparatively inefficient non-blocking algorithm" -- must beat the
  // single lock (it trades places with the two-lock queue in our model;
  // see EXPERIMENTS.md "Deviations").
  for (const Algo nonblocking : {Algo::kMs, Algo::kPlj}) {
    const double nb = net_time(nonblocking, 6, 2);
    for (const Algo blocking : {Algo::kSingleLock, Algo::kTwoLock}) {
      const double b = net_time(blocking, 6, 2);
      EXPECT_LT(nb, b) << algo_name(nonblocking) << " should beat "
                       << algo_name(blocking) << " under multiprogramming";
    }
  }
  for (const std::uint32_t level : {2u, 3u}) {
    EXPECT_LT(net_time(Algo::kValois, 6, level),
              net_time(Algo::kSingleLock, 6, level))
        << "Valois should beat the single lock at multiprogramming level "
        << level;
  }
}

TEST(Figure45Shape, McPaysForBlockingUnderFrequentPreemption) {
  // The MC queue's weakness is its swap->link window: a preemption inside
  // it stalls every dequeuer.  The window is instruction-scale, so its
  // expected cost scales with preemption FREQUENCY; shrink the quantum and
  // the blocking algorithm pays while the non-blocking one does not.
  auto with_quantum = [](Algo algo, double quantum) {
    SimRunConfig config;
    config.algo = algo;
    config.processors = 6;
    config.procs_per_processor = 2;
    config.total_pairs = kPairs;
    config.quantum = quantum;
    return run_sim_workload(config).net;
  };
  const double mc_coarse = with_quantum(Algo::kMc, 1e6);
  const double mc_fine = with_quantum(Algo::kMc, 2e4);
  const double ms_coarse = with_quantum(Algo::kMs, 1e6);
  const double ms_fine = with_quantum(Algo::kMs, 2e4);
  const double mc_penalty = mc_fine / mc_coarse;
  const double ms_penalty = ms_fine / ms_coarse;
  EXPECT_GT(mc_penalty, ms_penalty * 1.3)
      << "frequent preemption must hurt the blocking MC queue more "
      << "(mc: " << mc_coarse << " -> " << mc_fine << ", ms: " << ms_coarse
      << " -> " << ms_fine << ")";
}

TEST(Figure45Shape, BlockingDegradationGrowsWithMultiprogrammingLevel) {
  // Lock-based slowdown from dedicated -> 2/processor -> 3/processor grows;
  // non-blocking stays within a modest factor.
  const double lock1 = net_time(Algo::kSingleLock, 6, 1);
  const double lock2 = net_time(Algo::kSingleLock, 6, 2);
  const double lock3 = net_time(Algo::kSingleLock, 6, 3);
  EXPECT_GT(lock2, lock1 * 1.5) << "preemption should hurt the single lock";
  EXPECT_GT(lock3, lock2) << "more multiprogramming, more degradation";

  const double ms1 = net_time(Algo::kMs, 6, 1);
  const double ms3 = net_time(Algo::kMs, 6, 3);
  const double ms_degradation = ms3 / ms1;
  const double lock_degradation = lock3 / lock1;
  EXPECT_GT(lock_degradation, ms_degradation * 2)
      << "blocking must degrade much faster than non-blocking";
}

TEST(FigureShapes, OrderingsAreRobustAcrossCostModels) {
  // The qualitative result must not be an artefact of the default tariffs:
  // sweep the miss/hit ratio and the RMW premium.
  std::vector<CostParams> models;
  {
    CostParams cheap_miss;
    cheap_miss.read_miss = 20;
    cheap_miss.write_miss = 22;
    cheap_miss.rmw_miss = 25;
    models.push_back(cheap_miss);
  }
  {
    CostParams dear_miss;
    dear_miss.read_miss = 120;
    dear_miss.write_miss = 130;
    dear_miss.rmw_miss = 150;
    models.push_back(dear_miss);
  }
  {
    CostParams dear_rmw;
    dear_rmw.rmw_owned = 20;
    dear_rmw.rmw_miss = 100;
    models.push_back(dear_rmw);
  }
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double ms = net_time(Algo::kMs, 8, 1, models[m]);
    const double single = net_time(Algo::kSingleLock, 8, 1, models[m]);
    const double two = net_time(Algo::kTwoLock, 8, 1, models[m]);
    EXPECT_LT(ms, single) << "model " << m;
    EXPECT_LT(ms, two) << "model " << m;
    EXPECT_LT(two, single) << "model " << m;
  }
}

}  // namespace
}  // namespace msq::sim
