// Pool-exhaustion backpressure at the queue API, typed over every
// pool-backed queue: when the free list runs dry (mem/*_pool returns
// kNullIndex), try_enqueue must surface a clean `false` -- never an assert,
// never a half-linked node -- and the failed attempt must not leak the
// node it failed to place.  The leak proof is cyclic: fill-to-refusal,
// drain-to-empty, repeated; a single leaked node per cycle would shrink the
// observed capacity monotonically, so "every cycle fills to exactly the
// same count" pins the no-leak property without reaching into pool
// internals.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mem/magazine.hpp"
#include "mem/node_pool.hpp"
#include "obs/counters.hpp"
#include "queues/queues.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {
namespace {

constexpr std::uint32_t kCapacity = 48;
constexpr int kCycles = 5;

template <typename Q>
class PoolExhaustionTest : public ::testing::Test {
 protected:
  Q queue_{kCapacity};
};

using PoolBackedTypes =
    ::testing::Types<MsQueue<std::uint64_t>, MsQueueDw<std::uint64_t>,
                     TwoLockQueue<std::uint64_t>, SingleLockQueue<std::uint64_t>,
                     MellorCrummeyQueue<std::uint64_t>, RingQueue<std::uint64_t>,
                     ScqQueue<std::uint64_t>,
                     PljQueue<std::uint64_t>, ValoisQueue<std::uint64_t>,
                     SegmentQueue<std::uint64_t>,
                     // Sequential fill-to-refusal stays globally FIFO even
                     // multi-shard: the single producer fills its home shard
                     // to refusal before spilling onward in order, and the
                     // drain sweeps shards in the same order.
                     ShardedQueue<SegmentQueue<std::uint64_t>, 2>,
                     WfQueue<std::uint64_t>>;
TYPED_TEST_SUITE(PoolExhaustionTest, PoolBackedTypes);

TYPED_TEST(PoolExhaustionTest, RefusalIsCleanAndRepeatable) {
  static_assert(TypeParam::traits.pool_backed);
  obs::arm();
  const auto counters_before = obs::snapshot();
  // Fill to refusal once, then hammer the refused path: every further
  // attempt must return false (not assert, not succeed spuriously).
  std::uint64_t filled = 0;
  while (this->queue_.try_enqueue(filled)) ++filled;
  ASSERT_GT(filled, 0u);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(this->queue_.try_enqueue(0xdead));
  }
  // Exactly what went in comes out, in order; the refused values never
  // materialise.
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < filled; ++i) {
    ASSERT_TRUE(this->queue_.try_dequeue(out)) << "lost item " << i;
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(this->queue_.try_dequeue(out));
  obs::disarm();
#if MSQ_OBS
  // Probe audit: successes and refusals must both be counted, exactly for
  // the op counters, at-least-once per refusal for the pool (the magazine
  // fallback can refuse more than once per failed enqueue).
  const auto delta = obs::snapshot() - counters_before;
  EXPECT_EQ(delta[obs::Counter::kEnqueue], filled);
  EXPECT_EQ(delta[obs::Counter::kDequeue], filled);
  EXPECT_GE(delta[obs::Counter::kPoolRefuse], 1'001u);  // 1000 + fill's stop
  EXPECT_GE(delta[obs::Counter::kDequeueEmpty], 1u);
#else
  (void)counters_before;
#endif
}

TYPED_TEST(PoolExhaustionTest, FillDrainCyclesShowNoNodeLeak) {
  std::vector<std::uint64_t> fill_counts;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::uint64_t filled = 0;
    while (this->queue_.try_enqueue(filled)) ++filled;
    // A few extra refusals per cycle: the failure path itself must not
    // consume nodes either.
    for (int i = 0; i < 10; ++i) {
      EXPECT_FALSE(this->queue_.try_enqueue(0xbeef));
    }
    std::uint64_t drained = 0, out = 0;
    while (this->queue_.try_dequeue(out)) ++drained;
    EXPECT_EQ(drained, filled) << "cycle " << cycle << " lost nodes in flight";
    fill_counts.push_back(filled);
  }
  // Capacity observed by cycle 0 must persist: any leak -- in the refused
  // enqueue, the drain, or reclamation (Valois's cascade, MS's free-list
  // recycling) -- would make later cycles fill to fewer items.
  for (int cycle = 1; cycle < kCycles; ++cycle) {
    EXPECT_EQ(fill_counts[cycle], fill_counts[0])
        << "capacity decayed by cycle " << cycle;
  }
  EXPECT_GT(fill_counts[0], 0u);
}

// ---- magazine allocator exhaustion semantics --------------------------
//
// The contract under test (src/mem/magazine.hpp): try_allocate may only
// refuse when pool capacity is truly exhausted -- nodes cached in OTHER
// threads' magazines must be flushed back (the exhaustion sweep) rather
// than silently shrinking the observable pool.

namespace {
struct MagNode {
  tagged::AtomicTagged next;
};
}  // namespace

TEST(MagazineExhaustion, SweepMakesOtherThreadsCachedNodesVisible) {
  constexpr std::uint32_t kNodes = 16;
  mem::NodePool<MagNode> pool(kNodes);
  mem::MagazineAllocator<MagNode, 8> mag(pool);

  // Drain the whole pool from this thread.
  obs::arm();
  const auto counters_before = obs::snapshot();
  std::vector<std::uint32_t> held;
  for (std::uint32_t idx = mag.try_allocate(); idx != tagged::kNullIndex;
       idx = mag.try_allocate()) {
    held.push_back(idx);
  }
  ASSERT_EQ(held.size(), kNodes);
  obs::disarm();
#if MSQ_OBS
  // Single-threaded, the slot is always claimable, so every successful
  // allocation is a magazine hit or the served-immediately head of a
  // refill batch: mag_hit + mag_refill == acquires, exactly, and each
  // batch pops kCap/2 = 4 indices -> 16/4 refills.
  const auto delta = obs::snapshot() - counters_before;
  EXPECT_EQ(delta[obs::Counter::kMagHit] + delta[obs::Counter::kMagRefill],
            kNodes);
  EXPECT_EQ(delta[obs::Counter::kMagRefill], kNodes / 4);
  EXPECT_GE(delta[obs::Counter::kPoolRefuse], 1u);  // the stopping refusal
#else
  (void)counters_before;
#endif

  // Free half of it from a different thread: those indices land in that
  // thread's magazine (a different slot than ours, in the common case),
  // NOT in the shared free list.
  std::thread([&] {
    for (std::uint32_t i = 0; i < kNodes / 2; ++i) mag.free(held[i]);
  }).join();
  EXPECT_EQ(mag.unsafe_size(), kNodes / 2)
      << "freed nodes must be visible to the racy aggregate count";

  // This thread must recover every one of them: an allocation that cannot
  // be served locally or from the shared list sweeps the other magazines.
  std::uint32_t recovered = 0;
  for (std::uint32_t idx = mag.try_allocate(); idx != tagged::kNullIndex;
       idx = mag.try_allocate()) {
    ++recovered;
  }
  EXPECT_EQ(recovered, kNodes / 2)
      << "nodes cached in another thread's magazine were lost to exhaustion";
}

TEST(MagazineExhaustion, FlushAllReturnsEverythingToTheSharedList) {
  constexpr std::uint32_t kNodes = 24;
  mem::NodePool<MagNode> pool(kNodes);
  mem::MagazineAllocator<MagNode, 8> mag(pool);

  obs::arm();
  const auto counters_before = obs::snapshot();
  std::vector<std::uint32_t> held;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const std::uint32_t idx = mag.try_allocate();
    ASSERT_NE(idx, tagged::kNullIndex);
    held.push_back(idx);
  }
  for (const std::uint32_t idx : held) mag.free(idx);
  mag.flush_all();
  EXPECT_EQ(mag.shared().unsafe_size(), kNodes)
      << "flush_all must leave no node cached in any magazine";
  obs::disarm();
#if MSQ_OBS
  // mag_hit + mag_refill == acquires (see SweepMakes... for why exact);
  // the 24 frees overflow the 8-slot magazine, so at least one batch went
  // back mid-stream, plus the terminal flush_all.
  const auto delta = obs::snapshot() - counters_before;
  EXPECT_EQ(delta[obs::Counter::kMagHit] + delta[obs::Counter::kMagRefill],
            kNodes);
  EXPECT_GE(delta[obs::Counter::kMagFlush], 2u);
#else
  (void)counters_before;
#endif
}

TEST(TreiberExhaustion, TryPushRefusesCleanlyAndCyclesWithoutLeak) {
  TreiberStack<std::uint64_t> stack(kCapacity);
  std::vector<std::uint64_t> fill_counts;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::uint64_t filled = 0;
    while (stack.try_push(filled)) ++filled;
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(stack.try_push(0xdead));
    std::uint64_t out = 0, popped = 0;
    while (stack.try_pop(out)) {
      // LIFO: values come back in reverse, and never a refused one.
      EXPECT_EQ(out, filled - 1 - popped);
      ++popped;
    }
    EXPECT_EQ(popped, filled);
    fill_counts.push_back(filled);
  }
  for (int cycle = 1; cycle < kCycles; ++cycle) {
    EXPECT_EQ(fill_counts[cycle], fill_counts[0]);
  }
  EXPECT_GT(fill_counts[0], 0u);
}

// ---- stranded-limbo exhaustion (segment queue) ------------------------
//
// Regression for a wedge the sharded front end's tiny per-shard pools made
// near-certain: retire() parks a hazarded segment in limbo, and limbo was
// only re-scanned by a LATER retire.  Once the pool ran dry with a
// since-released segment still parked there, no enqueue could append a
// fresh segment, so no dequeue could ever retire again -- permanent
// try_enqueue refusal on a queue whose capacity was nominally free.
// try_enqueue now sweeps limbo before refusing; this choreography uses a
// FaultPlan halt to strand a segment deterministically and pins the sweep.

TEST(SegmentExhaustion, EnqueueSweepsLimboBeforeRefusing) {
  using Seg = SegmentQueue<std::uint64_t>;
  // Capacity 1 -> two segments total: the drained anchor plus ONE
  // allocatable segment (kSlots items).  The smallest pool that can
  // strand -- and exactly what a sharded front end hands each shard.
  Seg queue(1);

  // Seed: appends S1 (the only free segment) with value 0 in slot 0.
  ASSERT_TRUE(queue.try_enqueue(0));
  ASSERT_EQ(queue.unsafe_free_segments(), 0u);

  fault::FaultPlan plan;
  plan.halt_at("segq.faa_deq");
  plan.arm();

  std::uint64_t victim_out = 0;
  std::atomic<bool> victim_ok{false};
  std::thread victim([&] {
    victim_ok.store(queue.try_dequeue(victim_out));
  });
  // The victim first swings Head off the drained anchor (recycling it to
  // the free list), then parks at S1's ticket FAA holding a hazard on S1.
  plan.wait_for_halted(1);
  plan.disarm();  // parked threads stay parked; our own probes pass
  ASSERT_EQ(queue.unsafe_free_segments(), 1u);

  // kSlots + 1 enqueue/dequeue pairs, single-threaded FIFO: the last
  // pair's enqueue has appended the recycled anchor (draining the pool)
  // and its dequeue has swung Head off the drained S1 and retired it INTO
  // LIMBO -- the victim's hazard is still up.
  constexpr std::uint64_t kPairs = Seg::kSlots + 1;
  for (std::uint64_t i = 0; i < kPairs; ++i) {
    ASSERT_TRUE(queue.try_enqueue(100 + i));
    std::uint64_t out = 0;
    ASSERT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, i == 0 ? 0 : 100 + i - 1);
  }
  ASSERT_EQ(queue.unsafe_free_segments(), 0u);  // S1 is in limbo, not here

  // Resurrect the victim: its stale ticket overshoots drained S1, so it
  // re-reads Head and takes the one in-flight item, dropping the S1
  // hazard on exit.  From here S1 is reapable but still parked in limbo.
  plan.release_halted();
  victim.join();
  ASSERT_TRUE(victim_ok.load());
  EXPECT_EQ(victim_out, 100 + kPairs - 1);

  // Fill to refusal.  Without the exhaustion sweep in try_enqueue the
  // pool is dry and S1 stays stranded (nothing ever retires again), so
  // the fill wedges at the tail segment's leftover slots -- strictly
  // fewer than one full segment.  With the sweep, refusal only comes
  // after S1 has been reaped, recycled, and refilled too.
  std::uint64_t filled = 0;
  while (queue.try_enqueue(1'000 + filled)) ++filled;
  EXPECT_GE(filled, static_cast<std::uint64_t>(Seg::kSlots));

  // Drain-to-empty conservation: every fill that reported success comes
  // back out in order, including those placed in the reaped segment.
  std::uint64_t drained = 0;
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) {
    EXPECT_EQ(out, 1'000 + drained);
    ++drained;
  }
  EXPECT_EQ(drained, filled);
}

}  // namespace
}  // namespace msq::queues
