// Pool-exhaustion backpressure at the queue API, typed over every
// pool-backed queue: when the free list runs dry (mem/*_pool returns
// kNullIndex), try_enqueue must surface a clean `false` -- never an assert,
// never a half-linked node -- and the failed attempt must not leak the
// node it failed to place.  The leak proof is cyclic: fill-to-refusal,
// drain-to-empty, repeated; a single leaked node per cycle would shrink the
// observed capacity monotonically, so "every cycle fills to exactly the
// same count" pins the no-leak property without reaching into pool
// internals.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "mem/magazine.hpp"
#include "mem/node_pool.hpp"
#include "queues/queues.hpp"
#include "tagged/atomic_tagged.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {
namespace {

constexpr std::uint32_t kCapacity = 48;
constexpr int kCycles = 5;

template <typename Q>
class PoolExhaustionTest : public ::testing::Test {
 protected:
  Q queue_{kCapacity};
};

using PoolBackedTypes =
    ::testing::Types<MsQueue<std::uint64_t>, MsQueueDw<std::uint64_t>,
                     TwoLockQueue<std::uint64_t>, SingleLockQueue<std::uint64_t>,
                     MellorCrummeyQueue<std::uint64_t>, RingQueue<std::uint64_t>,
                     PljQueue<std::uint64_t>, ValoisQueue<std::uint64_t>,
                     SegmentQueue<std::uint64_t>>;
TYPED_TEST_SUITE(PoolExhaustionTest, PoolBackedTypes);

TYPED_TEST(PoolExhaustionTest, RefusalIsCleanAndRepeatable) {
  static_assert(TypeParam::traits.pool_backed);
  // Fill to refusal once, then hammer the refused path: every further
  // attempt must return false (not assert, not succeed spuriously).
  std::uint64_t filled = 0;
  while (this->queue_.try_enqueue(filled)) ++filled;
  ASSERT_GT(filled, 0u);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(this->queue_.try_enqueue(0xdead));
  }
  // Exactly what went in comes out, in order; the refused values never
  // materialise.
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < filled; ++i) {
    ASSERT_TRUE(this->queue_.try_dequeue(out)) << "lost item " << i;
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(this->queue_.try_dequeue(out));
}

TYPED_TEST(PoolExhaustionTest, FillDrainCyclesShowNoNodeLeak) {
  std::vector<std::uint64_t> fill_counts;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::uint64_t filled = 0;
    while (this->queue_.try_enqueue(filled)) ++filled;
    // A few extra refusals per cycle: the failure path itself must not
    // consume nodes either.
    for (int i = 0; i < 10; ++i) {
      EXPECT_FALSE(this->queue_.try_enqueue(0xbeef));
    }
    std::uint64_t drained = 0, out = 0;
    while (this->queue_.try_dequeue(out)) ++drained;
    EXPECT_EQ(drained, filled) << "cycle " << cycle << " lost nodes in flight";
    fill_counts.push_back(filled);
  }
  // Capacity observed by cycle 0 must persist: any leak -- in the refused
  // enqueue, the drain, or reclamation (Valois's cascade, MS's free-list
  // recycling) -- would make later cycles fill to fewer items.
  for (int cycle = 1; cycle < kCycles; ++cycle) {
    EXPECT_EQ(fill_counts[cycle], fill_counts[0])
        << "capacity decayed by cycle " << cycle;
  }
  EXPECT_GT(fill_counts[0], 0u);
}

// ---- magazine allocator exhaustion semantics --------------------------
//
// The contract under test (src/mem/magazine.hpp): try_allocate may only
// refuse when pool capacity is truly exhausted -- nodes cached in OTHER
// threads' magazines must be flushed back (the exhaustion sweep) rather
// than silently shrinking the observable pool.

namespace {
struct MagNode {
  tagged::AtomicTagged next;
};
}  // namespace

TEST(MagazineExhaustion, SweepMakesOtherThreadsCachedNodesVisible) {
  constexpr std::uint32_t kNodes = 16;
  mem::NodePool<MagNode> pool(kNodes);
  mem::MagazineAllocator<MagNode, 8> mag(pool);

  // Drain the whole pool from this thread.
  std::vector<std::uint32_t> held;
  for (std::uint32_t idx = mag.try_allocate(); idx != tagged::kNullIndex;
       idx = mag.try_allocate()) {
    held.push_back(idx);
  }
  ASSERT_EQ(held.size(), kNodes);

  // Free half of it from a different thread: those indices land in that
  // thread's magazine (a different slot than ours, in the common case),
  // NOT in the shared free list.
  std::thread([&] {
    for (std::uint32_t i = 0; i < kNodes / 2; ++i) mag.free(held[i]);
  }).join();
  EXPECT_EQ(mag.unsafe_size(), kNodes / 2)
      << "freed nodes must be visible to the racy aggregate count";

  // This thread must recover every one of them: an allocation that cannot
  // be served locally or from the shared list sweeps the other magazines.
  std::uint32_t recovered = 0;
  for (std::uint32_t idx = mag.try_allocate(); idx != tagged::kNullIndex;
       idx = mag.try_allocate()) {
    ++recovered;
  }
  EXPECT_EQ(recovered, kNodes / 2)
      << "nodes cached in another thread's magazine were lost to exhaustion";
}

TEST(MagazineExhaustion, FlushAllReturnsEverythingToTheSharedList) {
  constexpr std::uint32_t kNodes = 24;
  mem::NodePool<MagNode> pool(kNodes);
  mem::MagazineAllocator<MagNode, 8> mag(pool);

  std::vector<std::uint32_t> held;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const std::uint32_t idx = mag.try_allocate();
    ASSERT_NE(idx, tagged::kNullIndex);
    held.push_back(idx);
  }
  for (const std::uint32_t idx : held) mag.free(idx);
  mag.flush_all();
  EXPECT_EQ(mag.shared().unsafe_size(), kNodes)
      << "flush_all must leave no node cached in any magazine";
}

TEST(TreiberExhaustion, TryPushRefusesCleanlyAndCyclesWithoutLeak) {
  TreiberStack<std::uint64_t> stack(kCapacity);
  std::vector<std::uint64_t> fill_counts;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::uint64_t filled = 0;
    while (stack.try_push(filled)) ++filled;
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(stack.try_push(0xdead));
    std::uint64_t out = 0, popped = 0;
    while (stack.try_pop(out)) {
      // LIFO: values come back in reverse, and never a refused one.
      EXPECT_EQ(out, filled - 1 - popped);
      ++popped;
    }
    EXPECT_EQ(popped, filled);
    fill_counts.push_back(filled);
  }
  for (int cycle = 1; cycle < kCycles; ++cycle) {
    EXPECT_EQ(fill_counts[cycle], fill_counts[0]);
  }
  EXPECT_GT(fill_counts[0], 0u);
}

}  // namespace
}  // namespace msq::queues
