// Pinning down the backoff policies' window semantics (paper section 4:
// "test-and-test_and_set locks with bounded exponential backoff"): doubling
// per pause(), saturation at max_spins, and reset() forgetting contention
// history.  The window() accessor exists precisely so these semantics are
// testable without timing anything.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/queue_iface.hpp"
#include "sync/backoff.hpp"

namespace msq {
namespace {

TEST(Backoff, WindowStartsAtMinAndDoublesPerPause) {
  sync::Backoff backoff;
  EXPECT_EQ(backoff.window(), backoff.params().min_spins);
  std::uint32_t expected = backoff.params().min_spins;
  // min=4 doubles 8 times to reach max=1024.
  for (int i = 0; i < 8; ++i) {
    backoff.pause();
    expected *= 2;
    EXPECT_EQ(backoff.window(), expected) << "after pause " << i + 1;
  }
  EXPECT_EQ(backoff.window(), backoff.params().max_spins);
}

TEST(Backoff, WindowSaturatesAtMaxAndStaysThere) {
  sync::Backoff backoff(sync::Backoff::Params{.min_spins = 2, .max_spins = 16});
  for (int i = 0; i < 50; ++i) backoff.pause();
  EXPECT_EQ(backoff.window(), 16u);
  backoff.pause();  // saturated: further pauses must not overflow past max
  EXPECT_EQ(backoff.window(), 16u);
}

TEST(Backoff, MaxNotAPowerOfTwoMultipleOfMinStillBounds) {
  // min=4 doubles 4,8,16,32,64 -- the last double overshoots max=48; the
  // policy's contract is "window stops growing once >= max", so the window
  // must never double AGAIN past that point.
  sync::Backoff backoff(sync::Backoff::Params{.min_spins = 4, .max_spins = 48});
  std::uint32_t prev = backoff.window();
  for (int i = 0; i < 20; ++i) {
    backoff.pause();
    const std::uint32_t w = backoff.window();
    EXPECT_LE(w, 2 * 48u) << "window grew after reaching max";
    EXPECT_TRUE(w == prev || w == 2 * prev);
    prev = w;
  }
  EXPECT_EQ(prev, 64u);  // one overshoot, then pinned
}

TEST(Backoff, ResetRestoresMinAfterAnyAmountOfContention) {
  sync::Backoff backoff;
  for (int i = 0; i < 30; ++i) backoff.pause();
  EXPECT_EQ(backoff.window(), backoff.params().max_spins);
  backoff.reset();
  EXPECT_EQ(backoff.window(), backoff.params().min_spins);
  // And the doubling ladder restarts from scratch.
  backoff.pause();
  EXPECT_EQ(backoff.window(), 2 * backoff.params().min_spins);
}

TEST(Backoff, ResetOnFreshBackoffIsANoOp) {
  sync::Backoff backoff;
  backoff.reset();
  EXPECT_EQ(backoff.window(), backoff.params().min_spins);
}

TEST(NullBackoff, PauseAndResetAreCallableNoOps) {
  sync::NullBackoff backoff;
  backoff.pause();  // must not hang, spin unboundedly, or crash
  backoff.reset();
  backoff.pause();
}

TEST(SimBackoff, NextDoublesFromFourUpToMax) {
  sim::SimBackoff backoff(64);
  EXPECT_EQ(backoff.next(), 4.0);
  EXPECT_EQ(backoff.next(), 8.0);
  EXPECT_EQ(backoff.next(), 16.0);
  EXPECT_EQ(backoff.next(), 32.0);
  EXPECT_EQ(backoff.next(), 64.0);
  EXPECT_EQ(backoff.next(), 64.0);  // saturated
  EXPECT_EQ(backoff.next(), 64.0);
}

TEST(SimBackoff, DisabledBackoffChargesUnitCost) {
  // max <= 0 is the ablation knob: every episode costs exactly 1 work unit
  // so retry loops still advance the simulated clock but never spread out.
  sim::SimBackoff backoff(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(backoff.next(), 1.0);
}

}  // namespace
}  // namespace msq
