// The shared bounded-queue oracle: RingQueue and ScqQueue implement the
// same CONTRACT -- refuse at capacity (kPoolRefuse + kQueueFull per
// refused call), report empty (kDequeueEmpty per miss), deliver FIFO --
// even though one blocks on a stalled peer's slot handshake and the other
// marks the stalled peer's entry unsafe and routes around it.  The oracle
// runs an identical single-threaded script against both and diffs the
// OBSERVABLE story: accepted counts, refusal counts, counter deltas.
//
// The second half pins down the reachability of every scq fault window
// (tools/fault_sites_lint.py closes the loop): the plain operation sites
// fire on ordinary traffic, and the threshold-budget window -- which only
// opens when the tail runs ahead of a scanning dequeuer -- is staged
// deterministically by parking two enqueuers inside their deposit CAS.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/counters.hpp"
#include "queues/queues.hpp"

namespace msq {
namespace {

// ---------------------------------------------------------------------------
// The oracle: one script, two queues, identical observable behaviour.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kCapacity = 8;  // power of two: exact for both

/// Everything a bounded queue's user can observe from the shared script.
struct Oracle {
  std::uint64_t accepted = 0;        // enqueues until the first refusal
  std::uint64_t drained = 0;         // dequeues until the first miss
  std::vector<std::uint64_t> order;  // values in dequeue order
  std::uint64_t enq = 0;             // counter deltas over the whole script
  std::uint64_t deq = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t pool_refuse = 0;
  std::uint64_t deq_empty = 0;

  bool operator==(const Oracle& o) const {
    return accepted == o.accepted && drained == o.drained &&
           order == o.order && enq == o.enq && deq == o.deq &&
           queue_full == o.queue_full && pool_refuse == o.pool_refuse &&
           deq_empty == o.deq_empty;
  }
};

/// Two fill/refuse/drain/miss cycles: refusal and emptiness must both be
/// clean (no lost values) and repeatable (the refused/missed calls leave
/// no residue that changes the next cycle).
template <typename Q>
Oracle run_script() {
  Q queue(kCapacity);
  Oracle o;
  obs::arm();
  const auto before = obs::snapshot();
  std::uint64_t next = 100;
  for (int cycle = 0; cycle < 2; ++cycle) {
    std::uint64_t accepted = 0;
    while (queue.try_enqueue(next + accepted)) ++accepted;
    if (cycle == 0) o.accepted = accepted;
    EXPECT_EQ(accepted, kCapacity);
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(queue.try_enqueue(999));  // repeatable refusal
    }
    std::uint64_t out = 0;
    std::uint64_t drained = 0;
    while (queue.try_dequeue(out)) {
      o.order.push_back(out);
      ++drained;
    }
    if (cycle == 0) o.drained = drained;
    for (int i = 0; i < 2; ++i) {
      EXPECT_FALSE(queue.try_dequeue(out));  // repeatable emptiness
    }
    next += accepted;
  }
  const auto delta = obs::snapshot() - before;
  obs::disarm();
  o.enq = delta[obs::Counter::kEnqueue];
  o.deq = delta[obs::Counter::kDequeue];
  o.queue_full = delta[obs::Counter::kQueueFull];
  o.pool_refuse = delta[obs::Counter::kPoolRefuse];
  o.deq_empty = delta[obs::Counter::kDequeueEmpty];
  return o;
}

TEST(BoundedQueueOracle, RingAndScqTellTheSameObservableStory) {
  const Oracle ring = run_script<queues::RingQueue<std::uint64_t>>();
  const Oracle scq = run_script<queues::ScqQueue<std::uint64_t>>();

  // The contract, spelled out once (against ring) so a joint regression
  // in both queues cannot slip through the equality check below.
  EXPECT_EQ(ring.accepted, kCapacity);
  EXPECT_EQ(ring.drained, kCapacity);
  EXPECT_EQ(ring.enq, 2 * kCapacity);
  EXPECT_EQ(ring.deq, 2 * kCapacity);
  EXPECT_EQ(ring.queue_full, 2 * 3u + 2u);  // 3 probes + the stopping call
  EXPECT_EQ(ring.pool_refuse, ring.queue_full);
  EXPECT_EQ(ring.deq_empty, 2 * 2u + 2u);
  ASSERT_EQ(ring.order.size(), 2 * kCapacity);
  for (std::size_t i = 0; i < ring.order.size(); ++i) {
    EXPECT_EQ(ring.order[i], 100 + i) << "FIFO violated at " << i;
  }

  EXPECT_TRUE(ring == scq)
      << "ring and scq disagree on the bounded-queue contract";
}

// ---------------------------------------------------------------------------
// Fault-window reachability (the lint's coverage plans).
// ---------------------------------------------------------------------------

// Ordinary traffic crosses every window except the threshold budget: an
// enqueue takes a free index (scq.faa_deq on the free ring) and deposits
// it (scq.faa_enq + scq.enq_cas on the allocated ring); a dequeue mirrors
// it; and a dequeue on a just-emptied queue advances a stale entry's
// cycle (scq.deq_mark) then drags the lagging tail forward (scq.catchup).
TEST(ScqFaultWindows, OperationAndCatchupWindowsAreReachable) {
  queues::ScqQueue<std::uint64_t> queue(4);
  fault::FaultPlan plan;
  plan.delay_at("scq.enq", /*yields=*/1);
  plan.delay_at("scq.deq", /*yields=*/1);
  plan.delay_at("scq.faa_enq", /*yields=*/1);
  plan.delay_at("scq.enq_cas", /*yields=*/1);
  plan.delay_at("scq.faa_deq", /*yields=*/1);
  plan.delay_at("scq.deq_mark", /*yields=*/1);
  plan.delay_at("scq.catchup", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(7));
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 7u);
  EXPECT_FALSE(queue.try_dequeue(out));  // the mark + catch-up dequeue
  plan.disarm();
  EXPECT_GT(plan.hits("scq.enq"), 0u);
  EXPECT_GT(plan.hits("scq.deq"), 0u);
  EXPECT_GT(plan.hits("scq.faa_enq"), 0u);
  EXPECT_GT(plan.hits("scq.enq_cas"), 0u);
  EXPECT_GT(plan.hits("scq.faa_deq"), 0u);
  EXPECT_GT(plan.hits("scq.deq_mark"), 0u);
  EXPECT_GT(plan.hits("scq.catchup"), 0u);
}

// The threshold window only opens when the tail is MORE than one ahead of
// a missing dequeuer -- i.e. some enqueuer has claimed a ticket but not
// yet deposited.  Stage it: park TWO enqueuers inside their deposit CAS
// (tickets claimed, entries still empty), then scan from a dequeuer.  Its
// first miss sees tail two ahead -> spends budget (scq.threshold); its
// second miss reaches the tail -> catch-up path.  This is also the
// non-blocking contrast with RingQueue: the dequeuer RETURNS (empty)
// while both enqueuers are wedged, rather than spinning on their slots.
TEST(ScqFaultWindows, ThresholdBudgetWindowIsReachable) {
  queues::ScqQueue<std::uint64_t> queue(4);
  // Pre-arm the allocated ring's budget: a completed deposit resets it
  // (a fresh empty ring's -1 would short-circuit the scan entirely).
  ASSERT_TRUE(queue.try_enqueue(1));
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_dequeue(out));

  fault::FaultPlan plan;
  plan.delay_at("scq.threshold", /*yields=*/1);
  plan.halt_at("scq.enq_cas", /*skip=*/0, /*victims=*/2);
  plan.arm();

  std::atomic<bool> ok1{false};
  std::atomic<bool> ok2{false};
  std::thread e1([&] { ok1.store(queue.try_enqueue(11)); });
  std::thread e2([&] { ok2.store(queue.try_enqueue(12)); });
  plan.wait_for_halted(2);  // both parked: tickets taken, deposits pending

  EXPECT_FALSE(queue.try_dequeue(out));  // threshold-certified empty
  EXPECT_GT(plan.hits("scq.threshold"), 0u);

  plan.disarm();
  plan.release_halted();
  e1.join();
  e2.join();
  EXPECT_TRUE(ok1.load());
  EXPECT_TRUE(ok2.load());

  // The resurrected deposits landed: both values drain (ticket order
  // between the two racing enqueuers is theirs to decide).
  std::set<std::uint64_t> drained;
  while (queue.try_dequeue(out)) drained.insert(out);
  EXPECT_EQ(drained, (std::set<std::uint64_t>{11, 12}));
}

}  // namespace
}  // namespace msq
