// Tests for hazard-pointer reclamation (mem/hazard.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mem/hazard.hpp"

namespace msq::mem {
namespace {

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  Tracked() { live.fetch_add(1); }
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(HazardDomain, RetireWithoutHazardReclaimsOnScan) {
  HazardDomain domain;
  auto* obj = new Tracked(1);
  const int before = Tracked::live.load();
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), before - 1);
}

TEST(HazardDomain, PublishedHazardBlocksReclamation) {
  HazardDomain domain;
  std::atomic<Tracked*> shared{new Tracked(7)};
  Tracked* protected_ptr = domain.protect(0, shared);
  ASSERT_EQ(protected_ptr, shared.load());

  const int live_before = Tracked::live.load();
  domain.retire(protected_ptr);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), live_before) << "reclaimed under a hazard";

  domain.clear_hazard(0);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), live_before - 1);
  shared.store(nullptr);
}

TEST(HazardDomain, ProtectRetriesUntilStable) {
  HazardDomain domain;
  auto* a = new Tracked(1);
  std::atomic<Tracked*> shared{a};
  // Single-threaded protect must return the current pointer and leave the
  // hazard published.
  EXPECT_EQ(domain.protect(0, shared), a);
  domain.clear_hazard(0);
  domain.retire(a);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ConcurrentProtectAndRetireNeverUseAfterFree) {
  // A writer repeatedly swaps the shared pointer and retires the old value;
  // readers protect and dereference.  ASAN (or the payload sentinel) would
  // flag a reclamation racing a protected read.
  HazardDomain domain;
  std::atomic<Tracked*> shared{new Tracked(0)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          Tracked* p = domain.protect(0, shared);
          if (p != nullptr) {
            // Dereference under hazard: must be live.
            ASSERT_GE(p->payload, 0);
            reads.fetch_add(1, std::memory_order_relaxed);
          }
          domain.clear_hazard(0);
        }
      });
    }
    threads.emplace_back([&] {
      for (int i = 1; i <= 50'000; ++i) {
        Tracked* next = new Tracked(i);
        Tracked* old = shared.exchange(next);
        domain.retire(old);
      }
      stop.store(true);
    });
  }
  domain.retire(shared.exchange(nullptr));
  domain.scan();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0) << "nodes leaked or double-freed";
}

TEST(HazardDomain, ScanOrderingVsOrphans) {
  // Regression for a real use-after-free: scan() used to collect its hazard
  // snapshot BEFORE taking possession of the orphan list.  An exiting
  // thread could retire-and-orphan a node after the snapshot, and a peer
  // that published + validated a hazard on that node in between was not in
  // the snapshot -- the sweep freed a node in active use.  The scenario
  // needs >= 3 parties and thread churn; this stress runs many short
  // generations of workers over one domain and one shared structure.
  // (Found by ASAN; with the fix this runs clean under ASAN and never
  // crashes or double-frees in any build.)
  mem::HazardDomain domain;
  struct QNode {
    std::uint64_t value{};
    std::atomic<QNode*> next{nullptr};
  };
  std::atomic<QNode*> head{new QNode{}};  // Treiber-ish shared stack top

  for (int generation = 0; generation < 30; ++generation) {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 3'000; ++i) {
          // push
          auto* node = new QNode{.value = static_cast<std::uint64_t>(i)};
          QNode* top = head.load(std::memory_order_acquire);
          do {
            node->next.store(top, std::memory_order_relaxed);
          } while (!head.compare_exchange_weak(top, node,
                                               std::memory_order_release,
                                               std::memory_order_acquire));
          // pop (hazard-protected)
          for (;;) {
            QNode* h = domain.protect(0, head);
            if (h == nullptr) break;
            QNode* next = h->next.load(std::memory_order_acquire);  // deref!
            QNode* expected = h;
            if (head.compare_exchange_strong(expected, next,
                                             std::memory_order_acq_rel)) {
              domain.clear_hazard(0);
              if (h->value != 0xDEADDEADDEADDEADull) {
                h->value = 0xDEADDEADDEADDEADull;  // poison-on-retire marker
                domain.retire(h);
              }
              break;
            }
          }
        }
        domain.clear_hazard(0);
      });
    }
    // jthreads join here: each generation orphans its retired buffers while
    // the NEXT generation's scans race the handoff.
  }
  domain.scan();
  // Tear down the remaining stack.
  QNode* n = head.exchange(nullptr);
  while (n != nullptr) {
    QNode* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
  SUCCEED();  // the assertion is "no crash / no double free / ASAN-clean"
}

TEST(HazardDomain, ThreadExitOrphansAreEventuallyReclaimed) {
  HazardDomain domain;
  {
    std::jthread worker([&] {
      // Retire a handful below the scan threshold, then exit: the nodes
      // must land on the orphan list, not leak.
      for (int i = 0; i < 10; ++i) domain.retire(new Tracked(i));
    });
  }
  domain.scan();  // another thread drains the orphans
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
}  // namespace msq::mem
