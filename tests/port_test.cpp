// Tests for the portability layer (port/).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "port/clock.hpp"
#include "port/cpu.hpp"
#include "port/prng.hpp"
#include "port/spin_work.hpp"

namespace msq::port {
namespace {

TEST(Cpu, CacheAlignedReallyAligns) {
  struct TwoCounters {
    CacheAligned<std::uint64_t> a;
    CacheAligned<std::uint64_t> b;
  };
  TwoCounters c;
  const auto pa = reinterpret_cast<std::uintptr_t>(&c.a.value);
  const auto pb = reinterpret_cast<std::uintptr_t>(&c.b.value);
  EXPECT_EQ(pa % kCacheLine, 0u);
  EXPECT_EQ(pb % kCacheLine, 0u);
  EXPECT_GE(pb - pa, kCacheLine) << "a and b share a cache line";
}

TEST(Cpu, RelaxIsCallable) {
  for (int i = 0; i < 100; ++i) cpu_relax();
  SUCCEED();
}

TEST(Clock, Monotonic) {
  const std::int64_t a = now_ns();
  spin_work(10'000);
  const std::int64_t b = now_ns();
  EXPECT_GE(b, a);
}

TEST(Clock, NsToSecondsConversion) {
  EXPECT_DOUBLE_EQ(ns_to_seconds(1'000'000'000), 1.0);
  EXPECT_DOUBLE_EQ(ns_to_seconds(500), 5e-7);
}

TEST(Prng, DeterministicGivenSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Prng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Prng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u) << "8 buckets should all be hit in 1000 draws";
}

TEST(Prng, UsableAsUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  SUCCEED();
}

TEST(SpinWork, ZeroIsNoOp) {
  spin_work(0);
  SUCCEED();
}

TEST(SpinWork, TimeGrowsWithIterations) {
  // Coarse monotonicity: 40x the iterations should take measurably longer.
  const std::int64_t t0 = now_ns();
  spin_work(100'000);
  const std::int64_t small = now_ns() - t0;
  const std::int64_t t1 = now_ns();
  spin_work(4'000'000);
  const std::int64_t large = now_ns() - t1;
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace msq::port
