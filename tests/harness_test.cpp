// Tests for the workload harness (driver, calibration, stats, tables).
#include <gtest/gtest.h>

#include <sstream>

#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "queues/ms_queue.hpp"
#include "queues/two_lock_queue.hpp"

namespace msq::harness {
namespace {

TEST(Calibrate, SpinRateIsPositiveAndStable) {
  const double rate1 = spin_iters_per_us();
  const double rate2 = spin_iters_per_us();
  EXPECT_GT(rate1, 0.0);
  // Two measurements on the same machine agree within 5x (coarse: we only
  // need the right order of magnitude for the 6us other-work spin).
  EXPECT_LT(rate1 / rate2, 5.0);
  EXPECT_LT(rate2 / rate1, 5.0);
}

TEST(Calibrate, ItersScaleWithMicroseconds) {
  const auto one = spin_iters_for_us(1.0);
  const auto six = spin_iters_for_us(6.0);
  EXPECT_GT(one, 0u);
  EXPECT_NEAR(static_cast<double>(six), 6.0 * static_cast<double>(one),
              static_cast<double>(one));
}

TEST(Driver, RunsPaperLoopAndCountsEverything) {
  queues::MsQueue<std::uint64_t> queue(64);
  WorkloadConfig config;
  config.threads = 3;
  config.total_pairs = 9'001;  // deliberately not divisible by threads
  config.other_work_iters = 0;
  const WorkloadResult result = run_workload(queue, config);
  EXPECT_EQ(result.enqueues, config.total_pairs);
  EXPECT_EQ(result.dequeues + result.empty_dequeues, config.total_pairs);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  // Whatever empty dequeues happened left items behind; drain matches.
  std::uint64_t out = 0;
  std::uint64_t left = 0;
  while (queue.try_dequeue(out)) ++left;
  EXPECT_EQ(left, result.empty_dequeues);
}

TEST(Driver, HistoryRecordingProducesConsistentLogs) {
  queues::TwoLockQueue<std::uint64_t> queue(64);
  WorkloadConfig config;
  config.threads = 2;
  config.total_pairs = 2'000;
  config.record_history = true;
  const WorkloadResult result = run_workload(queue, config);
  ASSERT_EQ(result.logs.size(), 2u);
  std::uint64_t events = 0;
  for (const auto& log : result.logs) events += log.events().size();
  EXPECT_EQ(events, 2 * config.total_pairs);  // one enq + one deq per pair
  for (const auto& log : result.logs) {
    for (const auto& e : log.events()) {
      EXPECT_LE(e.invoke_ns, e.response_ns);
    }
  }
}

TEST(Driver, NetSubtractsOtherWork) {
  queues::MsQueue<std::uint64_t> queue(64);
  WorkloadConfig config;
  config.threads = 1;
  config.total_pairs = 5'000;
  config.other_work_iters = spin_iters_for_us(2.0);
  const WorkloadResult result = run_workload(queue, config);
  EXPECT_LT(result.net_seconds, result.elapsed_seconds);
  // For one thread nearly all time IS other work; net must be a small
  // fraction of elapsed.
  EXPECT_LT(result.net_seconds, result.elapsed_seconds * 0.6);
}

TEST(Stats, SummarizesKnownSamples) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_EQ(s.n, 5u);
}

TEST(Stats, HandlesDegenerateInputs) {
  const Summary empty = summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);

  const Summary one = summarize({7.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.max, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(Stats, EvenSampleCountMedianAveragesTheMiddlePair) {
  // With an even n, taking either middle sample alone would bias the
  // median; the interpolated value is the standard definition.
  const Summary four = summarize({1.0, 2.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(four.median, 6.0);

  const Summary two = summarize({3.0, 5.0});
  EXPECT_DOUBLE_EQ(two.median, 4.0);

  // Order of the input must not matter.
  const Summary shuffled = summarize({100.0, 1.0, 10.0, 2.0});
  EXPECT_DOUBLE_EQ(shuffled.median, 6.0);
}

TEST(SeriesTable, RendersAlignedTableAndCsv) {
  SeriesTable table("Figure X", "procs");
  const std::size_t ms = table.add_series("MS");
  const std::size_t lock = table.add_series("single");
  table.add_row(1);
  table.set(ms, 1.5);
  table.set(lock, 2.25);
  table.add_row(2);
  table.set(ms, 1.25);  // `single` left missing

  std::ostringstream text;
  table.print(text);
  EXPECT_NE(text.str().find("Figure X"), std::string::npos);
  EXPECT_NE(text.str().find("MS"), std::string::npos);
  EXPECT_NE(text.str().find("1.5000"), std::string::npos);
  EXPECT_NE(text.str().find("-"), std::string::npos);  // missing cell

  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("procs,MS,single"), std::string::npos);
  EXPECT_NE(csv.str().find("1,1.5,2.25"), std::string::npos);
  EXPECT_NE(csv.str().find("2,1.25,"), std::string::npos);
}

TEST(SeriesTable, SeriesAddedAfterRowsBackfillAsMissing) {
  SeriesTable table("t", "x");
  table.add_row(1);
  const std::size_t late = table.add_series("late");
  table.set(late, 9.0);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("1,9"), std::string::npos);
}

}  // namespace
}  // namespace msq::harness
