// Unit and stress tests for the pool/free-list substrate (mem/node_pool,
// mem/freelist, mem/value_cell) -- the paper's "non-blocking free list"
// built from Treiber's stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "mem/freelist.hpp"
#include "mem/node_pool.hpp"
#include "mem/value_cell.hpp"
#include "tagged/atomic_tagged.hpp"

namespace msq::mem {
namespace {

struct TestNode {
  std::uint64_t payload = 0;
  tagged::AtomicTagged next;
};

TEST(NodePool, IndexingAndIndexOf) {
  NodePool<TestNode> pool(8);
  EXPECT_EQ(pool.capacity(), 8u);
  pool[3].payload = 99;
  EXPECT_EQ(pool[3].payload, 99u);
  EXPECT_EQ(pool.index_of(pool[5]), 5u);
}

TEST(FreeList, HoldsWholePoolInitially) {
  NodePool<TestNode> pool(16);
  FreeList<TestNode> freelist(pool);
  EXPECT_EQ(freelist.unsafe_size(), 16u);
}

TEST(FreeList, AllocateReturnsDistinctNodesUntilExhausted) {
  NodePool<TestNode> pool(4);
  FreeList<TestNode> freelist(pool);
  std::unordered_set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t idx = freelist.try_allocate();
    ASSERT_NE(idx, tagged::kNullIndex);
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate allocation";
  }
  EXPECT_EQ(freelist.try_allocate(), tagged::kNullIndex);  // exhausted
  EXPECT_EQ(freelist.unsafe_size(), 0u);
}

TEST(FreeList, FreeMakesNodeAvailableAgain) {
  NodePool<TestNode> pool(2);
  FreeList<TestNode> freelist(pool);
  const std::uint32_t a = freelist.try_allocate();
  const std::uint32_t b = freelist.try_allocate();
  ASSERT_EQ(freelist.try_allocate(), tagged::kNullIndex);
  freelist.free(a);
  EXPECT_EQ(freelist.try_allocate(), a);  // LIFO: last freed, first reused
  freelist.free(b);
  freelist.free(a);
}

TEST(FreeList, ConcurrentAllocFreeNeverDuplicates) {
  // Each thread repeatedly allocates a batch and frees it.  A broken stack
  // (ABA, lost node) would eventually hand one node to two threads; the
  // ownership flags catch that immediately.
  constexpr std::uint32_t kNodes = 64;
  constexpr int kThreads = 4;
  constexpr int kRounds = 20'000;
  NodePool<TestNode> pool(kNodes);
  FreeList<TestNode> freelist(pool);
  std::vector<std::atomic<bool>> owned(kNodes);
  std::atomic<bool> failed{false};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        std::vector<std::uint32_t> mine;
        for (int r = 0; r < kRounds && !failed.load(std::memory_order_acquire); ++r) {
          for (int i = 0; i < 8; ++i) {
            const std::uint32_t idx = freelist.try_allocate();
            if (idx == tagged::kNullIndex) break;
            if (owned[idx].exchange(true, std::memory_order_acq_rel)) failed.store(true, std::memory_order_release);
            mine.push_back(idx);
          }
          for (const std::uint32_t idx : mine) {
            owned[idx].store(false, std::memory_order_release);
            freelist.free(idx);
          }
          mine.clear();
        }
      });
    }
  }
  EXPECT_FALSE(failed.load(std::memory_order_acquire)) << "free list handed a node to two owners";
  EXPECT_EQ(freelist.unsafe_size(), kNodes);
}

TEST(FreeList, ExhaustionUnderContentionRecovers) {
  constexpr std::uint32_t kNodes = 8;
  NodePool<TestNode> pool(kNodes);
  FreeList<TestNode> freelist(pool);
  std::atomic<std::uint64_t> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int r = 0; r < 10'000; ++r) {
          const std::uint32_t idx = freelist.try_allocate();
          if (idx == tagged::kNullIndex) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          freelist.free(idx);
        }
      });
    }
  }
  // All nodes must be back regardless of how many allocations failed.
  EXPECT_EQ(freelist.unsafe_size(), kNodes);
}

TEST(ValueCell, RoundTripsSmallTypes) {
  ValueCell<std::uint64_t> big;
  big.put(0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(big.get(), 0xDEADBEEFCAFEBABEull);

  ValueCell<int> small;
  small.put(-42);
  EXPECT_EQ(small.get(), -42);

  ValueCell<double> real;
  real.put(3.25);
  EXPECT_EQ(real.get(), 3.25);

  struct Pair {
    std::uint32_t a, b;
  };
  ValueCell<Pair> pair;
  pair.put({7, 9});
  EXPECT_EQ(pair.get().a, 7u);
  EXPECT_EQ(pair.get().b, 9u);
}

TEST(ValueCell, ConcurrentReadsDuringWritesAreWellDefined) {
  // The exact D11 situation: one thread overwrites while others read; every
  // read must observe some previously stored whole value, never a torn one.
  ValueCell<std::uint64_t> cell;
  cell.put(0);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < 100'000; ++i) {
        cell.put((i & 0xFF) * 0x0101010101010101ull);  // all bytes equal
      }
      stop.store(true, std::memory_order_release);
    });
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const std::uint64_t v = cell.get();
          const std::uint64_t byte = v & 0xFF;
          if (v != byte * 0x0101010101010101ull) torn.store(true, std::memory_order_release);
        }
      });
    }
  }
  EXPECT_FALSE(torn.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace msq::mem
