// Tests for Treiber's non-blocking stack [21] as a public container.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "queues/treiber_stack.hpp"

namespace msq::queues {
namespace {

TEST(TreiberStack, LifoOrder) {
  TreiberStack<std::uint64_t> stack(8);
  for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(stack.try_push(i));
  std::uint64_t out = 0;
  for (std::uint64_t i = 5; i-- > 0;) {
    ASSERT_TRUE(stack.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(stack.try_pop(out));
}

TEST(TreiberStack, CapacityBound) {
  TreiberStack<std::uint64_t> stack(2);
  EXPECT_TRUE(stack.try_push(1));
  EXPECT_TRUE(stack.try_push(2));
  EXPECT_FALSE(stack.try_push(3));
  std::uint64_t out = 0;
  ASSERT_TRUE(stack.try_pop(out));
  EXPECT_TRUE(stack.try_push(3));
}

TEST(TreiberStack, OptionalPopForm) {
  TreiberStack<std::uint64_t> stack(2);
  EXPECT_EQ(stack.try_pop(), std::nullopt);
  ASSERT_TRUE(stack.try_push(9));
  EXPECT_EQ(stack.try_pop(), std::optional<std::uint64_t>(9));
}

TEST(TreiberStack, ConcurrentPushPopConserves) {
  TreiberStack<std::uint64_t> stack(128);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 40'000;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < kOps; ++i) {
          if ((i + t) % 2 == 0) {
            if (stack.try_push((static_cast<std::uint64_t>(t) << 32) | seq++)) {
              pushed.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            std::uint64_t out = 0;
            if (stack.try_pop(out)) {
              popped.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
  }
  std::uint64_t out = 0;
  std::uint64_t drained = 0;
  std::unordered_set<std::uint64_t> seen;
  while (stack.try_pop(out)) {
    ++drained;
    EXPECT_TRUE(seen.insert(out).second) << "duplicate element survived";
  }
  EXPECT_EQ(pushed.load(), popped.load() + drained);
}

TEST(TreiberStack, PerThreadLifoVisibleInSequentialPhases) {
  // After a parallel push phase, popping yields each thread's elements in
  // reverse push order (LIFO holds per thread even if interleaved).
  TreiberStack<std::uint64_t> stack(64);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kEach = 10;
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kEach; ++i) {
          ASSERT_TRUE(stack.try_push((static_cast<std::uint64_t>(t) << 32) | i));
        }
      });
    }
  }
  std::vector<std::uint64_t> last_seen(kThreads, kEach);
  std::uint64_t out = 0;
  while (stack.try_pop(out)) {
    const auto thread = static_cast<std::uint32_t>(out >> 32);
    const std::uint64_t seq = out & 0xFFFFFFFFull;
    ASSERT_LT(thread, kThreads);
    EXPECT_LT(seq, last_seen[thread]) << "per-thread LIFO violated";
    last_seen[thread] = seq;
  }
}

}  // namespace
}  // namespace msq::queues
