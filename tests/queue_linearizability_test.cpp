// Linearizability tests against real-thread executions (paper section 3.2).
//
// Small histories (few threads x few ops, repeated across many seeds/runs)
// are decided EXACTLY with the Wing-Gong checker; large stress histories are
// screened with the scalable real-time FIFO-order checker.  Both run typed
// over every queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "check/lin_check.hpp"
#include "port/clock.hpp"
#include "queues/queues.hpp"
#include "sharded_oracle.hpp"

namespace msq::queues {
namespace {

template <typename Q>
struct Factory {
  static Q make(std::uint32_t capacity) { return Q(capacity); }
};
template <typename T, typename B>
struct Factory<MsQueueHp<T, B>> {
  static MsQueueHp<T, B> make(std::uint32_t) { return MsQueueHp<T, B>(); }
};

template <typename Q>
class QueueLinearizabilityTest : public ::testing::Test {};

using QueueTypes =
    ::testing::Types<MsQueue<std::uint64_t>, MsQueueDw<std::uint64_t>,
                     MsQueueHp<std::uint64_t>, TwoLockQueue<std::uint64_t>,
                     SingleLockQueue<std::uint64_t>,
                     MellorCrummeyQueue<std::uint64_t>, RingQueue<std::uint64_t>,
                     ScqQueue<std::uint64_t>, PljQueue<std::uint64_t>,
                     ValoisQueue<std::uint64_t>, SegmentQueue<std::uint64_t>,
                     // A single shard is exactly its inner queue plus the
                     // ticket scaffolding: must stay fully linearizable.
                     ShardedQueue<MsQueue<std::uint64_t>, 1>,
                     WfQueue<std::uint64_t>>;
TYPED_TEST_SUITE(QueueLinearizabilityTest, QueueTypes);

TYPED_TEST(QueueLinearizabilityTest, SmallHistoriesAreExactlyLinearizable) {
  // 3 threads x 4 ops = <= 24 events per round; 50 rounds of genuinely
  // preempted interleavings on this 1-core host.
  constexpr int kRounds = 50;
  constexpr std::uint32_t kThreads = 3;
  for (int round = 0; round < kRounds; ++round) {
    auto queue = Factory<TypeParam>::make(64);
    std::vector<check::ThreadLog> logs;
    for (std::uint32_t t = 0; t < kThreads; ++t) logs.emplace_back(t);
    {
      std::vector<std::jthread> threads;
      for (std::uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          check::ThreadLog& log = logs[t];
          for (std::uint64_t i = 0; i < 2; ++i) {
            const std::uint64_t v = check::encode_value(t, i);
            std::int64_t inv = port::now_ns();
            while (!queue.try_enqueue(v)) {
              std::this_thread::yield();
            }
            log.record(check::OpKind::kEnqueue, v, inv, port::now_ns());
            std::uint64_t out = 0;
            inv = port::now_ns();
            const bool ok = queue.try_dequeue(out);
            log.record(ok ? check::OpKind::kDequeue
                          : check::OpKind::kDequeueEmpty,
                       out, inv, port::now_ns());
          }
        });
      }
    }
    const auto history = check::merge_logs(logs);
    const auto result = check::check_linearizable_exact(history);
    ASSERT_TRUE(result.ok) << "round " << round << ": " << result.diagnosis;
  }
}

TYPED_TEST(QueueLinearizabilityTest, LargeHistorySatisfiesRealTimeFifoOrder) {
  auto queue = Factory<TypeParam>::make(512);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPairs = 15'000;
  std::vector<check::ThreadLog> logs;
  for (std::uint32_t t = 0; t < kThreads; ++t) logs.emplace_back(t);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        check::ThreadLog& log = logs[t];
        log.reserve(2 * kPairs);
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          const std::uint64_t v = check::encode_value(t, i);
          std::int64_t inv = port::now_ns();
          while (!queue.try_enqueue(v)) {
            std::this_thread::yield();
          }
          log.record(check::OpKind::kEnqueue, v, inv, port::now_ns());
          std::uint64_t out = 0;
          inv = port::now_ns();
          if (queue.try_dequeue(out)) {
            log.record(check::OpKind::kDequeue, out, inv, port::now_ns());
          }
        }
      });
    }
  }
  // Drain what the paired loop left behind.
  {
    check::ThreadLog drain(kThreads);
    std::uint64_t out = 0;
    const std::int64_t inv = port::now_ns();
    while (queue.try_dequeue(out)) {
      drain.record(check::OpKind::kDequeue, out, inv, port::now_ns());
    }
    logs.push_back(drain);
  }
  const auto history = check::merge_logs(logs);
  const auto result = check::check_fifo_order(history);
  EXPECT_TRUE(result.ok) << result.diagnosis;
}

// Multi-shard configurations are deliberately NOT globally FIFO, so they
// get the per-shard-FIFO oracle instead of check_fifo_order: conservation
// over the merged history stays mandatory, and each consumer's view of
// each producer must decompose into at most N FIFO runs.
template <typename Q>
void sharded_history_satisfies_per_shard_fifo() {
  Q queue(512);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPairs = 15'000;
  std::vector<std::vector<std::uint64_t>> streams(kThreads + 1);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        streams[t].reserve(kPairs);
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          while (!queue.try_enqueue(check::encode_value(t, i))) {
            std::this_thread::yield();
          }
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) streams[t].push_back(out);
        }
      });
    }
  }
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) streams[kThreads].push_back(out);

  // Conservation: exactly kThreads * kPairs distinct values, each once.
  std::vector<std::uint64_t> all;
  for (const auto& s : streams) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPairs);
  ASSERT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicate value dequeued";
  // Per-consumer, per-producer: at most N FIFO runs.
  for (std::size_t c = 0; c < streams.size(); ++c) {
    const auto order = check::check_per_shard_fifo(streams[c], Q::kShards);
    EXPECT_TRUE(order.ok)
        << "consumer " << c << ": producer " << order.worst_producer
        << " needed " << order.runs_needed << " > " << Q::kShards << " runs";
  }
}

TEST(ShardedLinearizabilityTest, MsShardsHoldPerShardFifoContract) {
  sharded_history_satisfies_per_shard_fifo<
      ShardedQueue<MsQueue<std::uint64_t>, 4>>();
}

TEST(ShardedLinearizabilityTest, SegmentShardsHoldPerShardFifoContract) {
  sharded_history_satisfies_per_shard_fifo<
      ShardedQueue<SegmentQueue<std::uint64_t>, 4>>();
}

}  // namespace
}  // namespace msq::queues
