// Tests for the sim-side workload runner (sim/workload.*) and the
// schedule-replay primitive (sim/explore.hpp run_schedule).
#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/task.hpp"
#include "sim/workload.hpp"

namespace msq::sim {
namespace {

TEST(SimWorkloadConfig, NetSubtractsOtherWork) {
  // One processor, no contention: the net time must be far below elapsed
  // (almost everything is "other work"), and positive (queue ops cost).
  SimRunConfig config;
  config.algo = Algo::kMs;
  config.processors = 1;
  config.total_pairs = 2'000;
  config.other_work = 600;
  const SimRunResult r = run_sim_workload(config);
  EXPECT_GT(r.net, 0.0);
  EXPECT_LT(r.net, r.elapsed * 0.5)
      << "net should exclude the dominating other-work time";
}

TEST(SimWorkloadConfig, PairsSplitAcrossProcessesExactly) {
  // total_pairs not divisible by the process count must still run: the
  // floor/ceil split covers every pair (observable through empty-dequeue
  // accounting never exceeding totals and the run completing).
  SimRunConfig config;
  config.algo = Algo::kTwoLock;
  config.processors = 5;
  config.total_pairs = 1'003;  // 5 does not divide this
  const SimRunResult r = run_sim_workload(config);
  EXPECT_GT(r.steps, 1'003u * 4);  // several accesses per op at minimum
  EXPECT_LE(r.empty_dequeues, 1'003u);
}

TEST(SimWorkloadConfig, ZeroEnqueueFailuresWithAutoCapacity) {
  for (const Algo algo : kAllAlgos) {
    SimRunConfig config;
    config.algo = algo;
    config.processors = 4;
    config.procs_per_processor = 2;
    config.total_pairs = 1'000;
    const SimRunResult r = run_sim_workload(config);
    if (algo == Algo::kValois) {
      // Valois can transiently pin dequeued chains (the whole point of
      // experiment A4), so rare allocation failures are legitimate.
      EXPECT_LT(r.enqueue_failures, 100u) << algo_name(algo);
    } else {
      EXPECT_EQ(r.enqueue_failures, 0u)
          << algo_name(algo) << ": auto capacity must cover peak occupancy";
    }
  }
}

TEST(SimWorkloadConfig, MoreOtherWorkMeansMoreElapsedButSimilarNet) {
  auto run = [](double other_work) {
    SimRunConfig config;
    config.algo = Algo::kMs;
    config.processors = 2;
    config.total_pairs = 2'000;
    config.other_work = other_work;
    return run_sim_workload(config);
  };
  const SimRunResult small = run(100);
  const SimRunResult big = run(1'000);
  EXPECT_GT(big.elapsed, small.elapsed * 2);
  // Net isolates queue cost; more think time REDUCES contention, so net
  // should not grow with other_work (allow generous slack for scheduling
  // noise).
  EXPECT_LT(big.net, small.net * 1.5);
}

// --- run_schedule ------------------------------------------------------------

Task<void> write_n(Proc& p, Addr base, int n) {
  for (int i = 0; i < n; ++i) {
    co_await p.write(base + static_cast<Addr>(i), 1 + p.id());
  }
}

TEST(RunSchedule, RoundRobinWithoutPreemptionsRunsFirstProcessFirst) {
  Engine engine;
  const Addr words = engine.memory().alloc(8);
  engine.spawn(0, [&](Proc& p) { return write_n(p, words, 4); });
  engine.spawn(0, [&](Proc& p) { return write_n(p, words + 4, 4); });
  // run_schedule counts RESUMES: each process needs one resume per memory
  // access plus one final resume in which the coroutine completes.
  const std::uint64_t steps = run_schedule(engine, {}, 1'000, nullptr);
  EXPECT_EQ(steps, 10u);
  EXPECT_TRUE(engine.all_done());
  // Non-preemptive round-robin runs process 0 to completion first; all
  // eight words end up written.
  for (Addr a = words; a < words + 8; ++a) EXPECT_NE(engine.memory().peek(a), 0u);
}

Task<void> two_writes(Proc& p, Addr a, Addr b) {
  co_await p.write(a, p.id() + 1);
  co_await p.write(b, p.id() + 1);
}

TEST(RunSchedule, ForcedPreemptionSwitchesProcesses) {
  Engine engine;
  const Addr words = engine.memory().alloc(2);
  const Addr trace = engine.memory().alloc(4);
  engine.spawn(0, [&](Proc& p) { return two_writes(p, words + 0, trace + 0); });
  engine.spawn(0, [&](Proc& p) { return two_writes(p, words + 1, trace + 2); });
  // Preempt to process 1 before the very first step.
  const std::uint64_t steps =
      run_schedule(engine, {{0, 1}}, 1'000, nullptr);
  EXPECT_TRUE(engine.all_done());
  EXPECT_EQ(steps, 6u);  // 2 writes + 1 completion resume per process
  EXPECT_EQ(engine.memory().peek(words + 1), 2u);  // process 1 ran
}

Task<void> spin_on_flag(Proc& p, Addr flag) {
  for (;;) {
    const std::uint64_t v = co_await p.read(flag);
    if (v != 0) co_return;
    co_await p.work(1);
  }
}

TEST(RunSchedule, MaxStepsBoundsBlockedSchedules) {
  Engine engine;
  const Addr flag = engine.memory().alloc(1);
  engine.spawn(0, [&](Proc& p) { return spin_on_flag(p, flag); });
  const std::uint64_t steps = run_schedule(engine, {}, 500, nullptr);
  EXPECT_EQ(steps, 500u) << "blocked schedule must stop at the bound";
  EXPECT_FALSE(engine.all_done());
}

TEST(RunSchedule, OnStepCallbackFiresEveryStep) {
  Engine engine;
  const Addr w = engine.memory().alloc(4);
  engine.spawn(0, [&](Proc& p) { return write_n(p, w, 4); });
  std::uint64_t calls = 0;
  run_schedule(engine, {}, 1'000, [&] { ++calls; });
  EXPECT_EQ(calls, 5u);  // one per resume (4 writes + completion)
}

}  // namespace
}  // namespace msq::sim
