// The paper's Valois memory-exhaustion scenario (section 1), on the real
// (std::atomic) implementation:
//
//   "Problems occur if a process reads a pointer to a node (incrementing
//    the reference counter) and is then delayed.  While it is not running,
//    other processes can enqueue and dequeue an arbitrary number of
//    additional nodes.  Because of the pointer held by the delayed process,
//    neither the node referenced by that pointer nor any of its successors
//    can be freed.  It is therefore possible to run out of memory even if
//    the number of items in the queue is bounded by a constant."
//
// bench/valois_memory reproduces the quantitative version (64,000-node pool,
// <= 12-item queue); these tests prove the mechanism and the recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "queues/ms_queue.hpp"
#include "queues/valois_queue.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::queues {
namespace {

TEST(ValoisMemory, DelayedReaderExhaustsBoundedQueue) {
  // Pool of 64 nodes, queue occupancy never above 2 -- yet a single pinned
  // reference starves the allocator.
  ValoisQueue<std::uint64_t> queue(64);
  ASSERT_TRUE(queue.try_enqueue(0));

  // The "delayed process": SafeRead the dummy and just... hold it.
  const std::uint32_t pinned = queue.pool().safe_read(queue.head_cell()).index();
  ASSERT_NE(pinned, tagged::kNullIndex);

  std::uint64_t out = 0;
  std::uint64_t completed = 0;
  bool exhausted = false;
  for (std::uint64_t i = 1; i < 10'000; ++i) {
    if (!queue.try_enqueue(i)) {
      exhausted = true;
      break;
    }
    ASSERT_TRUE(queue.try_dequeue(out));
    ++completed;
  }
  EXPECT_TRUE(exhausted)
      << "a 64-node pool should starve with a pinned head after ~60 pairs";
  EXPECT_LT(completed, 70u);

  // The delayed process resumes: the whole pinned suffix cascades back and
  // the queue works again for thousands of operations.
  queue.pool().release(pinned);
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    ASSERT_TRUE(queue.try_enqueue(i)) << "pool did not recover at op " << i;
    ASSERT_TRUE(queue.try_dequeue(out));
  }
}

TEST(ValoisMemory, MsQueueIsImmuneToTheSameUsage) {
  // The MS queue under the identical bounded workload never exhausts: a
  // dequeued node is immediately reusable (that is the point of "dequeue
  // ensures that Tail does not point to the dequeued node").
  MsQueue<std::uint64_t> queue(64);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(queue.try_enqueue(i));
    ASSERT_TRUE(queue.try_dequeue(out));
    ASSERT_EQ(out, i);
  }
}

TEST(ValoisMemory, ConcurrentPinnedReaderStillSafe) {
  // While pinned, concurrent traffic must stay CORRECT (fail-stop on
  // allocation, no corruption), which is the paper's point: the scheme is
  // impractical, not unsafe.
  ValoisQueue<std::uint64_t> queue(128);
  ASSERT_TRUE(queue.try_enqueue(7));
  const std::uint32_t pinned = queue.pool().safe_read(queue.head_cell()).index();
  std::atomic<std::uint64_t> ok_pairs{0};
  std::atomic<std::uint64_t> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t out = 0;
        for (std::uint64_t i = 0; i < 5'000; ++i) {
          if (queue.try_enqueue((std::uint64_t{static_cast<unsigned>(t)} << 40) | i)) {
            ok_pairs.fetch_add(queue.try_dequeue(out) ? 1 : 0,
                               std::memory_order_relaxed);
          } else {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_GT(failures.load(std::memory_order_acquire), 0u) << "expected allocation failures while pinned";
  queue.pool().release(pinned);
  // Recovery: drain and run clean pairs.
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) {
  }
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(queue.try_enqueue(i));
    ASSERT_TRUE(queue.try_dequeue(out));
  }
}

}  // namespace
}  // namespace msq::queues
