// A directed, deterministic reproduction of the ABA problem (paper
// section 1), and its defeat by modification counters.
//
// Scenario (the classic pop race on a Treiber stack, the same structure as
// the queues' free list):
//
//   stack: Top -> A -> B.
//   P1 starts a pop: reads Top (= A), reads A.next (= B), then STALLS.
//   P2 pops A, pops B, then pushes A back.        (A-B-A on Top)
//   P1 resumes and executes CAS(Top, A, B).
//
// With bare pointers the CAS succeeds -- installing B, which is no longer
// in the stack -- and the structure is corrupt.  With counted pointers the
// counter has advanced, the CAS fails, and P1 retries correctly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {
namespace {

constexpr std::uint64_t kNull = ~0ull;

/// A minimal simulated Treiber stack parameterised on pointer
/// representation.  `Counted` packs (index, count) as TaggedIndex bits;
/// otherwise cells hold bare node indices.
template <bool Counted>
class TinyStack {
 public:
  TinyStack(Engine& engine, std::uint32_t capacity)
      : nodes_(engine.memory().alloc(capacity)),
        top_(engine.memory().alloc(1)) {
    engine.memory().word(top_) = encode(kNull, 0);
  }

  [[nodiscard]] Addr next_addr(std::uint64_t node) const {
    return nodes_ + static_cast<Addr>(node);
  }

  Task<void> push(Proc& p, std::uint64_t node) {
    for (;;) {
      const std::uint64_t top = co_await p.read(top_);
      co_await p.write(next_addr(node), encode(index_of(top), 0));
      const std::uint64_t old = co_await p.cas(top_, top, bump(top, node));
      if (old == top) co_return;
    }
  }

  Task<std::uint64_t> pop(Proc& p) {
    for (;;) {
      const std::uint64_t top = co_await p.read(top_);
      if (index_of(top) == kNull) co_return kNull;
      const std::uint64_t next = co_await p.read(next_addr(index_of(top)));
      co_await p.at("POP_CAS");
      const std::uint64_t old = co_await p.cas(top_, top, bump(top, index_of(next)));
      if (old == top) {
        co_return index_of(top);
      }
    }
  }

  /// Walk the stack raw (between steps) and return the node sequence.
  [[nodiscard]] std::vector<std::uint64_t> snapshot(const Engine& engine) const {
    std::vector<std::uint64_t> out;
    std::uint64_t it = index_of(engine.memory().peek(top_));
    while (it != kNull && out.size() < 16) {
      out.push_back(it);
      it = index_of(engine.memory().peek(next_addr(it)));
    }
    return out;
  }

 private:
  static std::uint64_t index_of(std::uint64_t bits) {
    if constexpr (Counted) {
      const auto t = tagged::TaggedIndex::from_bits(bits);
      return t.is_null() ? kNull : t.index();
    } else {
      return bits;
    }
  }
  static std::uint64_t encode(std::uint64_t index, std::uint32_t count) {
    if constexpr (Counted) {
      return tagged::TaggedIndex(index == kNull ? tagged::kNullIndex
                                                : static_cast<std::uint32_t>(index),
                                 count)
          .bits();
    } else {
      return index;
    }
  }
  /// Value a successful CAS installs given observed `top` and new index.
  static std::uint64_t bump(std::uint64_t observed_top, std::uint64_t index) {
    if constexpr (Counted) {
      const auto t = tagged::TaggedIndex::from_bits(observed_top);
      return t.successor(index == kNull ? tagged::kNullIndex
                                        : static_cast<std::uint32_t>(index))
          .bits();
    } else {
      return index;
    }
  }

  Addr nodes_;
  Addr top_;
};

template <bool Counted>
Task<void> setup_stack(Proc& p, TinyStack<Counted>& stack) {
  co_await stack.push(p, 1);  // B below
  co_await stack.push(p, 0);  // A on top:  Top -> A(0) -> B(1)
}

template <bool Counted>
Task<void> victim_pop(Proc& p, TinyStack<Counted>& stack, std::uint64_t& out) {
  out = co_await stack.pop(p);
}

template <bool Counted>
Task<void> aba_mutator(Proc& p, TinyStack<Counted>& stack, bool& ok) {
  const std::uint64_t a = co_await stack.pop(p);
  const std::uint64_t b = co_await stack.pop(p);
  ok = (a == 0 && b == 1);
  co_await stack.push(p, a);  // push A back: the second "A" of A-B-A
}

template <bool Counted>
struct AbaOutcome {
  std::uint64_t victim_got = kNull;
  std::vector<std::uint64_t> final_stack;
};

template <bool Counted>
AbaOutcome<Counted> run_aba_scenario() {
  Engine engine;
  TinyStack<Counted> stack(engine, 4);
  {
    const auto id = engine.spawn(0, [&](Proc& p) { return setup_stack(p, stack); });
    while (engine.step(id)) {
    }
  }
  AbaOutcome<Counted> outcome;
  bool mutator_ok = false;
  const auto victim = engine.spawn(0, [&](Proc& p) {
    return victim_pop(p, stack, outcome.victim_got);
  });
  const auto mutator = engine.spawn(0, [&](Proc& p) {
    return aba_mutator(p, stack, mutator_ok);
  });

  // Directed schedule: victim reads Top and A.next, stalls at its CAS...
  engine.freeze_at_label(victim, "POP_CAS");
  while (!engine.done(victim) && engine.step(victim)) {
    if (std::string_view(engine.label(victim)) == "POP_CAS") break;
  }
  // ...mutator performs the full A-B-A...
  while (engine.step(mutator)) {
  }
  EXPECT_TRUE(mutator_ok);
  // ...victim resumes and attempts CAS(Top, A, B).
  engine.freeze_at_label(victim, nullptr);
  engine.unfreeze(victim);
  while (engine.step(victim)) {
  }
  outcome.final_stack = stack.snapshot(engine);
  return outcome;
}

TEST(AbaProblem, BarePointersCorruptTheStack) {
  const auto outcome = run_aba_scenario<false>();
  // The stale CAS succeeded: the victim "popped" A (again) and installed B
  // -- a node that is NOT in the stack anymore.  Corruption: B surfaced.
  EXPECT_EQ(outcome.victim_got, 0u);
  ASSERT_FALSE(outcome.final_stack.empty());
  EXPECT_EQ(outcome.final_stack.front(), 1u)
      << "expected the freed node B to surface -- the ABA corruption";
}

TEST(AbaProblem, ModificationCountersDefeatTheRace) {
  const auto outcome = run_aba_scenario<true>();
  // The victim's CAS failed (counter advanced); it retried and correctly
  // popped the reinstated A, leaving an EMPTY stack.
  EXPECT_EQ(outcome.victim_got, 0u);
  EXPECT_TRUE(outcome.final_stack.empty())
      << "stack should be empty after both pops completed correctly";
}

}  // namespace
}  // namespace msq::sim
