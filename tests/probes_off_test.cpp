// Proof that MSQ_PROBES=0 strips the probes completely.
//
// This binary is compiled with MSQ_PROBES forced to 0 (see
// tests/CMakeLists.txt) while the rest of the build keeps its configured
// value.  To avoid ODR violations with the msq library (whose inline
// functions were compiled with probes on), it links NO repo library -- only
// the header-only parts of the repo are exercised, which is exactly the set
// the probes instrument.
//
// The central trick is constexpr-as-proof: with MSQ_PROBES=0 every probe
// entry point is declared constexpr, and the static_asserts below evaluate
// them in constant expressions.  std::atomic operations are not usable in
// constant expressions, so these asserts COMPILE only if the disabled
// probes contain no atomic loads or stores -- the "no added atomics"
// acceptance check, enforced by the compiler rather than by eyeballing
// objdump (docs/ALGORITHMS.md shows the equivalent manual objdump check).
#include <cstdint>

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/probe.hpp"
#include "queues/ms_queue.hpp"
#include "queues/treiber_stack.hpp"
#include "queues/two_lock_queue.hpp"

static_assert(MSQ_PROBES == 0, "this test must be built with MSQ_PROBES=0");
static_assert(MSQ_OBS == 0, "MSQ_OBS must follow MSQ_PROBES by default");

// --- constexpr proofs: disabled probes evaluate in constant expressions,
// --- therefore contain no atomic operations (see file comment).
static_assert((msq::fault::point("probes_off.site"), true));
static_assert((msq::obs::count(msq::obs::Counter::kCasFail), true));
static_assert((msq::obs::count(msq::obs::Counter::kBackoffWait, 1024), true));
static_assert((msq::obs::arm(), msq::obs::disarm(), true));
static_assert(!msq::obs::armed());
static_assert([] {
  msq::obs::SpinTally tally;
  tally.bump();
  tally.bump(41);
  tally.commit(msq::obs::Counter::kLockSpin);
  return true;
}());
static_assert([] {
  MSQ_COUNT(kEnqueue);
  MSQ_COUNT_N(kBackoffWait, 7);
  MSQ_PROBE("ms.E13");
  MSQ_PROBE_COUNT("ms.E9", kCasAttempt);
  return true;
}());

namespace msq {
namespace {

TEST(ProbesOff, SnapshotIsAlwaysZero) {
  obs::arm();  // no-op
  obs::count(obs::Counter::kEnqueue, 1000);
  const obs::Snapshot s = obs::snapshot();
  for (const obs::Counter c : obs::kAllCounters) {
    EXPECT_EQ(s[c], 0u) << obs::counter_name(c);
  }
  EXPECT_FALSE(obs::armed());
}

// The instrumented queues must be fully functional with probes stripped --
// the macros vanish, the algorithms remain.
TEST(ProbesOff, MsQueueRoundTripStillWorks) {
  queues::MsQueue<std::uint64_t> queue(16);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_TRUE(queue.try_enqueue(i));
  EXPECT_FALSE(queue.try_enqueue(99));  // pool exhausted
  for (std::uint64_t i = 0; i < 16; ++i) {
    std::uint64_t out = ~0ull;
    EXPECT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  std::uint64_t out;
  EXPECT_FALSE(queue.try_dequeue(out));
}

TEST(ProbesOff, TwoLockQueueRoundTripStillWorks) {
  queues::TwoLockQueue<std::uint64_t> queue(8);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_enqueue(i * 3));
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t out = 0;
    EXPECT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, i * 3);
  }
}

TEST(ProbesOff, TreiberStackRoundTripStillWorks) {
  queues::TreiberStack<std::uint64_t> stack(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(stack.try_push(i));
  for (std::uint64_t i = 4; i-- > 0;) {
    std::uint64_t out = 0;
    EXPECT_TRUE(stack.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

// Histograms are plain value types, independent of the probe gate.
TEST(ProbesOff, HistogramStillAvailable) {
  obs::Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(100), 42u);
}

}  // namespace
}  // namespace msq
