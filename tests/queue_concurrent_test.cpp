// Multi-threaded stress tests, typed over every MPMC queue: conservation
// (nothing lost, duplicated or fabricated), per-producer FIFO as observed by
// each consumer, mixed producer/consumer churn through the empty state, and
// pool exhaustion under contention.
//
// On this host every run is heavily preempted (one core), which is exactly
// the multiprogrammed regime of the paper's Figures 4-5 -- a good stressor
// for the blocking windows of the lock-based and MC algorithms.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "fault/watchdog.hpp"
#include "obs/counters.hpp"
#include "queues/queues.hpp"

namespace msq::queues {
namespace {

constexpr std::uint32_t kCapacity = 256;

template <typename Q>
struct Factory {
  static Q make() { return Q(kCapacity); }
};
template <typename T, typename B>
struct Factory<MsQueueHp<T, B>> {
  static MsQueueHp<T, B> make() { return MsQueueHp<T, B>(); }
};

template <typename Q>
class QueueConcurrentTest : public ::testing::Test {
 protected:
  // A wedged run (e.g. a blocking queue whose lock holder was preempted
  // forever) aborts with an attributed message instead of hanging ctest.
  fault::Watchdog watchdog_{std::chrono::seconds(240),
                            "queue_concurrent stress"};
  decltype(Factory<Q>::make()) queue_ = Factory<Q>::make();
};

using QueueTypes =
    ::testing::Types<MsQueue<std::uint64_t>, MsQueueDw<std::uint64_t>,
                     MsQueueHp<std::uint64_t>, TwoLockQueue<std::uint64_t>,
                     SingleLockQueue<std::uint64_t>,
                     MellorCrummeyQueue<std::uint64_t>, RingQueue<std::uint64_t>,
                     ScqQueue<std::uint64_t>, PljQueue<std::uint64_t>,
                     ValoisQueue<std::uint64_t>, SegmentQueue<std::uint64_t>,
                     // Degenerate single shard keeps full global FIFO, so it
                     // rides every suite here; multi-shard configurations are
                     // stressed against their own contract in
                     // sharded_queue_test.cpp.
                     ShardedQueue<MsQueue<std::uint64_t>, 1>,
                     WfQueue<std::uint64_t>>;
TYPED_TEST_SUITE(QueueConcurrentTest, QueueTypes);

TYPED_TEST(QueueConcurrentTest, PairedLoopConservesEveryValue) {
  // The paper's loop shape: every thread enqueues then dequeues, so the
  // queue stays near-empty and the dummy-node transitions churn.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPairs = 30'000;
  obs::arm();
  const auto counters_before = obs::snapshot();
  std::vector<check::ThreadLog> logs;
  for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        check::ThreadLog& log = logs[t];
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          const std::uint64_t value = check::encode_value(t, i);
          while (!this->queue_.try_enqueue(value)) {
            std::this_thread::yield();  // full: a consumer needs the core
          }
          log.record(check::OpKind::kEnqueue, value, 0, 0);
          std::uint64_t out = 0;
          if (this->queue_.try_dequeue(out)) {
            log.record(check::OpKind::kDequeue, out, 0, 0);
          }
        }
      });
    }
  }
  // Drain the remainder single-threaded.
  std::uint64_t out = 0;
  check::ThreadLog drain(kThreads);
  while (this->queue_.try_dequeue(out)) {
    drain.record(check::OpKind::kDequeue, out, 0, 0);
  }
  logs.push_back(drain);

  const auto merged = check::merge_logs(logs);
  const auto conservation = check::check_conservation(merged);
  EXPECT_TRUE(conservation.ok) << conservation.diagnosis;
  // Everything enqueued must eventually have come out.
  std::uint64_t enqueues = 0, dequeues = 0;
  for (const auto& e : merged) {
    enqueues += e.kind == check::OpKind::kEnqueue;
    dequeues += e.kind == check::OpKind::kDequeue;
  }
  EXPECT_EQ(enqueues, static_cast<std::uint64_t>(kThreads) * kPairs);
  EXPECT_EQ(dequeues, enqueues);
  obs::disarm();
#if MSQ_OBS
  // The armed probes must agree with the history exactly: a silently
  // dropped or double-bumped MSQ_COUNT site fails here, not in a bench.
  const auto delta = obs::snapshot() - counters_before;
  EXPECT_EQ(delta[obs::Counter::kEnqueue], enqueues);
  EXPECT_EQ(delta[obs::Counter::kDequeue], dequeues);
  EXPECT_LE(delta[obs::Counter::kCasFail], delta[obs::Counter::kCasAttempt]);
#else
  (void)counters_before;
#endif
}

TYPED_TEST(QueueConcurrentTest, DedicatedProducersAndConsumersKeepFifo) {
  constexpr std::uint32_t kProducers = 2;
  constexpr std::uint32_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 40'000;
  std::vector<check::ThreadLog> consumer_logs;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    consumer_logs.emplace_back(kProducers + c);
  }
  std::atomic<std::uint32_t> producers_left{kProducers};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          while (!this->queue_.try_enqueue(check::encode_value(p, i))) {
            std::this_thread::yield();  // bounded queue: wait for consumers
          }
        }
        producers_left.fetch_sub(1);
      });
    }
    for (std::uint32_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        check::ThreadLog& log = consumer_logs[c];
        for (;;) {
          std::uint64_t out = 0;
          if (this->queue_.try_dequeue(out)) {
            log.record(check::OpKind::kDequeue, out, 0, 0);
          } else if (producers_left.load() == 0) {
            // One more look to avoid racing the last enqueue.
            if (!this->queue_.try_dequeue(out)) break;
            log.record(check::OpKind::kDequeue, out, 0, 0);
          }
        }
      });
    }
  }
  const auto order = check::check_per_consumer_order(consumer_logs);
  EXPECT_TRUE(order.ok) << order.diagnosis;
  std::uint64_t total = 0;
  for (const auto& log : consumer_logs) total += log.events().size();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TYPED_TEST(QueueConcurrentTest, ChurnThroughEmptyWithMorePoppersThanPushers) {
  // More consumers than producers keeps the queue mostly empty; the
  // empty-report path races the linking path constantly.
  constexpr std::uint64_t kItems = 60'000;
  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done_producing{false};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!this->queue_.try_enqueue(i)) {
          std::this_thread::yield();
        }
      }
      done_producing.store(true);
    });
    for (int c = 0; c < 3; ++c) {
      threads.emplace_back([&] {
        std::uint64_t out = 0;
        for (;;) {
          if (this->queue_.try_dequeue(out)) {
            popped.fetch_add(1, std::memory_order_relaxed);
          } else if (done_producing.load()) {
            if (!this->queue_.try_dequeue(out)) break;
            popped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(popped.load(), kItems);
}

TYPED_TEST(QueueConcurrentTest, ExhaustionUnderContentionRecoversCleanly) {
  if constexpr (!TypeParam::traits.pool_backed) {
    GTEST_SKIP() << "unbounded queue";
  } else {
    std::atomic<std::uint64_t> enq_failures{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> dequeued{0};
    obs::arm();
    const auto counters_before = obs::snapshot();
    {
      std::vector<std::jthread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
          for (int i = 0; i < 20'000; ++i) {
            // Push hard: 3 enqueues per dequeue drives the pool empty.
            for (int e = 0; e < 3; ++e) {
              if (this->queue_.try_enqueue(1)) {
                enqueued.fetch_add(1, std::memory_order_relaxed);
              } else {
                enq_failures.fetch_add(1, std::memory_order_relaxed);
              }
            }
            std::uint64_t out = 0;
            if (this->queue_.try_dequeue(out)) {
              dequeued.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    EXPECT_GT(enq_failures.load(), 0u) << "pool never filled; weak test";
    // Conservation despite exhaustion.
    std::uint64_t out = 0;
    std::uint64_t drained = 0;
    while (this->queue_.try_dequeue(out)) ++drained;
    EXPECT_EQ(dequeued.load() + drained, enqueued.load());
    obs::disarm();
#if MSQ_OBS
    const auto delta = obs::snapshot() - counters_before;
    EXPECT_EQ(delta[obs::Counter::kEnqueue], enqueued.load());
    EXPECT_EQ(delta[obs::Counter::kDequeue], dequeued.load() + drained);
    // Every refused enqueue passed a pool refusal (possibly several on the
    // magazine fallback path), never zero.
    EXPECT_GE(delta[obs::Counter::kPoolRefuse], enq_failures.load());
#else
    (void)counters_before;
#endif
    // And the queue must be fully functional afterwards.
    EXPECT_TRUE(this->queue_.try_enqueue(99));
    ASSERT_TRUE(this->queue_.try_dequeue(out));
    EXPECT_EQ(out, 99u);
  }
}

}  // namespace
}  // namespace msq::queues
