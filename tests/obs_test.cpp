// Tests for the observability subsystem (src/obs/): counter exactness under
// concurrency, histogram bucketing and merging, the report writers, and the
// harness's per-op latency recording.
//
// Counter state is process-global, so every test that arms the registry
// resets it first and disarms on exit; tests within this binary therefore
// cannot run concurrently with each other (gtest runs them serially --
// that is the default and we rely on it).
#include <barrier>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/driver.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "queues/ms_queue.hpp"

namespace msq::obs {
namespace {

/// RAII arm/disarm so a failing test cannot leave the registry armed.
struct ArmedScope {
  ArmedScope() {
    reset();
    arm();
  }
  ~ArmedScope() {
    disarm();
    reset();
  }
};

TEST(Counters, ConcurrentIncrementsSumExactly) {
  ArmedScope scope;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;

  std::barrier start(kThreads);
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        count(Counter::kCasAttempt);
        if (i % 3 == 0) count(Counter::kCasFail);
      }
      count(Counter::kBackoffWait, kPerThread);  // bulk add path
    });
  }
  threads.clear();  // join

  const Snapshot s = snapshot();
  EXPECT_EQ(s[Counter::kCasAttempt], kThreads * kPerThread);
  // i % 3 == 0 for i in [0, kPerThread): ceil(kPerThread / 3) hits.
  EXPECT_EQ(s[Counter::kCasFail], kThreads * ((kPerThread + 2) / 3));
  EXPECT_EQ(s[Counter::kBackoffWait], kThreads * kPerThread);
  EXPECT_EQ(s[Counter::kEnqueue], 0u);
}

TEST(Counters, UnarmedProbesRecordNothing) {
  reset();
  ASSERT_FALSE(armed());
  count(Counter::kEnqueue);
  count(Counter::kCasFail, 17);
  const Snapshot s = snapshot();
  for (const Counter c : kAllCounters) EXPECT_EQ(s[c], 0u) << counter_name(c);
}

TEST(Counters, SnapshotWhileWritingIsMonotone) {
  ArmedScope scope;
  std::atomic<bool> stop{false};
  std::jthread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      count(Counter::kEnqueue);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = snapshot()[Counter::kEnqueue];
    EXPECT_GE(now, last);  // concurrent snapshots never go backwards
    last = now;
  }
  stop.store(true);
}

TEST(Counters, SnapshotDeltaAndPerOpRates) {
  ArmedScope scope;
  count(Counter::kEnqueue, 100);
  const Snapshot before = snapshot();
  count(Counter::kEnqueue, 50);
  count(Counter::kCasFail, 25);
  const Snapshot delta = snapshot() - before;
  EXPECT_EQ(delta[Counter::kEnqueue], 50u);
  EXPECT_EQ(delta[Counter::kCasFail], 25u);
  EXPECT_DOUBLE_EQ(delta.per_op(Counter::kCasFail, 50), 0.5);
  EXPECT_DOUBLE_EQ(delta.per_op(Counter::kCasFail, 0), 0.0);  // no div-by-0
}

TEST(Counters, SpinTallyPublishesOnceOnCommit) {
  ArmedScope scope;
  SpinTally tally;
  for (int i = 0; i < 10; ++i) tally.bump();
  tally.bump(5);
  EXPECT_EQ(snapshot()[Counter::kLockSpin], 0u);  // nothing published yet
  tally.commit(Counter::kLockSpin);
  EXPECT_EQ(snapshot()[Counter::kLockSpin], 15u);
  tally.commit(Counter::kLockSpin);  // empty tally: no second publish
  EXPECT_EQ(snapshot()[Counter::kLockSpin], 15u);
}

TEST(Counters, InstrumentedQueueAttributesOperations) {
  ArmedScope scope;
  queues::MsQueue<std::uint64_t> queue(8);
  const Snapshot before = snapshot();
  ASSERT_TRUE(queue.try_enqueue(1));
  ASSERT_TRUE(queue.try_enqueue(2));
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_dequeue(out));
  ASSERT_TRUE(queue.try_dequeue(out));
  ASSERT_FALSE(queue.try_dequeue(out));
  const Snapshot d = snapshot() - before;
  EXPECT_EQ(d[Counter::kEnqueue], 2u);
  EXPECT_EQ(d[Counter::kDequeue], 2u);
  EXPECT_EQ(d[Counter::kDequeueEmpty], 1u);
  // Uncontended: every linearizing CAS succeeds on the first try.
  EXPECT_EQ(d[Counter::kCasAttempt], 4u);
  EXPECT_EQ(d[Counter::kCasFail], 0u);
  EXPECT_EQ(d[Counter::kPoolGet], 2u);
}

TEST(Histogram, ExactBucketsBelowSubCount) {
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<std::size_t>(v));
    EXPECT_EQ(Histogram::bucket_floor(i), v);
    EXPECT_EQ(Histogram::bucket_ceil(i), v);  // exact region: width 1
  }
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // floor(i) must itself map back to bucket i, and ceil(i) must too; the
  // value just past ceil(i) must map to a later bucket.  Checked across
  // the full index range, which covers every octave boundary.
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_floor(i);
    const std::uint64_t hi = Histogram::bucket_ceil(i);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(Histogram::bucket_index(lo), i);
    EXPECT_EQ(Histogram::bucket_index(hi), i);
    if (hi != ~0ull) {
      EXPECT_GT(Histogram::bucket_index(hi + 1), i);
    }
  }
  // Relative bucket width stays within the designed ~2^-kSubBits bound.
  const std::size_t i = Histogram::bucket_index(1'000'000);
  const double width = static_cast<double>(Histogram::bucket_ceil(i) -
                                           Histogram::bucket_floor(i) + 1);
  EXPECT_LT(width / 1e6, 1.0 / static_cast<double>(Histogram::kSubCount) + 1e-9);
}

TEST(Histogram, KnownDistributionPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);  // 1..100, once each
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.percentile(100), 100u);
  // Log-bucketed: percentiles are exact below kSubCount and within one
  // bucket (~6%) above it.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 50.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 90.0, 90.0 / 16 + 1);
  EXPECT_EQ(h.percentile(1), 1u);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(Histogram, MergeMatchesRecordingIntoOne) {
  Histogram a, b, combined;
  for (std::uint64_t v = 0; v < 1000; v += 3) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v = 500; v < 200'000; v += 7) {
    b.record(v * v % 100'000);
    combined.record(v * v % 100'000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double p : {10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p" << p;
  }
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(a.bucket_count_at(i), combined.bucket_count_at(i)) << i;
  }
}

TEST(Histogram, MergedExtremeTailSurvivesManyFastShards) {
  // The fig_stall shape: per-thread shards where ONE thread (the stall
  // victim) contributes a few multi-millisecond sojourns while every other
  // shard holds thousands of sub-microsecond ones.  After the merge the
  // outliers must still be visible exactly where the experiment reads
  // them: p99.9 (when the tail mass is >0.1%), percentile(100), and max().
  constexpr std::uint64_t kFast = 700;        // ~0.7us
  constexpr std::uint64_t kStall = 2'000'000; // ~2ms sojourn
  std::vector<Histogram> shards(8);
  for (std::size_t t = 0; t + 1 < shards.size(); ++t) {
    for (int i = 0; i < 1000; ++i) shards[t].record(kFast + (i % 32));
  }
  // 10 stalled items in 7010 total: ~0.14% of mass, past the p99.9 cut.
  for (int i = 0; i < 10; ++i) shards.back().record(kStall + i);

  Histogram merged;
  for (const Histogram& s : shards) merged.merge(s);

  EXPECT_EQ(merged.count(), 7 * 1000u + 10u);
  // The slow bucket is ~6% wide (log bucketing); the assertion is that the
  // tail READS as milliseconds, not that the bucket edge is exact.
  EXPECT_GE(merged.percentile(99.9), kStall / 2);
  EXPECT_LT(merged.percentile(99.0), kFast * 4);
  // percentile() clamps to the observed max, so the extreme tail never
  // reports a bucket ceiling past a value that actually happened.
  EXPECT_EQ(merged.percentile(100), merged.max());
  EXPECT_EQ(merged.max(), kStall + 9);
  // Merge order must not matter for the tail.
  Histogram reversed;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reversed.merge(*it);
  }
  EXPECT_EQ(reversed.percentile(99.9), merged.percentile(99.9));
  EXPECT_EQ(reversed.max(), merged.max());
}

TEST(JsonWriter, StructureAndEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("line\nbreak \"quoted\" back\\slash");
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(2.5);
  w.value(false);
  w.end_array();
  w.key("nan");
  w.value(std::nan(""));
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"name\":\"line\\nbreak \\\"quoted\\\" back\\\\slash\","
            "\"list\":[1,2.5,false],\"nan\":null}");
}

TEST(Report, CountersTextAndJson) {
  Snapshot s;
  s.totals[static_cast<std::size_t>(Counter::kCasAttempt)] = 1000;
  s.totals[static_cast<std::size_t>(Counter::kCasFail)] = 250;

  std::ostringstream text;
  print_counters(text, s, 500, "test counters");
  EXPECT_NE(text.str().find("cas_fail"), std::string::npos);
  EXPECT_NE(text.str().find("250"), std::string::npos);
  EXPECT_NE(text.str().find("0.5"), std::string::npos);  // per-op rate

  std::ostringstream json;
  JsonWriter w(json);
  write_counters_json(w, s, 500);
  EXPECT_NE(json.str().find("\"cas_fail\":{\"total\":250,\"per_op\":0.5}"),
            std::string::npos)
      << json.str();
}

TEST(Report, HistogramTextAndJson) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.record(v);

  std::ostringstream text;
  print_histogram(text, h, "enqueue latency", "ns");
  EXPECT_NE(text.str().find("enqueue latency"), std::string::npos);
  EXPECT_NE(text.str().find("p99"), std::string::npos);

  std::ostringstream json;
  JsonWriter w(json);
  write_histogram_json(w, h);
  EXPECT_NE(json.str().find("\"count\":64"), std::string::npos) << json.str();
  EXPECT_NE(json.str().find("\"max\":64"), std::string::npos) << json.str();
}

TEST(Harness, RecordLatencyFillsMergedHistograms) {
  queues::MsQueue<std::uint64_t> queue(64);
  harness::WorkloadConfig config;
  config.threads = 4;
  config.total_pairs = 2'000;
  config.record_latency = true;
  const harness::WorkloadResult result = harness::run_workload(queue, config);
  EXPECT_EQ(result.enqueue_latency_ns.count(), config.total_pairs);
  // Every loop iteration records exactly one dequeue sample (hit or empty).
  EXPECT_EQ(result.dequeue_latency_ns.count(), config.total_pairs);
  EXPECT_GT(result.enqueue_latency_ns.max(), 0u);
  EXPECT_GE(result.enqueue_latency_ns.percentile(99),
            result.enqueue_latency_ns.percentile(50));
}

}  // namespace
}  // namespace msq::obs
