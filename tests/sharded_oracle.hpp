// Shard-aware ordering oracle for ShardedQueue tests.
//
// The sharded front end deliberately does not promise global FIFO
// (docs/ALGORITHMS.md, "The sharded queue-of-queues"): a producer's items
// land in at most N shards, each shard is FIFO, so the strongest checkable
// per-producer property is that each producer's dequeued subsequence
// DECOMPOSES INTO AT MOST N INCREASING RUNS -- one per shard it touched.
//
// That decomposition question is exactly patience sorting: greedily place
// each sequence number on an existing "pile" whose top is smaller (any
// such pile keeps a run increasing; choosing the pile with the LARGEST
// qualifying top is the standard exchange-argument-optimal move), else
// open a new pile.  The stream splits into <= N increasing subsequences
// iff the greedy pile count stays <= N.  Combined with the multiset
// conservation checks the suites already run, this is the sharded
// contract's test-side half.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "check/invariants.hpp"

namespace msq::check {

/// Minimum number of increasing subsequences `seqs` decomposes into
/// (greedy patience piles).  0 for an empty stream.
[[nodiscard]] inline std::size_t min_increasing_runs(
    const std::vector<std::uint64_t>& seqs) {
  // tops[] holds each pile's current top, kept sorted ascending so the
  // best pile (largest top < seq) is one binary search away.
  std::vector<std::uint64_t> tops;
  for (const std::uint64_t seq : seqs) {
    // First pile whose top is >= seq cannot take it; its predecessor is
    // the largest top that can.
    auto it = std::lower_bound(tops.begin(), tops.end(), seq);
    if (it == tops.begin()) {
      tops.insert(it, seq);  // no pile can extend: open a new one
    } else {
      *(it - 1) = seq;  // replace the predecessor's top (still sorted)
    }
  }
  return tops.size();
}

/// Verdict of the per-shard-FIFO oracle for one dequeue-order stream.
struct ShardedOrderResult {
  bool ok = true;
  std::uint32_t worst_producer = 0;
  std::size_t runs_needed = 0;  // piles needed for the worst producer
};

/// Checks that, per producer, the globally-ordered dequeue stream
/// decomposes into at most `max_shards` increasing subsequences.  `values`
/// must be in dequeue order (per consumer, or merged by real time) and use
/// the encode_value convention.
[[nodiscard]] inline ShardedOrderResult check_per_shard_fifo(
    const std::vector<std::uint64_t>& values, std::size_t max_shards) {
  std::map<std::uint32_t, std::vector<std::uint64_t>> per_producer;
  for (const std::uint64_t v : values) {
    per_producer[value_producer(v)].push_back(value_seq(v));
  }
  ShardedOrderResult result;
  for (const auto& [producer, seqs] : per_producer) {
    const std::size_t runs = min_increasing_runs(seqs);
    if (runs > result.runs_needed) {
      result.runs_needed = runs;
      result.worst_producer = producer;
    }
    if (runs > max_shards) result.ok = false;
  }
  return result;
}

}  // namespace msq::check
