// Tests for the Lamport wait-free SPSC ring (paper section 1, ref [9]).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>

#include "queues/spsc_ring.hpp"

namespace msq::queues {
namespace {

TEST(SpscRing, EmptyAndSingleItem) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  EXPECT_FALSE(ring.try_dequeue(out));
  EXPECT_TRUE(ring.try_enqueue(5));
  ASSERT_TRUE(ring.try_dequeue(out));
  EXPECT_EQ(out, 5u);
  EXPECT_FALSE(ring.try_dequeue(out));
}

TEST(SpscRing, FillsToExactCapacity) {
  SpscRing<std::uint64_t> ring(3);
  EXPECT_TRUE(ring.try_enqueue(1));
  EXPECT_TRUE(ring.try_enqueue(2));
  EXPECT_TRUE(ring.try_enqueue(3));
  EXPECT_FALSE(ring.try_enqueue(4)) << "accepted beyond capacity";
  std::uint64_t out = 0;
  ASSERT_TRUE(ring.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(ring.try_enqueue(4));  // slot freed
}

TEST(SpscRing, WrapAroundPreservesFifo) {
  SpscRing<std::uint64_t> ring(3);
  std::uint64_t next_in = 0, next_out = 0, out = 0;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.try_enqueue(next_in++));
    ASSERT_TRUE(ring.try_enqueue(next_in++));
    ASSERT_TRUE(ring.try_dequeue(out));
    EXPECT_EQ(out, next_out++);
    ASSERT_TRUE(ring.try_dequeue(out));
    EXPECT_EQ(out, next_out++);
  }
}

TEST(SpscRing, ProducerConsumerStreamIsLossless) {
  SpscRing<std::uint64_t> ring(16);
  constexpr std::uint64_t kItems = 500'000;
  std::uint64_t sum = 0;
  {
    // The RING is wait-free; the TEST must still yield when its partner
    // owns the single hardware core, or each 16-item burst costs a whole
    // scheduling quantum.
    std::jthread consumer([&] {
      std::uint64_t received = 0;
      std::uint64_t expect = 0;
      while (received < kItems) {
        std::uint64_t out = 0;
        if (ring.try_dequeue(out)) {
          ASSERT_EQ(out, expect) << "SPSC order broken";
          ++expect;
          sum += out;
          ++received;
        } else {
          std::this_thread::yield();
        }
      }
    });
    std::jthread producer([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!ring.try_enqueue(i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(SpscRing, TraitsDeclareWaitFreeSpsc) {
  EXPECT_EQ(SpscRing<int>::traits.progress, Progress::kWaitFree);
  EXPECT_FALSE(SpscRing<int>::traits.mpmc);
}

TEST(SpscRing, MovableOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_enqueue(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_dequeue(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace msq::queues
