// Tests for the corrected Valois reference-counting pool (mem/refcount_pool)
// -- including the TR 599 correction scenarios and the pinning cascade that
// makes the scheme impractical (paper section 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mem/refcount_pool.hpp"
#include "tagged/atomic_tagged.hpp"

namespace msq::mem {
namespace {

struct RcNode {
  std::uint64_t payload = 0;
  RcHeader rc;
};

TEST(RefCountPool, AllocateHandsOutCountOne) {
  RefCountPool<RcNode> pool(4);
  const std::uint32_t n = pool.try_allocate();
  ASSERT_NE(n, tagged::kNullIndex);
  // (count=1) << 1 | claim=0  ==  2
  EXPECT_EQ(pool.node(n).rc.refct_claim.load(std::memory_order_acquire), 2u);
}

TEST(RefCountPool, ExhaustionReturnsNull) {
  RefCountPool<RcNode> pool(2);
  EXPECT_NE(pool.try_allocate(), tagged::kNullIndex);
  EXPECT_NE(pool.try_allocate(), tagged::kNullIndex);
  EXPECT_EQ(pool.try_allocate(), tagged::kNullIndex);
}

TEST(RefCountPool, ReleaseLastReferenceRecycles) {
  RefCountPool<RcNode> pool(2);
  const std::uint32_t n = pool.try_allocate();
  const std::size_t free_before = pool.unsafe_free_count();
  pool.release(n);
  EXPECT_EQ(pool.unsafe_free_count(), free_before + 1);
  // Claim bit set while parked in the free list.
  EXPECT_EQ(pool.node(n).rc.refct_claim.load(std::memory_order_acquire) & 1u, 1u);
}

TEST(RefCountPool, AddReferenceDefersReclamation) {
  RefCountPool<RcNode> pool(2);
  const std::uint32_t n = pool.try_allocate();
  pool.add_reference(n);  // second holder
  pool.release(n);
  EXPECT_EQ(pool.node(n).rc.refct_claim.load(std::memory_order_acquire), 2u);  // still one ref
  const std::size_t free_before = pool.unsafe_free_count();
  pool.release(n);
  EXPECT_EQ(pool.unsafe_free_count(), free_before + 1);
}

TEST(RefCountPool, SafeReadAcquiresReference) {
  RefCountPool<RcNode> pool(4);
  const std::uint32_t n = pool.try_allocate();
  tagged::AtomicTagged cell;
  cell.store(tagged::TaggedIndex(n, 0), std::memory_order_release);
  const std::uint32_t read = pool.safe_read(cell).index();
  EXPECT_EQ(read, n);
  EXPECT_EQ(pool.node(n).rc.refct_claim.load(std::memory_order_acquire), 4u);  // two refs
  pool.release(n);
  pool.release(n);
}

TEST(RefCountPool, SafeReadOfNullCellIsNull) {
  RefCountPool<RcNode> pool(2);
  tagged::AtomicTagged cell;  // default: NULL
  EXPECT_TRUE(pool.safe_read(cell).is_null());
}

TEST(RefCountPool, SafeReadRetriesWhenCellMoves) {
  // Simulate the stale-read scenario: the cell is redirected between the
  // initial read and validation.  We can't interleave deterministically
  // here (the sim suite does), but we can at least verify the net count is
  // unchanged when safe_read lands on the *new* target.
  RefCountPool<RcNode> pool(4);
  const std::uint32_t a = pool.try_allocate();
  tagged::AtomicTagged cell;
  cell.store(tagged::TaggedIndex(a, 0), std::memory_order_release);
  const std::uint32_t got = pool.safe_read(cell).index();
  EXPECT_EQ(got, a);
  pool.release(a);  // safe_read's reference
  EXPECT_EQ(pool.node(a).rc.refct_claim.load(std::memory_order_acquire), 2u);
  pool.release(a);  // allocation reference
}

TEST(RefCountPool, ReclaimReleasesOutgoingLinkCascade) {
  // Build a -> b through rc.next; releasing a's last reference must also
  // drop a's link reference to b, recycling both.
  RefCountPool<RcNode> pool(4);
  const std::uint32_t a = pool.try_allocate();
  const std::uint32_t b = pool.try_allocate();
  pool.add_reference(b);  // the link a->b
  pool.node(a).rc.next.store(tagged::TaggedIndex(b, 0), std::memory_order_release);
  pool.release(b);  // drop our allocation ref; only the link keeps b alive
  EXPECT_EQ(pool.node(b).rc.refct_claim.load(std::memory_order_acquire), 2u);

  const std::size_t free_before = pool.unsafe_free_count();
  pool.release(a);  // a dies -> link to b released -> b dies too
  EXPECT_EQ(pool.unsafe_free_count(), free_before + 2);
}

TEST(RefCountPool, PinnedNodePinsWholeSuffix) {
  // The paper's impracticality argument: one delayed process holding one
  // reference keeps every successor unreclaimable.
  constexpr std::uint32_t kN = 8;
  RefCountPool<RcNode> pool(kN);
  std::vector<std::uint32_t> chain;
  for (std::uint32_t i = 0; i < 4; ++i) chain.push_back(pool.try_allocate());
  for (std::uint32_t i = 0; i + 1 < chain.size(); ++i) {
    pool.add_reference(chain[i + 1]);
    pool.node(chain[i]).rc.next.store(tagged::TaggedIndex(chain[i + 1], 0), std::memory_order_release);
  }
  // A "delayed process" holds chain[0]; drop all allocation references.
  pool.add_reference(chain[0]);
  for (const std::uint32_t n : chain) pool.release(n);

  // Nothing can be reclaimed: chain[0] is held, and each node's link pins
  // its successor.
  EXPECT_EQ(pool.unsafe_free_count(), kN - chain.size());

  // The delayed process finally releases: the whole chain cascades back.
  pool.release(chain[0]);
  EXPECT_EQ(pool.unsafe_free_count(), kN);
}

TEST(RefCountPool, ConcurrentChurnConservesNodes) {
  constexpr std::uint32_t kN = 32;
  RefCountPool<RcNode> pool(kN);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 20'000; ++i) {
          const std::uint32_t n = pool.try_allocate();
          if (n == tagged::kNullIndex) continue;
          pool.add_reference(n);
          pool.release(n);
          pool.release(n);
        }
      });
    }
  }
  EXPECT_EQ(pool.unsafe_free_count(), kN);
}

TEST(RefCountPool, ConcurrentSafeReadVsRetarget) {
  // Readers safe_read a cell that a writer keeps retargeting between two
  // nodes, releasing the displaced target's link reference each time.  The
  // TR 599 corrections make this safe; count conservation is the oracle.
  RefCountPool<RcNode> pool(8);
  tagged::AtomicTagged cell;
  const std::uint32_t first = pool.try_allocate();
  pool.add_reference(first);  // cell's link
  cell.store(tagged::TaggedIndex(first, 0), std::memory_order_release);
  pool.release(first);  // drop allocation ref; cell holds the node now

  std::atomic<bool> stop{false};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint32_t n = pool.safe_read(cell).index();
          if (n != tagged::kNullIndex) pool.release(n);
        }
      });
    }
    threads.emplace_back([&] {
      for (int i = 0; i < 30'000; ++i) {
        const std::uint32_t fresh = pool.try_allocate();
        if (fresh == tagged::kNullIndex) continue;
        pool.add_reference(fresh);  // the link the cell will hold
        const tagged::TaggedIndex old = cell.load(std::memory_order_acquire);
        cell.store(tagged::TaggedIndex(fresh, old.count() + 1), std::memory_order_release);
        if (!old.is_null()) pool.release(old.index());  // old link ref
        pool.release(fresh);  // allocation ref
      }
      stop.store(true, std::memory_order_release);
    });
  }
  // Tear down: release the cell's final link.
  const tagged::TaggedIndex last = cell.load(std::memory_order_acquire);
  if (!last.is_null()) pool.release(last.index());
  EXPECT_EQ(pool.unsafe_free_count(), 8u);
}

}  // namespace
}  // namespace msq::mem
