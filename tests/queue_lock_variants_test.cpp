// The lock-based queues are parameterised on their lock type (the paper's
// "machines with non-universal atomic primitives" motivation): verify the
// queues stay correct under every lock in the library, and that the MS
// queue stays correct with backoff disabled (the NullBackoff ablation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "queues/ms_queue.hpp"
#include "queues/ms_queue_dwcas.hpp"
#include "queues/single_lock_queue.hpp"
#include "queues/treiber_stack.hpp"
#include "queues/two_lock_queue.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/tas_lock.hpp"
#include "sync/tatas_lock.hpp"
#include "sync/ticket_lock.hpp"

namespace msq::queues {
namespace {

template <typename Q>
class VariantTest : public ::testing::Test {};

using Variants = ::testing::Types<
    // Two-lock queue across all four locks.
    TwoLockQueue<std::uint64_t, sync::TasLock>,
    TwoLockQueue<std::uint64_t, sync::TatasLock>,
    TwoLockQueue<std::uint64_t, sync::TicketLock>,
    TwoLockQueue<std::uint64_t, sync::McsMutex>,
    // Single-lock queue across the same locks.
    SingleLockQueue<std::uint64_t, sync::TasLock>,
    SingleLockQueue<std::uint64_t, sync::TicketLock>,
    SingleLockQueue<std::uint64_t, sync::McsMutex>,
    // Non-blocking structures with backoff disabled (maximum interleaving).
    MsQueue<std::uint64_t, sync::NullBackoff>,
    MsQueueDw<std::uint64_t, sync::NullBackoff>,
    TreiberStack<std::uint64_t, sync::NullBackoff>>;
TYPED_TEST_SUITE(VariantTest, Variants);

template <typename Q>
bool put(Q& q, std::uint64_t v) {
  if constexpr (requires(Q& x) { x.try_push(v); }) {
    return q.try_push(v);
  } else {
    return q.try_enqueue(v);
  }
}
template <typename Q>
bool get(Q& q, std::uint64_t& v) {
  if constexpr (requires(Q& x) { x.try_pop(v); }) {
    return q.try_pop(v);
  } else {
    return q.try_dequeue(v);
  }
}

TYPED_TEST(VariantTest, SequentialRoundTrips) {
  TypeParam q(64);
  std::uint64_t out = 0;
  EXPECT_FALSE(get(q, out));
  for (std::uint64_t i = 0; i < 32; ++i) ASSERT_TRUE(put(q, i));
  std::uint64_t seen = 0;
  while (get(q, out)) ++seen;
  EXPECT_EQ(seen, 32u);
}

TYPED_TEST(VariantTest, ConcurrentConservationStress) {
  TypeParam q(128);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPairs = 20'000;
  std::atomic<std::uint64_t> in{0}, dropped{0}, taken{0};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t out = 0;
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          if (put(q, check::encode_value(t, i))) {
            in.fetch_add(1, std::memory_order_relaxed);
          } else {
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
          if (get(q, out)) taken.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  std::uint64_t out = 0;
  std::uint64_t drained = 0;
  while (get(q, out)) ++drained;
  EXPECT_EQ(in.load(), taken.load() + drained);
}

// The paper's deadlock-avoidance argument for the two-lock queue: because
// the dummy node keeps enqueuers off Head and dequeuers off Tail, no
// operation ever holds both locks, so ANY lock order is safe.  Exercise the
// nastiest pattern: threads alternating roles as fast as possible.
TEST(TwoLockDeadlock, RoleAlternationNeverDeadlocks) {
  TwoLockQueue<std::uint64_t, sync::McsMutex> q(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t out = 0;
        for (int i = 0; i < 30'000 && !stop.load(); ++i) {
          if ((i + t) & 1) {
            q.try_enqueue(i);
          } else {
            q.try_dequeue(out);
          }
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Watchdog: if the workers deadlock, fail rather than hang forever.
    for (int waited = 0; waited < 200; ++waited) {
      if (ops.load() >= 4 * 30'000u) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    stop.store(true);
  }
  EXPECT_EQ(ops.load(), 4 * 30'000u) << "workers stalled -- deadlock?";
}

}  // namespace
}  // namespace msq::queues
