// ShardedQueue coverage: the documented contract (docs/ALGORITHMS.md,
// "The sharded queue-of-queues") exercised directly --
//  * per-shard FIFO: each consumer's view of one producer decomposes into
//    at most N increasing runs (patience oracle, tests/sharded_oracle.hpp);
//  * work stealing: a consumer homed elsewhere drains a shard whose own
//    consumer stopped;
//  * conservation: nothing lost or duplicated across 200k MPMC pairs;
//  * the empty snapshot: false from try_dequeue means ALL shards drained,
//    including items sitting in non-home shards, and is exact whenever the
//    caller is the only active thread;
//  * producer re-homing off a persistently full shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "fault/watchdog.hpp"
#include "obs/counters.hpp"
#include "queues/queues.hpp"
#include "sharded_oracle.hpp"

namespace msq::queues {
namespace {

template <typename Q>
class ShardedQueueTest : public ::testing::Test {
 protected:
  fault::Watchdog watchdog_{std::chrono::seconds(240), "sharded stress"};
};

using ShardedTypes =
    ::testing::Types<ShardedQueue<MsQueue<std::uint64_t>, 1>,
                     ShardedQueue<MsQueue<std::uint64_t>, 2>,
                     ShardedQueue<MsQueue<std::uint64_t>, 4>,
                     ShardedQueue<SegmentQueue<std::uint64_t>, 2>,
                     ShardedQueue<SegmentQueue<std::uint64_t>, 4>,
                     ShardedQueue<RingQueue<std::uint64_t>, 4>>;
TYPED_TEST_SUITE(ShardedQueueTest, ShardedTypes);

TYPED_TEST(ShardedQueueTest, SequentialOpsAreExactFifoWithinOneThread) {
  // One thread never leaves its home shard (no fulls, no steals), so its
  // own enqueue/dequeue stream is plain FIFO whatever N is.
  TypeParam queue(512);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_enqueue(i));
  }
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_dequeue(out));
}

TYPED_TEST(ShardedQueueTest, DequeueFindsItemsInNonHomeShards) {
  // The empty-snapshot contract's positive half: false is only allowed
  // when EVERY shard is empty, so an item planted in any single shard --
  // chosen here to be a non-home one when N > 1 -- must be found by the
  // stealing sweep, never skipped.
  constexpr std::uint32_t kN = TypeParam::kShards;
  for (std::uint32_t victim = 0; victim < kN; ++victim) {
    TypeParam queue(512);
    ASSERT_TRUE(queue.unsafe_shard(victim).try_enqueue(41u + victim));
    std::uint64_t out = 0;
    ASSERT_TRUE(queue.try_dequeue(out))
        << "reported empty with an item in shard " << victim;
    EXPECT_EQ(out, 41u + victim);
    EXPECT_FALSE(queue.try_dequeue(out));
  }
}

TYPED_TEST(ShardedQueueTest, StealingDrainsShardWhoseConsumerStopped) {
  // Plant items in every shard, then drain from ONE thread only -- the
  // scenario where all other home consumers have stopped.  The single
  // consumer's sweep must steal everything; with obs armed the cross-shard
  // grabs are visible as shard_steal.
  constexpr std::uint32_t kN = TypeParam::kShards;
  constexpr std::uint64_t kPerShard = 50;
  TypeParam queue(512);
  obs::arm();
  const auto before = obs::snapshot();
  for (std::uint32_t s = 0; s < kN; ++s) {
    for (std::uint64_t i = 0; i < kPerShard; ++i) {
      ASSERT_TRUE(queue.unsafe_shard(s).try_enqueue(
          check::encode_value(s, i)));
    }
  }
  std::vector<std::uint64_t> got;
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) got.push_back(out);
  obs::disarm();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN) * kPerShard);
  // Each shard's items (tagged by "producer" = shard) came out in order.
  const auto order = check::check_per_shard_fifo(got, 1);
  EXPECT_TRUE(order.ok) << "shard " << order.worst_producer
                        << " needed " << order.runs_needed << " runs";
#if MSQ_OBS
  const auto delta = obs::snapshot() - before;
  if (kN > 1) {
    EXPECT_GT(delta[obs::Counter::kShardSteal], 0u)
        << "single consumer drained " << kN << " shards without stealing";
  } else {
    EXPECT_EQ(delta[obs::Counter::kShardSteal], 0u);
  }
#else
  (void)before;
#endif
}

TYPED_TEST(ShardedQueueTest, NoLossOrDuplicationAcross200kPairs) {
  // 4 threads x 50k enqueue/dequeue pairs = 200k pairs of MPMC churn.
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPairs = 50'000;
  TypeParam queue(1024);
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        popped[t].reserve(kPairs + 1);
        for (std::uint64_t i = 0; i < kPairs; ++i) {
          while (!queue.try_enqueue(check::encode_value(t, i))) {
            std::this_thread::yield();
          }
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) popped[t].push_back(out);
        }
      });
    }
  }
  // Quiescent drain, then the multiset check: every encoded value exactly
  // once.  (Global FIFO is NOT asserted -- that is the contract.)
  std::vector<std::uint64_t> all;
  all.reserve(kThreads * kPairs);
  for (auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) all.push_back(out);
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPairs);
  std::sort(all.begin(), all.end());
  for (std::uint32_t t = 0, i = 0; t < kThreads; ++t) {
    for (std::uint64_t s = 0; s < kPairs; ++s, ++i) {
      ASSERT_EQ(all[i], check::encode_value(t, s))
          << "lost or duplicated value near index " << i;
    }
  }
}

TYPED_TEST(ShardedQueueTest, PerShardFifoHoldsPerConsumerUnderMpmcLoad) {
  // Dedicated producers/consumers; each consumer's stream, restricted to
  // one producer, must decompose into <= N increasing runs (that producer
  // used at most N shards; each shard is FIFO; one consumer takes from a
  // shard in order).
  constexpr std::uint32_t kProducers = 2;
  constexpr std::uint32_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 30'000;
  TypeParam queue(1024);
  std::vector<std::vector<std::uint64_t>> streams(kConsumers);
  std::atomic<std::uint32_t> producers_left{kProducers};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          while (!queue.try_enqueue(check::encode_value(p, i))) {
            std::this_thread::yield();
          }
        }
        producers_left.fetch_sub(1);
      });
    }
    for (std::uint32_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        auto& stream = streams[c];
        stream.reserve(kPerProducer);
        for (;;) {
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            stream.push_back(out);
          } else if (producers_left.load() == 0) {
            if (!queue.try_dequeue(out)) break;
            stream.push_back(out);
          }
        }
      });
    }
  }
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    total += streams[c].size();
    const auto order =
        check::check_per_shard_fifo(streams[c], TypeParam::kShards);
    EXPECT_TRUE(order.ok)
        << "consumer " << c << ": producer " << order.worst_producer
        << "'s items needed " << order.runs_needed << " > "
        << TypeParam::kShards << " FIFO runs";
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
}

TYPED_TEST(ShardedQueueTest, EmptyIsReportedOnlyWhenAllShardsDrained) {
  // Concurrent churn ending in a quiescent coherent-empty check: the LAST
  // false from the draining consumer (producers finished, no other thread
  // running) must coincide with exact conservation -- a stale false from
  // an incoherent sweep would strand items and fail the count.
  constexpr std::uint64_t kItems = 40'000;
  TypeParam queue(1024);
  obs::arm();
  const auto before = obs::snapshot();
  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done{false};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!queue.try_enqueue(i)) std::this_thread::yield();
      }
      done.store(true);
    });
    for (int c = 0; c < 3; ++c) {
      threads.emplace_back([&] {
        std::uint64_t out = 0;
        for (;;) {
          if (queue.try_dequeue(out)) {
            popped.fetch_add(1, std::memory_order_relaxed);
          } else if (done.load()) {
            // Producer finished BEFORE this empty verdict: the verdict
            // claims all shards were simultaneously empty, so nothing may
            // remain.  One confirming look, then trust it.
            if (!queue.try_dequeue(out)) break;
            popped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(popped.load(), kItems) << "empty reported with items stranded";
  std::uint64_t out = 0;
  EXPECT_FALSE(queue.try_dequeue(out));
  obs::disarm();
#if MSQ_OBS
  const auto delta = obs::snapshot() - before;
  // The churn's empty verdicts all passed through the double collect;
  // hits + steals must account for every successful dequeue.
  EXPECT_EQ(delta[obs::Counter::kShardHit] +
                delta[obs::Counter::kShardSteal],
            kItems);
#else
  (void)before;
#endif
}

TEST(ShardedQueueRehomeTest, ProducerRehomesOffPersistentlyFullShard) {
  // Two tiny ring shards: fill until the home shard refuses repeatedly.
  // The producer must keep succeeding by spilling to the other shard and,
  // after kRehomeAfter spills, move its home hint there.
  using Q = ShardedQueue<RingQueue<std::uint64_t>, 2>;
  Q queue(64);  // 32 slots per shard
  obs::arm();
  const auto before = obs::snapshot();
  const std::uint32_t home0 = queue.unsafe_home_shard();
  std::uint64_t accepted = 0;
  while (queue.try_enqueue(accepted)) ++accepted;
  obs::disarm();
  EXPECT_GE(accepted, 64u);  // aggregate capacity all reachable via sweep
  EXPECT_NE(queue.unsafe_home_shard(), home0) << "never re-homed";
#if MSQ_OBS
  const auto delta = obs::snapshot() - before;
  EXPECT_GT(delta[obs::Counter::kShardRehome], 0u);
#else
  (void)before;
#endif
  // Still fully functional: drain everything, exact count.
  std::uint64_t out = 0;
  std::uint64_t drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(drained, accepted);
}

}  // namespace
}  // namespace msq::queues
