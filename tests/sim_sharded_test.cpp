// Schedule-exhaustive model of the sharded queue's empty scan, driven
// through DPOR: demonstrates the lost-item race of a naive per-shard sweep
// and proves the ticket double-collect fix (src/queues/sharded_queue.hpp).
//
// The race (ISSUE wording): consumer scans shard A empty; a producer
// enqueues to A; a second consumer -- having SEEN A's new item -- drains
// shard B; the first consumer scans B empty and wrongly reports the whole
// queue empty, although some shard held an item at every instant of its
// operation.  No linearization point for the empty verdict exists.
//
// Model: each shard is one word, count<<32 | item (0 = no item), so an
// enqueue is a single faa that bumps the count AND deposits the item
// atomically.  Making announce+insert one step deliberately carves away
// the orthogonal stalled-enqueuer window (announced before the scan,
// inserted mid-scan), which the real queue documents as linearizable-
// false-empty territory (docs/ALGORITHMS.md); what remains is exactly the
// scan-ordering race the double collect exists to fix, so the guarded
// consumer must show ZERO violations across the full DPOR sweep while the
// naive consumer must show at least one.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>

#include "sim/engine.hpp"
#include "sim/explore.hpp"

namespace msq::sim {
namespace {

constexpr std::uint64_t kItemMask = 0xffff'ffffu;
constexpr std::uint64_t kCountOne = 1ull << 32;
constexpr std::uint64_t kNoResult = ~0ull;

[[nodiscard]] constexpr std::uint64_t shard_item(std::uint64_t s) noexcept {
  return s & kItemMask;
}
[[nodiscard]] constexpr std::uint64_t shard_count(std::uint64_t s) noexcept {
  return s >> 32;
}

/// Take the observed item out of one shard word, count preserved.  CAS so
/// a racing taker loses cleanly; returns the item or 0.
Task<std::uint64_t> take_item(Proc& p, Addr shard) {
  for (;;) {
    const std::uint64_t s = co_await p.read(shard);
    const std::uint64_t item = shard_item(s);
    if (item == 0) co_return 0;
    co_await p.at("SHARD_TAKE");
    if (co_await p.cas(shard, s, s - item) == s) co_return item;
  }
}

/// The buggy sweep: each shard checked once, in order, no coherence check.
Task<void> naive_dequeue(Proc& p, Addr shard_a, Addr shard_b,
                         std::uint64_t& result) {
  co_await p.at("SCAN_A");
  std::uint64_t item = co_await take_item(p, shard_a);
  if (item != 0) {
    result = item;
    co_return;
  }
  co_await p.at("SCAN_B");
  item = co_await take_item(p, shard_b);
  result = item;  // 0 = reported empty
}

/// The fixed sweep: counts collected before and after; an empty verdict is
/// only returned if no enqueue bumped any count across the whole scan,
/// otherwise the sweep re-runs (sharded_queue.hpp try_dequeue).
Task<void> guarded_dequeue(Proc& p, Addr shard_a, Addr shard_b,
                           std::uint64_t& result) {
  for (;;) {
    co_await p.at("COLLECT");
    const std::uint64_t pre_a = co_await p.read(shard_a);
    const std::uint64_t pre_b = co_await p.read(shard_b);
    co_await p.at("SCAN_A");
    std::uint64_t item = co_await take_item(p, shard_a);
    if (item != 0) {
      result = item;
      co_return;
    }
    co_await p.at("SCAN_B");
    item = co_await take_item(p, shard_b);
    if (item != 0) {
      result = item;
      co_return;
    }
    co_await p.at("VERIFY");
    const std::uint64_t post_a = co_await p.read(shard_a);
    const std::uint64_t post_b = co_await p.read(shard_b);
    if (shard_count(post_a) == shard_count(pre_a) &&
        shard_count(post_b) == shard_count(pre_b)) {
      result = 0;  // coherent: all shards simultaneously empty
      co_return;
    }
    // A ticket moved: an enqueue landed mid-scan; rescan (kEmptyRescan in
    // the real queue).  Terminates: the model's producer enqueues once.
  }
}

/// Single-step enqueue: bump count and deposit the item atomically.
Task<void> enqueue_item(Proc& p, Addr shard, std::uint64_t value) {
  co_await p.at("ENQ");
  co_await p.faa(shard, kCountOne + value);
}

/// The witness of continuous non-emptiness: drains shard B only after
/// seeing shard A non-empty.  If it got B's item, then from time 0 (B
/// pre-loaded) through its take (A already filled) through the consumer's
/// verdict (nobody else empties A), some shard always held an item.
Task<void> steal_after_seeing(Proc& p, Addr shard_a, Addr shard_b,
                              std::uint64_t& got) {
  co_await p.at("PEEK_A");
  const std::uint64_t a = co_await p.read(shard_a);
  if (shard_item(a) == 0) {
    got = 0;
    co_return;
  }
  got = co_await take_item(p, shard_b);
}

constexpr std::uint64_t kItemA = 5;
constexpr std::uint64_t kItemB = 7;

struct ScanWorld {
  Engine engine;
  Addr shard_a = 0;
  Addr shard_b = 0;
  std::uint64_t consumer_result = kNoResult;
  std::uint64_t helper_got = kNoResult;

  explicit ScanWorld(bool guarded) {
    shard_a = engine.memory().alloc(1);
    shard_b = engine.memory().alloc(1);
    // Shard B starts non-empty (count 1, item 7); shard A empty.
    engine.memory().word(shard_b) = kCountOne + kItemB;
    engine.spawn(0, [this, guarded](Proc& p) {
      return guarded ? guarded_dequeue(p, shard_a, shard_b, consumer_result)
                     : naive_dequeue(p, shard_a, shard_b, consumer_result);
    });
    engine.spawn(0, [this](Proc& p) { return enqueue_item(p, shard_a, kItemA); });
    engine.spawn(0, [this](Proc& p) {
      return steal_after_seeing(p, shard_a, shard_b, helper_got);
    });
  }
};

struct SweepStats {
  std::uint64_t schedules = 0;
  std::uint64_t violations = 0;  // empty verdict while provably non-empty
  std::uint64_t empty_verdicts = 0;
};

SweepStats sweep(bool guarded) {
  std::unique_ptr<ScanWorld> world;
  SweepStats stats;
  DporConfig config;
  config.max_steps_per_run = 5'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/3,
      [&]() -> Engine& {
        world = std::make_unique<ScanWorld>(guarded);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        ++stats.schedules;
        ASSERT_NE(world->consumer_result, kNoResult) << "consumer unfinished";
        ASSERT_NE(world->helper_got, kNoResult) << "helper unfinished";
        // Conservation on every schedule: both items end up taken exactly
        // once or still in a shard (values are distinct, so sums decide).
        const std::uint64_t remaining =
            shard_item(engine.memory().peek(world->shard_a)) +
            shard_item(engine.memory().peek(world->shard_b));
        EXPECT_EQ(world->consumer_result + world->helper_got + remaining,
                  kItemA + kItemB);
        if (world->consumer_result == 0) {
          ++stats.empty_verdicts;
          // Helper holding B's item proves the queue was never empty
          // across the consumer's whole operation (see steal_after_seeing).
          if (world->helper_got == kItemB) ++stats.violations;
        }
      });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.schedules_run, 1u) << "DPOR explored no alternatives";
  return stats;
}

TEST(SimShardedScan, NaiveSweepLosesAnItemOnSomeSchedule) {
  const SweepStats stats = sweep(/*guarded=*/false);
  EXPECT_GT(stats.violations, 0u)
      << "the empty-scan race must be reachable: consumer scans A empty, "
         "producer fills A, helper drains B, consumer scans B empty";
  std::cout << "[ SIM      ] naive sweep: " << stats.schedules
            << " schedules, " << stats.empty_verdicts << " empty verdicts, "
            << stats.violations << " non-linearizable\n";
}

TEST(SimShardedScan, TicketDoubleCollectMakesEveryEmptyVerdictCoherent) {
  const SweepStats stats = sweep(/*guarded=*/true);
  EXPECT_EQ(stats.violations, 0u)
      << "a double-collect empty verdict coincided with a provably "
         "non-empty queue";
  // The fix must not simply forbid empty verdicts: schedules where the
  // producer runs after the consumer finishes still (correctly) see A
  // empty... but B starts full, so a correct consumer NEVER reports empty
  // in this world -- it must find kItemA or kItemB.
  EXPECT_EQ(stats.empty_verdicts, 0u)
      << "B holds an item until the helper proves A non-empty, so a "
         "coherent scan always finds something";
  std::cout << "[ SIM      ] guarded sweep: " << stats.schedules
            << " schedules, 0 violations\n";
}

}  // namespace
}  // namespace msq::sim
