// Model-checked core of the wait-free helping protocol behind
// queues::WfQueue (announcement array + monotone phases, Kogan-Petrank
// style over the MS core).
//
// The queue itself is exercised by the real-thread suites; what the
// simulator adds is SCHEDULE coverage of the protocol skeleton -- the part
// whose interleavings decide the wait-freedom claim:
//
//  * an operation draws a phase (FAA), announces itself in its slot, and
//    performs ONE ascending helping sweep, completing every announced op
//    with phase <= its own via a single pending->done CAS per slot;
//  * completion state is monotone (pending -> done, never back), so a
//    failed help CAS needs no retry: the failure itself proves another
//    helper completed that op.
//
// Checked over EVERY sleep-set-DPOR schedule of 3 concurrent ops:
//  1. step bound: no schedule makes any op exceed its documented
//     2*kProcs + 3 shared-memory steps (the real queue's constant-step
//     link/swing/claim/deposit completion is collapsed into the one CAS;
//     the helping sweep is what scales and what is modelled exactly);
//  2. completion-after-sweep: an op's own announcement is always done when
//     its own sweep finishes -- under ANY interleaving (this is the
//     wait-free claim: bounded steps to completion, no luck required);
//  3. exactly-once: each announced op is completed by exactly one
//     successful CAS, no matter how many helpers race on it.
//
// Plus a crash sweep OUTSIDE DPOR (crashes are forbidden mid-exploration):
// a helper crash-stopped after EVERY reachable step of its operation can
// never wedge the announcement array -- survivors still finish all their
// ops, and if the victim's announcement was published, the survivors
// complete it (its slot reads `done` while the victim stays dead).  This is
// the simulator twin of RealThreadFaults.WfVictimHaltedAfterAnnounce*.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>

#include "sim/engine.hpp"
#include "sim/explore.hpp"

namespace msq::sim {
namespace {

constexpr std::uint32_t kProcs = 3;

// Announcement word: (phase << 2) | state.
constexpr std::uint64_t kStateIdle = 0;
constexpr std::uint64_t kStatePending = 1;
constexpr std::uint64_t kStateDone = 2;

constexpr std::uint64_t encode(std::uint64_t phase, std::uint64_t state) {
  return (phase << 2) | state;
}
constexpr std::uint64_t state_of(std::uint64_t word) { return word & 3u; }
constexpr std::uint64_t phase_of(std::uint64_t word) { return word >> 2; }

/// Documented per-op step bound: FAA + announce + (read + at most one help
/// CAS per slot) + the final own-slot read.
constexpr std::uint64_t kStepBound = 2 * kProcs + 3;

struct HelpWorld;
Task<void> announced_op(Proc& p, HelpWorld& w, std::uint32_t self,
                        std::uint32_t rounds);

struct HelpWorld {
  Engine engine;
  Addr ann0 = 0;     // kProcs announcement words
  Addr phase = 0;    // global phase counter
  std::array<std::uint64_t, kProcs> op_steps{};    // steps of the LAST op
  std::array<std::uint64_t, kProcs> completions{};  // successful help CASes
  std::array<bool, kProcs> done_after_sweep{};

  explicit HelpWorld(std::uint32_t rounds_per_proc = 1) {
    SimMemory& mem = engine.memory();
    ann0 = mem.alloc(kProcs);
    phase = mem.alloc(1);
    for (std::uint32_t i = 0; i < kProcs; ++i) {
      mem.word(ann0 + i) = encode(0, kStateIdle);
      done_after_sweep[i] = true;
    }
    for (std::uint32_t i = 0; i < kProcs; ++i) {
      engine.spawn(0, [this, i, rounds_per_proc](Proc& p) {
        return announced_op(p, *this, i, rounds_per_proc);
      });
    }
  }

  [[nodiscard]] Addr ann(std::uint32_t i) const { return ann0 + i; }
};

/// `rounds` announced operations in sequence (later rounds draw later
/// phases, which is how a survivor's sweep comes to cover a dead peer).
Task<void> announced_op(Proc& p, HelpWorld& w, std::uint32_t self,
                        std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) {
    w.op_steps[self] = 0;
    auto tick = [&] { ++w.op_steps[self]; };

    tick();
    const std::uint64_t my_phase = co_await p.faa(w.phase, 1);
    tick();
    co_await p.write(w.ann(self), encode(my_phase, kStatePending));

    // The helping sweep: ascending slot order, help everything announced
    // with a phase no later than ours (including our own slot).
    for (std::uint32_t j = 0; j < kProcs; ++j) {
      tick();
      const std::uint64_t a = co_await p.read(w.ann(j));
      if (state_of(a) == kStatePending && phase_of(a) <= my_phase) {
        tick();
        const std::uint64_t seen =
            co_await p.cas(w.ann(j), a, encode(phase_of(a), kStateDone));
        // Monotone pending->done: a lost CAS here means another helper
        // completed slot j first -- no retry, and that is the whole
        // argument for the bound.
        if (seen == a) ++w.completions[self];
      }
    }

    tick();
    const std::uint64_t mine = co_await p.read(w.ann(self));
    if (state_of(mine) != kStateDone) w.done_after_sweep[self] = false;
  }
}

TEST(SimWfHelping, DporNoScheduleExceedsTheStepBoundOrLeavesAnOpPending) {
  std::unique_ptr<HelpWorld> world;
  std::uint64_t checked = 0;
  DporConfig config;
  config.max_steps_per_run = 2'000;
  const DporResult result = explore_dpor(
      config, kProcs,
      [&]() -> Engine& {
        world = std::make_unique<HelpWorld>();
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        // Wait-freedom has no blocked schedules, full stop.
        ASSERT_TRUE(engine.all_done()) << "a schedule wedged an announced op";
        std::uint64_t total_completions = 0;
        for (std::uint32_t i = 0; i < kProcs; ++i) {
          ASSERT_LE(world->op_steps[i], kStepBound)
              << "proc " << i << " exceeded the documented helping bound";
          ASSERT_TRUE(world->done_after_sweep[i])
              << "proc " << i
              << "'s own op was still pending after its full sweep";
          total_completions += world->completions[i];
        }
        // Exactly-once: kProcs announcements, kProcs successful
        // completion CASes across all helpers, never more.
        ASSERT_EQ(total_completions, kProcs);
        ++checked;
      });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(checked, 50u) << "DPOR covered suspiciously few schedules";
  EXPECT_GT(result.sleep_blocked, 0u)
      << "sleep sets pruned nothing -- exploration misconfigured?";
}

TEST(SimWfHelping, CrashedHelperCannotWedgeTheAnnouncementArray) {
  // Length of one uncrashed op, measured by stepping a fresh victim alone.
  std::uint64_t op_len = 0;
  {
    HelpWorld w;
    const std::uint32_t victim = 0;
    while (w.engine.step(victim)) ++op_len;
    ASSERT_GT(op_len, 0u);
    ASSERT_LE(op_len, kStepBound);
  }

  for (std::uint64_t k = 0; k <= op_len; ++k) {
    // Survivors run TWO rounds each: their second round's phase is
    // strictly later than anything the victim drew, so their sweeps must
    // cover (and complete) the victim's announcement.
    HelpWorld w(/*rounds_per_proc=*/2);
    const std::uint32_t victim = 0;
    for (std::uint64_t s = 0; s < k; ++s) w.engine.step(victim);
    w.engine.crash(victim);

    for (std::uint64_t i = 0; i < 10'000; ++i) {
      if (!w.engine.step_random()) break;
    }
    EXPECT_TRUE(w.engine.done(1)) << "survivor 1 wedged; crash step " << k;
    EXPECT_TRUE(w.engine.done(2)) << "survivor 2 wedged; crash step " << k;
    EXPECT_TRUE(w.done_after_sweep[1]);
    EXPECT_TRUE(w.done_after_sweep[2]);

    // The victim's slot can be idle (died before publishing) or done
    // (survivors completed it) -- but NEVER left pending: a published
    // announcement is always finished by somebody.
    const std::uint64_t slot = w.engine.memory().word(w.ann(victim));
    EXPECT_NE(state_of(slot), kStatePending)
        << "announcement orphaned forever; victim crashed at step " << k;
    if (k >= 2) {  // FAA then announce-write have both executed
      EXPECT_EQ(state_of(slot), kStateDone)
          << "published announcement not completed; crash step " << k;
    }
  }
}

}  // namespace
}  // namespace msq::sim
