// Systematic bounded-preemption exploration (sim/explore.hpp): the paper's
// races and properties checked over EVERY schedule with at most two forced
// context switches, not just random ones.
//
// Headline assertions:
//  * the bare-pointer Treiber stack's ABA corruption IS found by systematic
//    search (some schedule produces a corrupt final state);
//  * with modification counters, NO schedule in the same space corrupts it;
//  * the simulated MS queue keeps its structural invariants and exact
//    linearizability on every explored schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "check/lin_check.hpp"
#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/ms_queue_sim.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"
#include "tests/tiny_stack_sim.hpp"

namespace msq::sim {
namespace {

using testing::kNullNode;
using testing::TinyStack;

// --- ABA search over the stack ----------------------------------------------

template <bool Counted>
Task<void> single_pop(Proc& p, TinyStack<Counted>& stack, std::uint64_t& out) {
  out = co_await stack.pop(p);
}

template <bool Counted>
Task<void> aba_mutator(Proc& p, TinyStack<Counted>& stack,
                       std::uint64_t& first, std::uint64_t& second,
                       bool& pushed_back) {
  first = co_await stack.pop(p);
  second = co_await stack.pop(p);
  if (first != kNullNode) {
    co_await stack.push(p, first);  // the second "A" of A-B-A
    pushed_back = true;
  }
}

/// World rebuilt for every schedule: Top -> A(0) -> B(1); P0 pops once, P1
/// pops twice and re-pushes its first pop.
template <bool Counted>
struct StackWorld {
  Engine engine;
  TinyStack<Counted> stack{engine, 4};
  std::uint64_t p0_pop = kNullNode;
  std::uint64_t p1_first = kNullNode;
  std::uint64_t p1_second = kNullNode;
  bool pushed_back = false;

  StackWorld() {
    SimMemory& mem = engine.memory();
    mem.word(stack.next_addr(1)) = TinyStack<Counted>::encode(kNullNode, 0);
    mem.word(stack.next_addr(0)) = TinyStack<Counted>::encode(1, 0);
    mem.word(top_addr()) = TinyStack<Counted>::encode(0, 7);
    engine.spawn(0, [this](Proc& p) {
      return single_pop<Counted>(p, stack, p0_pop);
    });
    engine.spawn(0, [this](Proc& p) {
      return aba_mutator<Counted>(p, stack, p1_first, p1_second, pushed_back);
    });
  }

  [[nodiscard]] Addr top_addr() const {
    // TinyStack lays out capacity node words then the top word.
    return stack.next_addr(4);
  }

  /// Corruption oracle via ownership accounting: the final stack must not
  /// contain duplicates, nor any node a process ended up owning (a pop
  /// result that was never pushed back).
  [[nodiscard]] bool corrupt() const {
    const auto nodes = stack.snapshot(engine);
    std::multiset<std::uint64_t> occurrences(nodes.begin(), nodes.end());
    for (const std::uint64_t n : nodes) {
      if (occurrences.count(n) > 1) return true;
    }
    std::set<std::uint64_t> owned;
    if (p0_pop != kNullNode) owned.insert(p0_pop);
    if (p1_second != kNullNode) owned.insert(p1_second);
    if (p1_first != kNullNode && !pushed_back) owned.insert(p1_first);
    for (const std::uint64_t n : nodes) {
      if (owned.contains(n)) return true;
    }
    return false;
  }
};

template <bool Counted>
std::uint64_t count_corrupt_schedules() {
  std::uint64_t corrupt = 0;
  std::unique_ptr<StackWorld<Counted>> world;
  ExploreConfig config;
  config.max_preemptions = 2;
  config.max_steps_per_run = 5'000;
  const ExploreResult result = explore_schedules(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<StackWorld<Counted>>();
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine&) { corrupt += world->corrupt() ? 1 : 0; });
  EXPECT_FALSE(result.budget_exhausted);
  // Degenerate preemption placements (those matching the round-robin
  // choice) are skipped, not run; the covered space is run + skipped.
  EXPECT_GT(result.schedules_run + result.schedules_skipped, 100u)
      << "schedule space suspiciously small";
  EXPECT_GT(result.schedules_skipped, 0u)
      << "skip optimization should prune some degenerate placements";
  return corrupt;
}

TEST(ExploreAba, SystematicSearchFindsBarePointerCorruption) {
  EXPECT_GT(count_corrupt_schedules<false>(), 0u)
      << "<=2-preemption search failed to find the classic ABA race";
}

TEST(ExploreAba, CountedPointersSurviveTheWholeScheduleSpace) {
  EXPECT_EQ(count_corrupt_schedules<true>(), 0u)
      << "a schedule corrupted the counted-pointer stack";
}

// --- MS queue over the schedule space ----------------------------------------

Task<void> one_pair(Proc& p, SimQueue& queue, std::uint32_t producer,
                    check::ThreadLog& log, Engine& engine) {
  const std::uint64_t value = check::encode_value(producer, 1);
  auto inv = static_cast<std::int64_t>(engine.total_steps());
  for (;;) {
    const bool ok = co_await queue.enqueue(p, value);
    if (ok) break;
  }
  log.record(check::OpKind::kEnqueue, value, inv,
             static_cast<std::int64_t>(engine.total_steps()));
  inv = static_cast<std::int64_t>(engine.total_steps());
  const std::uint64_t out = co_await queue.dequeue(p);
  log.record(out == kEmpty ? check::OpKind::kDequeueEmpty
                           : check::OpKind::kDequeue,
             out, inv, static_cast<std::int64_t>(engine.total_steps()));
}

struct QueueWorld {
  Engine engine;
  std::unique_ptr<SimQueue> queue;
  std::vector<check::ThreadLog> logs;
  explicit QueueWorld(Algo algo) {
    queue = make_sim_queue(algo, engine, 8);
    logs.reserve(2);
    for (std::uint32_t t = 0; t < 2; ++t) logs.emplace_back(t);
    for (std::uint32_t t = 0; t < 2; ++t) {
      engine.spawn(0, [this, t](Proc& p) {
        return one_pair(p, *queue, t, logs[t], engine);
      });
    }
  }
};

class ExploreAllAlgos : public ::testing::TestWithParam<Algo> {};

INSTANTIATE_TEST_SUITE_P(EveryAlgorithm, ExploreAllAlgos,
                         ::testing::ValuesIn(kAllAlgos),
                         [](const auto& info) {
                           switch (info.param) {
                             case Algo::kSingleLock: return "SingleLock";
                             case Algo::kMc: return "Mc";
                             case Algo::kValois: return "Valois";
                             case Algo::kTwoLock: return "TwoLock";
                             case Algo::kPlj: return "Plj";
                             case Algo::kMs: return "Ms";
                           }
                           return "Unknown";
                         });

TEST_P(ExploreAllAlgos, InvariantsAndLinearizabilityOnEverySchedule) {
  // Two processes, one enqueue/dequeue pair each, EVERY schedule with at
  // most two forced preemptions.  Structural invariants hold after every
  // step for every algorithm; completed schedules must be exactly
  // linearizable.  Blocking algorithms may have schedules that never finish
  // (a preemption into a spinning peer); those are expected for them and
  // forbidden for the non-blocking ones.
  const Algo algo = GetParam();
  const bool non_blocking =
      algo == Algo::kMs || algo == Algo::kPlj || algo == Algo::kValois;
  std::unique_ptr<QueueWorld> world;
  std::uint64_t completed = 0;
  std::uint64_t blocked = 0;
  ExploreConfig config;
  config.max_preemptions = 2;
  config.max_steps_per_run = 3'000;
  const ExploreResult result = explore_schedules(
      config, 2,
      [&]() -> Engine& {
        world = std::make_unique<QueueWorld>(algo);
        return world->engine;
      },
      [&](Engine&) { world->queue->check_invariants(); },
      [&](Engine& engine) {
        if (!engine.all_done()) {
          ASSERT_FALSE(non_blocking)
              << algo_name(algo) << ": schedule blocked (non-blocking!)";
          ++blocked;
          return;
        }
        const auto history = check::merge_logs(world->logs);
        const auto lin = check::check_linearizable_exact(history);
        ASSERT_TRUE(lin.ok) << algo_name(algo) << ": " << lin.diagnosis;
        ++completed;
      });
  EXPECT_FALSE(result.budget_exhausted);
  // run + skipped = the covered placement space (skips are degenerate
  // placements that would replay an already-run schedule).
  EXPECT_GT(completed + result.schedules_skipped, 500u)
      << "schedule space suspiciously small";
  if (non_blocking) {
    EXPECT_EQ(blocked, 0u);
  }
  // Note: round-robin-with-forced-switch schedules never PARK a process
  // permanently (the preempted process gets the CPU back), so even the
  // blocking algorithms usually complete here; `blocked` counts the
  // genuinely wedged schedules if any arise.  No assertion either way.
}

}  // namespace
}  // namespace msq::sim
