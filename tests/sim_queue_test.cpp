// Schedule-exploration tests of the six simulated algorithms: randomised
// interleavings with per-step safety invariants (paper section 3.1) and
// exact linearizability checking of small sim histories (section 3.2).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "check/lin_check.hpp"
#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"

namespace msq::sim {
namespace {

/// Worker recording a history with the engine's step counter as the clock.
Task<void> logged_pairs(Proc& p, SimQueue& queue, std::uint32_t producer,
                        std::uint64_t pairs, check::ThreadLog& log) {
  Engine& engine = p.engine();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t value = check::encode_value(producer, i);
    auto inv = static_cast<std::int64_t>(engine.total_steps());
    for (;;) {
      const bool ok = co_await queue.enqueue(p, value);
      if (ok) break;
    }
    log.record(check::OpKind::kEnqueue, value, inv,
               static_cast<std::int64_t>(engine.total_steps()));
    inv = static_cast<std::int64_t>(engine.total_steps());
    const std::uint64_t out = co_await queue.dequeue(p);
    log.record(out == kEmpty ? check::OpKind::kDequeueEmpty
                             : check::OpKind::kDequeue,
               out, inv, static_cast<std::int64_t>(engine.total_steps()));
  }
}

class SimQueueAlgoTest : public ::testing::TestWithParam<Algo> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SimQueueAlgoTest,
                         ::testing::ValuesIn(kAllAlgos),
                         [](const auto& info) {
                           switch (info.param) {
                             case Algo::kSingleLock: return "SingleLock";
                             case Algo::kMc: return "McRing";
                             case Algo::kValois: return "Valois";
                             case Algo::kTwoLock: return "TwoLock";
                             case Algo::kPlj: return "Plj";
                             case Algo::kMs: return "Ms";
                           }
                           return "Unknown";
                         });

TEST_P(SimQueueAlgoTest, InvariantsHoldAfterEveryStepAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    EngineConfig config;
    config.seed = seed;
    Engine engine(config);
    auto queue = make_sim_queue(GetParam(), engine, 16);
    std::vector<check::ThreadLog> logs;
    logs.reserve(3);
    for (std::uint32_t t = 0; t < 3; ++t) logs.emplace_back(t);
    for (std::uint32_t t = 0; t < 3; ++t) {
      engine.spawn(0, [&, t](Proc& p) {
        return logged_pairs(p, *queue, t, 3, logs[t]);
      });
    }
    std::uint64_t guard = 0;
    while (engine.step_random()) {
      ASSERT_NO_THROW(queue->check_invariants())
          << algo_name(GetParam()) << " seed " << seed << " step " << guard;
      ASSERT_LT(++guard, 2'000'000u) << "schedule did not terminate";
    }
    ASSERT_TRUE(engine.all_done());

    // Exact linearizability of the recorded history (<= 18 events).
    const auto history = check::merge_logs(logs);
    const auto result = check::check_linearizable_exact(history);
    ASSERT_TRUE(result.ok)
        << algo_name(GetParam()) << " seed " << seed << ": " << result.diagnosis;
  }
}

TEST_P(SimQueueAlgoTest, LargerRandomRunsConserveValues) {
  EngineConfig config;
  config.seed = 99;
  Engine engine(config);
  auto queue = make_sim_queue(GetParam(), engine, 64);
  constexpr std::uint32_t kProcs = 4;
  constexpr std::uint64_t kPairs = 200;
  std::vector<check::ThreadLog> logs;
  for (std::uint32_t t = 0; t < kProcs; ++t) logs.emplace_back(t);
  for (std::uint32_t t = 0; t < kProcs; ++t) {
    engine.spawn(0, [&, t](Proc& p) {
      return logged_pairs(p, *queue, t, kPairs, logs[t]);
    });
  }
  ASSERT_TRUE(engine.run_random());
  const auto history = check::merge_logs(logs);
  const auto conservation = check::check_conservation(history);
  EXPECT_TRUE(conservation.ok) << conservation.diagnosis;
  const auto order = check::check_fifo_order(history);
  EXPECT_TRUE(order.ok) << order.diagnosis;
}

TEST_P(SimQueueAlgoTest, SequentialFifoThroughTheSimEngine) {
  Engine engine;
  auto queue = make_sim_queue(GetParam(), engine, 8);
  check::ThreadLog log(0);
  engine.spawn(0, [&](Proc& p) { return logged_pairs(p, *queue, 0, 6, log); });
  ASSERT_TRUE(engine.run_random());
  // Single process: every dequeue must return the value just enqueued.
  const auto& events = log.events();
  ASSERT_EQ(events.size(), 12u);
  for (std::size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].kind, check::OpKind::kEnqueue);
    EXPECT_EQ(events[i + 1].kind, check::OpKind::kDequeue);
    EXPECT_EQ(events[i].value, events[i + 1].value);
  }
}

TEST_P(SimQueueAlgoTest, CostModelRunCompletesAndCharges) {
  SimRunConfig config;
  config.algo = GetParam();
  config.processors = 4;
  config.total_pairs = 400;
  config.other_work = 100;
  const SimRunResult result = run_sim_workload(config);
  EXPECT_GT(result.elapsed, 0.0);
  EXPECT_GT(result.steps, 0u);
  // Elapsed must at least cover one processor's other work.
  EXPECT_GT(result.elapsed, 100.0 * 2 * 100);
}

TEST_P(SimQueueAlgoTest, MultiprogrammedCostRunCompletes) {
  SimRunConfig config;
  config.algo = GetParam();
  config.processors = 2;
  config.procs_per_processor = 3;
  config.total_pairs = 300;
  config.other_work = 100;
  config.quantum = 5'000;
  const SimRunResult result = run_sim_workload(config);
  EXPECT_GT(result.elapsed, 0.0);
}

TEST(SimWorkload, DeterministicGivenSeed) {
  SimRunConfig config;
  config.algo = Algo::kMs;
  config.processors = 3;
  config.total_pairs = 300;
  const double a = run_sim_workload(config).elapsed;
  const double b = run_sim_workload(config).elapsed;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimWorkload, AlgoNamesAreDistinct) {
  std::vector<std::string> names;
  for (const Algo algo : kAllAlgos) names.emplace_back(algo_name(algo));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace msq::sim
