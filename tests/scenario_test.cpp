// Tests for the open-loop scenario subsystem (src/scenario/): arrival
// schedule generation, the SLO evaluator, the shed-or-retry enqueue
// policy, and -- the load-bearing one -- coordinated-omission safety of
// the producer's stamping, proven with a deterministic virtual clock that
// falls arbitrarily far behind its schedule.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "harness/calibrate.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "queues/ms_queue.hpp"
#include "queues/ring_queue.hpp"
#include "scenario/arrival.hpp"
#include "scenario/driver.hpp"
#include "scenario/presets.hpp"
#include "scenario/slo.hpp"

namespace msq {
namespace {

using scenario::ArrivalSpec;
using scenario::RateShape;

// ---------------------------------------------------------------- arrivals

TEST(ScenarioArrivalTest, DeterministicGivenSeed) {
  ArrivalSpec spec;
  spec.ops = 2000;
  spec.producers = 3;
  const auto a = scenario::generate_arrivals(spec, 42);
  const auto b = scenario::generate_arrivals(spec, 42);
  EXPECT_EQ(a.per_producer, b.per_producer);
  EXPECT_EQ(a.horizon_ns, b.horizon_ns);

  const auto c = scenario::generate_arrivals(spec, 43);
  EXPECT_NE(a.per_producer, c.per_producer);
}

TEST(ScenarioArrivalTest, CountsConserveAndListsSorted) {
  ArrivalSpec spec;
  spec.ops = 5000;
  spec.producers = 4;
  const auto schedule = scenario::generate_arrivals(spec, 7);
  ASSERT_EQ(schedule.per_producer.size(), 4u);

  std::uint64_t total = 0;
  for (const auto& list : schedule.per_producer) {
    total += list.size();
    for (std::size_t i = 1; i < list.size(); ++i) {
      ASSERT_LE(list[i - 1], list[i]) << "per-producer list not sorted";
    }
  }
  EXPECT_EQ(total, spec.ops);
  EXPECT_EQ(schedule.ops, spec.ops);
  EXPECT_GT(schedule.offered_rate_hz, 0.0);
}

TEST(ScenarioArrivalTest, DiurnalRateTroughAndPeak) {
  ArrivalSpec spec;
  spec.ops = 1000;
  spec.base_rate_hz = 10'000;
  spec.shape = RateShape::kDiurnal;
  spec.diurnal_amplitude = 0.8;
  const double horizon = scenario::nominal_horizon_seconds(spec);
  // Phase -pi/2 at t=0: the run starts at the trough, peaks mid-run.
  EXPECT_NEAR(scenario::rate_at_hz(spec, 0.0), 2'000, 1.0);
  EXPECT_NEAR(scenario::rate_at_hz(spec, horizon / 2), 18'000, 1.0);
  EXPECT_NEAR(scenario::mean_rate_hz(spec), 10'000, 1e-9);
}

TEST(ScenarioArrivalTest, BurstWindowCarriesMostArrivals) {
  ArrivalSpec spec;
  spec.ops = 3000;
  spec.base_rate_hz = 1'000;
  spec.shape = RateShape::kBurst;
  spec.burst_factor = 100.0;
  spec.burst_start_frac = 0.45;
  spec.burst_len_frac = 0.10;
  spec.producers = 2;
  // Mean rate folds the burst in: base * (1 + 99 * 0.1).
  EXPECT_NEAR(scenario::mean_rate_hz(spec), 10'900, 1e-9);

  const auto schedule = scenario::generate_arrivals(spec, 11);
  const double horizon_ns =
      scenario::nominal_horizon_seconds(spec) * 1e9;
  const auto win_lo = static_cast<std::uint64_t>(0.45 * horizon_ns);
  const auto win_hi = static_cast<std::uint64_t>(0.55 * horizon_ns);
  std::uint64_t in_window = 0;
  for (const auto& list : schedule.per_producer) {
    for (const std::uint64_t t : list) {
      if (t >= win_lo && t < win_hi) ++in_window;
    }
  }
  // The 10% window at 100x rate should hold the clear majority of ops
  // (expectation ~92%); >50% is a loose, non-flaky bound.
  EXPECT_GT(in_window, spec.ops / 2)
      << "burst window holds " << in_window << "/" << spec.ops;
}

TEST(ScenarioArrivalTest, HotShareSkewsProducerZero) {
  ArrivalSpec spec;
  spec.ops = 5000;
  spec.producers = 4;
  spec.hot_share = 0.9;
  const auto schedule = scenario::generate_arrivals(spec, 3);
  const double share =
      static_cast<double>(schedule.per_producer[0].size()) /
      static_cast<double>(spec.ops);
  EXPECT_GT(share, 0.85);
  EXPECT_LT(share, 0.95);
}

// --------------------------------------------------------------------- SLO

TEST(ScenarioSloTest, ClauseBoundariesAndDisabling) {
  obs::Histogram hist;
  // 0.5% outliers: above the p99 rank, below the p99.9 one, so the two
  // clauses are judged against different buckets.
  for (int i = 0; i < 995; ++i) hist.record(1'000);
  for (int i = 0; i < 5; ++i) hist.record(1'000'000'000);

  // Read the measured percentiles back, then judge at exact boundaries:
  // <= passes at equality, fails one below.
  const auto measured = scenario::evaluate_slo({}, hist, 1000, 0);
  ASSERT_GT(measured.p999_ns, measured.p99_ns);

  scenario::SloSpec at_boundary{.p99_ns_max = measured.p99_ns,
                                .p999_ns_max = measured.p999_ns,
                                .shed_rate_max = 0.0};
  EXPECT_TRUE(scenario::evaluate_slo(at_boundary, hist, 1000, 0).pass());

  scenario::SloSpec below{.p99_ns_max = measured.p99_ns - 1,
                          .p999_ns_max = measured.p999_ns,
                          .shed_rate_max = 0.0};
  const auto v = scenario::evaluate_slo(below, hist, 1000, 0);
  EXPECT_FALSE(v.p99_ok);
  EXPECT_TRUE(v.p999_ok);
  EXPECT_FALSE(v.pass());
  EXPECT_STREQ(v.verdict(), "fail");

  // A zero threshold DISABLES the clause rather than demanding 0 ns.
  scenario::SloSpec disabled{.p99_ns_max = 0, .p999_ns_max = 0,
                             .shed_rate_max = 0.0};
  EXPECT_TRUE(scenario::evaluate_slo(disabled, hist, 1000, 0).pass());
}

TEST(ScenarioSloTest, ShedRateClause) {
  obs::Histogram hist;
  hist.record(100);
  scenario::SloSpec spec{.p99_ns_max = 0, .p999_ns_max = 0,
                         .shed_rate_max = 0.10};
  EXPECT_TRUE(scenario::evaluate_slo(spec, hist, 100, 10).pass());
  const auto v = scenario::evaluate_slo(spec, hist, 100, 11);
  EXPECT_FALSE(v.shed_ok);
  EXPECT_NEAR(v.shed_rate, 0.11, 1e-12);
  // Vacuous pass on an empty run.
  EXPECT_TRUE(scenario::evaluate_slo(spec, obs::Histogram{}, 0, 0).pass());
}

// ------------------------------------------------------------- shed policy

TEST(ScenarioPolicyTest, RetriesThenShedsOnFullQueue) {
  queues::RingQueue<std::uint64_t> queue(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_enqueue(i));
  }

  obs::arm();  // probes are no-ops until armed
  const obs::Snapshot before = obs::snapshot();
  scenario::ShedPolicy policy{.max_retries = 3};
  scenario::ProducerStats stats;
  EXPECT_FALSE(scenario::offer_with_policy(queue, 99, policy, stats));
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.enqueued, 0u);

  // Capacity freed: the same policy now accepts on the first attempt.
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_dequeue(out));
  EXPECT_TRUE(scenario::offer_with_policy(queue, 99, policy, stats));
  EXPECT_EQ(stats.enqueued, 1u);
  EXPECT_EQ(stats.retries, 3u);  // unchanged

  const obs::Snapshot delta = obs::snapshot() - before;
  obs::disarm();
#if MSQ_OBS
  // 4 refusals hit the ring's capacity-bound path (1 first try + 3
  // retries), of which 3 were retry transitions and 1 ended in a shed.
  EXPECT_EQ(delta[obs::Counter::kQueueFull], 4u);
  EXPECT_EQ(delta[obs::Counter::kShedRetry], 3u);
  EXPECT_EQ(delta[obs::Counter::kShed], 1u);
#else
  (void)delta;
#endif
}

TEST(ScenarioPolicyTest, ZeroRetriesShedsImmediately) {
  queues::RingQueue<std::uint64_t> queue(2);
  ASSERT_TRUE(queue.try_enqueue(1));
  ASSERT_TRUE(queue.try_enqueue(2));
  scenario::ShedPolicy policy{.max_retries = 0};
  scenario::ProducerStats stats;
  EXPECT_FALSE(scenario::offer_with_policy(queue, 3, policy, stats));
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

// --------------------------------------------- coordinated-omission safety

/// Deterministic virtual clock.  wait_until() honours the deadline, then
/// charges `busy_ns` of simulated producer-loop overhead -- so with
/// busy_ns much larger than the inter-arrival gap, the producer falls
/// further behind schedule with every op, exactly the regime where a
/// submit-time stamp would hide the queueing delay.
struct FakeClock {
  std::int64_t t = 0;
  std::int64_t busy_ns = 0;
  [[nodiscard]] std::int64_t now() const noexcept { return t; }
  void wait_until(std::int64_t deadline_ns) noexcept {
    if (t < deadline_ns) t = deadline_ns;
    t += busy_ns;
  }
};

TEST(ScenarioCoordinatedOmissionTest, StampIsScheduledArrivalNotSubmit) {
  // Arrivals every 1 us; the driver burns 10 us per op.  By op i the
  // submit happens ~i*9 us after the scheduled arrival.
  const std::vector<std::uint64_t> offsets{1'000, 2'000, 3'000, 4'000,
                                           5'000};
  const std::int64_t t0 = 1'000'000;

  queues::MsQueue<std::uint64_t> queue(64);
  FakeClock clock;
  clock.busy_ns = 10'000;
  scenario::ShedPolicy policy;
  const auto stats =
      scenario::run_producer(queue, offsets, t0, policy, clock);

  EXPECT_EQ(stats.offered, offsets.size());
  EXPECT_EQ(stats.enqueued, offsets.size());
  EXPECT_EQ(stats.shed, 0u);

  // The driver fell behind: every op after the first was submitted late,
  // and the recorded lag is the LAST op's (monotonically growing) one:
  // submit_i = t0 + offsets[0] + (i+1)*busy, deadline_i = t0 + offsets[i].
  const std::uint64_t expected_last_lag = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(offsets[0]) +
      static_cast<std::int64_t>(offsets.size()) * clock.busy_ns -
      static_cast<std::int64_t>(offsets.back()));
  EXPECT_EQ(stats.max_lag_ns, expected_last_lag);
  EXPECT_GT(stats.max_lag_ns, 0u);

  // THE coordinated-omission assertion: the dequeued stamps are the
  // scheduled arrivals t0 + offset -- not the (late) submit times.
  for (const std::uint64_t offset : offsets) {
    std::uint64_t stamp = 0;
    ASSERT_TRUE(queue.try_dequeue(stamp));
    EXPECT_EQ(stamp, static_cast<std::uint64_t>(t0) + offset);
  }
  std::uint64_t leftover = 0;
  EXPECT_FALSE(queue.try_dequeue(leftover));

  // A consumer sampling sojourn at clock.now() therefore charges the op
  // the full scheduled-arrival -> dequeue interval, INCLUDING the time it
  // sat behind the slow producer (>= the driver's accumulated lag), which
  // a submit-time stamp would have silently discarded.
  const std::int64_t last_stamp =
      t0 + static_cast<std::int64_t>(offsets.back());
  EXPECT_GE(clock.now() - last_stamp,
            static_cast<std::int64_t>(expected_last_lag));
}

TEST(ScenarioCoordinatedOmissionTest, OnTimeDriverStampsMatchToo) {
  // With zero overhead the driver is exactly on time: stamps still equal
  // the scheduled arrivals and no lag is recorded.
  const std::vector<std::uint64_t> offsets{10'000, 20'000, 30'000};
  queues::MsQueue<std::uint64_t> queue(16);
  FakeClock clock;  // busy_ns = 0
  scenario::ShedPolicy policy;
  const auto stats =
      scenario::run_producer(queue, offsets, std::int64_t{500}, policy,
                             clock);
  EXPECT_EQ(stats.max_lag_ns, 0u);
  for (const std::uint64_t offset : offsets) {
    std::uint64_t stamp = 0;
    ASSERT_TRUE(queue.try_dequeue(stamp));
    EXPECT_EQ(stamp, 500u + offset);
  }
}

// ------------------------------------------------------------- integration

TEST(ScenarioOpenLoopTest, SteadyRunConservesAndDrains) {
  ArrivalSpec spec;
  spec.ops = 3000;
  spec.base_rate_hz = 60'000;  // ~50 ms of paced wall time
  spec.producers = 2;
  const auto schedule = scenario::generate_arrivals(spec, 1);

  queues::MsQueue<std::uint64_t> queue(8192);
  scenario::OpenLoopConfig config;
  config.consumers = 2;
  config.watchdog_deadline = std::chrono::milliseconds(20'000);
  const auto result = scenario::run_open_loop(queue, schedule, config);

  EXPECT_EQ(result.offered, spec.ops);
  EXPECT_EQ(result.enqueued + result.shed, result.offered);
  EXPECT_EQ(result.dequeued, result.enqueued);
  EXPECT_EQ(result.shed, 0u) << "unbounded-capacity steady run shed ops";
  EXPECT_EQ(result.sojourn_ns.count(), result.dequeued);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(queue.try_dequeue(leftover)) << "queue not drained";
}

TEST(ScenarioOpenLoopTest, BurstPresetEngagesBackpressureOnRing) {
  // The burst100 preset from the bench suite, scaled down: a 100x flash
  // crowd into a 32-slot ring with a 2-retry budget and a consumer that
  // tops out far below the burst rate MUST shed -- and must still
  // conserve, drain, and terminate (the acceptance criterion for the
  // scenario harness; the watchdog converts a hang into a loud abort).
  const auto presets = scenario::builtin_presets(1500);
  const scenario::ScenarioPreset* burst = nullptr;
  for (const auto& p : presets) {
    if (p.name == "burst100") burst = &p;
  }
  ASSERT_NE(burst, nullptr);

  const auto schedule = scenario::generate_arrivals(burst->arrival, 1);
  queues::RingQueue<std::uint64_t> queue(burst->capacity);
  scenario::OpenLoopConfig config;
  config.consumers = burst->consumers;
  config.shed = burst->shed;
  config.service_iters = harness::spin_iters_for_us(burst->service_us);
  config.watchdog_deadline = std::chrono::milliseconds(30'000);
  const auto result = scenario::run_open_loop(queue, schedule, config);

  EXPECT_GT(result.shed, 0u) << "flash crowd never hit the bound";
  EXPECT_EQ(result.enqueued + result.shed, result.offered);
  EXPECT_EQ(result.dequeued, result.enqueued);
  EXPECT_LE(result.shed_rate(), burst->slo.shed_rate_max)
      << "shedding engaged but unbounded";
}

}  // namespace
}  // namespace msq
