// Reachability proofs for the labelled fault sites that no other
// experiment targets, closing the loop tools/fault_sites_lint.py checks:
// every MSQ_PROBE in src/ is either driven by a FaultPlan somewhere under
// tests/ or bench/, or carries an explicit waiver.  Each case here arms a
// plan, steers a workload into the window, and asserts the plan observed
// the site -- so a refactor that makes a window unreachable (or renames
// it out from under its experiment) fails loudly instead of leaving dead
// instrumentation that LOOKS like a proven fault window.
//
// The single-thread sites fire on the ordinary operation path and need
// only a hit count.  The contested sites (segq.kill, wfq.slot_wait,
// wfq.help_wait) are staged deterministically with halt rules: park a
// victim inside the window, drive a peer through the code that can only
// run because the victim is wedged there, then resurrect everyone and
// check conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "queues/queues.hpp"

namespace msq {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Single-thread sites: the probe sits on the unconditional operation path.
// ---------------------------------------------------------------------------

TEST(FaultSiteCoverage, TreiberPushCasWindowIsReachable) {
  queues::TreiberStack<std::uint64_t> stack(8);
  fault::FaultPlan plan;
  plan.delay_at("treiber.push_cas", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(stack.try_push(1));
  plan.disarm();
  EXPECT_GT(plan.hits("treiber.push_cas"), 0u);
  std::uint64_t out = 0;
  EXPECT_TRUE(stack.try_pop(out));
}

TEST(FaultSiteCoverage, MsHeadSwingWindowIsReachable) {
  queues::MsQueue<std::uint64_t> queue(8);
  fault::FaultPlan plan;
  plan.delay_at("ms.D12", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(1));
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  plan.disarm();
  EXPECT_GT(plan.hits("ms.D12"), 0u);
}

TEST(FaultSiteCoverage, MsDwcasLinkAndHeadSwingWindowsAreReachable) {
  queues::MsQueueDw<std::uint64_t> queue(8);
  fault::FaultPlan plan;
  plan.delay_at("msdw.E9", /*yields=*/1);
  plan.delay_at("msdw.D12", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(1));
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  plan.disarm();
  EXPECT_GT(plan.hits("msdw.E9"), 0u);
  EXPECT_GT(plan.hits("msdw.D12"), 0u);
}

TEST(FaultSiteCoverage, McSwapToLinkWindowIsReachable) {
  queues::MellorCrummeyQueue<std::uint64_t> queue(8);
  fault::FaultPlan plan;
  plan.delay_at("mc.link", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(1));
  plan.disarm();
  EXPECT_GT(plan.hits("mc.link"), 0u);
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
}

TEST(FaultSiteCoverage, TwoLockHeadLockWindowIsReachable) {
  queues::TwoLockQueue<std::uint64_t> queue(8);
  fault::FaultPlan plan;
  plan.delay_at("twolock.H_held", /*yields=*/1);
  plan.arm();
  // Even an empty dequeue takes the head lock and crosses the window.
  std::uint64_t out = 0;
  EXPECT_FALSE(queue.try_dequeue(out));
  plan.disarm();
  EXPECT_GT(plan.hits("twolock.H_held"), 0u);
}

// The constructor installs a pre-drained dummy segment, so the very first
// enqueue takes the append path (segq.close) and the dequeue that drains
// past it swings Head (segq.swing_head).
TEST(FaultSiteCoverage, SegmentCloseAndSwingHeadWindowsAreReachable) {
  queues::SegmentQueue<std::uint64_t> queue(256);
  fault::FaultPlan plan;
  plan.delay_at("segq.close", /*yields=*/1);
  plan.delay_at("segq.swing_head", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(7));
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 7u);
  plan.disarm();
  EXPECT_GT(plan.hits("segq.close"), 0u);
  EXPECT_GT(plan.hits("segq.swing_head"), 0u);
}

// The wait-free queue's owner loop always runs at least one helping round
// before its own announcement resolves, so the wait sites fire even with
// no peer in sight.
TEST(FaultSiteCoverage, WfOwnerWaitWindowsAreReachable) {
  queues::WfQueue<std::uint64_t> queue(64);
  fault::FaultPlan plan;
  plan.delay_at("wfq.enq_wait", /*yields=*/1);
  plan.delay_at("wfq.deq_wait", /*yields=*/1);
  plan.arm();
  EXPECT_TRUE(queue.try_enqueue(5));
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 5u);
  plan.disarm();
  EXPECT_GT(plan.hits("wfq.enq_wait"), 0u);
  EXPECT_GT(plan.hits("wfq.deq_wait"), 0u);
}

// ---------------------------------------------------------------------------
// Contested sites: a parked victim opens the window for a peer.
// ---------------------------------------------------------------------------

// segq.kill is the dequeuer's half of the fill race: a ticket whose
// enqueuer has FAA'd but not yet published kFilled must be burned, not
// waited on.  Park the enqueuer exactly there (segq.fill) and let a
// dequeuer collide with the half-filled slot.
TEST(FaultSiteCoverage, SegmentKillWindowIsReachable) {
  fault::Watchdog watchdog(60s, "segq.kill fault-site coverage");
  queues::SegmentQueue<std::uint64_t> queue(256);
  // Seed one value so the live segment has fast-path tickets to race on
  // (the seeding enqueue itself appends a fresh segment, skipping
  // segq.fill, so the victim below is the first thread to reach it).
  ASSERT_TRUE(queue.try_enqueue(1));

  fault::FaultPlan plan;
  plan.halt_at("segq.fill");
  plan.arm();
  std::thread victim([&] { EXPECT_TRUE(queue.try_enqueue(2)); });
  plan.wait_for_halted(1);

  // The victim holds ticket 1 with its slot still kEmpty: draining must
  // deliver the seed, kill the victim's slot, and then read empty.
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(queue.try_dequeue(out));
  EXPECT_GT(plan.hits("segq.kill"), 0u);

  // Resurrected, the victim's fill-CAS loses to the kill and retries with
  // a fresh ticket; its value must still arrive exactly once.
  plan.release_halted();
  victim.join();
  plan.disarm();
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 2u);
  EXPECT_FALSE(queue.try_dequeue(out));
}

// wfq.help_wait fires in the helping sweep when a peer's announcement is
// pending at a lower phase: park the announcer and any later operation
// must help it to completion behind its back.
TEST(FaultSiteCoverage, WfHelpWaitWindowIsReachable) {
  fault::Watchdog watchdog(60s, "wfq.help_wait fault-site coverage");
  queues::WfQueue<std::uint64_t> queue(64);
  fault::FaultPlan plan;
  plan.halt_at("wfq.announce");
  plan.arm();
  std::thread victim([&] { EXPECT_TRUE(queue.try_enqueue(11)); });
  plan.wait_for_halted(1);

  EXPECT_TRUE(queue.try_enqueue(22));
  EXPECT_GT(plan.hits("wfq.help_wait"), 0u)
      << "the later enqueue must sweep the parked announcement";

  plan.release_halted();
  victim.join();
  plan.disarm();
  // FIFO: the victim's announcement held the earlier phase.
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 11u);
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, 22u);
  EXPECT_FALSE(queue.try_dequeue(out));
}

// wfq.slot_wait fires when every descriptor slot is busy.  Shrink the
// queue to two slots, park two announcers holding them, and a third
// operation must spin in acquire_slot until a slot frees.
TEST(FaultSiteCoverage, WfSlotWaitWindowIsReachable) {
  fault::Watchdog watchdog(60s, "wfq.slot_wait fault-site coverage");
  queues::WfQueue<std::uint64_t, /*kSlots=*/2> queue(64);
  fault::FaultPlan plan;
  plan.halt_at("wfq.announce", /*skip=*/0, /*victims=*/2);
  plan.arm();
  std::thread v0([&] { EXPECT_TRUE(queue.try_enqueue(1)); });
  std::thread v1([&] { EXPECT_TRUE(queue.try_enqueue(2)); });
  plan.wait_for_halted(2);

  std::thread third([&] { EXPECT_TRUE(queue.try_enqueue(3)); });
  while (plan.hits("wfq.slot_wait") == 0) std::this_thread::yield();
  EXPECT_GT(plan.hits("wfq.slot_wait"), 0u);

  plan.release_halted();
  v0.join();
  v1.join();
  third.join();
  plan.disarm();
  std::uint64_t out = 0, sum = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.try_dequeue(out));
    sum += out;
  }
  EXPECT_EQ(sum, 6u);
  EXPECT_FALSE(queue.try_dequeue(out));
}

}  // namespace
}  // namespace msq
