// Tests for the simulated-multiprocessor substrate (sim/engine, sim/memory,
// sim/cost_model, sim/task): step semantics, determinism, scheduling,
// freezing, and the coherence cost model.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace msq::sim {
namespace {

TEST(SimMemory, AllocAndAccess) {
  SimMemory mem;
  const Addr a = mem.alloc(4);
  const Addr b = mem.alloc(2);
  EXPECT_EQ(b, a + 4);
  mem.word(a + 3) = 99;
  EXPECT_EQ(mem.peek(a + 3), 99u);
  EXPECT_EQ(mem.size(), 6u);
}

TEST(CostModel, ReadMissThenHit) {
  CostModel model;
  const double miss = model.on_read(0, 10);
  const double hit = model.on_read(0, 10);
  EXPECT_GT(miss, hit);
  EXPECT_DOUBLE_EQ(hit, model.params().read_hit);
  EXPECT_DOUBLE_EQ(miss, model.params().read_miss);
}

TEST(CostModel, WriteInvalidatesOtherSharers) {
  CostModel model;
  model.on_read(0, 5);
  model.on_read(1, 5);          // both cache the line
  model.on_write(0, 5, false);  // proc 0 steals it
  const double reread = model.on_read(1, 5);
  EXPECT_DOUBLE_EQ(reread, model.params().read_miss) << "stale copy not invalidated";
}

TEST(CostModel, ExclusiveRmwIsCheap) {
  CostModel model;
  model.on_write(2, 7, true);  // first RMW: miss tariff
  const double owned = model.on_write(2, 7, true);
  EXPECT_DOUBLE_EQ(owned, model.params().rmw_owned);
}

TEST(CostModel, ContendedRmwPingPongs) {
  CostModel model;
  model.on_write(0, 3, true);
  // Each steal pays the miss tariff plus the queueing surcharge for the one
  // other processor whose copy it invalidates.
  const double expected =
      model.params().rmw_miss + model.params().contention_per_sharer;
  const double steal1 = model.on_write(1, 3, true);
  const double steal2 = model.on_write(0, 3, true);
  EXPECT_DOUBLE_EQ(steal1, expected);
  EXPECT_DOUBLE_EQ(steal2, expected);
}

TEST(CostModel, InvalidationSurchargeScalesWithSharers) {
  CostModel model;
  for (std::uint32_t p = 0; p < 5; ++p) model.on_read(p, 9);  // 5 sharers
  const double cost = model.on_write(0, 9, true);
  EXPECT_DOUBLE_EQ(cost, model.params().rmw_miss +
                             4 * model.params().contention_per_sharer);
}

// --- engine step semantics -------------------------------------------------

Task<void> incrementer(Proc& p, Addr counter, int times) {
  for (int i = 0; i < times; ++i) {
    const std::uint64_t v = co_await p.read(counter);
    co_await p.write(counter, v + 1);
  }
}

TEST(Engine, SingleProcessRunsToCompletion) {
  Engine engine;
  const Addr counter = engine.memory().alloc(1);
  const auto id = engine.spawn(0, [&](Proc& p) {
    return incrementer(p, counter, 10);
  });
  while (engine.step(id)) {
  }
  EXPECT_TRUE(engine.done(id));
  EXPECT_EQ(engine.memory().peek(counter), 10u);
  EXPECT_EQ(engine.total_steps(), 20u);  // one read + one write per round
}

TEST(Engine, UnsynchronisedIncrementsLoseUpdatesUnderInterleaving) {
  // The engine must actually interleave at step granularity: two processes
  // doing read-modify-write WITHOUT atomics must (with an adversarial
  // alternating schedule) lose updates.
  Engine engine;
  const Addr counter = engine.memory().alloc(1);
  const auto p0 = engine.spawn(0, [&](Proc& p) { return incrementer(p, counter, 5); });
  const auto p1 = engine.spawn(0, [&](Proc& p) { return incrementer(p, counter, 5); });
  // Strict alternation: p0 read, p1 read (same value), p0 write, p1 write...
  while (!engine.all_done()) {
    engine.step(p0);
    engine.step(p1);
  }
  EXPECT_LT(engine.memory().peek(counter), 10u) << "no interleaving happened";
}

Task<void> cas_incrementer(Proc& p, Addr counter, int times) {
  for (int i = 0; i < times; ++i) {
    for (;;) {
      const std::uint64_t v = co_await p.read(counter);
      const std::uint64_t old = co_await p.cas(counter, v, v + 1);
      if (old == v) break;
    }
  }
}

TEST(Engine, CasLoopSurvivesAnySchedule) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 42u, 99u}) {
    EngineConfig config;
    config.seed = seed;
    Engine engine(config);
    const Addr counter = engine.memory().alloc(1);
    for (int i = 0; i < 3; ++i) {
      engine.spawn(0, [&](Proc& p) { return cas_incrementer(p, counter, 50); });
    }
    ASSERT_TRUE(engine.run_random());
    EXPECT_EQ(engine.memory().peek(counter), 150u) << "seed " << seed;
  }
}

TEST(Engine, RandomScheduleIsDeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    EngineConfig config;
    config.seed = seed;
    Engine engine(config);
    const Addr counter = engine.memory().alloc(1);
    for (int i = 0; i < 2; ++i) {
      engine.spawn(0, [&](Proc& p) { return incrementer(p, counter, 20); });
    }
    engine.run_random();
    return engine.memory().peek(counter);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(1234), run(1234));
}

Task<void> faa_probe(Proc& p, Addr a, std::uint64_t& first,
                     std::uint64_t& second) {
  first = co_await p.faa(a, 5);
  second = co_await p.faa(a, 5);
}

TEST(Engine, FaaReturnsOldValue) {
  Engine engine;
  const Addr a = engine.memory().alloc(1);
  std::uint64_t first = 0, second = 0;
  const auto id =
      engine.spawn(0, [&](Proc& p) { return faa_probe(p, a, first, second); });
  while (engine.step(id)) {
  }
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 5u);
  EXPECT_EQ(engine.memory().peek(a), 10u);
}

TEST(Engine, FreezeExcludesProcessFromRandomScheduling) {
  Engine engine;
  const Addr counter = engine.memory().alloc(1);
  const auto frozen = engine.spawn(0, [&](Proc& p) { return incrementer(p, counter, 1000); });
  const auto free_proc = engine.spawn(0, [&](Proc& p) { return incrementer(p, counter, 5); });
  engine.freeze(frozen);
  while (engine.step_random()) {
  }
  EXPECT_TRUE(engine.done(free_proc));
  EXPECT_FALSE(engine.done(frozen));
  engine.unfreeze(frozen);
  ASSERT_TRUE(engine.run_random());
  EXPECT_TRUE(engine.done(frozen));
}

Task<void> labelled_writer(Proc& p, Addr a) {
  co_await p.at("BEFORE_WRITE");
  co_await p.write(a, 1);
  co_await p.at("AFTER_WRITE");
  co_await p.write(a, 2);
}

TEST(Engine, FreezeAtLabelStopsBeforeLabelledOperation) {
  Engine engine;
  const Addr a = engine.memory().alloc(1);
  const auto id = engine.spawn(0, [&](Proc& p) { return labelled_writer(p, a); });
  engine.freeze_at_label(id, "AFTER_WRITE");
  while (engine.step_random()) {
  }
  // Frozen after the first write but BEFORE the second.
  EXPECT_FALSE(engine.done(id));
  EXPECT_EQ(engine.memory().peek(a), 1u);
  engine.freeze_at_label(id, nullptr);
  engine.unfreeze(id);
  ASSERT_TRUE(engine.run_random());
  EXPECT_EQ(engine.memory().peek(a), 2u);
}

// --- cost-model / discrete-event scheduling --------------------------------

Task<void> worker_with_work(Proc& p, Addr own_word, int rounds, double work) {
  for (int i = 0; i < rounds; ++i) {
    co_await p.write(own_word, static_cast<std::uint64_t>(i));
    co_await p.work(work);
  }
}

TEST(Engine, CostModelParallelismOverlapsIndependentWork) {
  // Two processors touching disjoint words: elapsed ~ per-processor cost,
  // not the sum (that is what "parallel" means in the model).
  auto elapsed_with_processors = [](std::uint32_t processors) {
    EngineConfig config;
    config.processors = processors;
    Engine engine(config);
    const Addr words = engine.memory().alloc(2);
    for (std::uint32_t i = 0; i < 2; ++i) {
      engine.spawn(i % processors, [&, i](Proc& p) {
        return worker_with_work(p, words + i, 100, 50);
      });
    }
    return engine.run_cost_model();
  };
  const double serial = elapsed_with_processors(1);
  const double parallel = elapsed_with_processors(2);
  EXPECT_GT(serial, parallel * 1.8) << "no overlap from second processor";
}

TEST(Engine, QuantumPreemptionInterleavesCoScheduledProcesses) {
  // Two processes on ONE processor with a small quantum: both must finish,
  // and elapsed is the sum of their demands (plus switches).
  EngineConfig config;
  config.processors = 1;
  config.quantum = 200;
  Engine engine(config);
  const Addr words = engine.memory().alloc(2);
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ids.push_back(engine.spawn(0, [&, i](Proc& p) {
      return worker_with_work(p, words + i, 50, 30);
    }));
  }
  const double elapsed = engine.run_cost_model();
  EXPECT_TRUE(engine.all_done());
  EXPECT_GT(elapsed, 2 * 50 * 30.0) << "multiplexing cannot beat total demand";
}

TEST(Engine, JitterPreservesCompletionAndDeterminism) {
  auto run = [](std::uint64_t seed) {
    EngineConfig config;
    config.jitter = 3;
    config.seed = seed;
    Engine engine(config);
    const Addr a = engine.memory().alloc(1);
    engine.spawn(0, [&](Proc& p) { return incrementer(p, a, 20); });
    return engine.run_cost_model();
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // different seeds: different jitter
}

}  // namespace
}  // namespace msq::sim
