// Fault-tolerance proofs for the paper's central robustness claim
// (section 1): "if a process is halted or delayed while executing one of
// these algorithms, non-blocking algorithms guarantee that some process
// will complete an operation in a finite number of steps", while blocking
// algorithms wedge when the victim dies holding a lock (or, for MC, a
// claimed-but-unlinked tail slot).
//
// Three layers of evidence:
//  1. Engine primitives: crash(pid) is a permanent halt, stall(pid, n) a
//     bounded one (tests of the new fault-injection substrate itself).
//  2. Simulator crash-step sweep (src/fault/crash_sweep.hpp): a victim is
//     crash-stopped after EVERY reachable shared-memory step of one
//     enqueue and one dequeue; survivors must keep completing operations
//     (MS, PLJ, Valois, Treiber) with all structural invariants intact,
//     while the lock-based algorithms (single-lock, two-lock, MC) wedge in
//     exactly -- and only -- the lock-held / mid-link band of crash steps.
//  3. Real threads: FaultPlan halts a victim thread at the matching
//     labelled CAS/lock sites inside src/queues; survivor threads complete
//     bounded workloads under a Watchdog deadline, and pool exhaustion
//     under a halted Valois reader degrades into clean try_enqueue
//     backpressure instead of corruption.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/crash_sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "queues/queues.hpp"
#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"
#include "tiny_stack_sim.hpp"

namespace msq {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// 1. The fault primitives themselves
// ---------------------------------------------------------------------------

sim::Task<void> count_reads(sim::Proc& p, sim::Addr addr, std::uint64_t n,
                            std::uint64_t& done) {
  for (std::uint64_t i = 0; i < n; ++i) {
    co_await p.read(addr);
    ++done;
  }
}

TEST(EnginePrimitives, CrashedProcessNeverRunsAgain) {
  sim::Engine engine;
  const sim::Addr word = engine.memory().alloc(1);
  std::uint64_t a_done = 0, b_done = 0;
  const auto a = engine.spawn(0, [&](sim::Proc& p) {
    return count_reads(p, word, 100, a_done);
  });
  const auto b = engine.spawn(0, [&](sim::Proc& p) {
    return count_reads(p, word, 100, b_done);
  });

  for (int i = 0; i < 10; ++i) engine.step(a);
  engine.crash(a);
  ASSERT_TRUE(engine.is_crashed(a));
  // A crashed process declines directed steps and never finishes.
  EXPECT_FALSE(engine.step(a));
  const std::uint64_t frozen_at = a_done;

  // Random scheduling never picks it either; the survivor still finishes.
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    if (!engine.step_random()) break;
  }
  EXPECT_EQ(a_done, frozen_at);
  EXPECT_FALSE(engine.done(a));
  EXPECT_TRUE(engine.done(b));
  EXPECT_EQ(b_done, 100u);
  EXPECT_FALSE(engine.all_done());  // the crash is permanent
}

TEST(EnginePrimitives, StallIsABoundedDelayNotACrash) {
  sim::Engine engine;
  const sim::Addr word = engine.memory().alloc(1);
  std::uint64_t a_done = 0, b_done = 0;
  const auto a = engine.spawn(0, [&](sim::Proc& p) {
    return count_reads(p, word, 50, a_done);
  });
  engine.spawn(0, [&](sim::Proc& p) {
    return count_reads(p, word, 50, b_done);
  });

  engine.stall(a, 200);
  ASSERT_TRUE(engine.is_stalled(a));
  // While stalled, directed steps are consumed idling...
  EXPECT_TRUE(engine.step(a));
  EXPECT_EQ(a_done, 0u);
  // ...and the stall elapses under random scheduling, after which the
  // stalled process completes normally (unlike a crash).
  std::uint64_t steps = 0;
  while (!engine.all_done() && steps < 10'000) {
    ASSERT_TRUE(engine.step_random());
    ++steps;
  }
  EXPECT_TRUE(engine.done(a));
  EXPECT_FALSE(engine.is_stalled(a));
  EXPECT_EQ(a_done, 50u);
  EXPECT_EQ(b_done, 50u);
}

TEST(EnginePrimitives, StallOnlyProcessesStillElapseViaIdleTicks) {
  sim::Engine engine;
  const sim::Addr word = engine.memory().alloc(1);
  std::uint64_t done = 0;
  const auto a = engine.spawn(0, [&](sim::Proc& p) {
    return count_reads(p, word, 5, done);
  });
  engine.stall(a, 30);
  // Every live process is stalled: step_random must burn idle ticks until
  // the delay elapses rather than declaring the run finished.
  std::uint64_t steps = 0;
  while (!engine.done(a)) {
    ASSERT_TRUE(engine.step_random()) << "stall never elapsed";
    ASSERT_LT(++steps, 1'000u);
  }
  EXPECT_EQ(done, 5u);
}

// ---------------------------------------------------------------------------
// 2. Simulator crash-step sweeps
// ---------------------------------------------------------------------------

struct SweepCase {
  sim::Algo algo;
  fault::VictimOp op;
  const char* name;
};

class NonBlockingCrashSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllOps, NonBlockingCrashSweep,
    ::testing::Values(
        SweepCase{sim::Algo::kMs, fault::VictimOp::kEnqueue, "ms_enq"},
        SweepCase{sim::Algo::kMs, fault::VictimOp::kDequeue, "ms_deq"},
        SweepCase{sim::Algo::kPlj, fault::VictimOp::kEnqueue, "plj_enq"},
        SweepCase{sim::Algo::kPlj, fault::VictimOp::kDequeue, "plj_deq"},
        SweepCase{sim::Algo::kValois, fault::VictimOp::kEnqueue, "valois_enq"},
        SweepCase{sim::Algo::kValois, fault::VictimOp::kDequeue, "valois_deq"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(NonBlockingCrashSweep, SurvivorsCompleteOperationsAtEveryCrashStep) {
  const SweepCase& c = GetParam();
  const fault::CrashSweep sweep = fault::crash_sweep(c.algo, c.op);
  ASSERT_GT(sweep.op_steps, 0u);
  ASSERT_EQ(sweep.points.size(), sweep.op_steps);
  for (const fault::CrashPoint& point : sweep.points) {
    ASSERT_FALSE(point.victim_completed)
        << "crash step " << point.crash_step << " past the op's end";
    // Non-blocking (paper 3.3): survivors complete operations no matter
    // where the victim died -- including between link and tail swing.
    EXPECT_GT(point.survivor_enqueues, 20u)
        << "survivor enqueues wedged; victim died after step "
        << point.crash_step << " at '" << point.victim_label << "'";
    EXPECT_GT(point.survivor_dequeues, 20u)
        << "survivor dequeues wedged; victim died after step "
        << point.crash_step << " at '" << point.victim_label << "'";
    EXPECT_TRUE(point.invariants_ok)
        << "crash step " << point.crash_step << ": " << point.invariant_error;
  }
}

TEST(LockBasedCrashSweep, SingleLockWedgesExactlyInTheLockHeldBand) {
  const fault::CrashSweep sweep =
      fault::crash_sweep(sim::Algo::kSingleLock, fault::VictimOp::kEnqueue);
  ASSERT_GT(sweep.op_steps, 0u);

  // Crash BEFORE the first step: the victim holds nothing, survivors run.
  const fault::CrashPoint& first = sweep.points.front();
  EXPECT_GT(first.survivor_enqueues, 20u);
  EXPECT_GT(first.survivor_dequeues, 20u);

  // The wedge band: dying while holding the lock stalls everyone, forever.
  std::size_t wedged = 0;
  bool in_band = false, band_ended = false;
  for (const fault::CrashPoint& point : sweep.points) {
    EXPECT_TRUE(point.invariants_ok) << point.invariant_error;
    const bool is_wedged =
        point.survivor_enqueues == 0 && point.survivor_dequeues == 0;
    if (is_wedged) {
      ++wedged;
      EXPECT_FALSE(band_ended)
          << "wedge band not contiguous at step " << point.crash_step;
      in_band = true;
    } else if (in_band) {
      band_ended = true;
    }
  }
  EXPECT_GT(wedged, 0u) << "no crash step ever wedged -- sweep too shallow";
  EXPECT_LT(wedged, sweep.points.size()) << "every crash step wedged";
}

/// Step `victim` until its label equals `label` (it has committed to, but
/// not executed, the labelled operation), then crash-stop it there.
void crash_at_label(sim::Engine& engine, std::uint32_t victim,
                    std::string_view label) {
  while (engine.step(victim)) {
    if (engine.label(victim) == label) break;
  }
  ASSERT_EQ(engine.label(victim), label) << "victim never reached " << label;
  engine.crash(victim);
}

struct OpCounts {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t empty = 0;
};

sim::Task<void> endless_enqueues(sim::Proc& p, sim::SimQueue& queue,
                                 std::uint32_t producer, OpCounts& counts) {
  for (std::uint64_t i = 0;; ++i) {
    const bool ok =
        co_await queue.enqueue(p, (std::uint64_t{producer} << 40) | i);
    if (ok) ++counts.enqueues;
  }
}

sim::Task<void> endless_dequeues(sim::Proc& p, sim::SimQueue& queue,
                                 OpCounts& counts) {
  for (;;) {
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got != sim::kEmpty) {
      ++counts.dequeues;
    } else {
      ++counts.empty;
    }
  }
}

sim::Task<void> n_enqueues(sim::Proc& p, sim::SimQueue& queue, std::uint64_t n,
                           OpCounts& counts) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool ok = co_await queue.enqueue(p, 0x7000 + i);
    if (ok) ++counts.enqueues;
  }
}

TEST(LockBasedCrashDirected, TwoLockVictimDeadAtTailLockWedgesEnqueuersOnly) {
  OpCounts preload, victim_counts, enq, deq;
  sim::Engine engine;
  auto queue = sim::make_sim_queue(sim::Algo::kTwoLock, engine, 64);
  {
    const auto id = engine.spawn(
        0, [&](sim::Proc& p) { return n_enqueues(p, *queue, 20, preload); });
    while (engine.step(id)) {
    }
    ASSERT_EQ(preload.enqueues, 20u);
  }
  const auto victim = engine.spawn(0, [&](sim::Proc& p) {
    return endless_enqueues(p, *queue, 0, victim_counts);
  });
  crash_at_label(engine, victim, "T_HELD");

  engine.spawn(0,
               [&](sim::Proc& p) { return endless_enqueues(p, *queue, 1, enq); });
  engine.spawn(0, [&](sim::Proc& p) { return endless_dequeues(p, *queue, deq); });
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    if (!engine.step_random()) break;
  }
  // The victim died holding T_lock: no enqueuer ever completes again...
  EXPECT_EQ(enq.enqueues, 0u);
  // ...but the other end keeps draining (the two-lock concurrency claim).
  EXPECT_GT(deq.dequeues, 10u);
  queue->check_invariants();
}

TEST(LockBasedCrashDirected, TwoLockVictimDeadAtHeadLockWedgesDequeuersOnly) {
  OpCounts victim_counts, enq, deq;
  sim::Engine engine;
  auto queue = sim::make_sim_queue(sim::Algo::kTwoLock, engine, 64);
  {
    OpCounts preload;
    const auto id = engine.spawn(
        0, [&](sim::Proc& p) { return n_enqueues(p, *queue, 10, preload); });
    while (engine.step(id)) {
    }
  }
  const auto victim = engine.spawn(0, [&](sim::Proc& p) {
    return endless_dequeues(p, *queue, victim_counts);
  });
  crash_at_label(engine, victim, "H_HELD");

  engine.spawn(0,
               [&](sim::Proc& p) { return endless_enqueues(p, *queue, 1, enq); });
  engine.spawn(0, [&](sim::Proc& p) { return endless_dequeues(p, *queue, deq); });
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    if (!engine.step_random()) break;
  }
  EXPECT_EQ(deq.dequeues, 0u);
  EXPECT_GT(enq.enqueues, 10u);
  queue->check_invariants();
}

TEST(LockBasedCrashDirected, McVictimDeadMidLinkWedgesDequeuersWithoutEmpty) {
  OpCounts victim_counts, deq;
  sim::Engine engine;
  auto queue = sim::make_sim_queue(sim::Algo::kMc, engine, 8);
  // The victim dies between its fetch_and_store of Tail and the link write,
  // on its FIRST enqueue: Tail has moved, so dequeuers must WAIT (never
  // "empty") for a link that will never be written.
  const auto victim = engine.spawn(0, [&](sim::Proc& p) {
    return endless_enqueues(p, *queue, 0, victim_counts);
  });
  crash_at_label(engine, victim, "MC_LINK");

  engine.spawn(0, [&](sim::Proc& p) { return endless_dequeues(p, *queue, deq); });
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    if (!engine.step_random()) break;
  }
  EXPECT_EQ(victim_counts.enqueues, 0u);
  EXPECT_EQ(deq.dequeues, 0u) << "dequeuer was not blocked";
  EXPECT_EQ(deq.empty, 0u)
      << "a crashed mid-link enqueuer must read as 'wait', never as 'empty'";
  queue->check_invariants();
}

// --- Treiber stack: crash-swept directly against the engine ---------------

sim::Task<void> stack_preload(sim::Proc& p,
                              sim::testing::TinyStack<true>& stack) {
  co_await stack.push(p, 1);
  co_await stack.push(p, 2);
  co_await stack.push(p, 3);
}

/// Pop a node, push it back, forever: each survivor only ever republishes
/// nodes it owns (just popped), so no node is ever in the stack twice.
sim::Task<void> stack_churn(sim::Proc& p, sim::testing::TinyStack<true>& stack,
                            std::uint64_t& ops) {
  for (;;) {
    const std::uint64_t got = co_await stack.pop(p);
    if (got == sim::testing::kNullNode) continue;
    ++ops;
    co_await stack.push(p, got);
    ++ops;
  }
}

TEST(TreiberCrashSweep, SurvivorsCompleteAtEveryCrashStepOfAPush) {
  // Measure an uncrashed push first.
  std::uint64_t push_steps = 0;
  {
    sim::Engine engine;
    sim::testing::TinyStack<true> stack(engine, 8);
    const auto victim =
        engine.spawn(0, [&](sim::Proc& p) { return stack.push(p, 0); });
    while (engine.step(victim)) ++push_steps;
    ASSERT_GT(push_steps, 0u);
  }

  for (std::uint64_t k = 0; k < push_steps; ++k) {
    std::uint64_t survivor_ops = 0;  // before the engine: outlives coroutines
    sim::Engine engine;
    sim::testing::TinyStack<true> stack(engine, 8);
    // Preload nodes 1..3 so survivors always have something to pop.
    {
      const auto id =
          engine.spawn(0, [&](sim::Proc& p) { return stack_preload(p, stack); });
      while (engine.step(id)) {
      }
    }
    const auto victim =
        engine.spawn(0, [&](sim::Proc& p) { return stack.push(p, 0); });
    for (std::uint64_t s = 0; s < k; ++s) engine.step(victim);
    ASSERT_FALSE(engine.done(victim));
    engine.crash(victim);

    for (int s = 0; s < 2; ++s) {
      engine.spawn(
          0, [&](sim::Proc& p) { return stack_churn(p, stack, survivor_ops); });
    }
    for (std::uint64_t i = 0; i < 6'000; ++i) {
      if (!engine.step_random()) break;
    }
    EXPECT_GT(survivor_ops, 50u)
        << "survivors wedged after victim crashed at push step " << k;

    // Structural sanity: the stack is acyclic and holds no duplicates.
    const auto snapshot = stack.snapshot(engine);
    EXPECT_LT(snapshot.size(), 8u) << "cycle reachable from Top";
    const std::set<std::uint64_t> unique(snapshot.begin(), snapshot.end());
    EXPECT_EQ(unique.size(), snapshot.size()) << "duplicate node in stack";
  }
}

// ---------------------------------------------------------------------------
// 3. Real threads: FaultPlan halts + Watchdog deadlines
// ---------------------------------------------------------------------------

TEST(RealThreadFaults, MsQueueSurvivorsCompleteWhileVictimHaltedAtE13) {
  fault::Watchdog watchdog(60s, "MsQueue halted-at-E13 survivors");
  queues::MsQueue<std::uint64_t> queue(256);

  fault::FaultPlan plan;
  plan.halt_at("ms.E13");  // first thread past the E9 link parks forever
  plan.arm();

  std::atomic<bool> victim_returned{false};
  std::thread victim([&] {
    EXPECT_TRUE(queue.try_enqueue(42));
    victim_returned.store(true);
  });
  plan.wait_for_halted(1);
  ASSERT_EQ(plan.halted_now(), 1u);
  ASSERT_FALSE(victim_returned.load());

  // The victim has LINKED its node but never swings Tail: survivors must
  // help (E12/D9) and still complete full workloads.
  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 3'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(enqueued.load(), 6'000u);
  EXPECT_FALSE(victim_returned.load());

  // Resurrect the victim so the test can join it; its enqueue completes.
  plan.release_halted();
  victim.join();
  EXPECT_TRUE(victim_returned.load());

  // Conservation across the whole episode (victim's item included).
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(dequeued.load() + drained, enqueued.load() + 1);
  plan.disarm();
}

TEST(RealThreadFaults, MsQueueDwSurvivorsCompleteWhileVictimHaltedAtE13) {
  fault::Watchdog watchdog(60s, "MsQueueDw halted-at-E13 survivors");
  queues::MsQueueDw<std::uint64_t> queue(256);

  fault::FaultPlan plan;
  plan.halt_at("msdw.E13");
  plan.arm();

  std::thread victim([&] { EXPECT_TRUE(queue.try_enqueue(7)); });
  plan.wait_for_halted(1);

  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 3'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(enqueued.load(), 6'000u);

  plan.release_halted();
  victim.join();
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(dequeued.load() + drained, enqueued.load() + 1);
  plan.disarm();
}

TEST(RealThreadFaults, TreiberSurvivorsCompleteWhileVictimHaltedMidPop) {
  fault::Watchdog watchdog(60s, "Treiber halted-mid-pop survivors");
  queues::TreiberStack<std::uint64_t> stack(64);
  ASSERT_TRUE(stack.try_push(11));
  ASSERT_TRUE(stack.try_push(22));

  fault::FaultPlan plan;
  plan.halt_at("treiber.pop_cas");
  plan.arm();

  std::thread victim([&] {
    std::uint64_t out = 0;
    stack.try_pop(out);  // parks between reading Top and the CAS
  });
  plan.wait_for_halted(1);

  std::atomic<std::uint64_t> ops{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 3'000; ++i) {
          if (stack.try_push(static_cast<std::uint64_t>(i))) {
            ops.fetch_add(1, std::memory_order_relaxed);
          }
          std::uint64_t out = 0;
          if (stack.try_pop(out)) ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  EXPECT_GT(ops.load(), 5'000u);

  plan.release_halted();
  victim.join();
  plan.disarm();
}

TEST(RealThreadFaults, ValoisHaltedReaderDegradesToCleanBackpressure) {
  // Valois's documented pathology: a halted process pins the suffix of
  // every node dequeued after its halt (each unreclaimed node's outgoing
  // link keeps its successor alive), so the pool drains.  The required
  // behaviour is GRACEFUL: try_enqueue returns false -- no assert, no
  // corruption, no hang -- and everything recovers once the victim is
  // resurrected and its references cascade back to the free list.
  fault::Watchdog watchdog(60s, "Valois halted-reader backpressure");
  queues::ValoisQueue<std::uint64_t> queue(48);

  fault::FaultPlan plan;
  plan.halt_at("valois.link");  // parks holding a SafeRead ref on old Tail
  plan.arm();

  std::thread victim([&] { EXPECT_TRUE(queue.try_enqueue(5)); });
  plan.wait_for_halted(1);

  std::uint64_t enq_ok = 0, enq_fail = 0, deq_ok = 0;
  for (int i = 0; i < 4'000; ++i) {
    // No retry loops: every call must return promptly (non-blocking).
    if (queue.try_enqueue(static_cast<std::uint64_t>(i))) {
      ++enq_ok;
    } else {
      ++enq_fail;
    }
    std::uint64_t out = 0;
    if (queue.try_dequeue(out)) ++deq_ok;
  }
  EXPECT_GT(enq_ok, 0u);
  EXPECT_GT(deq_ok, 0u);
  EXPECT_GT(enq_fail, 0u)
      << "pool never exhausted: the pinning cascade did not engage";

  plan.release_halted();
  victim.join();
  plan.disarm();

  // The victim's resumed release() cascades its pinned suffix back to the
  // free list: after a drain, the full capacity is allocatable again.
  std::uint64_t out = 0;
  while (queue.try_dequeue(out)) {
  }
  std::uint64_t recovered = 0;
  for (int i = 0; i < 40; ++i) {
    if (queue.try_enqueue(static_cast<std::uint64_t>(i))) ++recovered;
  }
  EXPECT_EQ(recovered, 40u) << "pool did not recover after victim release";
}

TEST(RealThreadFaults, TwoLockVictimHaltedWithTailLockWedgesEnqueuersOnly) {
  fault::Watchdog watchdog(60s, "two-lock halted tail-lock holder");
  queues::TwoLockQueue<std::uint64_t> queue(256);
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(queue.try_enqueue(i));

  fault::FaultPlan plan;
  plan.halt_at("twolock.T_held");  // parks INSIDE the tail critical section
  plan.arm();

  std::thread victim([&] { queue.try_enqueue(999); });
  plan.wait_for_halted(1);

  // An enqueuer blocks on T_lock forever (until release); a dequeuer
  // drains the preloaded items unhindered -- the two-lock design point,
  // now shown under a real halted thread.
  std::atomic<std::uint64_t> enq_done{0}, deq_done{0};
  std::thread enqueuer([&] {
    queue.try_enqueue(1);  // blocks inside the lock acquisition
    enq_done.fetch_add(1);
  });
  std::thread dequeuer([&] {
    std::uint64_t out = 0;
    while (deq_done.load() < 100) {
      if (queue.try_dequeue(out)) deq_done.fetch_add(1);
    }
  });
  dequeuer.join();  // completes: 100 preloaded items came out
  EXPECT_EQ(deq_done.load(), 100u);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(enq_done.load(), 0u) << "T_lock was somehow released";

  plan.release_halted();
  victim.join();
  enqueuer.join();
  EXPECT_EQ(enq_done.load(), 1u);
  plan.disarm();
}

TEST(RealThreadFaults, SingleLockVictimHaltedWithLockWedgesEverything) {
  fault::Watchdog watchdog(60s, "single-lock halted lock holder");
  queues::SingleLockQueue<std::uint64_t> queue(64);
  ASSERT_TRUE(queue.try_enqueue(1));

  fault::FaultPlan plan;
  plan.halt_at("singlelock.held");
  plan.arm();

  std::thread victim([&] { queue.try_enqueue(2); });
  plan.wait_for_halted(1);

  std::atomic<std::uint64_t> done{0};
  std::thread enqueuer([&] {
    queue.try_enqueue(3);
    done.fetch_add(1);
  });
  std::thread dequeuer([&] {
    std::uint64_t out = 0;
    queue.try_dequeue(out);
    done.fetch_add(1);
  });
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(done.load(), 0u) << "the single lock was somehow released";

  plan.release_halted();
  victim.join();
  enqueuer.join();
  dequeuer.join();
  EXPECT_EQ(done.load(), 2u);
  plan.disarm();
}

TEST(RealThreadFaults, DelayRuleWidensTheRaceWindowWithoutChangingResults) {
  // A delay (rather than halt) at the E13 window under concurrent load:
  // the queue must stay conservative -- this is the "delayed" half of the
  // paper's "halted or delayed" hypothesis.
  fault::Watchdog watchdog(60s, "MsQueue delayed-at-E13 stress");
  queues::MsQueue<std::uint64_t> queue(128);

  fault::FaultPlan plan;
  plan.delay_at("ms.E13", /*yields=*/3);
  plan.arm();

  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 2'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_GT(plan.hits("ms.E13"), 0u);
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(dequeued.load() + drained, enqueued.load());
  plan.disarm();
}

// ---------------------------------------------------------------------------
// ShardedQueue fault sites: the announce-then-insert window, the steal
// sweep, the empty-verify double collect, and producer re-homing.
// ---------------------------------------------------------------------------

TEST(RealThreadFaults, ShardedVictimHaltedInAnnounceInsertWindowStaysCoherent) {
  // The victim parks AFTER bumping its shard's ticket but BEFORE inserting
  // the item -- the exact window the double-collect empty check exists
  // for.  A concurrent empty sweep that straddles the bump must rescan
  // (not miss the announcement), but later sweeps see a stable ticket and
  // report empty cleanly: the orphaned announcement can cost at most one
  // rescan, never a livelock.
  fault::Watchdog watchdog(60s, "sharded halted announce-insert window");
  queues::ShardedQueue<queues::MsQueue<std::uint64_t>, 2> queue(64);

  fault::FaultPlan plan;
  plan.halt_at("shardq.insert");
  plan.arm();

  std::atomic<bool> victim_returned{false};
  std::thread victim([&] {
    EXPECT_TRUE(queue.try_enqueue(7777));
    victim_returned.store(true);
  });
  plan.wait_for_halted(1);
  ASSERT_FALSE(victim_returned.load());

  // Survivors run full workloads across both shards; every empty sweep
  // must terminate (the Watchdog is the livelock detector here).
  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 2'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(enqueued.load(), 4'000u);
  EXPECT_FALSE(victim_returned.load());

  // Drain to empty while the victim is still parked: the final dequeue
  // runs the full coherent-empty sweep (the ticket it orphaned was bumped
  // before any pre[] collection here, so the sweep must report empty
  // rather than rescan forever -- the Watchdog polices that).
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_FALSE(queue.try_dequeue(out));
  EXPECT_GT(plan.hits("shardq.verify"), 0u)
      << "the coherent-empty check never ran";
  EXPECT_EQ(dequeued.load() + drained, enqueued.load())
      << "victim's item surfaced before its insert resumed";

  // Resurrect: the victim's insert completes and ONLY then is its item
  // dequeuable.
  plan.release_halted();
  victim.join();
  std::uint64_t late = 0, late_drained = 0;
  while (queue.try_dequeue(late)) ++late_drained;
  EXPECT_EQ(late_drained, 1u);
  EXPECT_EQ(late, 7777u);
  plan.disarm();
}

TEST(RealThreadFaults, ShardedVictimHaltedMidStealSweepBlocksNobody) {
  // A consumer parked mid-sweep holds no shared state at all: both
  // enqueuers and dequeuers must be completely unaffected, and the items
  // its sweep was about to steal remain available to everyone else.
  fault::Watchdog watchdog(60s, "sharded halted mid-steal sweep");
  queues::ShardedQueue<queues::MsQueue<std::uint64_t>, 2> queue(64);
  for (std::uint64_t i = 0; i < 16; ++i) ASSERT_TRUE(queue.try_enqueue(i));

  fault::FaultPlan plan;
  plan.halt_at("shardq.steal");
  plan.arm();

  std::thread victim([&] {
    std::uint64_t out = 0;
    queue.try_dequeue(out);  // parks inside the stealing sweep
  });
  plan.wait_for_halted(1);

  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 2'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(enqueued.load(), 4'000u);
  EXPECT_GT(plan.hits("shardq.steal"), 0u);

  plan.release_halted();
  victim.join();
  // The victim's resumed dequeue may or may not land an item; count what
  // it could have taken by draining and checking totals.
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_GE(dequeued.load() + drained, enqueued.load() + 16 - 1);
  EXPECT_LE(dequeued.load() + drained, enqueued.load() + 16);
  plan.disarm();
}

TEST(RealThreadFaults, ShardedProducerRehomesOffAPersistentlyFullShard) {
  // Drive a producer against a full home shard until the re-home heuristic
  // fires (kRehomeAfter consecutive home failures with a neighbour
  // accepting).  An armed plan records site hits even with no rules, so
  // this doubles as probe-placement coverage for "shardq.rehome".
  queues::ShardedQueue<queues::MsQueue<std::uint64_t>, 2> queue(16);

  fault::FaultPlan plan;  // no rules: pure hit observation
  plan.arm();

  std::uint64_t accepted = 0;
  while (queue.try_enqueue(accepted)) ++accepted;
  EXPECT_GE(accepted, 14u) << "aggregate capacity refused far too early";
  EXPECT_GT(plan.hits("shardq.insert"), 0u);
  EXPECT_GT(plan.hits("shardq.rehome"), 0u)
      << "home shard stayed full but the producer never re-homed";
  plan.disarm();
}

// ---------------------------------------------------------------------------
// WfQueue fault sites: the wait-free claim, demonstrated with real threads.
// ---------------------------------------------------------------------------

TEST(RealThreadFaults, WfVictimHaltedAfterAnnounceIsCompletedBySurvivors) {
  // THE wait-free distinction, as an observable fact: the victim announces
  // an enqueue and parks before taking a single further step.  With the MS
  // core alone nothing would happen (its node is not yet linked -- there
  // is nothing to help).  With the announcement array, survivors MUST
  // finish the victim's operation: its item becomes dequeuable while the
  // victim is still parked.
  constexpr std::uint64_t kMarker = 0xD00DF00Du;
  fault::Watchdog watchdog(60s, "WfQueue halted-at-announce helping");
  queues::WfQueue<std::uint64_t> queue(256);

  fault::FaultPlan plan;
  plan.halt_at("wfq.announce");
  plan.arm();

  std::atomic<bool> victim_returned{false};
  std::thread victim([&] {
    EXPECT_TRUE(queue.try_enqueue(kMarker));
    victim_returned.store(true);
  });
  plan.wait_for_halted(1);
  ASSERT_EQ(plan.halted_now(), 1u);
  ASSERT_FALSE(victim_returned.load());

  std::atomic<bool> marker_seen{false};
  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  {
    std::vector<std::jthread> survivors;
    for (int t = 0; t < 2; ++t) {
      survivors.emplace_back([&] {
        for (int i = 0; i < 3'000; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          enqueued.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t out = 0;
          if (queue.try_dequeue(out)) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
            if (out == kMarker) marker_seen.store(true);
          }
        }
      });
    }
  }
  EXPECT_EQ(enqueued.load(), 6'000u);
  EXPECT_FALSE(victim_returned.load()) << "victim escaped its halt";
  EXPECT_TRUE(marker_seen.load())
      << "survivors never completed the parked victim's announced enqueue";

  plan.release_halted();
  victim.join();
  EXPECT_TRUE(victim_returned.load());
  std::uint64_t out = 0, drained = 0;
  while (queue.try_dequeue(out)) ++drained;
  EXPECT_EQ(dequeued.load() + drained, enqueued.load() + 1);
  plan.disarm();
}

TEST(RealThreadFaults, WfSurvivorsCompleteWhileVictimHaltedInsideHelping) {
  // Crash-stop a worker at every labelled step of the helping protocol in
  // turn: after the link CAS window opens, at the claim CAS, at the result
  // deposit, and at the tail/head swing.  A parked helper holds only its
  // own descriptor slot -- survivors must complete full workloads, and
  // every item (including the victim's own completed ops) is conserved.
  constexpr std::array<const char*, 5> kSites = {
      "wfq.link", "wfq.claim", "wfq.finish", "wfq.deposit", "wfq.swing"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    fault::Watchdog watchdog(60s,
                             std::string("WfQueue halted at ") + site);
    queues::WfQueue<std::uint64_t> queue(256);

    fault::FaultPlan plan;
    plan.halt_at(site);
    plan.arm();

    std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
    std::thread victim([&] {
      for (int i = 0; i < 500; ++i) {  // parks at the first site hit,
        while (!queue.try_enqueue(1)) std::this_thread::yield();
        enqueued.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t out = 0;
        if (queue.try_dequeue(out)) {  // finishes the rest after release
          dequeued.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    plan.wait_for_halted(1);

    {
      std::vector<std::jthread> survivors;
      for (int t = 0; t < 2; ++t) {
        survivors.emplace_back([&] {
          for (int i = 0; i < 2'000; ++i) {
            while (!queue.try_enqueue(1)) std::this_thread::yield();
            enqueued.fetch_add(1, std::memory_order_relaxed);
            std::uint64_t out = 0;
            if (queue.try_dequeue(out)) {
              dequeued.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    EXPECT_EQ(plan.halted_now(), 1u) << "victim escaped its halt";
    EXPECT_GE(enqueued.load(), 4'000u);

    plan.release_halted();
    victim.join();
    std::uint64_t out = 0, drained = 0;
    while (queue.try_dequeue(out)) ++drained;
    EXPECT_EQ(dequeued.load() + drained, enqueued.load());
    plan.disarm();
  }
}

TEST(RealThreadFaults, StaleHelperCannotDepositIntoARecycledDummysNewOp) {
  // Deterministic replay of the recycled-dummy hazard the taken-binding's
  // live-Head deposit guard exists for.  Choreography: helper V parks
  // inside finish_deq (site wfq.finish) holding a Head read of dummy D0
  // and D0's claim, which names thread O's descriptor slot.  While V is
  // parked, O's dequeue is completed by main (D0 consumed, freed), D0 is
  // RE-ENQUEUED mid-queue, and O -- same thread, same slot -- announces a
  // fresh dequeue that parks pending with its taken reset to null.  V then
  // resumes: it re-reads the reused slot's CURRENT pending announcement,
  // so the phase guard alone cannot reject it, and its binding CAS writes
  // the dead {D0, old-Head-tag} incarnation.  Without the deposit guard V
  // completes O's new dequeue with the PREVIOUS dummy's already-delivered
  // value (a duplicate, removing nothing); without stale-binding recovery
  // the polluted taken wedges O's dequeue forever (the Watchdog would
  // fire).  With both, O's second dequeue must deliver the real front
  // value and the queue must conserve items exactly.
  constexpr std::uint64_t kX = 101, kP = 202, kQ = 303;
  fault::Watchdog watchdog(60s, "WfQueue stale-helper deposit guard");
  queues::WfQueue<std::uint64_t> queue(64);
  ASSERT_TRUE(queue.try_enqueue(kX));  // D0(dummy) -> nX

  // Act 1: O announces a dequeue and parks before taking another step.
  fault::FaultPlan plan_o1;
  plan_o1.halt_at("wfq.announce");
  plan_o1.arm();
  std::atomic<int> o_gate{0};
  std::atomic<std::uint64_t> o_first{0}, o_second{0};
  std::atomic<bool> o_first_ok{false}, o_second_ok{false};
  std::thread o([&] {
    std::uint64_t out = 0;
    o_first_ok.store(queue.try_dequeue(out));
    o_first.store(out);
    o_gate.store(1);
    while (o_gate.load() != 2) std::this_thread::yield();
    out = 0;
    o_second_ok.store(queue.try_dequeue(out));
    o_second.store(out);
  });
  plan_o1.wait_for_halted(1);
  plan_o1.disarm();

  // Act 2: V's dequeue helps O's lower-phase op -- it claims D0 for O's
  // slot, then parks inside finish_deq with claim and next already read.
  fault::FaultPlan plan_v;
  plan_v.halt_at("wfq.finish");
  plan_v.arm();
  std::atomic<bool> v_got{true};
  std::thread v([&] {
    std::uint64_t out = 0;
    v_got.store(queue.try_dequeue(out));
  });
  plan_v.wait_for_halted(1);
  plan_v.disarm();

  // Act 3: main finishes O's op (deposits kX, swings Head, frees D0) and
  // resolves V's announced dequeue as empty; its own dequeue reads empty.
  std::uint64_t out = 0;
  EXPECT_FALSE(queue.try_dequeue(out));

  // Act 4: O harvests kX and returns; D0 is re-enqueued (the free list is
  // LIFO, so the first allocation re-uses it) and sits mid-queue with a
  // live next edge and its claim still dangling at O's slot.
  plan_o1.release_halted();
  while (o_gate.load() != 1) std::this_thread::yield();
  EXPECT_TRUE(o_first_ok.load());
  EXPECT_EQ(o_first.load(), kX);
  ASSERT_TRUE(queue.try_enqueue(kP));  // re-allocates D0
  ASSERT_TRUE(queue.try_enqueue(kQ));

  // Act 5: O announces its second dequeue in the SAME slot (same thread,
  // same hint; the slot was harvested) and parks with the op pending.
  fault::FaultPlan plan_o2;
  plan_o2.halt_at("wfq.announce");
  plan_o2.arm();
  o_gate.store(2);
  plan_o2.wait_for_halted(1);
  plan_o2.disarm();

  // Act 6: release V.  Its stale view targets exactly O's pending op; the
  // deposit guard must turn it away without completing anything.
  plan_v.release_halted();
  v.join();
  EXPECT_FALSE(v_got.load()) << "V's own dequeue should have read empty";

  // Act 7: release O.  Its helping must recover from whatever binding V
  // left behind and deliver the true front value.  The recovery goes
  // through the stale-binding unbind (site wfq.unbind): V's dead
  // {D0, old-Head-tag} binding pollutes O's taken, and O's own helping
  // pass must clear it before the live dummy can be bound -- an armed
  // observer plan must see that window cross.
  fault::FaultPlan plan_watch;  // no rules: pure site-hit observation
  plan_watch.arm();
  plan_o2.release_halted();
  o.join();
  plan_watch.disarm();
  EXPECT_TRUE(o_second_ok.load());
  EXPECT_EQ(o_second.load(), kP)
      << "stale helper completed the new dequeue with a recycled value";
  EXPECT_GT(plan_watch.hits("wfq.unbind"), 0u)
      << "O's recovery should have unbound V's stale pollution";

  // Conservation: exactly kQ remains.
  EXPECT_TRUE(queue.try_dequeue(out));
  EXPECT_EQ(out, kQ);
  EXPECT_FALSE(queue.try_dequeue(out));
}

TEST(RealThreadFaults, StallRuleBindsOneStickyVictimAndAccountsTime) {
  // The tail-latency instrument bench/fig_stall.cpp relies on: (a) exactly
  // one thread -- the first to hit the site -- absorbs every injected
  // stall, and (b) the injected time is accounted per thread so the bench
  // can subtract it from raw latency.
  fault::Watchdog watchdog(60s, "stall rule sticky-victim binding");
  queues::MsQueue<std::uint64_t> queue(128);

  fault::FaultPlan plan;
  plan.stall_at("ms.E9", 200us);
  plan.arm();

  std::array<std::uint64_t, 3> injected{};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        const std::uint64_t before = fault::injected_stall_ns();
        for (int i = 0; i < 200; ++i) {
          while (!queue.try_enqueue(1)) std::this_thread::yield();
          std::uint64_t out = 0;
          while (!queue.try_dequeue(out)) std::this_thread::yield();
        }
        injected[static_cast<std::size_t>(t)] =
            fault::injected_stall_ns() - before;
      });
    }
  }
  EXPECT_GE(plan.hits("ms.E9"), 600u);
  int victims = 0;
  for (const std::uint64_t ns : injected) {
    if (ns > 0) ++victims;
  }
  EXPECT_EQ(victims, 1) << "stall victim binding is not sticky-unique";
  plan.disarm();
}

}  // namespace
}  // namespace msq
