// Unit and stress tests for the lock substrate (sync/): TAS, TATAS with
// bounded exponential backoff, ticket, and MCS -- the locks the paper's
// evaluation builds on.  A typed suite checks the shared contract; lock-
// specific suites check fairness/shape properties.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "sync/backoff.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/tas_lock.hpp"
#include "sync/tatas_lock.hpp"
#include "sync/ticket_lock.hpp"

namespace msq::sync {
namespace {

template <typename Lock>
class LockContractTest : public ::testing::Test {};

using LockTypes =
    ::testing::Types<TasLock, TatasLock, TatasLockNoBackoff, TicketLock, McsMutex>;
TYPED_TEST_SUITE(LockContractTest, LockTypes);

TYPED_TEST(LockContractTest, UncontendedLockUnlock) {
  TypeParam lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TYPED_TEST(LockContractTest, TryLockSucceedsWhenFree) {
  TypeParam lock;
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TYPED_TEST(LockContractTest, TryLockFailsWhenHeld) {
  TypeParam lock;
  lock.lock();
  std::jthread other([&] { EXPECT_FALSE(lock.try_lock()); });
  other.join();
  lock.unlock();
}

TYPED_TEST(LockContractTest, MutualExclusionCounterStress) {
  TypeParam lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 50'000;
  // Deliberately non-atomic: only mutual exclusion keeps it correct.
  long long counter = 0;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          std::scoped_lock guard(lock);
          ++counter;
        }
      });
    }
  }
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TYPED_TEST(LockContractTest, CriticalSectionPublishesWrites) {
  TypeParam lock;
  int shared_data = 0;
  bool observed_torn = false;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 20'000; ++i) {
          std::scoped_lock guard(lock);
          // Writer-then-reader within one section: if lock ordering failed,
          // increments interleave and the local check trips.
          const int before = shared_data;
          shared_data = before + 1;
          if (shared_data != before + 1) observed_torn = true;
        }
      });
    }
  }
  EXPECT_FALSE(observed_torn);
  EXPECT_EQ(shared_data, 40'000);
}

TEST(TicketLock, GrantsInFifoOrder) {
  TicketLock lock;
  constexpr int kThreads = 4;
  std::vector<int> grant_order;
  std::mutex order_mutex;
  lock.lock();  // hold so all workers queue up
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      lock.lock();
      {
        std::scoped_lock g(order_mutex);
        grant_order.push_back(t);
      }
      lock.unlock();
    });
    // Stagger spawns so each thread has taken its ticket (a few
    // microseconds after start) well before the next thread starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  lock.unlock();
  threads.clear();
  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kThreads));
  EXPECT_TRUE(std::is_sorted(grant_order.begin(), grant_order.end()))
      << "ticket lock granted out of arrival order";
}

TEST(McsLock, ExplicitQNodeInterface) {
  McsLock lock;
  McsLock::QNode node;
  lock.lock(node);
  lock.unlock(node);
  {
    McsLock::Guard guard(lock);  // RAII form
  }
}

TEST(McsLock, TryLockOnlySucceedsWhenQueueEmpty) {
  McsLock lock;
  McsLock::QNode a, b;
  ASSERT_TRUE(lock.try_lock(a));
  EXPECT_FALSE(lock.try_lock(b));
  lock.unlock(a);
  EXPECT_TRUE(lock.try_lock(b));
  lock.unlock(b);
}

TEST(McsMutex, SupportsLifoNestingOfDistinctMutexes) {
  McsMutex outer, inner;
  std::scoped_lock a(outer);
  std::scoped_lock b(inner);  // second distinct mutex while holding first
  SUCCEED();
}

TEST(Backoff, WindowGrowsAndResets) {
  // Behavioural check: after many pauses the window saturates; reset
  // restores the initial window.  We observe it through timing monotonicity
  // being too flaky, so instead drive the internal contract via Params.
  Backoff::Params params{.min_spins = 2, .max_spins = 16};
  Backoff b(params, /*seed=*/42);
  for (int i = 0; i < 10; ++i) b.pause();  // must terminate quickly
  b.reset();
  for (int i = 0; i < 10; ++i) b.pause();
  SUCCEED();
}

TEST(Backoff, NullBackoffIsNoOp) {
  NullBackoff b;
  b.pause();
  b.reset();
  SUCCEED();
}

}  // namespace
}  // namespace msq::sync
