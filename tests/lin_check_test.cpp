// Tests for the linearizability checkers themselves (check/lin_check) --
// hand-crafted histories with known verdicts, including the failure modes
// the paper reports finding in earlier algorithms (lost items, false
// emptiness, reordering).
#include <gtest/gtest.h>

#include <vector>

#include "check/history.hpp"
#include "check/invariants.hpp"
#include "check/lin_check.hpp"

namespace msq::check {
namespace {

Event enq(std::uint64_t v, std::int64_t inv, std::int64_t res,
          std::uint32_t thread = 0) {
  return Event{OpKind::kEnqueue, v, inv, res, thread};
}
Event deq(std::uint64_t v, std::int64_t inv, std::int64_t res,
          std::uint32_t thread = 0) {
  return Event{OpKind::kDequeue, v, inv, res, thread};
}
Event deq_empty(std::int64_t inv, std::int64_t res, std::uint32_t thread = 0) {
  return Event{OpKind::kDequeueEmpty, 0, inv, res, thread};
}

// ---------------------------------------------------------------------------
// Exact checker
// ---------------------------------------------------------------------------

TEST(ExactChecker, AcceptsSequentialFifo) {
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5),
                                deq(2, 6, 7)};
  EXPECT_TRUE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RejectsLifoOrder) {
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5),
                                deq(1, 6, 7)};
  EXPECT_FALSE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, AcceptsAnyOrderForConcurrentEnqueues) {
  // enq(1) and enq(2) overlap: either dequeue order linearizes.
  const std::vector<Event> lifo_looking = {enq(1, 0, 10), enq(2, 0, 10),
                                           deq(2, 11, 12), deq(1, 13, 14)};
  EXPECT_TRUE(check_linearizable_exact(lifo_looking).ok);
}

TEST(ExactChecker, AcceptsEmptyDequeueOnEmptyQueue) {
  const std::vector<Event> h = {deq_empty(0, 1), enq(1, 2, 3), deq(1, 4, 5)};
  EXPECT_TRUE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RejectsFalseEmpty) {
  // Stone's non-linearizability scenario (paper section 1): a process
  // enqueues an item, then observes an empty queue even though the item was
  // never dequeued.
  const std::vector<Event> h = {enq(1, 0, 1), deq_empty(2, 3)};
  EXPECT_FALSE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, AcceptsEmptyDuringConcurrentEnqueue) {
  // If the enqueue is still in flight, observing empty is legal.
  const std::vector<Event> h = {enq(1, 0, 10), deq_empty(2, 3), deq(1, 11, 12)};
  EXPECT_TRUE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RejectsDequeueOfValueNeverEnqueued) {
  const std::vector<Event> h = {enq(1, 0, 1), deq(9, 2, 3)};
  EXPECT_FALSE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RejectsLostItem) {
  // The race the paper found in Stone's queue: an enqueued item vanishes.
  // Here: both items enqueued sequentially, but only one comes out and a
  // subsequent dequeue reports empty.
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5),
                                deq_empty(6, 7)};
  EXPECT_FALSE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RejectsDuplicateDelivery) {
  const std::vector<Event> h = {enq(1, 0, 1), deq(1, 2, 3), deq(1, 4, 5)};
  EXPECT_FALSE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, AcceptsRealTimeRespectingInterleaving) {
  // Two threads, overlapping ops; a valid linearization exists.
  const std::vector<Event> h = {
      enq(1, 0, 5, 0), enq(2, 1, 6, 1), deq(2, 7, 12, 0), deq(1, 8, 13, 1)};
  EXPECT_TRUE(check_linearizable_exact(h).ok);
}

TEST(ExactChecker, RefusesOversizedHistories) {
  std::vector<Event> h;
  for (int i = 0; i < 70; ++i) h.push_back(enq(i, i, i));
  const auto result = check_linearizable_exact(h);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnosis.find("64"), std::string::npos);
}

TEST(ExactChecker, HandlesPendingHeavyOverlapEfficiently) {
  // 20 fully-overlapping enqueues then 20 dequeues in matching order; the
  // memoised search must not blow up.
  std::vector<Event> h;
  for (int i = 0; i < 20; ++i) h.push_back(enq(i, 0, 100));
  for (int i = 0; i < 20; ++i) h.push_back(deq(i, 200 + i * 2, 201 + i * 2));
  EXPECT_TRUE(check_linearizable_exact(h).ok);
}

// ---------------------------------------------------------------------------
// Scalable checker
// ---------------------------------------------------------------------------

TEST(FifoOrderChecker, AcceptsCleanHistory) {
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5),
                                deq(2, 6, 7)};
  EXPECT_TRUE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, RejectsStrictReordering) {
  // enq(1) strictly before enq(2); deq(2) strictly before deq(1).
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5),
                                deq(1, 6, 7)};
  const auto result = check_fifo_order(h);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnosis.find("FIFO order violated"), std::string::npos);
}

TEST(FifoOrderChecker, AcceptsOverlappingEnqueuesEitherOrder) {
  const std::vector<Event> h = {enq(1, 0, 10), enq(2, 0, 10), deq(2, 11, 12),
                                deq(1, 13, 14)};
  EXPECT_TRUE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, RejectsFabricatedValue) {
  const std::vector<Event> h = {enq(1, 0, 1), deq(9, 2, 3)};
  EXPECT_FALSE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, RejectsDuplicateDequeue) {
  const std::vector<Event> h = {enq(1, 0, 1), deq(1, 2, 3), deq(1, 4, 5)};
  EXPECT_FALSE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, RejectsDequeueCompletingBeforeEnqueueStarts) {
  const std::vector<Event> h = {deq(1, 0, 1), enq(1, 5, 6)};
  EXPECT_FALSE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, RejectsOvertakingAnItemStuckForever) {
  // enq(1) strictly precedes enq(2); 2 was dequeued, 1 never was.
  const std::vector<Event> h = {enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5)};
  EXPECT_FALSE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, AcceptsUndequeuedTailOfQueue) {
  // Items enqueued later than every dequeue simply remain queued: fine.
  const std::vector<Event> h = {enq(1, 0, 1), deq(1, 2, 3), enq(2, 4, 5)};
  EXPECT_TRUE(check_fifo_order(h).ok);
}

TEST(FifoOrderChecker, ScalesToLargeHistories) {
  std::vector<Event> h;
  constexpr int kN = 100'000;
  h.reserve(2 * kN);
  for (int i = 0; i < kN; ++i) h.push_back(enq(i, 2 * i, 2 * i + 1));
  for (int i = 0; i < kN; ++i) {
    h.push_back(deq(i, 2 * kN + 2 * i, 2 * kN + 2 * i + 1));
  }
  EXPECT_TRUE(check_fifo_order(h).ok);
}

// ---------------------------------------------------------------------------
// Conservation / per-consumer helpers
// ---------------------------------------------------------------------------

TEST(Conservation, ValueEncodingRoundTrips) {
  const std::uint64_t v = encode_value(77, 123456789);
  EXPECT_EQ(value_producer(v), 77u);
  EXPECT_EQ(value_seq(v), 123456789u);
}

TEST(Conservation, DetectsDuplicateDequeue) {
  const std::vector<Event> h = {enq(1, 0, 1), deq(1, 2, 3), deq(1, 4, 5)};
  EXPECT_FALSE(check_conservation(h).ok);
}

TEST(Conservation, DetectsFabrication) {
  const std::vector<Event> h = {deq(5, 0, 1)};
  EXPECT_FALSE(check_conservation(h).ok);
}

TEST(PerConsumerOrder, DetectsProducerSequenceInversion) {
  std::vector<ThreadLog> logs;
  ThreadLog log(0);
  log.record(OpKind::kDequeue, encode_value(1, 5), 0, 1);
  log.record(OpKind::kDequeue, encode_value(1, 4), 2, 3);  // inversion
  logs.push_back(log);
  EXPECT_FALSE(check_per_consumer_order(logs).ok);
}

TEST(PerConsumerOrder, AcceptsInterleavedProducers) {
  std::vector<ThreadLog> logs;
  ThreadLog log(0);
  log.record(OpKind::kDequeue, encode_value(1, 1), 0, 1);
  log.record(OpKind::kDequeue, encode_value(2, 1), 2, 3);
  log.record(OpKind::kDequeue, encode_value(1, 2), 4, 5);
  log.record(OpKind::kDequeue, encode_value(2, 2), 6, 7);
  logs.push_back(log);
  EXPECT_TRUE(check_per_consumer_order(logs).ok);
}

TEST(History, MergeSortsByInvokeTime) {
  std::vector<ThreadLog> logs;
  ThreadLog a(0), b(1);
  a.record(OpKind::kEnqueue, 1, 10, 11);
  b.record(OpKind::kEnqueue, 2, 5, 6);
  logs.push_back(a);
  logs.push_back(b);
  const auto merged = merge_logs(logs);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].value, 2u);
  EXPECT_EQ(merged[1].value, 1u);
}

TEST(History, FormatEventIsReadable) {
  EXPECT_NE(format_event(enq(3, 0, 1)).find("enq(3)"), std::string::npos);
  EXPECT_NE(format_event(deq(3, 0, 1)).find("deq()=3"), std::string::npos);
  EXPECT_NE(format_event(deq_empty(0, 1)).find("EMPTY"), std::string::npos);
}

}  // namespace
}  // namespace msq::check
