// Liveness tests replaying the paper's section 3.3 argument in the
// simulator: stall one process at a labelled pseudo-code line and observe
// whether the others can still complete operations.
//
//  * MS queue: non-blocking -- a process frozen anywhere (even between its
//    successful E9 link and the E13 tail swing) cannot prevent others from
//    completing unbounded numbers of operations.
//  * Two-lock queue: blocking -- freezing a lock holder stalls that end of
//    the queue, but the OTHER end keeps going (the algorithm's concurrency
//    claim); the single-lock queue stalls everything.
//  * MC queue: lock-free but blocking -- freezing an enqueuer inside its
//    claimed-slot window eventually stalls dequeuers.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/queue_iface.hpp"
#include "sim/workload.hpp"

namespace msq::sim {
namespace {

struct OpCounts {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;  // successful only
  std::uint64_t empty = 0;
};

Task<void> endless_pairs(Proc& p, SimQueue& queue, std::uint32_t producer,
                         OpCounts& counts) {
  for (std::uint64_t i = 0;; ++i) {
    const bool enqueued =
        co_await queue.enqueue(p, (std::uint64_t{producer} << 40) | i);
    if (enqueued) ++counts.enqueues;
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got != kEmpty) {
      ++counts.dequeues;
    } else {
      ++counts.empty;
    }
  }
}

Task<void> one_enqueue(Proc& p, SimQueue& queue, std::uint64_t value) {
  co_await queue.enqueue(p, value);
}

Task<void> endless_dequeues(Proc& p, SimQueue& queue, OpCounts& counts) {
  for (;;) {
    const std::uint64_t got = co_await queue.dequeue(p);
    if (got != kEmpty) {
      ++counts.dequeues;
    } else {
      ++counts.empty;
    }
  }
}

Task<void> endless_enqueues(Proc& p, SimQueue& queue, std::uint32_t producer,
                            OpCounts& counts) {
  for (std::uint64_t i = 0;; ++i) {
    const bool ok = co_await queue.enqueue(p, (std::uint64_t{producer} << 40) | i);
    if (ok) ++counts.enqueues;
  }
}

Task<void> n_enqueues(Proc& p, SimQueue& queue, std::uint32_t producer,
                      std::uint64_t n, OpCounts& counts) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool ok = co_await queue.enqueue(p, (std::uint64_t{producer} << 40) | i);
    if (ok) ++counts.enqueues;
  }
}

/// Freeze process `victim` at `label`, then run `steps` random steps and
/// report how many operations the OTHER processes completed.
struct StallResult {
  OpCounts others;
  bool victim_frozen = false;
};

StallResult run_with_stall(Algo algo, const char* label, std::uint64_t steps,
                           std::uint64_t seed = 7) {
  EngineConfig config;
  config.seed = seed;
  Engine engine(config);
  auto queue = make_sim_queue(algo, engine, 64);
  // Keep a non-trivial queue so dequeues have work to do.
  {
    auto preload = [&](Proc& p) { return one_enqueue(p, *queue, 1); };
    const auto id = engine.spawn(0, preload);
    while (engine.step(id)) {
    }
  }

  static OpCounts victim_counts;  // victim's ops are irrelevant
  victim_counts = OpCounts{};
  StallResult result;
  const auto victim = engine.spawn(0, [&](Proc& p) {
    return endless_pairs(p, *queue, 0, victim_counts);
  });
  engine.freeze_at_label(victim, label);
  for (std::uint32_t t = 1; t <= 2; ++t) {
    engine.spawn(0, [&, t](Proc& p) {
      return endless_pairs(p, *queue, t, result.others);
    });
  }
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!engine.step_random()) break;
  }
  result.victim_frozen = !engine.done(victim) && engine.label(victim) == std::string(label);
  return result;
}

// --- MS queue: non-blocking at every labelled stall point -------------------

class MsStallPoint : public ::testing::TestWithParam<const char*> {};

// E12 and D9 (the helping paths) are reached only when the victim happens
// to OBSERVE a lagging tail; they get directed coverage below instead of
// relying on a random schedule to produce the observation.
INSTANTIATE_TEST_SUITE_P(AllLines, MsStallPoint,
                         ::testing::Values("E5", "E9", "E13", "D2", "D12"));

TEST_P(MsStallPoint, OthersMakeUnboundedProgressWhileVictimStalled) {
  const StallResult result = run_with_stall(Algo::kMs, GetParam(), 30'000);
  EXPECT_TRUE(result.victim_frozen)
      << "victim never reached " << GetParam() << " -- stall not exercised";
  // Non-blocking (paper 3.3): hundreds of completed ops while one process
  // is suspended mid-operation.
  EXPECT_GT(result.others.enqueues, 100u);
  EXPECT_GT(result.others.dequeues, 100u);
}

TEST(MsLiveness, StallBetweenLinkAndTailSwingIsHelped) {
  // The crucial window: the victim has linked its node (E9 succeeded) but
  // never swings Tail (frozen at E13).  Others must fix Tail themselves
  // (E12/D9 helping) and keep completing BOTH kinds of operations.
  const StallResult result = run_with_stall(Algo::kMs, "E13", 30'000);
  ASSERT_TRUE(result.victim_frozen);
  EXPECT_GT(result.others.enqueues, 100u);
  EXPECT_GT(result.others.dequeues, 100u);
}

Task<void> one_dequeue(Proc& p, SimQueue& queue, std::uint64_t& out) {
  out = co_await queue.dequeue(p);
}

TEST(MsLiveness, HelpingPathsE12AndD9AreReachedAndComplete) {
  // Directed construction of the lagging-tail state: enqueuer A freezes at
  // E13 having linked its node but not swung Tail.  Then:
  //  * dequeuer B must pass through D9 (help Tail) and still dequeue A's
  //    value -- even though A never finished its operation;
  //  * enqueuer C must pass through E12 (help Tail) and complete its own
  //    enqueue behind A's node.
  EngineConfig config;
  config.seed = 3;
  Engine engine(config);
  auto queue = make_sim_queue(Algo::kMs, engine, 16);

  OpCounts a_counts;
  const auto a = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 7, a_counts);
  });
  engine.freeze_at_label(a, "E13");
  while (engine.step(a)) {
    if (std::string(engine.label(a)) == "E13") break;
  }
  ASSERT_EQ(std::string(engine.label(a)), "E13");
  ASSERT_EQ(a_counts.enqueues, 0u) << "A must be mid-FIRST-enqueue";

  // B: dequeue must traverse D9.
  std::uint64_t b_got = kEmpty;
  const auto b = engine.spawn(0, [&](Proc& p) {
    return one_dequeue(p, *queue, b_got);
  });
  engine.freeze_at_label(b, "D9");
  while (!engine.done(b) && engine.step(b)) {
    if (std::string(engine.label(b)) == "D9") break;
  }
  EXPECT_EQ(std::string(engine.label(b)), "D9")
      << "dequeuer did not observe the lagging tail";
  engine.freeze_at_label(b, nullptr);
  engine.unfreeze(b);
  while (engine.step(b)) {
  }
  EXPECT_EQ(b_got, (std::uint64_t{7} << 40) | 0) << "B must get A's value";

  // Rebuild the lag with A's next enqueue?  A is still frozen at its first
  // E13 (the CAS is still pending); instead let C observe the NEW lag made
  // by freezing another enqueuer.
  OpCounts d_counts;
  const auto d = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 8, d_counts);
  });
  engine.freeze_at_label(d, "E13");
  while (engine.step(d)) {
    if (std::string(engine.label(d)) == "E13") break;
  }
  ASSERT_EQ(std::string(engine.label(d)), "E13");

  OpCounts c_counts;
  const auto c = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 9, c_counts);
  });
  engine.freeze_at_label(c, "E12");
  for (int i = 0; i < 10'000 && std::string(engine.label(c)) != "E12"; ++i) {
    if (!engine.step(c)) break;
  }
  EXPECT_EQ(std::string(engine.label(c)), "E12")
      << "enqueuer did not observe the lagging tail";
  engine.freeze_at_label(c, nullptr);
  engine.unfreeze(c);
  for (int i = 0; i < 10'000 && c_counts.enqueues == 0; ++i) {
    if (!engine.step(c)) break;
  }
  EXPECT_GT(c_counts.enqueues, 0u)
      << "helper C must complete its own enqueue past the stalled D";
}

// --- PLJ and Valois: also non-blocking --------------------------------------

TEST(PljLiveness, StalledLinkerDoesNotBlockOthers) {
  const StallResult result = run_with_stall(Algo::kPlj, "PLJ_LINK", 30'000);
  ASSERT_TRUE(result.victim_frozen);
  EXPECT_GT(result.others.enqueues, 100u);
  EXPECT_GT(result.others.dequeues, 100u);
}

TEST(ValoisLiveness, StalledLinkerDoesNotBlockOthers) {
  const StallResult result = run_with_stall(Algo::kValois, "V_LINK", 60'000);
  ASSERT_TRUE(result.victim_frozen);
  EXPECT_GT(result.others.enqueues, 50u);
  EXPECT_GT(result.others.dequeues, 50u);
}

// --- the blocking side ------------------------------------------------------

TEST(SingleLockLiveness, StalledLockHolderBlocksEveryone) {
  const StallResult result = run_with_stall(Algo::kSingleLock, "LOCK_HELD",
                                            30'000);
  ASSERT_TRUE(result.victim_frozen);
  // Others can neither enqueue nor dequeue: the lock never comes back.
  EXPECT_EQ(result.others.enqueues, 0u);
  EXPECT_EQ(result.others.dequeues, 0u);
}

TEST(TwoLockLiveness, StalledTailHolderBlocksEnqueuersOnly) {
  // Freeze a victim that holds T_lock.  Build the scenario explicitly:
  // dedicated enqueuers and dequeuers so we can tell the two ends apart.
  EngineConfig config;
  config.seed = 11;
  Engine engine(config);
  auto queue = make_sim_queue(Algo::kTwoLock, engine, 64);
  // Preload several items so dequeuers are not starved by emptiness; the
  // preloader runs to completion (and thus holds no lock afterwards).
  {
    OpCounts preload_counts;
    const auto id = engine.spawn(0, [&](Proc& p) {
      return n_enqueues(p, *queue, 9, 20, preload_counts);
    });
    while (engine.step(id)) {
    }
    ASSERT_GT(preload_counts.enqueues, 10u);
  }

  OpCounts victim_counts, enq_counts, deq_counts;
  const auto victim = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 0, victim_counts);
  });
  engine.freeze_at_label(victim, "T_HELD");
  engine.spawn(0, [&](Proc& p) { return endless_enqueues(p, *queue, 1, enq_counts); });
  engine.spawn(0, [&](Proc& p) { return endless_dequeues(p, *queue, deq_counts); });
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    if (!engine.step_random()) break;
  }
  EXPECT_EQ(enq_counts.enqueues, 0u) << "T_lock was released somehow";
  EXPECT_GT(deq_counts.dequeues, 10u)
      << "dequeuers should proceed: the whole point of two locks";
}

TEST(TwoLockLiveness, StalledHeadHolderBlocksDequeuersOnly) {
  EngineConfig config;
  config.seed = 13;
  Engine engine(config);
  auto queue = make_sim_queue(Algo::kTwoLock, engine, 64);
  OpCounts victim_counts, enq_counts, deq_counts;
  // Victim dequeues forever; freeze it while it holds H_lock.
  const auto victim = engine.spawn(0, [&](Proc& p) {
    return endless_dequeues(p, *queue, victim_counts);
  });
  // Give it something to dequeue so H_HELD is reached with work in hand.
  const auto feeder = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 5, enq_counts);
  });
  (void)feeder;
  engine.freeze_at_label(victim, "H_HELD");
  OpCounts other_deq;
  engine.spawn(0, [&](Proc& p) { return endless_dequeues(p, *queue, other_deq); });
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    if (!engine.step_random()) break;
  }
  EXPECT_EQ(other_deq.dequeues, 0u) << "H_lock was released somehow";
  EXPECT_GT(enq_counts.enqueues, 10u)
      << "enqueuers should proceed while a dequeuer is stalled";
}

TEST(McLiveness, StalledLinkerEventuallyBlocksDequeuers) {
  // Freeze an enqueuer between its fetch_and_store of Tail and the link
  // write; dequeuers chew through earlier items, reach the broken link,
  // and wait forever -- never observing "empty" (Tail has moved on).
  EngineConfig config;
  config.seed = 17;
  Engine engine(config);
  auto queue = make_sim_queue(Algo::kMc, engine, 8);
  OpCounts victim_counts, deq_counts;
  const auto victim = engine.spawn(0, [&](Proc& p) {
    return endless_enqueues(p, *queue, 0, victim_counts);
  });
  // Drive the victim directly into the mid-link window BEFORE the dequeuer
  // exists (otherwise early dequeues legitimately observe a truly empty
  // queue).
  engine.freeze_at_label(victim, "MC_LINK");
  while (engine.step(victim)) {
    if (std::string(engine.label(victim)) == "MC_LINK") break;
  }
  ASSERT_EQ(std::string(engine.label(victim)), "MC_LINK");
  engine.spawn(0, [&](Proc& p) { return endless_dequeues(p, *queue, deq_counts); });
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    if (!engine.step_random()) break;
  }
  // The victim stalls mid-link on its FIRST enqueue, so the dequeuer can
  // never complete one -- and must not report empty either (the blocking
  // distinction from a correct empty result).
  EXPECT_EQ(victim_counts.enqueues, 0u);
  EXPECT_EQ(deq_counts.dequeues, 0u) << "dequeuer was not blocked";
  EXPECT_EQ(deq_counts.empty, 0u)
      << "a mid-link stall must read as 'wait', never as 'empty'";
}

}  // namespace
}  // namespace msq::sim
