// Single-threaded contract tests, typed over every MPMC queue in the
// library: FIFO order, emptiness reporting, capacity behaviour, dummy-node
// edge cases (empty <-> single-item transitions -- the cases the paper says
// earlier algorithms got wrong or omitted).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "queues/queues.hpp"

namespace msq::queues {
namespace {

constexpr std::uint32_t kCapacity = 64;

// Uniform construction across pool-backed and unbounded queues.
template <typename Q>
struct Factory {
  static Q make() { return Q(kCapacity); }
};
template <typename T, typename B>
struct Factory<MsQueueHp<T, B>> {
  static MsQueueHp<T, B> make() { return MsQueueHp<T, B>(); }
};

template <typename Q>
class QueueBasicTest : public ::testing::Test {
 protected:
  decltype(Factory<Q>::make()) queue_ = Factory<Q>::make();
};

using QueueTypes =
    ::testing::Types<MsQueue<std::uint64_t>, MsQueueDw<std::uint64_t>,
                     MsQueueHp<std::uint64_t>, TwoLockQueue<std::uint64_t>,
                     SingleLockQueue<std::uint64_t>,
                     MellorCrummeyQueue<std::uint64_t>, RingQueue<std::uint64_t>,
                     ScqQueue<std::uint64_t>, PljQueue<std::uint64_t>,
                     ValoisQueue<std::uint64_t>, SegmentQueue<std::uint64_t>,
                     WfQueue<std::uint64_t>>;
TYPED_TEST_SUITE(QueueBasicTest, QueueTypes);

TYPED_TEST(QueueBasicTest, SatisfiesConcurrentQueueConcept) {
  static_assert(ConcurrentQueue<TypeParam>);
  SUCCEED();
}

TYPED_TEST(QueueBasicTest, NewQueueIsEmpty) {
  std::uint64_t out = 0;
  EXPECT_FALSE(this->queue_.try_dequeue(out));
}

TYPED_TEST(QueueBasicTest, SingleItemRoundTrip) {
  ASSERT_TRUE(this->queue_.try_enqueue(42));
  std::uint64_t out = 0;
  ASSERT_TRUE(this->queue_.try_dequeue(out));
  EXPECT_EQ(out, 42u);
  EXPECT_FALSE(this->queue_.try_dequeue(out)) << "queue must be empty again";
}

TYPED_TEST(QueueBasicTest, FifoOrderPreserved) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(this->queue_.try_enqueue(i));
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    std::uint64_t out = 0;
    ASSERT_TRUE(this->queue_.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
}

TYPED_TEST(QueueBasicTest, OptionalDequeueForm) {
  EXPECT_EQ(this->queue_.try_dequeue(), std::nullopt);
  ASSERT_TRUE(this->queue_.try_enqueue(7));
  const std::optional<std::uint64_t> got = this->queue_.try_dequeue();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7u);
}

TYPED_TEST(QueueBasicTest, EmptyToNonEmptyTransitionRepeats) {
  // Exercises the dummy-node special case over and over: the "empty or
  // single-item queue" handling that incompletely-specified predecessors
  // omitted (paper section 1).
  for (std::uint64_t round = 0; round < 1000; ++round) {
    std::uint64_t out = 0;
    EXPECT_FALSE(this->queue_.try_dequeue(out));
    ASSERT_TRUE(this->queue_.try_enqueue(round));
    ASSERT_TRUE(this->queue_.try_dequeue(out));
    EXPECT_EQ(out, round);
  }
}

TYPED_TEST(QueueBasicTest, InterleavedEnqueueDequeue) {
  // Occupancy grows by one per round; 40 rounds stays within the 64-node
  // pool of the bounded queues.
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(this->queue_.try_enqueue(next_in++));
    for (int i = 0; i < 2; ++i) {
      std::uint64_t out = 0;
      ASSERT_TRUE(this->queue_.try_dequeue(out));
      EXPECT_EQ(out, next_out++);
    }
  }
  // Drain the surplus.
  std::uint64_t out = 0;
  while (this->queue_.try_dequeue(out)) {
    EXPECT_EQ(out, next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TYPED_TEST(QueueBasicTest, CapacityBoundIsHonoured) {
  if constexpr (TypeParam::traits.pool_backed) {
    std::uint64_t enqueued = 0;
    while (this->queue_.try_enqueue(enqueued)) {
      ++enqueued;
      ASSERT_LE(enqueued, static_cast<std::uint64_t>(kCapacity) + 1)
          << "queue accepted more items than its pool holds";
    }
    EXPECT_GE(enqueued, kCapacity - 1) << "queue refused well below capacity";
    // Free one slot; enqueue must succeed again.
    std::uint64_t out = 0;
    ASSERT_TRUE(this->queue_.try_dequeue(out));
    EXPECT_EQ(out, 0u);
    EXPECT_TRUE(this->queue_.try_enqueue(enqueued));
  } else {
    // Unbounded (hazard-pointer) variant: accepts far beyond kCapacity.
    for (std::uint64_t i = 0; i < kCapacity * 4; ++i) {
      ASSERT_TRUE(this->queue_.try_enqueue(i));
    }
    std::uint64_t out = 0;
    for (std::uint64_t i = 0; i < kCapacity * 4; ++i) {
      ASSERT_TRUE(this->queue_.try_dequeue(out));
      EXPECT_EQ(out, i);
    }
  }
}

TYPED_TEST(QueueBasicTest, DrainAfterPartialConsumption) {
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(this->queue_.try_enqueue(i));
  std::uint64_t out = 0;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(this->queue_.try_dequeue(out));
  for (std::uint64_t i = 10; i < 15; ++i) ASSERT_TRUE(this->queue_.try_enqueue(i));
  for (std::uint64_t expect = 5; expect < 15; ++expect) {
    ASSERT_TRUE(this->queue_.try_dequeue(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(this->queue_.try_dequeue(out));
}

TEST(QueueTraits, ProgressClassificationMatchesPaper) {
  // Section 1's taxonomy, encoded as traits the harness relies on.
  EXPECT_EQ(MsQueue<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(MsQueueDw<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(MsQueueHp<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(PljQueue<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(ValoisQueue<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(SegmentQueue<int>::traits.progress, Progress::kNonBlocking);
  EXPECT_EQ(TwoLockQueue<int>::traits.progress, Progress::kBlocking);
  EXPECT_EQ(SingleLockQueue<int>::traits.progress, Progress::kBlocking);
  EXPECT_EQ(MellorCrummeyQueue<int>::traits.progress,
            Progress::kLockFreeBlocking);
  EXPECT_EQ(RingQueue<int>::traits.progress, Progress::kLockFreeBlocking);
  // SCQ is bounded like the ring but genuinely non-blocking: a dequeuer
  // overtaking a stalled enqueuer marks the entry unsafe and moves on
  // instead of waiting on the slot handshake.
  EXPECT_EQ(ScqQueue<int>::traits.progress, Progress::kNonBlocking);
  // The helping wrapper upgrades the MS core's guarantee to wait-free
  // (ROADMAP item 3; the bound is proven over schedules in
  // tests/sim_wf_test.cpp).
  EXPECT_EQ(WfQueue<int>::traits.progress, Progress::kWaitFree);
  EXPECT_FALSE(MsQueueHp<int>::traits.pool_backed);
  EXPECT_TRUE(MsQueue<int>::traits.pool_backed);
}

}  // namespace
}  // namespace msq::queues
