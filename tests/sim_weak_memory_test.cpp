// Directed weak-memory cases for the order-aware explorer: the handful of
// scenarios whose outcome we can state exactly, as opposed to the
// table-driven sweep in tools/mo_mutation_sweep.cpp which covers every
// site.  Four claims are pinned down here:
//
//  1. a deliberately mis-annotated MS queue (plain D4 next read) is flagged
//     with a trace that names the paper's pseudo-code lines;
//  2. the correctly annotated model explores clean under SyncModel::kOrders,
//     and the E9/E13 order weakenings the table calls "masked by the pool's
//     acq_rel mesh" really are silent;
//  3. store-buffer mode DEGENERATES to the SC search when every access is
//     seq_cst: same schedule count, same terminal outcomes;
//  4. the two mutations only one detection layer can see behave as claimed:
//     sb.store_flag -> relaxed reaches the SC-forbidden both-zero outcome
//     under TSO exploration and never under SC; lock.unlock_store ->
//     relaxed never corrupts a terminal state yet always leaves an hb race.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string_view>
#include <utility>

#include "check/race.hpp"
#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/litmus_sim.hpp"
#include "sim/mo_table.hpp"
#include "sim/ms_queue_sim.hpp"
#include "sim/queue_iface.hpp"
#include "sim/sim_lock.hpp"

namespace msq::sim {
namespace {

[[nodiscard]] EngineConfig order_config(bool weak) {
  EngineConfig config;
  config.race_detect = true;
  config.sync_model = check::SyncModel::kOrders;
  config.weak_memory = weak;
  return config;
}

[[nodiscard]] bool has_label(const check::RaceReport& r, std::string_view l) {
  return std::string_view(r.first_label) == l ||
         std::string_view(r.second_label) == l;
}

// --- 1p1c MS world (the sweep's world A, one value) -------------------------

struct MsOrderWorld {
  Engine engine;
  SimMsQueue queue;

  MsOrderWorld(const MoTable* mo, bool weak)
      : engine(order_config(weak)), queue(engine, /*capacity=*/2,
                                          /*backoff_max=*/0, mo) {
    engine.spawn(0, [this](Proc& p) { return produce(p); });
    engine.spawn(0, [this](Proc& p) { return consume(p); });
  }

  Task<void> produce(Proc& p) {
    const bool ok = co_await queue.enqueue(p, 7);
    (void)ok;
  }

  Task<void> consume(Proc& p) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::uint64_t v = co_await queue.dequeue(p);
      if (v != kEmpty) co_return;
    }
  }
};

/// Total races across a DPOR sweep of the MS world; optionally keeps the
/// deduplicated reports for label assertions.
std::uint64_t ms_world_races(const MoTable* mo,
                             std::vector<check::RaceReport>* reports = nullptr) {
  std::unique_ptr<MsOrderWorld> world;
  std::uint64_t observed = 0;
  DporConfig config;
  config.max_steps_per_run = 5'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<MsOrderWorld>(mo, /*weak=*/false);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        observed += engine.races().observed();
        if (reports != nullptr) {
          for (const check::RaceReport& r : engine.races().reports()) {
            reports->push_back(r);
          }
        }
      });
  EXPECT_FALSE(result.budget_exhausted);
  return observed;
}

// A mis-annotated model is flagged, and the trace speaks pseudo-code: the
// plain D4 next read races with the concurrent E9 link CAS, and the report
// names both lines.
TEST(SimWeakMemory, PlainD4NextReadIsFlaggedWithLabelledTrace) {
  MoTable table;
  table.set("ms.D4.next_load", check::MemOrder::kPlain);
  std::vector<check::RaceReport> reports;
  const std::uint64_t observed = ms_world_races(&table, &reports);
  EXPECT_GT(observed, 0u) << "plain D4 must race with the E9 link CAS";
  bool d4_vs_e9 = false;
  for (const check::RaceReport& r : reports) {
    if (has_label(r, "D4") && has_label(r, "E9")) d4_vs_e9 = true;
  }
  EXPECT_TRUE(d4_vs_e9)
      << "expected a report naming [D4] vs [E9], got " << reports.size()
      << " report(s)"
      << (reports.empty() ? "" : (": " + reports.front().format()).c_str());
}

// The annotated model is clean, and the two "masked by the free list's
// acq_rel mesh" weakenings from sim/mo_table.hpp really are unobservable:
// the sweep proves it across all worlds; this directed case documents the
// 1p1c instance.
TEST(SimWeakMemory, AnnotatedModelAndMaskedWeakeningsExploreClean) {
  EXPECT_EQ(ms_world_races(nullptr), 0u) << "annotated MS queue raced";

  MoTable e9;
  e9.set("ms.E9.link_cas", check::MemOrder::kRelaxed);
  EXPECT_EQ(ms_world_races(&e9), 0u)
      << "E9 relaxed should be masked by the pool hand-off mesh";

  MoTable e13;
  e13.set("ms.E13.tail_swing", check::MemOrder::kRelaxed);
  EXPECT_EQ(ms_world_races(&e13), 0u)
      << "E13 relaxed should be masked by E9's release";
}

// --- store-buffer degeneracy -------------------------------------------------

struct SbWorld {
  Engine engine;
  SbLitmus litmus;

  SbWorld(const MoTable* mo, bool weak)
      : engine(order_config(weak)), litmus(engine, mo) {
    engine.spawn(0, [this](Proc& p) { return litmus.run(p, 0); });
    engine.spawn(0, [this](Proc& p) { return litmus.run(p, 1); });
  }
};

struct SbSweep {
  std::uint64_t schedules = 0;
  std::uint64_t races = 0;
  std::set<std::pair<std::uint64_t, std::uint64_t>> outcomes;
  bool both_zero_reached = false;
};

[[nodiscard]] SbSweep sweep_sb(const MoTable* mo, bool weak) {
  std::unique_ptr<SbWorld> world;
  SbSweep out;
  DporConfig config;
  config.max_steps_per_run = 1'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<SbWorld>(mo, weak);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        out.races += engine.races().observed();
        if (!engine.all_done()) return;
        out.outcomes.emplace(world->litmus.result(0), world->litmus.result(1));
        if (world->litmus.both_zero()) out.both_zero_reached = true;
      });
  EXPECT_FALSE(result.budget_exhausted);
  out.schedules = result.schedules_run;
  return out;
}

// With every access seq_cst (the annotated litmus), TSO store buffers are
// never engaged -- seq_cst stores drain eagerly -- so weak-memory
// exploration IS the SC exploration: same schedule count, same outcome
// set, and the SC-forbidden outcome is absent from both.
TEST(SimWeakMemory, AllSeqCstDegeneratesToScSearch) {
  const SbSweep sc = sweep_sb(nullptr, /*weak=*/false);
  const SbSweep weak = sweep_sb(nullptr, /*weak=*/true);
  EXPECT_EQ(sc.schedules, weak.schedules);
  EXPECT_EQ(sc.outcomes, weak.outcomes);
  EXPECT_EQ(sc.races + weak.races, 0u);
  EXPECT_FALSE(sc.both_zero_reached);
  EXPECT_FALSE(weak.both_zero_reached);
  // SC admits exactly the three classic outcomes: (0,1), (1,0), (1,1).
  EXPECT_EQ(sc.outcomes.size(), 3u);
}

// Weakening the SB store below seq_cst admits the both-zero outcome under
// TSO exploration -- and ONLY there: the same mutation explored without
// store buffers never produces it and reports no race either.  This is the
// mutation the weak-memory mode exists to catch.
TEST(SimWeakMemory, RelaxedSbStoreCaughtOnlyByStoreBufferMode) {
  MoTable table;
  table.set("sb.store_flag", check::MemOrder::kRelaxed);
  const SbSweep sc = sweep_sb(&table, /*weak=*/false);
  EXPECT_FALSE(sc.both_zero_reached) << "SC execution cannot reorder stores";
  EXPECT_EQ(sc.races, 0u) << "all accesses atomic: no hb race either";
  const SbSweep weak = sweep_sb(&table, /*weak=*/true);
  EXPECT_TRUE(weak.both_zero_reached)
      << "TSO flush nondeterminism must reach the both-zero outcome";
  EXPECT_GT(weak.schedules, sc.schedules)
      << "flush agents should enlarge the search space";
}

// --- the hb-layer-only catch -------------------------------------------------

struct LockWorld {
  Engine engine;
  SimTatasLock lock;
  Addr counter;

  LockWorld(const MoTable* mo, bool weak)
      : engine(order_config(weak)),
        lock(engine, /*backoff_max=*/0, mo),
        counter(engine.memory().alloc(1)) {
    for (int w = 0; w < 2; ++w) {
      engine.spawn(0, [this](Proc& p) { return worker(p); });
    }
  }

  Task<void> worker(Proc& p) {
    co_await lock.lock(p);
    const std::uint64_t v = co_await p.read(counter, check::MemOrder::kPlain);
    co_await p.write(counter, v + 1, check::MemOrder::kPlain);
    co_await lock.unlock(p);
  }
};

// Demoting the unlock store to relaxed keeps mutual exclusion intact --
// every terminal state still counts to 2 -- so no value-level check can
// see it.  The severed release edge is visible only to the order-aware hb
// tracker, as a race on the critical section's plain counter.
TEST(SimWeakMemory, RelaxedUnlockCaughtByHbLayerOnly) {
  MoTable table;
  table.set("lock.unlock_store", check::MemOrder::kRelaxed);
  std::unique_ptr<LockWorld> world;
  std::uint64_t races = 0;
  std::uint64_t lost_updates = 0;
  DporConfig config;
  config.max_steps_per_run = 3'000;
  const DporResult result = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<LockWorld>(&table, /*weak=*/false);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) {
        races += engine.races().observed();
        const bool done = engine.all_done();
        if (done && engine.memory().peek(world->counter) != 2) ++lost_updates;
      });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(lost_updates, 0u) << "mutual exclusion must still hold";
  EXPECT_GT(races, 0u) << "the severed release edge must race";

  // And the annotated lock is clean: the release/acquire pair orders the
  // critical sections.
  std::uint64_t annotated_races = 0;
  const DporResult clean = explore_dpor(
      config, /*process_count=*/2,
      [&]() -> Engine& {
        world = std::make_unique<LockWorld>(nullptr, /*weak=*/false);
        return world->engine;
      },
      /*on_step=*/nullptr,
      [&](Engine& engine) { annotated_races += engine.races().observed(); });
  EXPECT_FALSE(clean.budget_exhausted);
  EXPECT_EQ(annotated_races, 0u);
}

}  // namespace
}  // namespace msq::sim
