// Directed, deterministic schedules for the two mechanisms that make the
// FAA segment queue (src/queues/segment_queue.hpp) correct:
//
//  1. The slot handshake: a dequeuer that wins a ticket whose enqueuer is
//     still in flight KILLS the slot (exchange kEmpty -> kTaken); the
//     enqueuer's commit CAS fails and it retries with a fresh ticket.
//     Neither side ever waits on the other -- the non-blocking argument.
//
//  2. The stale-FAA hazard: a modification counter defends a CAS (the
//     sim_aba_test scenario) but CANNOT defend an unconditional
//     fetch-and-add -- validating *after* the FAA detects the recycling
//     but has already consumed a ticket the new segment generation never
//     handed out, stranding an item forever.  Validating *before* the FAA
//     (the hazard-cell publish/re-read handshake) closes the window.
//     This is why the segment queue needs per-queue hazard cells on top of
//     the counted pointers that suffice for ms_queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {
namespace {

constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kFilled = 1;
constexpr std::uint64_t kTaken = 2;
constexpr std::uint64_t kNone = ~0ull;

// ---- scenario 1: the slot kill handshake ------------------------------

/// One simulated segment: enq/deq tickets plus per-slot {state, value}.
struct SimSegment {
  static constexpr std::uint64_t kSlots = 2;
  Addr enq;
  Addr deq;
  Addr state;  // kSlots consecutive words
  Addr value;  // kSlots consecutive words

  explicit SimSegment(Engine& engine)
      : enq(engine.memory().alloc(1)),
        deq(engine.memory().alloc(1)),
        state(engine.memory().alloc(kSlots)),
        value(engine.memory().alloc(kSlots)) {}
};

Task<void> seg_enqueue(Proc& p, SimSegment& s, std::uint64_t v,
                       std::uint64_t& landed_slot) {
  for (;;) {
    const std::uint64_t t = co_await p.faa(s.enq, 1);
    if (t >= SimSegment::kSlots) {
      landed_slot = kNone;  // segment full (would append in the real queue)
      co_return;
    }
    co_await p.write(s.value + static_cast<Addr>(t), v);
    co_await p.at("FILL_CAS");
    const std::uint64_t old =
        co_await p.cas(s.state + static_cast<Addr>(t), kEmpty, kFilled);
    if (old == kEmpty) {
      landed_slot = t;
      co_return;
    }
    // Slot was killed by an impatient dequeuer: take a fresh ticket.
  }
}

Task<void> seg_dequeue(Proc& p, SimSegment& s, std::uint64_t& out) {
  for (;;) {
    const std::uint64_t d = co_await p.read(s.deq);
    const std::uint64_t e = co_await p.read(s.enq);
    const std::uint64_t limit = e < SimSegment::kSlots ? e : SimSegment::kSlots;
    if (d >= limit) {
      out = kNone;
      co_return;
    }
    const std::uint64_t t = co_await p.faa(s.deq, 1);
    if (t >= SimSegment::kSlots) continue;
    const std::uint64_t prev =
        co_await p.swap(s.state + static_cast<Addr>(t), kTaken);
    if (prev == kFilled) {
      out = co_await p.read(s.value + static_cast<Addr>(t));
      co_return;
    }
    // Killed an in-flight enqueuer's slot; burn onwards.
  }
}

TEST(SegmentHandshake, DequeuerKillsStalledEnqueuerSlotAndBothRecover) {
  Engine engine;
  SimSegment seg(engine);

  std::uint64_t landed = kNone;
  std::uint64_t first_got = 0, second_got = 0;
  const auto enq = engine.spawn(
      0, [&](Proc& p) { return seg_enqueue(p, seg, 42, landed); });

  // Enqueuer claims ticket 0, writes its value, stalls before the commit.
  engine.freeze_at_label(enq, "FILL_CAS");
  while (!engine.done(enq) && engine.step(enq)) {
    if (std::string_view(engine.label(enq)) == "FILL_CAS") break;
  }
  ASSERT_EQ(engine.memory().peek(seg.enq), 1u) << "ticket 0 must be claimed";

  // A dequeuer arrives, wins ticket 0, finds the slot unfilled -- and must
  // KILL it and report empty rather than wait for the stalled enqueuer.
  const auto deq1 = engine.spawn(
      0, [&](Proc& p) { return seg_dequeue(p, seg, first_got); });
  while (engine.step(deq1)) {
  }
  EXPECT_EQ(first_got, kNone) << "dequeuer must not block on a stalled peer";
  EXPECT_EQ(engine.memory().peek(seg.state), kTaken) << "slot 0 must be killed";

  // The enqueuer resumes: its commit CAS fails, it retries with ticket 1.
  engine.freeze_at_label(enq, nullptr);
  engine.unfreeze(enq);
  while (engine.step(enq)) {
  }
  EXPECT_EQ(landed, 1u) << "enqueuer must recover onto a fresh slot";
  EXPECT_EQ(engine.memory().peek(seg.state + 1), kFilled);

  // A second dequeuer now finds exactly one item: nothing lost, nothing
  // duplicated across the kill/retry exchange.
  const auto deq2 = engine.spawn(
      0, [&](Proc& p) { return seg_dequeue(p, seg, second_got); });
  while (engine.step(deq2)) {
  }
  EXPECT_EQ(second_got, 42u);
}

// ---- scenario 2: stale FAA vs. validate-before-FAA --------------------

/// A one-slot "queue": a counted head pointer (always at segment index 7,
/// only the counter advances on recycling) plus one segment generation.
struct MiniQueue {
  Addr head;   // TaggedIndex bits
  Addr enq;
  Addr deq;
  Addr state;
  Addr value;

  explicit MiniQueue(Engine& engine)
      : head(engine.memory().alloc(1)),
        enq(engine.memory().alloc(1)),
        deq(engine.memory().alloc(1)),
        state(engine.memory().alloc(1)),
        value(engine.memory().alloc(1)) {
    engine.memory().word(head) = tagged::TaggedIndex(7, 0).bits();
    engine.memory().word(enq) = 1;  // generation 0 holds one item
    engine.memory().word(state) = kFilled;
    engine.memory().word(value) = 7;
  }
};

/// Counted-pointer-only discipline: FAA first, validate the counter after.
/// The validation *detects* the recycling but the ticket is already gone.
Task<void> naive_dequeue(Proc& p, MiniQueue& q, std::uint64_t& out) {
  const std::uint64_t h = co_await p.read(q.head);
  co_await p.at("STALE_FAA");
  const std::uint64_t t = co_await p.faa(q.deq, 1);
  const std::uint64_t h2 = co_await p.read(q.head);
  if (h2 != h) {
    out = kNone;  // "safely" aborted -- but ticket t is burned
    co_return;
  }
  if (t >= co_await p.read(q.enq)) {
    out = kNone;
    co_return;
  }
  const std::uint64_t prev = co_await p.swap(q.state, kTaken);
  out = prev == kFilled ? co_await p.read(q.value) : kNone;
}

/// Hazard-cell discipline: publish, re-read, and only FAA once the head is
/// revalidated (segment_queue.hpp's Protector::protect handshake).
Task<void> guarded_dequeue(Proc& p, MiniQueue& q, Addr hazard,
                           std::uint64_t& out) {
  std::uint64_t h = co_await p.read(q.head);
  for (;;) {
    co_await p.write(hazard, h);
    co_await p.at("REVALIDATE");
    const std::uint64_t h2 = co_await p.read(q.head);
    if (h2 == h) break;
    h = h2;  // retarget and re-validate against the current head
  }
  const std::uint64_t t = co_await p.faa(q.deq, 1);
  if (t >= co_await p.read(q.enq)) {
    out = kNone;
    co_return;
  }
  const std::uint64_t prev = co_await p.swap(q.state, kTaken);
  out = prev == kFilled ? co_await p.read(q.value) : kNone;
}

/// Mutator: dequeue the generation-0 item legitimately, then recycle the
/// segment in place (reset tickets, enqueue 99, bump the head counter) --
/// the same index, a new generation, exactly what the free list enables.
Task<void> drain_and_recycle(Proc& p, MiniQueue& q, bool& ok) {
  const std::uint64_t t = co_await p.faa(q.deq, 1);
  const std::uint64_t prev = co_await p.swap(q.state, kTaken);
  ok = (t == 0 && prev == kFilled) && co_await p.read(q.value) == 7;
  // Recycle: reset as the new exclusive owner would (reset-at-alloc).
  co_await p.write(q.state, kEmpty);
  co_await p.write(q.enq, 0);
  co_await p.write(q.deq, 0);
  const std::uint64_t h = co_await p.read(q.head);
  co_await p.cas(q.head, h, tagged::TaggedIndex::from_bits(h).successor(7).bits());
  // New generation's first enqueue: item 99 into slot 0.
  const std::uint64_t e = co_await p.faa(q.enq, 1);
  co_await p.write(q.value, 99);
  co_await p.cas(q.state + static_cast<Addr>(e), kEmpty, kFilled);
}

template <bool Guarded>
std::uint64_t run_stale_faa_scenario(Engine& engine, MiniQueue& q,
                                     std::uint64_t& victim_got) {
  const Addr hazard = engine.memory().alloc(1);
  const char* stall = Guarded ? "REVALIDATE" : "STALE_FAA";
  const auto victim = engine.spawn(0, [&](Proc& p) {
    if constexpr (Guarded) {
      return guarded_dequeue(p, q, hazard, victim_got);
    } else {
      return naive_dequeue(p, q, victim_got);
    }
  });
  // Victim reads head (generation 0) and stalls just before the FAA
  // (naive) / just before the revalidating re-read (guarded).
  engine.freeze_at_label(victim, stall);
  while (!engine.done(victim) && engine.step(victim)) {
    if (std::string_view(engine.label(victim)) == stall) break;
  }
  // The world moves on: item dequeued, segment recycled, item 99 added.
  bool mutator_ok = false;
  const auto mutator = engine.spawn(
      0, [&](Proc& p) { return drain_and_recycle(p, q, mutator_ok); });
  while (engine.step(mutator)) {
  }
  EXPECT_TRUE(mutator_ok);
  // Victim resumes against the recycled generation.
  engine.freeze_at_label(victim, nullptr);
  engine.unfreeze(victim);
  while (engine.step(victim)) {
  }
  // A fresh dequeuer tells us whether item 99 is still reachable.
  std::uint64_t fresh_got = 0;
  const auto fresh = engine.spawn(0, [&](Proc& p) {
    return guarded_dequeue(p, q, engine.memory().alloc(1), fresh_got);
  });
  while (engine.step(fresh)) {
  }
  return fresh_got;
}

TEST(SegmentStaleFaa, CountersAloneCannotDefendFaaItemIsStranded) {
  Engine engine;
  MiniQueue q(engine);
  std::uint64_t victim_got = 0;
  const std::uint64_t fresh_got =
      run_stale_faa_scenario<false>(engine, q, victim_got);
  // The victim detected the counter change -- too late: its FAA consumed
  // the new generation's only dequeue ticket.  Item 99 is enqueued,
  // unreachable, and the queue reports empty: a linearizability violation
  // no retry will ever repair.
  EXPECT_EQ(victim_got, kNone);
  EXPECT_EQ(fresh_got, kNone) << "stranded item went unnoticed";
  EXPECT_EQ(engine.memory().peek(q.state), kFilled)
      << "item 99 must be visibly stranded in its slot";
}

TEST(SegmentStaleFaa, ValidateBeforeFaaTakesTheRecycledGenerationSafely) {
  Engine engine;
  MiniQueue q(engine);
  std::uint64_t victim_got = 0;
  const std::uint64_t fresh_got =
      run_stale_faa_scenario<true>(engine, q, victim_got);
  // The guarded victim revalidated BEFORE the FAA, saw the new generation,
  // and consumed item 99 correctly; the fresh dequeuer sees a clean empty.
  EXPECT_EQ(victim_got, 99u);
  EXPECT_EQ(fresh_got, kNone);
  EXPECT_EQ(engine.memory().peek(q.state), kTaken);
}

}  // namespace
}  // namespace msq::sim
