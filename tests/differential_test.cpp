// Differential testing: every queue against a reference std::deque model.
//
//  * Sequential: long seeded-random op sequences must match the model op
//    for op (value AND emptiness reporting), across all queues and many
//    seeds (parameterised sweep).
//  * Concurrent phases: a parallel enqueue phase followed by a sequential
//    drain must yield exactly the model multiset, merged in a way
//    consistent with per-producer order (checked via interleaving merge).
// The ShardedQueue front end joins in two forms: the degenerate single
// shard (exactly as linearizable as its inner queue, so it rides the full
// deque-model sweep) and multi-shard configurations, which deliberately
// trade global FIFO for scalability and are therefore held to their own
// documented contract -- multiset conservation, exact sequential
// emptiness, and per-producer decomposition into at most N FIFO runs
// (tests/sharded_oracle.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "port/prng.hpp"
#include "queues/queues.hpp"
#include "sharded_oracle.hpp"

namespace msq::queues {
namespace {

enum class Kind {
  kMs,
  kMsDw,
  kMsHp,
  kTwoLock,
  kSingleLock,
  kMc,
  kRing,
  kScq,  // bounded indirect SCQ ring (Nikolaev), memory-bounded lock-free
  kPlj,
  kValois,
  kSeg,
  kSharded1,  // ShardedQueue<MsQueue, 1>: degenerate, still global FIFO
  kWf,        // announcement-helping wait-free wrapper
};

constexpr Kind kAllKinds[] = {Kind::kMs,   Kind::kMsDw,       Kind::kMsHp,
                              Kind::kTwoLock, Kind::kSingleLock, Kind::kMc,
                              Kind::kRing, Kind::kScq,       Kind::kPlj,
                              Kind::kValois, Kind::kSeg,     Kind::kSharded1,
                              Kind::kWf};

/// Type-erased adapter so the sweep can be a value-parameterised test
/// (kind x seed) rather than 8 copies of the same code.
class AnyQueue {
 public:
  AnyQueue(Kind kind, std::uint32_t capacity) {
    switch (kind) {
      case Kind::kMs:
        impl_ = make<MsQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kMsDw:
        impl_ = make<MsQueueDw<std::uint64_t>>(capacity);
        break;
      case Kind::kMsHp:
        impl_ = std::make_unique<Model<MsQueueHp<std::uint64_t>>>(
            std::make_unique<MsQueueHp<std::uint64_t>>());
        break;
      case Kind::kTwoLock:
        impl_ = make<TwoLockQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kSingleLock:
        impl_ = make<SingleLockQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kMc:
        impl_ = make<MellorCrummeyQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kRing:
        impl_ = make<RingQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kScq:
        impl_ = make<ScqQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kPlj:
        impl_ = make<PljQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kValois:
        impl_ = make<ValoisQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kSeg:
        impl_ = make<SegmentQueue<std::uint64_t>>(capacity);
        break;
      case Kind::kSharded1:
        impl_ = make<ShardedQueue<MsQueue<std::uint64_t>, 1>>(capacity);
        break;
      case Kind::kWf:
        impl_ = make<WfQueue<std::uint64_t>>(capacity);
        break;
    }
  }

  bool try_enqueue(std::uint64_t v) { return impl_->enqueue(v); }
  bool try_dequeue(std::uint64_t& v) { return impl_->dequeue(v); }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool enqueue(std::uint64_t) = 0;
    virtual bool dequeue(std::uint64_t&) = 0;
  };
  template <typename Q>
  struct Model : Iface {
    explicit Model(std::unique_ptr<Q> q) : queue(std::move(q)) {}
    bool enqueue(std::uint64_t v) override { return queue->try_enqueue(v); }
    bool dequeue(std::uint64_t& v) override { return queue->try_dequeue(v); }
    std::unique_ptr<Q> queue;
  };
  template <typename Q>
  static std::unique_ptr<Iface> make(std::uint32_t capacity) {
    return std::make_unique<Model<Q>>(std::make_unique<Q>(capacity));
  }

  std::unique_ptr<Iface> impl_;
};

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsBySeeds, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u)));

TEST_P(DifferentialTest, SequentialRandomOpsMatchDequeModel) {
  const auto [kind, seed] = GetParam();
  constexpr std::uint32_t kCapacity = 32;
  AnyQueue queue(kind, kCapacity);
  std::deque<std::uint64_t> model;
  port::Xoshiro256 rng(seed);

  for (int op = 0; op < 50'000; ++op) {
    if (rng.below(100) < 55) {  // slight enqueue bias exercises fullness
      const std::uint64_t value = rng();
      const bool accepted = queue.try_enqueue(value);
      if (accepted) {
        // Bounded queues may refuse only when the model says "full-ish";
        // capacity semantics differ slightly per implementation (dummy
        // node, ring rounding), so we only check the model mirror here.
        model.push_back(value);
      } else {
        ASSERT_GE(model.size(), kCapacity - 1u)
            << "queue refused an enqueue while clearly not full (op " << op
            << ")";
      }
    } else {
      std::uint64_t got = 0;
      const bool ok = queue.try_dequeue(got);
      if (model.empty()) {
        ASSERT_FALSE(ok) << "dequeue fabricated a value from an empty queue";
      } else {
        ASSERT_TRUE(ok) << "dequeue reported empty with "
                        << model.size() << " items in the model (op " << op
                        << ")";
        ASSERT_EQ(got, model.front()) << "FIFO order diverged at op " << op;
        model.pop_front();
      }
    }
  }
}

TEST_P(DifferentialTest, ParallelFillThenDrainMatchesModelMultiset) {
  const auto [kind, seed] = GetParam();
  constexpr std::uint32_t kThreads = 3;
  constexpr std::uint64_t kPerThread = 4'000;
  AnyQueue queue(kind, kThreads * kPerThread + 8);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        port::Xoshiro256 rng(seed * 1000 + t);
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t value =
              (std::uint64_t{t} << 48) | (rng() & 0xFFFFFFFFull) << 16 | i % 65536;
          while (!queue.try_enqueue(value)) std::this_thread::yield();
        }
      });
    }
  }
  // Drain sequentially; values from each producer must appear in their
  // program order (per-producer FIFO), and counts must match exactly.
  std::uint64_t last_low[kThreads];
  bool seen_any[kThreads] = {};
  std::uint64_t total = 0;
  std::uint64_t got = 0;
  while (queue.try_dequeue(got)) {
    const auto producer = static_cast<std::uint32_t>(got >> 48);
    ASSERT_LT(producer, kThreads);
    const std::uint64_t low = got & 0xFFFF;
    if (seen_any[producer]) {
      ASSERT_EQ(low, (last_low[producer] + 1) % 65536)
          << "per-producer order broke after " << total << " items";
    }
    last_low[producer] = low;
    seen_any[producer] = true;
    ++total;
  }
  EXPECT_EQ(total, std::uint64_t{kThreads} * kPerThread);
}

// --- multi-shard ShardedQueue against its own documented contract -----------

/// Sequential random ops against a MULTISET model: conservation (every
/// dequeued value was enqueued, exactly once) and exact emptiness (with a
/// single thread the coherent-empty scan is trivially exact, so the queue
/// must agree with the model about empty on every single op) -- global
/// FIFO deliberately unchecked.
template <typename Q>
void sequential_sharded_ops_match_multiset(std::uint64_t seed) {
  constexpr std::uint32_t kCapacity = 64;
  Q queue(kCapacity);
  std::multiset<std::uint64_t> model;
  port::Xoshiro256 rng(seed);
  for (int op = 0; op < 50'000; ++op) {
    if (rng.below(100) < 55) {
      const std::uint64_t value = rng();
      if (queue.try_enqueue(value)) {
        model.insert(value);
      } else {
        // Per-shard pools round capacity (dummy nodes, whole segments), so
        // only flag refusals while clearly under aggregate capacity.
        ASSERT_GE(model.size(), kCapacity - 2u * Q::kShards)
            << "refused an enqueue while clearly not full (op " << op << ")";
      }
    } else {
      std::uint64_t got = 0;
      const bool ok = queue.try_dequeue(got);
      if (model.empty()) {
        ASSERT_FALSE(ok) << "fabricated a value from an empty queue";
      } else {
        ASSERT_TRUE(ok) << "sequential empty report with " << model.size()
                        << " items live (op " << op << ")";
        const auto it = model.find(got);
        ASSERT_NE(it, model.end())
            << "dequeued " << got << ": lost, duplicated, or invented";
        model.erase(it);
      }
    }
  }
}

/// Parallel fill, sequential drain: exact multiset totals plus the sharded
/// order contract -- each producer's drain stream splits into at most
/// N increasing runs (one per shard it touched).
template <typename Q>
void parallel_sharded_fill_drain_match_multiset(std::uint64_t seed) {
  constexpr std::uint32_t kThreads = 3;
  constexpr std::uint64_t kPerThread = 4'000;
  Q queue(kThreads * kPerThread + 8);
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        port::Xoshiro256 rng(seed * 1000 + t);
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t value =
              (std::uint64_t{t} << 48) | (rng() & 0xFFFFFFFFull) << 16 |
              i % 65536;
          while (!queue.try_enqueue(value)) std::this_thread::yield();
        }
      });
    }
  }
  std::vector<std::uint64_t> lows[kThreads];
  std::uint64_t total = 0;
  std::uint64_t got = 0;
  while (queue.try_dequeue(got)) {
    const auto producer = static_cast<std::uint32_t>(got >> 48);
    ASSERT_LT(producer, kThreads);
    lows[producer].push_back(got & 0xFFFF);
    ++total;
  }
  EXPECT_EQ(total, std::uint64_t{kThreads} * kPerThread);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(lows[t].size(), kPerThread);
    const std::size_t runs = check::min_increasing_runs(lows[t]);
    EXPECT_LE(runs, Q::kShards)
        << "producer " << t << "'s stream needed " << runs
        << " FIFO runs, more shards than exist";
  }
}

class ShardedDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST_P(ShardedDifferentialTest, SequentialRandomOpsMatchMultisetModel) {
  sequential_sharded_ops_match_multiset<
      ShardedQueue<MsQueue<std::uint64_t>, 4>>(GetParam());
  sequential_sharded_ops_match_multiset<
      ShardedQueue<SegmentQueue<std::uint64_t>, 4>>(GetParam());
}

TEST_P(ShardedDifferentialTest, ParallelFillThenDrainHoldsPerShardFifo) {
  parallel_sharded_fill_drain_match_multiset<
      ShardedQueue<MsQueue<std::uint64_t>, 4>>(GetParam());
  parallel_sharded_fill_drain_match_multiset<
      ShardedQueue<SegmentQueue<std::uint64_t>, 4>>(GetParam());
}

}  // namespace
}  // namespace msq::queues
