// Unit tests for the counted-pointer substrate (tagged/).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "tagged/atomic_tagged.hpp"
#include "tagged/counted_ptr.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::tagged {
namespace {

TEST(TaggedIndex, DefaultIsNullWithZeroCount) {
  const TaggedIndex t;
  EXPECT_TRUE(t.is_null());
  EXPECT_EQ(t.index(), kNullIndex);
  EXPECT_EQ(t.count(), 0u);
}

TEST(TaggedIndex, PacksIndexAndCount) {
  const TaggedIndex t(42, 7);
  EXPECT_EQ(t.index(), 42u);
  EXPECT_EQ(t.count(), 7u);
  EXPECT_FALSE(t.is_null());
}

TEST(TaggedIndex, SuccessorBumpsCounterAndRetargets) {
  const TaggedIndex t(5, 100);
  const TaggedIndex s = t.successor(9);
  EXPECT_EQ(s.index(), 9u);
  EXPECT_EQ(s.count(), 101u);
}

TEST(TaggedIndex, CounterWrapsAround) {
  const TaggedIndex t(1, 0xFFFFFFFFu);
  EXPECT_EQ(t.successor(1).count(), 0u);  // modular, like the paper's counter
}

TEST(TaggedIndex, EqualityIncludesCount) {
  EXPECT_EQ(TaggedIndex(3, 4), TaggedIndex(3, 4));
  EXPECT_NE(TaggedIndex(3, 4), TaggedIndex(3, 5));  // same node, later time
  EXPECT_NE(TaggedIndex(3, 4), TaggedIndex(2, 4));
}

TEST(TaggedIndex, BitsRoundTrip) {
  const TaggedIndex t(123456, 654321);
  EXPECT_EQ(TaggedIndex::from_bits(t.bits()), t);
}

TEST(AtomicTagged, LoadStoreRoundTrip) {
  AtomicTagged cell;
  EXPECT_TRUE(cell.load(std::memory_order_acquire).is_null());
  cell.store(TaggedIndex(8, 2), std::memory_order_release);
  EXPECT_EQ(cell.load(std::memory_order_acquire), TaggedIndex(8, 2));
}

TEST(AtomicTagged, CasSucceedsOnExactMatch) {
  AtomicTagged cell{TaggedIndex(1, 1)};
  EXPECT_TRUE(cell.compare_and_swap(TaggedIndex(1, 1), TaggedIndex(2, 2), std::memory_order_acq_rel));
  EXPECT_EQ(cell.load(std::memory_order_acquire), TaggedIndex(2, 2));
}

TEST(AtomicTagged, CasFailsOnStaleCount) {
  // The ABA defence: same index, older count, must fail.
  AtomicTagged cell{TaggedIndex(1, 5)};
  EXPECT_FALSE(cell.compare_and_swap(TaggedIndex(1, 4), TaggedIndex(2, 6), std::memory_order_acq_rel));
  EXPECT_EQ(cell.load(std::memory_order_acquire), TaggedIndex(1, 5));
}

TEST(AtomicTagged, ConcurrentCasGrantsExactlyOneWinnerPerValue) {
  AtomicTagged cell{TaggedIndex(0, 0)};
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::jthread> threads;
  std::atomic<std::uint64_t> wins{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          const TaggedIndex cur = cell.load(std::memory_order_acquire);
          if (cell.compare_and_swap(cur, cur.successor(cur.index() + 1), std::memory_order_acq_rel)) {
            wins.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  threads.clear();
  EXPECT_EQ(wins.load(std::memory_order_acquire), kThreads * kIncrements);
  // Every successful CAS bumped the counter exactly once.
  EXPECT_EQ(cell.load(std::memory_order_acquire).count(), static_cast<std::uint32_t>(kThreads * kIncrements));
  EXPECT_EQ(cell.load(std::memory_order_acquire).index(), static_cast<std::uint32_t>(kThreads * kIncrements));
}

struct Dummy {
  int payload;
};

TEST(CountedPtr, DefaultIsNull) {
  const CountedPtr<Dummy> p;
  EXPECT_EQ(p.ptr, nullptr);
  EXPECT_EQ(p.count, 0u);
}

TEST(CountedPtr, SuccessorBumpsCount) {
  Dummy d{1};
  const CountedPtr<Dummy> p{&d, 41};
  const CountedPtr<Dummy> s = p.successor(nullptr);
  EXPECT_EQ(s.ptr, nullptr);
  EXPECT_EQ(s.count, 42u);
}

TEST(AtomicCountedPtr, LoadStoreRoundTrip) {
  Dummy d{7};
  AtomicCountedPtr<Dummy> cell;
  EXPECT_EQ(cell.load(std::memory_order_acquire).ptr, nullptr);
  cell.store({&d, 3}, std::memory_order_release);
  EXPECT_EQ(cell.load(std::memory_order_acquire).ptr, &d);
  EXPECT_EQ(cell.load(std::memory_order_acquire).count, 3u);
}

TEST(AtomicCountedPtr, CasIsCountSensitive) {
  Dummy a{0}, b{1};
  AtomicCountedPtr<Dummy> cell{{&a, 10}};
  EXPECT_FALSE(cell.compare_and_swap({&a, 9}, {&b, 10}, std::memory_order_acq_rel));   // stale count
  EXPECT_TRUE(cell.compare_and_swap({&a, 10}, {&b, 11}, std::memory_order_acq_rel));
  EXPECT_EQ(cell.load(std::memory_order_acquire).ptr, &b);
}

TEST(AtomicCountedPtr, ConcurrentCountMonotonicity) {
  AtomicCountedPtr<Dummy> cell{{nullptr, 0}};
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          const CountedPtr<Dummy> cur = cell.load(std::memory_order_acquire);
          if (cell.compare_and_swap(cur, cur.successor(cur.ptr), std::memory_order_acq_rel)) break;
        }
      }
    });
  }
  threads.clear();
  EXPECT_EQ(cell.load(std::memory_order_acquire).count, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace msq::tagged
