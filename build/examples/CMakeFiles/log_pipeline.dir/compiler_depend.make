# Empty compiler generated dependencies file for log_pipeline.
# This may be replaced when dependencies are built.
