file(REMOVE_RECURSE
  "CMakeFiles/check_my_queue.dir/check_my_queue.cpp.o"
  "CMakeFiles/check_my_queue.dir/check_my_queue.cpp.o.d"
  "check_my_queue"
  "check_my_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_my_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
