# Empty dependencies file for check_my_queue.
# This may be replaced when dependencies are built.
