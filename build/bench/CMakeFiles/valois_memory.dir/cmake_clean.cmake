file(REMOVE_RECURSE
  "CMakeFiles/valois_memory.dir/valois_memory.cpp.o"
  "CMakeFiles/valois_memory.dir/valois_memory.cpp.o.d"
  "valois_memory"
  "valois_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valois_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
