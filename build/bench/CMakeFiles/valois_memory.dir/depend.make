# Empty dependencies file for valois_memory.
# This may be replaced when dependencies are built.
