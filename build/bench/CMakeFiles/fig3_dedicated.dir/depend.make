# Empty dependencies file for fig3_dedicated.
# This may be replaced when dependencies are built.
