file(REMOVE_RECURSE
  "CMakeFiles/fig3_dedicated.dir/fig3_dedicated.cpp.o"
  "CMakeFiles/fig3_dedicated.dir/fig3_dedicated.cpp.o.d"
  "CMakeFiles/fig3_dedicated.dir/fig_common.cpp.o"
  "CMakeFiles/fig3_dedicated.dir/fig_common.cpp.o.d"
  "fig3_dedicated"
  "fig3_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
