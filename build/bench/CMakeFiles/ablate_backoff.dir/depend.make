# Empty dependencies file for ablate_backoff.
# This may be replaced when dependencies are built.
