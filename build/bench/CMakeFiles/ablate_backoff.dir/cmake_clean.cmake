file(REMOVE_RECURSE
  "CMakeFiles/ablate_backoff.dir/ablate_backoff.cpp.o"
  "CMakeFiles/ablate_backoff.dir/ablate_backoff.cpp.o.d"
  "CMakeFiles/ablate_backoff.dir/fig_common.cpp.o"
  "CMakeFiles/ablate_backoff.dir/fig_common.cpp.o.d"
  "ablate_backoff"
  "ablate_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
