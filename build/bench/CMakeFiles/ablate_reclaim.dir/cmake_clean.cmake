file(REMOVE_RECURSE
  "CMakeFiles/ablate_reclaim.dir/ablate_reclaim.cpp.o"
  "CMakeFiles/ablate_reclaim.dir/ablate_reclaim.cpp.o.d"
  "ablate_reclaim"
  "ablate_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
