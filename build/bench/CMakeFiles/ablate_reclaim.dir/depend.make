# Empty dependencies file for ablate_reclaim.
# This may be replaced when dependencies are built.
