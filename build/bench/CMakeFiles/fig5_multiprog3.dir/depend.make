# Empty dependencies file for fig5_multiprog3.
# This may be replaced when dependencies are built.
