file(REMOVE_RECURSE
  "CMakeFiles/fig5_multiprog3.dir/fig5_multiprog3.cpp.o"
  "CMakeFiles/fig5_multiprog3.dir/fig5_multiprog3.cpp.o.d"
  "CMakeFiles/fig5_multiprog3.dir/fig_common.cpp.o"
  "CMakeFiles/fig5_multiprog3.dir/fig_common.cpp.o.d"
  "fig5_multiprog3"
  "fig5_multiprog3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_multiprog3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
