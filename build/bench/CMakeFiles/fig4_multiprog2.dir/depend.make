# Empty dependencies file for fig4_multiprog2.
# This may be replaced when dependencies are built.
