file(REMOVE_RECURSE
  "CMakeFiles/fig4_multiprog2.dir/fig4_multiprog2.cpp.o"
  "CMakeFiles/fig4_multiprog2.dir/fig4_multiprog2.cpp.o.d"
  "CMakeFiles/fig4_multiprog2.dir/fig_common.cpp.o"
  "CMakeFiles/fig4_multiprog2.dir/fig_common.cpp.o.d"
  "fig4_multiprog2"
  "fig4_multiprog2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multiprog2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
