file(REMOVE_RECURSE
  "libmsq.a"
)
