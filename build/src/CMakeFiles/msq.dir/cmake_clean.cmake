file(REMOVE_RECURSE
  "CMakeFiles/msq.dir/check/history.cpp.o"
  "CMakeFiles/msq.dir/check/history.cpp.o.d"
  "CMakeFiles/msq.dir/check/invariants.cpp.o"
  "CMakeFiles/msq.dir/check/invariants.cpp.o.d"
  "CMakeFiles/msq.dir/check/lin_check.cpp.o"
  "CMakeFiles/msq.dir/check/lin_check.cpp.o.d"
  "CMakeFiles/msq.dir/harness/calibrate.cpp.o"
  "CMakeFiles/msq.dir/harness/calibrate.cpp.o.d"
  "CMakeFiles/msq.dir/harness/driver.cpp.o"
  "CMakeFiles/msq.dir/harness/driver.cpp.o.d"
  "CMakeFiles/msq.dir/harness/stats.cpp.o"
  "CMakeFiles/msq.dir/harness/stats.cpp.o.d"
  "CMakeFiles/msq.dir/harness/table.cpp.o"
  "CMakeFiles/msq.dir/harness/table.cpp.o.d"
  "CMakeFiles/msq.dir/sim/cost_model.cpp.o"
  "CMakeFiles/msq.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/msq.dir/sim/engine.cpp.o"
  "CMakeFiles/msq.dir/sim/engine.cpp.o.d"
  "CMakeFiles/msq.dir/sim/explore.cpp.o"
  "CMakeFiles/msq.dir/sim/explore.cpp.o.d"
  "CMakeFiles/msq.dir/sim/memory.cpp.o"
  "CMakeFiles/msq.dir/sim/memory.cpp.o.d"
  "CMakeFiles/msq.dir/sim/workload.cpp.o"
  "CMakeFiles/msq.dir/sim/workload.cpp.o.d"
  "libmsq.a"
  "libmsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
