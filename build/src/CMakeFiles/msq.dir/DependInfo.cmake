
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/history.cpp" "src/CMakeFiles/msq.dir/check/history.cpp.o" "gcc" "src/CMakeFiles/msq.dir/check/history.cpp.o.d"
  "/root/repo/src/check/invariants.cpp" "src/CMakeFiles/msq.dir/check/invariants.cpp.o" "gcc" "src/CMakeFiles/msq.dir/check/invariants.cpp.o.d"
  "/root/repo/src/check/lin_check.cpp" "src/CMakeFiles/msq.dir/check/lin_check.cpp.o" "gcc" "src/CMakeFiles/msq.dir/check/lin_check.cpp.o.d"
  "/root/repo/src/harness/calibrate.cpp" "src/CMakeFiles/msq.dir/harness/calibrate.cpp.o" "gcc" "src/CMakeFiles/msq.dir/harness/calibrate.cpp.o.d"
  "/root/repo/src/harness/driver.cpp" "src/CMakeFiles/msq.dir/harness/driver.cpp.o" "gcc" "src/CMakeFiles/msq.dir/harness/driver.cpp.o.d"
  "/root/repo/src/harness/stats.cpp" "src/CMakeFiles/msq.dir/harness/stats.cpp.o" "gcc" "src/CMakeFiles/msq.dir/harness/stats.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/CMakeFiles/msq.dir/harness/table.cpp.o" "gcc" "src/CMakeFiles/msq.dir/harness/table.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/msq.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/msq.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/msq.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/msq.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/explore.cpp" "src/CMakeFiles/msq.dir/sim/explore.cpp.o" "gcc" "src/CMakeFiles/msq.dir/sim/explore.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/msq.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/msq.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/msq.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/msq.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
