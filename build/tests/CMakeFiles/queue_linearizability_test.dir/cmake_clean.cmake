file(REMOVE_RECURSE
  "CMakeFiles/queue_linearizability_test.dir/queue_linearizability_test.cpp.o"
  "CMakeFiles/queue_linearizability_test.dir/queue_linearizability_test.cpp.o.d"
  "queue_linearizability_test"
  "queue_linearizability_test.pdb"
  "queue_linearizability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_linearizability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
