# Empty dependencies file for queue_linearizability_test.
# This may be replaced when dependencies are built.
