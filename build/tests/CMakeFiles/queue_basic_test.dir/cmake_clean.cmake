file(REMOVE_RECURSE
  "CMakeFiles/queue_basic_test.dir/queue_basic_test.cpp.o"
  "CMakeFiles/queue_basic_test.dir/queue_basic_test.cpp.o.d"
  "queue_basic_test"
  "queue_basic_test.pdb"
  "queue_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
