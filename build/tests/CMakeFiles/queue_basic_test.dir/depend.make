# Empty dependencies file for queue_basic_test.
# This may be replaced when dependencies are built.
