file(REMOVE_RECURSE
  "CMakeFiles/valois_memory_test.dir/valois_memory_test.cpp.o"
  "CMakeFiles/valois_memory_test.dir/valois_memory_test.cpp.o.d"
  "valois_memory_test"
  "valois_memory_test.pdb"
  "valois_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valois_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
