# Empty dependencies file for valois_memory_test.
# This may be replaced when dependencies are built.
