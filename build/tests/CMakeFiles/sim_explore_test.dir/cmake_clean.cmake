file(REMOVE_RECURSE
  "CMakeFiles/sim_explore_test.dir/sim_explore_test.cpp.o"
  "CMakeFiles/sim_explore_test.dir/sim_explore_test.cpp.o.d"
  "sim_explore_test"
  "sim_explore_test.pdb"
  "sim_explore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_explore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
