file(REMOVE_RECURSE
  "CMakeFiles/lin_check_test.dir/lin_check_test.cpp.o"
  "CMakeFiles/lin_check_test.dir/lin_check_test.cpp.o.d"
  "lin_check_test"
  "lin_check_test.pdb"
  "lin_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
