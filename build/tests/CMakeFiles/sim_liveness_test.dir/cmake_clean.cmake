file(REMOVE_RECURSE
  "CMakeFiles/sim_liveness_test.dir/sim_liveness_test.cpp.o"
  "CMakeFiles/sim_liveness_test.dir/sim_liveness_test.cpp.o.d"
  "sim_liveness_test"
  "sim_liveness_test.pdb"
  "sim_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
