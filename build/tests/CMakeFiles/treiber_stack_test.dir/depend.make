# Empty dependencies file for treiber_stack_test.
# This may be replaced when dependencies are built.
