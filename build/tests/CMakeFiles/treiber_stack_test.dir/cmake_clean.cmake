file(REMOVE_RECURSE
  "CMakeFiles/treiber_stack_test.dir/treiber_stack_test.cpp.o"
  "CMakeFiles/treiber_stack_test.dir/treiber_stack_test.cpp.o.d"
  "treiber_stack_test"
  "treiber_stack_test.pdb"
  "treiber_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treiber_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
