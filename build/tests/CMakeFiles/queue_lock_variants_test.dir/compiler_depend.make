# Empty compiler generated dependencies file for queue_lock_variants_test.
# This may be replaced when dependencies are built.
