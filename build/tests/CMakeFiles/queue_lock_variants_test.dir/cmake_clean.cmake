file(REMOVE_RECURSE
  "CMakeFiles/queue_lock_variants_test.dir/queue_lock_variants_test.cpp.o"
  "CMakeFiles/queue_lock_variants_test.dir/queue_lock_variants_test.cpp.o.d"
  "queue_lock_variants_test"
  "queue_lock_variants_test.pdb"
  "queue_lock_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_lock_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
