file(REMOVE_RECURSE
  "CMakeFiles/tagged_test.dir/tagged_test.cpp.o"
  "CMakeFiles/tagged_test.dir/tagged_test.cpp.o.d"
  "tagged_test"
  "tagged_test.pdb"
  "tagged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
