# Empty dependencies file for function_shipping_test.
# This may be replaced when dependencies are built.
