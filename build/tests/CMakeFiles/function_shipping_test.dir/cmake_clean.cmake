file(REMOVE_RECURSE
  "CMakeFiles/function_shipping_test.dir/function_shipping_test.cpp.o"
  "CMakeFiles/function_shipping_test.dir/function_shipping_test.cpp.o.d"
  "function_shipping_test"
  "function_shipping_test.pdb"
  "function_shipping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_shipping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
