# Empty compiler generated dependencies file for refcount_pool_test.
# This may be replaced when dependencies are built.
