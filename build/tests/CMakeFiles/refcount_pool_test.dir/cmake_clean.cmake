file(REMOVE_RECURSE
  "CMakeFiles/refcount_pool_test.dir/refcount_pool_test.cpp.o"
  "CMakeFiles/refcount_pool_test.dir/refcount_pool_test.cpp.o.d"
  "refcount_pool_test"
  "refcount_pool_test.pdb"
  "refcount_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refcount_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
