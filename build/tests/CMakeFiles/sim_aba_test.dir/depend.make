# Empty dependencies file for sim_aba_test.
# This may be replaced when dependencies are built.
