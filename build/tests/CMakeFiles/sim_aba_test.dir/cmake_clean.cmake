file(REMOVE_RECURSE
  "CMakeFiles/sim_aba_test.dir/sim_aba_test.cpp.o"
  "CMakeFiles/sim_aba_test.dir/sim_aba_test.cpp.o.d"
  "sim_aba_test"
  "sim_aba_test.pdb"
  "sim_aba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_aba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
