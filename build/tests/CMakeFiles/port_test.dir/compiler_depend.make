# Empty compiler generated dependencies file for port_test.
# This may be replaced when dependencies are built.
