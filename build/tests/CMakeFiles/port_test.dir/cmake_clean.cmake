file(REMOVE_RECURSE
  "CMakeFiles/port_test.dir/port_test.cpp.o"
  "CMakeFiles/port_test.dir/port_test.cpp.o.d"
  "port_test"
  "port_test.pdb"
  "port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
