# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/port_test[1]_include.cmake")
include("/root/repo/build/tests/tagged_test[1]_include.cmake")
include("/root/repo/build/tests/locks_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_test[1]_include.cmake")
include("/root/repo/build/tests/refcount_pool_test[1]_include.cmake")
include("/root/repo/build/tests/queue_basic_test[1]_include.cmake")
include("/root/repo/build/tests/queue_lock_variants_test[1]_include.cmake")
include("/root/repo/build/tests/function_shipping_test[1]_include.cmake")
include("/root/repo/build/tests/queue_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/queue_linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/spsc_ring_test[1]_include.cmake")
include("/root/repo/build/tests/treiber_stack_test[1]_include.cmake")
include("/root/repo/build/tests/lin_check_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_liveness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_aba_test[1]_include.cmake")
include("/root/repo/build/tests/sim_explore_test[1]_include.cmake")
include("/root/repo/build/tests/figure_shape_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/valois_memory_test[1]_include.cmake")
