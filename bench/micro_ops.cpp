// A1/A5: per-operation microbenchmarks (google-benchmark).
//
// Measures, for every queue in the library:
//   * uncontended enqueue/dequeue pair latency (the "one processor" end of
//     Figure 3, where the paper notes the single lock is slightly fastest);
//   * multi-threaded pair throughput (contended; on this one-core host this
//     is the preempted/multiprogrammed regime);
//   * the empty<->nonempty transition (A5): the special case earlier
//     algorithms got wrong, exercised a pair at a time on an empty queue.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "queues/queues.hpp"

namespace {

using msq::queues::FunctionShippingQueue;
using msq::queues::MellorCrummeyQueue;
using msq::queues::MsQueue;
using msq::queues::MsQueueDw;
using msq::queues::MsQueueHp;
using msq::queues::PljQueue;
using msq::queues::RingQueue;
using msq::queues::SegmentQueue;
using msq::queues::ShardedQueue;
using msq::queues::SingleLockQueue;
using msq::queues::SpscRing;
using msq::queues::TreiberStack;
using msq::queues::TwoLockQueue;
using msq::queues::ValoisQueue;
using msq::queues::WfQueue;

template <typename Q>
struct Make {
  static std::unique_ptr<Q> make(std::uint32_t capacity) {
    return std::make_unique<Q>(capacity);
  }
};
template <typename T, typename B>
struct Make<MsQueueHp<T, B>> {
  static std::unique_ptr<MsQueueHp<T, B>> make(std::uint32_t) {
    return std::make_unique<MsQueueHp<T, B>>();
  }
};

// --- uncontended pair latency -----------------------------------------------

template <typename Q>
void BM_UncontendedPair(benchmark::State& state) {
  auto queue = Make<Q>::make(1024);
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue->try_enqueue(1));
    benchmark::DoNotOptimize(queue->try_dequeue(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_UncontendedPair, MsQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, MsQueueDw<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, MsQueueHp<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, TwoLockQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, SingleLockQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, MellorCrummeyQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, RingQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, PljQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, ValoisQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, SegmentQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_UncontendedPair, FunctionShippingQueue<std::uint64_t>);
// Sharded front end: the single-thread numbers price the ticket overhead
// (one extra fetch_add per enqueue over the inner queue alone).
BENCHMARK_TEMPLATE(BM_UncontendedPair,
                   ShardedQueue<MsQueue<std::uint64_t>, 4>);
BENCHMARK_TEMPLATE(BM_UncontendedPair,
                   ShardedQueue<SegmentQueue<std::uint64_t>, 4>);
// Wait-free helping wrapper: the single-thread number prices the
// announcement (16-byte CAS + slot sweep) against the bare MS queue.
BENCHMARK_TEMPLATE(BM_UncontendedPair, WfQueue<std::uint64_t>);

// --- contended pair throughput ----------------------------------------------

template <typename Q>
void BM_ContendedPairs(benchmark::State& state) {
  static std::unique_ptr<Q> queue;
  if (state.thread_index() == 0) queue = Make<Q>::make(1024);
  std::uint64_t out = 0;
  for (auto _ : state) {
    while (!queue->try_enqueue(1)) {
    }
    benchmark::DoNotOptimize(queue->try_dequeue(out));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Leave teardown to the next setup / process exit.
  }
}
BENCHMARK_TEMPLATE(BM_ContendedPairs, MsQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, MsQueueDw<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, MsQueueHp<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, TwoLockQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, SingleLockQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, MellorCrummeyQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, RingQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, PljQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, ValoisQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, SegmentQueue<std::uint64_t>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs, FunctionShippingQueue<std::uint64_t>)->Threads(4)->UseRealTime();
// Sharding pays off exactly here: 4 threads spread over 4 shards touch
// almost-disjoint cache lines (ISSUE 6 acceptance comparison vs bare segq).
BENCHMARK_TEMPLATE(BM_ContendedPairs,
                   ShardedQueue<MsQueue<std::uint64_t>, 4>)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPairs,
                   ShardedQueue<SegmentQueue<std::uint64_t>, 4>)->Threads(4)->UseRealTime();
// Contended helping: threads complete each other's announced operations,
// so throughput prices the helping sweeps fig_stall buys latency with.
BENCHMARK_TEMPLATE(BM_ContendedPairs,
                   WfQueue<std::uint64_t>)->Threads(4)->UseRealTime();

// --- A5: empty<->nonempty transition ----------------------------------------

template <typename Q>
void BM_EmptyTransition(benchmark::State& state) {
  auto queue = Make<Q>::make(8);
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue->try_dequeue(out));  // observe empty
    benchmark::DoNotOptimize(queue->try_enqueue(1));    // empty -> 1
    benchmark::DoNotOptimize(queue->try_dequeue(out));  // 1 -> empty
  }
}
BENCHMARK_TEMPLATE(BM_EmptyTransition, MsQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, TwoLockQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, SingleLockQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, MellorCrummeyQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, RingQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, PljQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, ValoisQueue<std::uint64_t>);
BENCHMARK_TEMPLATE(BM_EmptyTransition, SegmentQueue<std::uint64_t>);
// The sharded empty path is the expensive one (full sweep + ticket double
// collect per empty verdict): keep it visible next to the single queues.
BENCHMARK_TEMPLATE(BM_EmptyTransition, ShardedQueue<MsQueue<std::uint64_t>, 4>);
BENCHMARK_TEMPLATE(BM_EmptyTransition,
                   ShardedQueue<SegmentQueue<std::uint64_t>, 4>);
// The wf empty verdict is a full announce + help sweep ending in a
// phase-guarded kEmpty CAS -- the priciest empty path in the library.
BENCHMARK_TEMPLATE(BM_EmptyTransition, WfQueue<std::uint64_t>);

// --- related structures -------------------------------------------------------

void BM_SpscRingPair(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_enqueue(1));
    benchmark::DoNotOptimize(ring.try_dequeue(out));
  }
}
BENCHMARK(BM_SpscRingPair);

void BM_TreiberStackPair(benchmark::State& state) {
  TreiberStack<std::uint64_t> stack(1024);
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.try_push(1));
    benchmark::DoNotOptimize(stack.try_pop(out));
  }
}
BENCHMARK(BM_TreiberStackPair);

}  // namespace

BENCHMARK_MAIN();
