// Figure 5: "Net execution time for one million enqueue/dequeue pairs on a
// multiprogrammed system with 3 processes per processor".
//
// Expected shape (paper): same story as Figure 4 but worse -- "the degree
// of performance degradation increases with the level of multiprogramming"
// for the blocking algorithms, while the non-blocking ones hold steady.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  msq::bench::FigConfig config;
  config.title = "Figure 5: multiprogrammed, 3 processes per processor";
  config.procs_per_processor = 3;
  config.json_path = "BENCH_fig5.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  msq::bench::run_figure(config);
  return 0;
}
