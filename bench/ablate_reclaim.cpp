// Ablation A3: memory-reclamation strategy for the MS queue.
//
//   counted+freelist -- the paper's scheme (MsQueue): pool indices with
//                       modification counters, Treiber free list.
//   dwcas+freelist   -- same algorithm with 128-bit counted pointers
//                       (MsQueueDw): the paper's other stated option.
//   hazard           -- hazard pointers + new/delete (MsQueueHp): the
//                       modern successor, no counters needed.
//
// Reports real-thread throughput of the paper's loop at several thread
// counts.  On this host threads are oversubscribed over one core, so this
// measures the multiprogrammed regime.
#include <cstring>
#include <iostream>

#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "queues/ms_queue.hpp"
#include "queues/ms_queue_dwcas.hpp"
#include "queues/ms_queue_hp.hpp"

namespace {

template <typename Q>
double pairs_per_second(Q& queue, std::uint32_t threads, std::uint64_t pairs) {
  msq::harness::WorkloadConfig config;
  config.threads = threads;
  config.total_pairs = pairs;
  config.other_work_iters = msq::harness::spin_iters_for_us(1.0);
  const auto result = msq::harness::run_workload(queue, config);
  return static_cast<double>(pairs) / result.elapsed_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t pairs = 200'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pairs") == 0 && i + 1 < argc) {
      pairs = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  msq::harness::SeriesTable table(
      "Ablation A3: MS queue reclamation schemes "
      "[pairs/second, real threads, higher is better]",
      "threads");
  const std::size_t counted = table.add_series("counted+freelist");
  const std::size_t dwcas = table.add_series("dwcas+freelist");
  const std::size_t hazard = table.add_series("hazard");

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    table.add_row(threads);
    {
      msq::queues::MsQueue<std::uint64_t> q(threads * 4 + 64);
      table.set(counted, pairs_per_second(q, threads, pairs));
    }
    {
      msq::queues::MsQueueDw<std::uint64_t> q(threads * 4 + 64);
      table.set(dwcas, pairs_per_second(q, threads, pairs));
    }
    {
      msq::queues::MsQueueHp<std::uint64_t> q;
      table.set(hazard, pairs_per_second(q, threads, pairs));
    }
  }
  table.print(std::cout);
  return 0;
}
