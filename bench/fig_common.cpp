#include "fig_common.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "queues/queues.hpp"
#include "sim/workload.hpp"

namespace msq::bench {
namespace {

/// Real-thread sweep point: run the paper's loop on the actual std::atomic
/// implementations.  On this one-core host all p > 1 runs are inherently
/// multiprogrammed; the numbers are reported for completeness next to the
/// simulator's dedicated-machine curves.
double real_net_seconds(std::size_t algo, std::uint32_t threads,
                        std::uint64_t pairs) {
  harness::WorkloadConfig config;
  config.threads = threads;
  config.total_pairs = pairs;
  config.other_work_iters = harness::spin_iters_for_us(6.0);  // paper: ~6us
  const std::uint32_t capacity = threads * 4 + 64;
  switch (algo) {
    case 0: {
      queues::SingleLockQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
    case 1: {
      queues::MellorCrummeyQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
    case 2: {
      queues::ValoisQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
    case 3: {
      queues::TwoLockQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
    case 4: {
      queues::PljQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
    default: {
      queues::MsQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config).net_seconds;
    }
  }
}

}  // namespace

bool parse_args(int argc, char** argv, FigConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    std::uint64_t v = 0;
    if (std::strcmp(arg, "--pairs") == 0 && next_u64(v)) {
      config.pairs = v;
    } else if (std::strcmp(arg, "--max-procs") == 0 && next_u64(v)) {
      config.max_procs = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(arg, "--seed") == 0 && next_u64(v)) {
      config.seed = v;
    } else if (std::strcmp(arg, "--real") == 0) {
      config.also_real = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      config.csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--pairs N] [--max-procs P] [--seed S] [--real] [--csv]\n";
      return false;
    }
  }
  return true;
}

void run_figure(const FigConfig& config) {
  // Simulated-multiprocessor sweep (the paper's testbed substitute).
  // Time unit: one simulated cost unit ~ 10ns; we report "seconds for 10^6
  // pairs" like the paper by scaling to the requested pair count.
  harness::SeriesTable table(config.title + "  [simulated multiprocessor; "
                             "net sim-seconds per 10^6 pairs]",
                             "procs");
  std::vector<std::size_t> cols;
  cols.reserve(std::size(sim::kAllAlgos));
  for (const sim::Algo algo : sim::kAllAlgos) {
    cols.push_back(table.add_series(sim::algo_name(algo)));
  }

  const double to_seconds_per_million =
      1e-8 * 1e6 / static_cast<double>(config.pairs);  // 10ns/unit, scaled

  for (std::uint32_t procs = 1; procs <= config.max_procs; ++procs) {
    table.add_row(procs);
    for (std::size_t a = 0; a < std::size(sim::kAllAlgos); ++a) {
      sim::SimRunConfig run;
      run.algo = sim::kAllAlgos[a];
      run.processors = procs;
      run.procs_per_processor = config.procs_per_processor;
      run.total_pairs = config.pairs;
      run.seed = config.seed;
      run.backoff_max = config.backoff_max;
      const sim::SimRunResult result = sim::run_sim_workload(run);
      table.set(cols[a], result.net * to_seconds_per_million);
    }
  }
  if (config.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!config.also_real) return;

  harness::SeriesTable real_table(
      config.title + "  [real threads on this host (" +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware core(s), oversubscribed => multiprogrammed); "
          "net seconds per 10^6 pairs]",
      "threads");
  std::vector<std::size_t> real_cols;
  for (const sim::Algo algo : sim::kAllAlgos) {
    real_cols.push_back(real_table.add_series(sim::algo_name(algo)));
  }
  const double scale = 1e6 / static_cast<double>(config.pairs);
  for (std::uint32_t procs = 1; procs <= config.max_procs; ++procs) {
    const std::uint32_t threads = procs * config.procs_per_processor;
    real_table.add_row(procs);
    for (std::size_t a = 0; a < std::size(sim::kAllAlgos); ++a) {
      real_table.set(real_cols[a],
                     real_net_seconds(a, threads, config.pairs) * scale);
    }
  }
  if (config.csv) {
    real_table.print_csv(std::cout);
  } else {
    real_table.print(std::cout);
  }
}

}  // namespace msq::bench
