#include "fig_common.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "sim/workload.hpp"

namespace msq::bench {
namespace {

/// One sweep point with its observability-counter delta, kept for --json.
struct SweepPoint {
  std::uint32_t procs = 0;
  double net_seconds_per_million = 0;
  std::uint64_t ops = 0;  // operations attempted (completed + refused/empty)
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
  obs::Snapshot counters;
};

struct SweepSeries {
  std::string algo;
  const char* source = "sim";  // "sim" or "real"
  std::vector<SweepPoint> points;
};

/// The real-thread sweep runs every simulated algorithm PLUS the
/// FAA-segment queue, which has no simulator model (its fetch_add ticket
/// discipline is exactly what the real hardware benchmark exists to show).
constexpr std::size_t kRealExtraAlgos = 1;

std::size_t real_algo_count() {
  return std::size(sim::kAllAlgos) + kRealExtraAlgos;
}

std::string real_algo_name(std::size_t algo) {
  if (algo < std::size(sim::kAllAlgos)) {
    return sim::algo_name(sim::kAllAlgos[algo]);
  }
  return "segq";
}

/// Real-thread sweep point: run the paper's loop on the actual std::atomic
/// implementations.  On this one-core host all p > 1 runs are inherently
/// multiprogrammed; the numbers are reported for completeness next to the
/// simulator's dedicated-machine curves.
harness::WorkloadResult real_run(std::size_t algo, std::uint32_t threads,
                                 std::uint64_t pairs, bool pin) {
  harness::WorkloadConfig config;
  config.threads = threads;
  config.total_pairs = pairs;
  config.pin_threads = pin;
  config.other_work_iters = harness::spin_iters_for_us(6.0);  // paper: ~6us
  const std::uint32_t capacity = threads * 4 + 64;
  switch (algo) {
    case 0: {
      queues::SingleLockQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    case 1: {
      queues::MellorCrummeyQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    case 2: {
      queues::ValoisQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    case 3: {
      queues::TwoLockQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    case 4: {
      queues::PljQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    case 5: {
      queues::MsQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
    default: {
      queues::SegmentQueue<std::uint64_t> q(capacity);
      return harness::run_workload(q, config);
    }
  }
}

/// Companion tables for --json runs: the counters the paper's analysis
/// talks about, normalised per operation (contention made visible).
void print_counter_tables(const FigConfig& config,
                          const std::vector<SweepSeries>& series,
                          const char* source_label) {
  const struct {
    obs::Counter counter;
    const char* title;
  } kTables[] = {
      {obs::Counter::kCasFail, "CAS failures per operation (contention)"},
      {obs::Counter::kLockSpin, "lock spins per operation (lock waiting)"},
      {obs::Counter::kBackoffWait, "backoff wait units per operation"},
  };
  for (const auto& spec : kTables) {
    harness::SeriesTable table(
        std::string(spec.title) + "  [" + source_label + "]", "procs");
    std::vector<std::size_t> cols;
    cols.reserve(series.size());
    for (const SweepSeries& s : series) cols.push_back(table.add_series(s.algo));
    const std::size_t rows = series.empty() ? 0 : series.front().points.size();
    for (std::size_t r = 0; r < rows; ++r) {
      table.add_row(series.front().points[r].procs);
      for (std::size_t a = 0; a < series.size(); ++a) {
        const SweepPoint& p = series[a].points[r];
        table.set(cols[a], p.counters.per_op(spec.counter, p.ops));
      }
    }
    if (config.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
}

void write_json(const FigConfig& config,
                const std::vector<SweepSeries>& all_series) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-bench-v1");
  w.key("title");
  w.value(config.title);
  w.key("pairs");
  w.value(config.pairs);
  w.key("max_procs");
  w.value(config.max_procs);
  w.key("procs_per_processor");
  w.value(config.procs_per_processor);
  w.key("seed");
  w.value(config.seed);
  w.key("backoff_max");
  w.value(config.backoff_max);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("series");
  w.begin_array();
  for (const SweepSeries& s : all_series) {
    w.begin_object();
    w.key("algo");
    w.value(s.algo);
    w.key("source");
    w.value(s.source);
    w.key("points");
    w.begin_array();
    for (const SweepPoint& p : s.points) {
      w.begin_object();
      w.key("procs");
      w.value(static_cast<std::uint64_t>(p.procs));
      w.key("net_seconds_per_million_pairs");
      w.value(p.net_seconds_per_million);
      // Throughput over the net time, scaled back to the actual pair count.
      const double net_actual =
          p.net_seconds_per_million * static_cast<double>(config.pairs) / 1e6;
      w.key("throughput_pairs_per_sec");
      w.value(net_actual > 0 ? static_cast<double>(config.pairs) / net_actual
                             : 0.0);
      w.key("ops");
      w.value(p.ops);
      w.key("empty_dequeues");
      w.value(p.empty_dequeues);
      w.key("enqueue_failures");
      w.value(p.enqueue_failures);
      w.key("counters");
      obs::write_counters_json(w, p.counters, p.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

}  // namespace

bool parse_args(int argc, char** argv, FigConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    std::uint64_t v = 0;
    if (std::strcmp(arg, "--pairs") == 0 && next_u64(v)) {
      config.pairs = v;
    } else if (std::strcmp(arg, "--max-procs") == 0 && next_u64(v)) {
      config.max_procs = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(arg, "--seed") == 0 && next_u64(v)) {
      config.seed = v;
    } else if (std::strcmp(arg, "--real") == 0) {
      config.also_real = true;
    } else if (std::strcmp(arg, "--pin") == 0) {
      config.pin = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      config.csv = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      config.json = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--pairs N] [--max-procs P] [--seed S] [--real] [--pin]"
                   " [--csv] [--json]\n";
      return false;
    }
  }
  return true;
}

void run_figure(const FigConfig& config) {
  // Arm the observability counters for the whole sweep; each run's counts
  // are isolated by snapshot deltas, so one process-wide registry is fine.
  obs::reset();
  obs::arm();

  // Simulated-multiprocessor sweep (the paper's testbed substitute).
  // Time unit: one simulated cost unit ~ 10ns; we report "seconds for 10^6
  // pairs" like the paper by scaling to the requested pair count.
  harness::SeriesTable table(config.title + "  [simulated multiprocessor; "
                             "net sim-seconds per 10^6 pairs]",
                             "procs");
  std::vector<std::size_t> cols;
  cols.reserve(std::size(sim::kAllAlgos));
  std::vector<SweepSeries> sim_series(std::size(sim::kAllAlgos));
  for (std::size_t a = 0; a < std::size(sim::kAllAlgos); ++a) {
    cols.push_back(table.add_series(sim::algo_name(sim::kAllAlgos[a])));
    sim_series[a].algo = sim::algo_name(sim::kAllAlgos[a]);
    sim_series[a].source = "sim";
  }

  const double to_seconds_per_million =
      1e-8 * 1e6 / static_cast<double>(config.pairs);  // 10ns/unit, scaled

  for (std::uint32_t procs = 1; procs <= config.max_procs; ++procs) {
    table.add_row(procs);
    for (std::size_t a = 0; a < std::size(sim::kAllAlgos); ++a) {
      sim::SimRunConfig run;
      run.algo = sim::kAllAlgos[a];
      run.processors = procs;
      run.procs_per_processor = config.procs_per_processor;
      run.total_pairs = config.pairs;
      run.seed = config.seed;
      run.backoff_max = config.backoff_max;
      const obs::Snapshot before = obs::snapshot();
      const sim::SimRunResult result = sim::run_sim_workload(run);
      table.set(cols[a], result.net * to_seconds_per_million);

      SweepPoint point;
      point.procs = procs;
      point.net_seconds_per_million = result.net * to_seconds_per_million;
      point.ops = 2 * config.pairs + result.empty_dequeues +
                  result.enqueue_failures;
      point.empty_dequeues = result.empty_dequeues;
      point.enqueue_failures = result.enqueue_failures;
      point.counters = obs::snapshot() - before;
      sim_series[a].points.push_back(point);
    }
  }
  if (config.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (config.json) print_counter_tables(config, sim_series, "simulated");

  std::vector<SweepSeries> all_series = sim_series;

  if (config.also_real) {
    harness::SeriesTable real_table(
        config.title + "  [real threads on this host (" +
            std::to_string(std::thread::hardware_concurrency()) +
            " hardware core(s), oversubscribed => multiprogrammed" +
            (config.pin ? "; pinned" : "") +
            "); net seconds per 10^6 pairs]",
        "threads");
    std::vector<std::size_t> real_cols;
    std::vector<SweepSeries> real_series(real_algo_count());
    for (std::size_t a = 0; a < real_algo_count(); ++a) {
      real_cols.push_back(real_table.add_series(real_algo_name(a)));
      real_series[a].algo = real_algo_name(a);
      real_series[a].source = "real";
    }
    const double scale = 1e6 / static_cast<double>(config.pairs);
    for (std::uint32_t procs = 1; procs <= config.max_procs; ++procs) {
      const std::uint32_t threads = procs * config.procs_per_processor;
      real_table.add_row(procs);
      for (std::size_t a = 0; a < real_algo_count(); ++a) {
        const obs::Snapshot before = obs::snapshot();
        const harness::WorkloadResult result =
            real_run(a, threads, config.pairs, config.pin);
        real_table.set(real_cols[a], result.net_seconds * scale);

        SweepPoint point;
        point.procs = procs;
        point.net_seconds_per_million = result.net_seconds * scale;
        point.ops = result.enqueues + result.dequeues + result.empty_dequeues +
                    result.enqueue_failures;
        point.empty_dequeues = result.empty_dequeues;
        point.enqueue_failures = result.enqueue_failures;
        point.counters = obs::snapshot() - before;
        real_series[a].points.push_back(point);
      }
    }
    if (config.csv) {
      real_table.print_csv(std::cout);
    } else {
      real_table.print(std::cout);
    }
    if (config.json) print_counter_tables(config, real_series, "real");
    all_series.insert(all_series.end(), real_series.begin(), real_series.end());
  }

  if (config.json) write_json(config, all_series);
}

}  // namespace msq::bench
