// Shard-count sweep for the queue-of-queues front end (ISSUE 6,
// EXPERIMENTS.md "Shard-count ablation"): the FAA-segment queue bare vs
// wrapped in ShardedQueue<SegmentQueue, K> for each requested K, on real
// threads 1..max_procs.
//
// Series:
//   segq          bare SegmentQueue (the baseline the sharded front end
//                 must beat at high thread counts)
//   shardK-segq   ShardedQueue<SegmentQueue, K> for each K in --shards
//
// The shard count is a template parameter (the shard array and its hint
// table are sized at compile time), so the sweep supports K in
// {1, 2, 4, 8, 16} and --shards picks a subset.
//
// Flags: the common fig set (fig_common.hpp: --pairs/--max-procs/--seed/
// --pin/--csv/--json) plus
//   --shards K1,K2,...   shard counts to sweep (default 1,2,4)
// --json writes BENCH_fig_sharded.json (schema msq-bench-v1, validated by
// tools/check_bench_json.py).  The counter companion tables surface the
// shard_hit / shard_steal / shard_rehome / empty_rescan rates that
// EXPERIMENTS.md uses to diagnose a mis-sized shard count.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "scenario/stamped_loop.hpp"

namespace msq::bench {
namespace {

using Seg = queues::SegmentQueue<std::uint64_t>;

struct SweepPoint {
  std::uint32_t procs = 0;
  double net_seconds_per_million = 0;
  std::uint64_t ops = 0;
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
  std::uint64_t p99_ns = 0;   // item sojourn (submit stamp -> dequeue)
  std::uint64_t p999_ns = 0;  // ^
  obs::Snapshot counters;
};

struct SweepSeries {
  std::string algo;
  std::vector<SweepPoint> points;
};

/// One sweep point on the SHARED stamped pair loop (scenario/
/// stamped_loop.hpp -- the same stamping and sojourn convention as
/// fig_stall and the open-loop scenarios), so this sweep reports tail
/// sojourn next to throughput instead of private re-derivations.
template <typename Q>
scenario::StampedLoopResult run_one(std::uint32_t threads,
                                    const FigConfig& config) {
  scenario::StampedLoopConfig loop;
  loop.threads = threads;
  loop.pairs = config.pairs;
  loop.pin_threads = config.pin;
  loop.think_iters = harness::spin_iters_for_us(6.0);  // paper: ~6us
  Q queue(threads * 4 + 64);
  return scenario::run_stamped_pairs(queue, loop);
}

using RunFn = scenario::StampedLoopResult (*)(std::uint32_t,
                                              const FigConfig&);

/// Map a runtime shard count onto the compile-time instantiations.
RunFn sharded_run_fn(std::uint32_t shards) {
  switch (shards) {
    case 1:
      return &run_one<queues::ShardedQueue<Seg, 1>>;
    case 2:
      return &run_one<queues::ShardedQueue<Seg, 2>>;
    case 4:
      return &run_one<queues::ShardedQueue<Seg, 4>>;
    case 8:
      return &run_one<queues::ShardedQueue<Seg, 8>>;
    case 16:
      return &run_one<queues::ShardedQueue<Seg, 16>>;
    default:
      return nullptr;
  }
}

struct Variant {
  std::string name;
  RunFn run;
};

/// Parse "--shards 1,2,4" out of argv (and remove it) before handing the
/// rest to the common parser; fig_common knows nothing about this flag.
bool extract_shards(int& argc, char** argv, std::vector<std::uint32_t>& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << "--shards needs a comma-separated list (e.g. 1,2,4)\n";
      return false;
    }
    const char* p = argv[i + 1];
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long k = std::strtoul(p, &end, 10);
      if (end == p || sharded_run_fn(static_cast<std::uint32_t>(k)) == nullptr) {
        std::cerr << "--shards: unsupported count in '" << argv[i + 1]
                  << "' (supported: 1, 2, 4, 8, 16)\n";
        return false;
      }
      out.push_back(static_cast<std::uint32_t>(k));
      p = (*end == ',') ? end + 1 : end;
    }
    // Shift the two consumed argv slots out so parse_args never sees them.
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  out = {1, 2, 4};
  return true;
}

/// The counters that tell the sharding story, per operation so shard
/// counts are directly comparable at every thread level.
void print_counter_tables(const FigConfig& config,
                          const std::vector<SweepSeries>& series) {
  const struct {
    obs::Counter counter;
    const char* title;
  } kTables[] = {
      {obs::Counter::kShardHit,
       "home-shard dequeues per operation (locality kept)"},
      {obs::Counter::kShardSteal,
       "cross-shard steals per operation (imbalance being repaired)"},
      {obs::Counter::kShardRehome,
       "producer re-homes per operation (persistently full home shards)"},
      {obs::Counter::kEmptyRescan,
       "empty-verdict rescans per operation (ticket races observed)"},
      {obs::Counter::kCasFail,
       "CAS failures per operation (the contention sharding spreads out)"},
  };
  for (const auto& spec : kTables) {
    harness::SeriesTable table(std::string(spec.title) + "  [real]", "procs");
    std::vector<std::size_t> cols;
    cols.reserve(series.size());
    for (const SweepSeries& s : series) cols.push_back(table.add_series(s.algo));
    const std::size_t rows = series.empty() ? 0 : series.front().points.size();
    for (std::size_t r = 0; r < rows; ++r) {
      table.add_row(series.front().points[r].procs);
      for (std::size_t a = 0; a < series.size(); ++a) {
        const SweepPoint& p = series[a].points[r];
        table.set(cols[a], p.counters.per_op(spec.counter, p.ops));
      }
    }
    if (config.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

  // Tail sojourn from the shared stamped loop: does spreading the
  // contention across shards also flatten the item-latency tail?
  harness::SeriesTable tail(
      "p99.9 item sojourn, ns (submit -> dequeue)  [real]", "procs");
  std::vector<std::size_t> cols;
  cols.reserve(series.size());
  for (const SweepSeries& s : series) cols.push_back(tail.add_series(s.algo));
  const std::size_t rows = series.empty() ? 0 : series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    tail.add_row(series.front().points[r].procs);
    for (std::size_t a = 0; a < series.size(); ++a) {
      tail.set(cols[a], static_cast<double>(series[a].points[r].p999_ns));
    }
  }
  if (config.csv) {
    tail.print_csv(std::cout);
  } else {
    tail.print(std::cout);
  }
}

void write_json(const FigConfig& config,
                const std::vector<SweepSeries>& all_series) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-bench-v1");
  w.key("title");
  w.value(config.title);
  w.key("pairs");
  w.value(config.pairs);
  w.key("max_procs");
  w.value(config.max_procs);
  w.key("procs_per_processor");
  w.value(config.procs_per_processor);
  w.key("seed");
  w.value(config.seed);
  w.key("backoff_max");
  w.value(config.backoff_max);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("series");
  w.begin_array();
  for (const SweepSeries& s : all_series) {
    w.begin_object();
    w.key("algo");
    w.value(s.algo);
    w.key("source");
    w.value("real");
    w.key("points");
    w.begin_array();
    for (const SweepPoint& p : s.points) {
      w.begin_object();
      w.key("procs");
      w.value(static_cast<std::uint64_t>(p.procs));
      w.key("net_seconds_per_million_pairs");
      w.value(p.net_seconds_per_million);
      const double net_actual =
          p.net_seconds_per_million * static_cast<double>(config.pairs) / 1e6;
      w.key("throughput_pairs_per_sec");
      w.value(net_actual > 0 ? static_cast<double>(config.pairs) / net_actual
                             : 0.0);
      w.key("ops");
      w.value(p.ops);
      w.key("empty_dequeues");
      w.value(p.empty_dequeues);
      w.key("enqueue_failures");
      w.value(p.enqueue_failures);
      w.key("p99_ns");
      w.value(p.p99_ns);
      w.key("p999_ns");
      w.value(p.p999_ns);
      w.key("counters");
      obs::write_counters_json(w, p.counters, p.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

int run(const FigConfig& config, const std::vector<std::uint32_t>& shards) {
  obs::reset();
  obs::arm();

  std::vector<Variant> variants;
  variants.push_back({"segq", &run_one<Seg>});
  for (const std::uint32_t k : shards) {
    variants.push_back({"shard" + std::to_string(k) + "-segq",
                        sharded_run_fn(k)});
  }

  harness::SeriesTable table(
      config.title + "  [real threads; net seconds per 10^6 pairs]",
      "threads");
  std::vector<std::size_t> cols;
  std::vector<SweepSeries> series(variants.size());
  for (std::size_t a = 0; a < variants.size(); ++a) {
    cols.push_back(table.add_series(variants[a].name));
    series[a].algo = variants[a].name;
  }

  const double scale = 1e6 / static_cast<double>(config.pairs);
  for (std::uint32_t threads = 1; threads <= config.max_procs; ++threads) {
    table.add_row(threads);
    for (std::size_t a = 0; a < variants.size(); ++a) {
      // Discarded warmup: on a busy or frequency-scaling host the first
      // run of each row absorbs cache/scheduler warmup, which otherwise
      // biases the sweep against whichever variant runs first (a shard1
      // control run showed the wrapper "beating" its own inner queue).
      (void)variants[a].run(threads, config);
      const obs::Snapshot before = obs::snapshot();
      const scenario::StampedLoopResult result =
          variants[a].run(threads, config);
      // Net time as before: elapsed minus one processor's "other work"
      // (the stamped loop spins think_iters twice per pair, matching the
      // two-spin iterations other_work_seconds measures).
      const double net_seconds =
          result.elapsed_seconds -
          harness::other_work_seconds(
              harness::spin_iters_for_us(6.0),
              static_cast<double>(config.pairs) /
                  static_cast<double>(threads));
      table.set(cols[a], net_seconds * scale);

      SweepPoint point;
      point.procs = threads;
      point.net_seconds_per_million = net_seconds * scale;
      point.ops = result.enqueues + result.dequeues + result.empty_dequeues +
                  result.enqueue_failures;
      point.empty_dequeues = result.empty_dequeues;
      point.enqueue_failures = result.enqueue_failures;
      point.p99_ns = result.sojourn_ns.percentile(99.0);
      point.p999_ns = result.sojourn_ns.percentile(99.9);
      point.counters = obs::snapshot() - before;
      series[a].points.push_back(point);
    }
  }
  if (config.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  print_counter_tables(config, series);
  if (config.json) write_json(config, series);
  return 0;
}

}  // namespace
}  // namespace msq::bench

int main(int argc, char** argv) {
  std::vector<std::uint32_t> shards;
  if (!msq::bench::extract_shards(argc, argv, shards)) return 1;
  msq::bench::FigConfig config;
  config.title = "shard-count sweep: segment queue behind a sharded front end";
  config.json_path = "BENCH_fig_sharded.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  return msq::bench::run(config, shards);
}
