// Figure 4: "Net execution time for one million enqueue/dequeue pairs on a
// multiprogrammed system with 2 processes per processor".
//
// Expected shape (paper): the blocking algorithms (single lock, two-lock,
// Mellor-Crummey) degrade badly -- an inopportune preemption of a lock
// holder or slot claimant stalls everyone sharing that resource for whole
// scheduling quanta -- while the non-blocking algorithms (MS, PLJ, Valois)
// degrade only mildly.  MS remains the fastest overall.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  msq::bench::FigConfig config;
  config.title = "Figure 4: multiprogrammed, 2 processes per processor";
  config.procs_per_processor = 2;
  config.json_path = "BENCH_fig4.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  msq::bench::run_figure(config);
  return 0;
}
