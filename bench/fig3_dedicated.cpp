// Figure 3: "Net execution time for one million enqueue/dequeue pairs on a
// dedicated multiprocessor", p = 1..12, six algorithms.
//
// Expected shape (paper): with one processor everything is cheap and the
// single lock is fastest; from ~2-3 processors contention dominates and the
// new non-blocking (MS) queue wins, with PLJ close behind, the two-lock
// queue beating the single lock beyond ~5 processors, and Valois slowest of
// the non-blocking algorithms but improving as overlap hides its memory-
// management overhead.  See EXPERIMENTS.md for measured-vs-paper notes.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  msq::bench::FigConfig config;
  config.title = "Figure 3: dedicated multiprocessor (1 process/processor)";
  config.procs_per_processor = 1;
  config.json_path = "BENCH_fig3.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  msq::bench::run_figure(config);
  return 0;
}
