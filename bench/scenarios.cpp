// Open-loop production-traffic scenario suite (ISSUE 8, EXPERIMENTS.md A8).
//
// Runs the src/scenario presets (steady / ramp / burst100 / hotskew /
// worksteal) against the queue families (msq / segq / shard4 / wfq /
// ring), open-loop: producers pace a pre-generated virtual-time arrival
// schedule, consumers drain with a per-item service cost, bounded-queue
// refusals go through the shed-or-retry policy, and every sojourn sample
// is measured from the op's SCHEDULED arrival (coordinated-omission-safe;
// see src/scenario/driver.hpp).  Each (preset, family) run ends in an SLO
// verdict: p99 / p99.9 sojourn and shed rate judged against the preset's
// targets.
//
// Output: one table row per (preset, family) plus --json writing
// BENCH_scenarios.json, schema "msq-scenarios-v1" (the scenario extension
// of msq-bench-v1; validated by tools/check_bench_json.py, which also
// carries a --self-test for these keys).
//
// Flags (all optional):
//   --ops N            offered arrivals per run          (default 20000)
//   --rate-scale X     multiply every preset base rate   (default 1.0)
//   --presets a,b,...  subset by name                    (default: all)
//   --families a,b,... subset by name                    (default: all)
//   --seed S           arrival-schedule seed             (default 1)
//   --pin              pin producer/consumer threads round-robin
//   --json             write BENCH_scenarios.json
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "harness/calibrate.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "scenario/arrival.hpp"
#include "scenario/driver.hpp"
#include "scenario/presets.hpp"
#include "scenario/slo.hpp"

namespace msq::bench {
namespace {

struct Config {
  std::uint64_t ops = 20'000;
  double rate_scale = 1.0;
  std::vector<std::string> presets;   // empty = all
  std::vector<std::string> families;  // empty = all
  std::uint64_t seed = 1;
  bool pin = false;
  bool json = false;
  std::string json_path = "BENCH_scenarios.json";
};

struct ScenarioOutcome {
  std::string scenario;
  std::string algo;
  std::uint32_t producers = 0;
  std::uint32_t consumers = 0;
  std::uint32_t capacity = 0;
  double arrival_rate = 0;  // mean offered Hz
  scenario::OpenLoopResult run;
  scenario::SloSpec slo_spec;
  scenario::SloVerdict slo;
  obs::Snapshot counters;
};

template <typename Q>
scenario::OpenLoopResult run_family(const scenario::ScenarioPreset& preset,
                                    const scenario::ArrivalSchedule& schedule,
                                    const Config& config) {
  Q queue(preset.capacity);
  scenario::OpenLoopConfig loop;
  loop.consumers = preset.consumers;
  loop.shed = preset.shed;
  loop.service_iters = harness::spin_iters_for_us(preset.service_us);
  loop.pin_threads = config.pin;
  // A paced run legitimately lasts the schedule horizon; a wedged one must
  // abort loudly with the scenario name, not hang the suite.
  loop.watchdog_deadline = std::chrono::milliseconds(
      30'000 + 20 * (schedule.horizon_ns / 1'000'000));
  return scenario::run_open_loop(queue, schedule, loop);
}

using RunFn = scenario::OpenLoopResult (*)(const scenario::ScenarioPreset&,
                                           const scenario::ArrivalSchedule&,
                                           const Config&);

struct Family {
  std::string name;
  RunFn run;
};

std::vector<Family> make_families() {
  using Seg = queues::SegmentQueue<std::uint64_t>;
  return {
      {"msq", &run_family<queues::MsQueue<std::uint64_t>>},
      {"segq", &run_family<Seg>},
      {"shard4", &run_family<queues::ShardedQueue<Seg, 4>>},
      {"wfq", &run_family<queues::WfQueue<std::uint64_t>>},
      {"ring", &run_family<queues::RingQueue<std::uint64_t>>},
  };
}

bool wanted(const std::vector<std::string>& filter, const std::string& name) {
  return filter.empty() ||
         std::find(filter.begin(), filter.end(), name) != filter.end();
}

bool parse_list(const char* arg, std::vector<std::string>& out) {
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return !out.empty();
}

bool parse_args(int argc, char** argv, Config& config) {
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--ops") == 0) {
      const char* v = need_value("--ops");
      if (v == nullptr) return false;
      config.ops = std::strtoull(v, nullptr, 10);
      if (config.ops == 0) {
        std::cerr << "--ops must be positive\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--rate-scale") == 0) {
      const char* v = need_value("--rate-scale");
      if (v == nullptr) return false;
      config.rate_scale = std::strtod(v, nullptr);
      if (!(config.rate_scale > 0)) {
        std::cerr << "--rate-scale must be positive\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--presets") == 0) {
      const char* v = need_value("--presets");
      if (v == nullptr || !parse_list(v, config.presets)) return false;
    } else if (std::strcmp(argv[i], "--families") == 0) {
      const char* v = need_value("--families");
      if (v == nullptr || !parse_list(v, config.families)) return false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      config.pin = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json = true;
    } else {
      std::cerr << "unknown flag " << argv[i]
                << " (--ops/--rate-scale/--presets/--families/--seed/"
                   "--pin/--json)\n";
      return false;
    }
  }
  return true;
}

void print_table(const std::vector<ScenarioOutcome>& outcomes) {
  std::cout << "\nopen-loop scenario suite  [real threads; sojourn measured "
               "from SCHEDULED arrival]\n";
  std::cout << std::left << std::setw(11) << "scenario" << std::setw(8)
            << "algo" << std::right << std::setw(9) << "offered"
            << std::setw(9) << "enq" << std::setw(7) << "shed" << std::setw(10)
            << "shed_rate" << std::setw(10) << "p50_us" << std::setw(11)
            << "p99_us" << std::setw(11) << "p999_us" << std::setw(11)
            << "max_lag_us" << std::setw(9) << "verdict" << "\n";
  for (const ScenarioOutcome& o : outcomes) {
    std::cout << std::left << std::setw(11) << o.scenario << std::setw(8)
              << o.algo << std::right << std::setw(9) << o.run.offered
              << std::setw(9) << o.run.enqueued << std::setw(7) << o.run.shed
              << std::setw(10) << std::fixed << std::setprecision(4)
              << o.run.shed_rate() << std::setw(10) << std::setprecision(1)
              << static_cast<double>(o.run.sojourn_ns.percentile(50.0)) / 1e3
              << std::setw(11)
              << static_cast<double>(o.slo.p99_ns) / 1e3 << std::setw(11)
              << static_cast<double>(o.slo.p999_ns) / 1e3 << std::setw(11)
              << static_cast<double>(o.run.max_lag_ns) / 1e3 << std::setw(9)
              << o.slo.verdict() << "\n";
  }
  std::cout << std::defaultfloat;
}

void write_json(const Config& config,
                const std::vector<ScenarioOutcome>& outcomes) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-scenarios-v1");
  w.key("title");
  w.value("open-loop production-traffic scenario suite");
  w.key("ops");
  w.value(config.ops);
  w.key("rate_scale");
  w.value(config.rate_scale);
  w.key("seed");
  w.value(config.seed);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("scenarios");
  w.begin_array();
  for (const ScenarioOutcome& o : outcomes) {
    const std::uint64_t ops_total = o.run.offered + o.run.dequeued;
    w.begin_object();
    w.key("scenario");
    w.value(o.scenario);
    w.key("algo");
    w.value(o.algo);
    w.key("producers");
    w.value(static_cast<std::uint64_t>(o.producers));
    w.key("consumers");
    w.value(static_cast<std::uint64_t>(o.consumers));
    w.key("capacity");
    w.value(static_cast<std::uint64_t>(o.capacity));
    w.key("arrival_rate");
    w.value(o.arrival_rate);
    w.key("offered_load");
    w.value(o.run.offered);
    w.key("enqueued");
    w.value(o.run.enqueued);
    w.key("dequeued");
    w.value(o.run.dequeued);
    w.key("shed");
    w.value(o.run.shed);
    w.key("shed_retries");
    w.value(o.run.retries);
    w.key("shed_rate");
    w.value(o.run.shed_rate());
    w.key("elapsed_seconds");
    w.value(o.run.elapsed_seconds);
    w.key("max_lag_ns");
    w.value(o.run.max_lag_ns);
    w.key("sojourn_p50_ns");
    w.value(o.run.sojourn_ns.percentile(50.0));
    w.key("sojourn_p99_ns");
    w.value(o.slo.p99_ns);
    w.key("sojourn_p999_ns");
    w.value(o.slo.p999_ns);
    w.key("sojourn_max_ns");
    w.value(o.run.sojourn_ns.max());
    w.key("slo");
    w.begin_object();
    w.key("p99_ns_max");
    w.value(o.slo_spec.p99_ns_max);
    w.key("p999_ns_max");
    w.value(o.slo_spec.p999_ns_max);
    w.key("shed_rate_max");
    w.value(o.slo_spec.shed_rate_max);
    w.key("p99_ok");
    w.value(o.slo.p99_ok);
    w.key("p999_ok");
    w.value(o.slo.p999_ok);
    w.key("shed_ok");
    w.value(o.slo.shed_ok);
    w.end_object();
    w.key("slo_verdict");
    w.value(o.slo.verdict());
    w.key("counters");
    obs::write_counters_json(w, o.counters, ops_total);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

int run(const Config& config) {
  obs::reset();
  obs::arm();
#if !MSQ_PROBES
  std::cerr << "scenarios: built with MSQ_PROBES=0 -- shed/queue_full "
               "counters are compiled out (shed totals in the JSON come "
               "from the driver and remain exact)\n";
#endif

  const std::vector<scenario::ScenarioPreset> presets =
      scenario::builtin_presets(config.ops, config.rate_scale);
  const std::vector<Family> families = make_families();

  std::vector<ScenarioOutcome> outcomes;
  for (const scenario::ScenarioPreset& preset : presets) {
    if (!wanted(config.presets, preset.name)) continue;
    const scenario::ArrivalSchedule schedule =
        scenario::generate_arrivals(preset.arrival, config.seed);
    for (const Family& family : families) {
      if (!wanted(config.families, family.name)) continue;
      std::cerr << "[scenarios] " << preset.name << " x " << family.name
                << " (offered " << schedule.ops << " ops @ "
                << schedule.offered_rate_hz << " Hz)\n";
      const obs::Snapshot before = obs::snapshot();
      ScenarioOutcome o;
      o.scenario = preset.name;
      o.algo = family.name;
      o.producers = preset.arrival.producers;
      o.consumers = preset.consumers;
      o.capacity = preset.capacity;
      o.arrival_rate = schedule.offered_rate_hz;
      o.run = family.run(preset, schedule, config);
      o.counters = obs::snapshot() - before;
      o.slo_spec = preset.slo;
      o.slo = scenario::evaluate_slo(preset.slo, o.run.sojourn_ns,
                                     o.run.offered, o.run.shed);
      outcomes.push_back(std::move(o));
    }
  }
  if (outcomes.empty()) {
    std::cerr << "no (preset, family) pairs selected -- check --presets/"
                 "--families spelling\n";
    return 1;
  }
  print_table(outcomes);
  if (config.json) write_json(config, outcomes);
  return 0;
}

}  // namespace
}  // namespace msq::bench

int main(int argc, char** argv) {
  msq::bench::Config config;
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  return msq::bench::run(config);
}
