// Shared driver for the figure-reproduction benches (Figures 3, 4, 5 and
// the backoff ablation): sweeps processor counts, runs every algorithm on
// the simulated multiprocessor (and optionally with real threads), and
// prints the figure's series as a table.
//
// Command line (all optional):
//   --pairs N      total enqueue/dequeue pairs per run   (default 100000;
//                  the paper uses 10^6 -- pass --pairs 1000000 to match)
//   --max-procs P  sweep 1..P processors                 (default 12)
//   --real         ALSO run the real-thread harness (multiprogrammed on
//                  this host; reported separately).  The real sweep adds a
//                  "segq" series (FAA-segment queue; no simulator model)
//   --pin          pin real-harness worker t to CPU t mod hw cores (Linux
//                  only; a no-op elsewhere).  Leave off for the Figure 4/5
//                  multiprogrammed runs, which rely on preemption
//   --csv          emit CSV instead of the aligned table
//   --seed S       simulator seed
//   --json         ALSO write the sweep (throughput + per-op observability
//                  counters per algorithm and proc count) to the bench's
//                  BENCH_*.json file, and print per-op counter companion
//                  tables (schema: tools/check_bench_json.py)
#pragma once

#include <cstdint>
#include <string>

namespace msq::bench {

struct FigConfig {
  std::string title;
  std::uint32_t procs_per_processor = 1;  // 1=Fig3, 2=Fig4, 3=Fig5
  std::uint64_t pairs = 100'000;
  std::uint32_t max_procs = 12;
  bool also_real = false;
  bool pin = false;  // --pin: CPU-affinity for the real-thread sweep
  bool csv = false;
  bool json = false;              // --json: emit machine-readable output
  std::string json_path = "BENCH_fig.json";  // overridden by each bench main
  std::uint64_t seed = 1;
  double backoff_max = 1024;  // ablation overrides this
};

/// Parse the common flags into `config` (title/procs_per_processor are set
/// by the caller).  Returns false (after printing usage) on a bad flag.
bool parse_args(int argc, char** argv, FigConfig& config);

/// Run the sweep and print the table(s) to stdout.
void run_figure(const FigConfig& config);

}  // namespace msq::bench
