// Experiment A4: the Valois memory-exhaustion run (paper section 1).
//
//   "In experiments with a queue of maximum length 12 items, we ran out of
//    memory several times during runs of ten million enqueues and dequeues,
//    using a free list initialized with 64,000 nodes."
//
// Retired into the cross-queue memory bench: this target is fig_memory
// (compiled with FIG_MEMORY_NO_MAIN, see bench/CMakeLists.txt) restricted
// to the valois family.  The steady run is the well-behaved baseline; the
// stall run is the paper's delayed SafeRead reader pinning the reclamation
// chain while bounded-occupancy traffic exhausts the 64,000-node pool.
// All the original flags (--pairs/--capacity/--occupancy) still apply;
// tests/valois_memory_test.cpp keeps the mechanism proof in-process.
#include <vector>

int fig_memory_main(int argc, char** argv);

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char only_flag[] = "--only";
  char only_name[] = "valois";
  args.push_back(only_flag);
  args.push_back(only_name);
  args.push_back(nullptr);
  return fig_memory_main(static_cast<int>(args.size()) - 1, args.data());
}
