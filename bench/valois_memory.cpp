// Experiment A4: the Valois memory-exhaustion run (paper section 1).
//
//   "In experiments with a queue of maximum length 12 items, we ran out of
//    memory several times during runs of ten million enqueues and dequeues,
//    using a free list initialized with 64,000 nodes."
//
// We reproduce the mechanism deterministically: worker threads run bounded-
// occupancy enqueue/dequeue traffic against a 64,000-node pool while one
// "delayed" reader periodically takes a SafeRead reference and sleeps on it
// (the paper's inopportune preemption).  The bench reports pool occupancy
// over time and the first allocation failure.  The same workload against
// the MS queue runs to completion with a pool of just a few dozen nodes.
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "queues/ms_queue.hpp"
#include "queues/valois_queue.hpp"
#include "tagged/tagged_index.hpp"

namespace {

struct RunStats {
  std::uint64_t completed_pairs = 0;
  std::uint64_t first_failure_at = 0;  // pair index of first alloc failure
  std::uint64_t failures = 0;
  std::size_t min_free = ~std::size_t{0};
};

RunStats run_valois(std::uint64_t target_pairs, std::uint32_t pool_nodes,
                    bool with_delayed_reader) {
  msq::queues::ValoisQueue<std::uint64_t> queue(pool_nodes);
  RunStats stats;
  std::atomic<bool> stop{false};

  std::jthread delayed([&] {
    if (!with_delayed_reader) return;
    // The delayed process: grab a reference, sleep through "an arbitrary
    // number" of other processes' operations, release, repeat.
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint32_t pinned = queue.pool().safe_read(queue.head_cell()).index();
      // 100ms is ~one scheduling-quantum-scale delay: long enough for the
      // churning threads to request far more nodes than the pool holds.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (pinned != msq::tagged::kNullIndex) queue.pool().release(pinned);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < target_pairs; ++i) {
    // Max occupancy 12, as in the paper's experiment.
    for (int burst = 0; burst < 12; ++burst) {
      if (!queue.try_enqueue(i)) {
        if (stats.failures++ == 0) stats.first_failure_at = i;
      }
    }
    for (int burst = 0; burst < 12; ++burst) queue.try_dequeue(out);
    ++stats.completed_pairs;
    if (i % 1024 == 0) {
      stats.min_free = std::min(stats.min_free, queue.unsafe_free_nodes());
    }
  }
  stop.store(true, std::memory_order_release);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t pairs = 300'000;  // x12 ops per burst (~2s default run)
  std::uint32_t nodes = 64'000;  // the paper's free-list size
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pairs") == 0 && i + 1 < argc) {
      pairs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }

  std::cout << "== A4: Valois memory exhaustion (paper section 1) ==\n"
            << "pool " << nodes << " nodes, queue occupancy <= 12, "
            << pairs << " bursts\n\n";

  const RunStats clean = run_valois(pairs, nodes, /*with_delayed_reader=*/false);
  std::cout << "without delayed reader: failures=" << clean.failures
            << "  min free nodes=" << clean.min_free << '\n';

  const RunStats pinned = run_valois(pairs, nodes, /*with_delayed_reader=*/true);
  std::cout << "with delayed reader:    failures=" << pinned.failures
            << "  min free nodes=" << pinned.min_free;
  if (pinned.failures > 0) {
    std::cout << "  first failure at burst " << pinned.first_failure_at;
  }
  std::cout << '\n';

  // Control: the MS queue with a pool barely larger than the occupancy
  // bound completes the same traffic without a single allocation failure.
  {
    msq::queues::MsQueue<std::uint64_t> queue(16);
    std::uint64_t out = 0;
    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      for (int b = 0; b < 12; ++b) failures += !queue.try_enqueue(i);
      for (int b = 0; b < 12; ++b) queue.try_dequeue(out);
    }
    std::cout << "MS queue control (16-node pool, same traffic): failures="
              << failures << '\n';
  }

  std::cout << "\nConclusion: a single delayed process holding one SafeRead\n"
               "reference pins every subsequently dequeued node (each "
               "unreclaimed\nnode's link pins its successor), so bounded-"
               "occupancy traffic exhausts\nan arbitrarily large pool -- the "
               "paper's argument for why the counted\npointer + free list "
               "scheme of the MS queue is the practical choice.\n";
  return 0;
}
