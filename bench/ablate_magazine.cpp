// Magazine ablation (EXPERIMENTS.md): the same queue algorithms with the
// per-thread magazine layer on vs off, on real threads.
//
// The magazine layer (src/mem/magazine.hpp) batches free-list traffic:
// allocations are served from a thread-cached stack of node indices and the
// shared Treiber top is touched once per ~kCap/2 operations instead of once
// per operation.  The claim under test is that this removes free-list CAS
// retries (obs counter pool_cas_retry) and with them the coherence traffic
// that makes the 1996 free list a second contention hotspot next to the
// queue itself.
//
// Series (all real threads; sweep 1..max_procs):
//   msq        MsQueue + shared FreeList            (the paper's layout)
//   msq+mag    MsQueue + MagazineAllocator<_, 32>
//   segq-nomag SegmentQueue + shared FreeList
//   segq       SegmentQueue + its default magazines
//
// Flags are the common fig set (fig_common.hpp): --pairs/--max-procs/
// --seed/--pin/--csv/--json.  --json writes BENCH_ablate_magazine.json
// (schema msq-bench-v1, validated by tools/check_bench_json.py).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "harness/calibrate.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "mem/freelist.hpp"
#include "mem/magazine.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "sync/backoff.hpp"

namespace msq::bench {
namespace {

template <typename Node>
using Mag32 = mem::MagazineAllocator<Node, 32>;

using MsqPlain = queues::MsQueue<std::uint64_t>;
using MsqMag = queues::MsQueue<std::uint64_t, sync::Backoff, Mag32>;
using SegPlain = queues::SegmentQueue<std::uint64_t, mem::FreeList>;
using SegMag = queues::SegmentQueue<std::uint64_t>;

struct SweepPoint {
  std::uint32_t procs = 0;
  double net_seconds_per_million = 0;
  std::uint64_t ops = 0;
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
  obs::Snapshot counters;
};

struct SweepSeries {
  std::string algo;
  std::vector<SweepPoint> points;
};

template <typename Q>
harness::WorkloadResult run_one(std::uint32_t threads,
                                const FigConfig& config) {
  harness::WorkloadConfig wc;
  wc.threads = threads;
  wc.total_pairs = config.pairs;
  wc.pin_threads = config.pin;
  wc.other_work_iters = harness::spin_iters_for_us(6.0);  // paper: ~6us
  Q queue(threads * 4 + 64);
  return harness::run_workload(queue, wc);
}

using RunFn = harness::WorkloadResult (*)(std::uint32_t, const FigConfig&);

constexpr struct {
  const char* name;
  RunFn run;
} kVariants[] = {
    {"msq", &run_one<MsqPlain>},
    {"msq+mag", &run_one<MsqMag>},
    {"segq-nomag", &run_one<SegPlain>},
    {"segq", &run_one<SegMag>},
};

/// The counters that tell the ablation story, printed per operation so the
/// on/off columns are directly comparable at every thread count.
void print_counter_tables(const FigConfig& config,
                          const std::vector<SweepSeries>& series) {
  const struct {
    obs::Counter counter;
    const char* title;
  } kTables[] = {
      // Every pool_get is a successful CAS on the shared Treiber top -- a
      // guaranteed cache-line transfer even when it does not retry.  On a
      // single-core host retries need a preemption inside the tiny
      // load-to-CAS window, so pool_get is the robust proxy there;
      // pool_cas_retry shows the same collapse once cores run in parallel.
      {obs::Counter::kPoolGet,
       "shared free-list acquisitions per operation (coherence transfers)"},
      {obs::Counter::kPoolCasRetry,
       "free-list CAS retries per operation (the ablated hotspot)"},
      {obs::Counter::kMagHit, "magazine hits per operation"},
      {obs::Counter::kMagRefill, "magazine batch refills per operation"},
  };
  for (const auto& spec : kTables) {
    harness::SeriesTable table(std::string(spec.title) + "  [real]", "procs");
    std::vector<std::size_t> cols;
    cols.reserve(series.size());
    for (const SweepSeries& s : series) cols.push_back(table.add_series(s.algo));
    const std::size_t rows = series.empty() ? 0 : series.front().points.size();
    for (std::size_t r = 0; r < rows; ++r) {
      table.add_row(series.front().points[r].procs);
      for (std::size_t a = 0; a < series.size(); ++a) {
        const SweepPoint& p = series[a].points[r];
        table.set(cols[a], p.counters.per_op(spec.counter, p.ops));
      }
    }
    if (config.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
}

void write_json(const FigConfig& config,
                const std::vector<SweepSeries>& all_series) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-bench-v1");
  w.key("title");
  w.value(config.title);
  w.key("pairs");
  w.value(config.pairs);
  w.key("max_procs");
  w.value(config.max_procs);
  w.key("procs_per_processor");
  w.value(config.procs_per_processor);
  w.key("seed");
  w.value(config.seed);
  w.key("backoff_max");
  w.value(config.backoff_max);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("series");
  w.begin_array();
  for (const SweepSeries& s : all_series) {
    w.begin_object();
    w.key("algo");
    w.value(s.algo);
    w.key("source");
    w.value("real");
    w.key("points");
    w.begin_array();
    for (const SweepPoint& p : s.points) {
      w.begin_object();
      w.key("procs");
      w.value(static_cast<std::uint64_t>(p.procs));
      w.key("net_seconds_per_million_pairs");
      w.value(p.net_seconds_per_million);
      const double net_actual =
          p.net_seconds_per_million * static_cast<double>(config.pairs) / 1e6;
      w.key("throughput_pairs_per_sec");
      w.value(net_actual > 0 ? static_cast<double>(config.pairs) / net_actual
                             : 0.0);
      w.key("ops");
      w.value(p.ops);
      w.key("empty_dequeues");
      w.value(p.empty_dequeues);
      w.key("enqueue_failures");
      w.value(p.enqueue_failures);
      w.key("counters");
      obs::write_counters_json(w, p.counters, p.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

int run(const FigConfig& config) {
  obs::reset();
  obs::arm();

  harness::SeriesTable table(
      config.title + "  [real threads; net seconds per 10^6 pairs]",
      "threads");
  std::vector<std::size_t> cols;
  std::vector<SweepSeries> series(std::size(kVariants));
  for (std::size_t a = 0; a < std::size(kVariants); ++a) {
    cols.push_back(table.add_series(kVariants[a].name));
    series[a].algo = kVariants[a].name;
  }

  const double scale = 1e6 / static_cast<double>(config.pairs);
  for (std::uint32_t threads = 1; threads <= config.max_procs; ++threads) {
    table.add_row(threads);
    for (std::size_t a = 0; a < std::size(kVariants); ++a) {
      const obs::Snapshot before = obs::snapshot();
      const harness::WorkloadResult result =
          kVariants[a].run(threads, config);
      table.set(cols[a], result.net_seconds * scale);

      SweepPoint point;
      point.procs = threads;
      point.net_seconds_per_million = result.net_seconds * scale;
      point.ops = result.enqueues + result.dequeues + result.empty_dequeues +
                  result.enqueue_failures;
      point.empty_dequeues = result.empty_dequeues;
      point.enqueue_failures = result.enqueue_failures;
      point.counters = obs::snapshot() - before;
      series[a].points.push_back(point);
    }
  }
  if (config.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  print_counter_tables(config, series);
  if (config.json) write_json(config, series);
  return 0;
}

}  // namespace
}  // namespace msq::bench

int main(int argc, char** argv) {
  msq::bench::FigConfig config;
  config.title = "magazine ablation: thread-cached node allocation on/off";
  config.json_path = "BENCH_ablate_magazine.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  return msq::bench::run(config);
}
